"""Setuptools shim.

Kept alongside pyproject.toml so that ``pip install -e .`` works in
offline environments whose setuptools predates PEP 660 editable wheels.
All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
