"""Benchmark-style tour on an XMark-like auction document: the same
twig workload through four evaluation strategies, with timings and the
intermediate-result accounting of experiment E14.

Run:  python examples/xmark_queries.py
"""

import time

from repro.complexity import format_table
from repro.cq import evaluate_backtracking
from repro.twigjoin import (
    JoinPlanStats,
    binary_join_plan,
    holistic_via_arc_consistency,
    parse_twig,
    twig_stack,
)
from repro.twigjoin.twigstack import TwigStats
from repro.workloads import xmark_like

PATTERNS = [
    "//item[.//keyword]//description",
    "//person[profile]/name",
    "//closed_auction[annotation]/price",
    "//regions//item[payment]",
]


def timed(fn, *args):
    start = time.perf_counter()
    result = fn(*args)
    return result, time.perf_counter() - start


def main() -> None:
    tree = xmark_like(200, seed=42)
    print(f"XMark-like document: {tree.n} nodes, height {tree.height()}\n")

    rows = []
    for text in PATTERNS:
        pattern = parse_twig(text)
        ts_stats, bj_stats = TwigStats(), JoinPlanStats()
        r1, t1 = timed(twig_stack, pattern, tree, ts_stats)
        r2, t2 = timed(holistic_via_arc_consistency, pattern, tree)
        r3, t3 = timed(binary_join_plan, pattern, tree, bj_stats)
        r4, t4 = timed(evaluate_backtracking, pattern.to_cq(), tree)
        assert r1 == r2 == r3 == r4
        rows.append(
            [
                text,
                len(r1),
                f"{t1 * 1e3:.1f}",
                f"{t2 * 1e3:.1f}",
                f"{t3 * 1e3:.1f}",
                f"{t4 * 1e3:.1f}",
                bj_stats.max_intermediate,
            ]
        )
    print(
        format_table(
            [
                "twig",
                "matches",
                "twigstack ms",
                "arc-cons ms",
                "binary ms",
                "backtrack ms",
                "binary max-interm.",
            ],
            rows,
        )
    )
    print("\nAll four strategies returned identical match sets.")


if __name__ == "__main__":
    main()
