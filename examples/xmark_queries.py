"""Benchmark-style tour on an XMark-like auction document: the same
twig workload through every registered strategy, with timings, the
planner's choice, and the intermediate-result accounting of E14.

Run:  python examples/xmark_queries.py
"""

from repro.complexity import format_table
from repro.engine import Database
from repro.workloads import xmark_like

PATTERNS = [
    "//item[.//keyword]//description",
    "//person[profile]/name",
    "//closed_auction[annotation]/price",
    "//regions//item[payment]",
]


def main() -> None:
    db = Database(xmark_like(200, seed=42))
    print(f"XMark-like document: {db.tree.n} nodes, height {db.tree.height()}\n")

    names = db.strategies("twig", PATTERNS[0])
    rows = []
    for text in PATTERNS:
        results = db.cross_check("twig", text)
        answers = {frozenset(r.answer) for r in results.values()}
        assert len(answers) == 1, f"strategy disagreement on {text}"
        planned = db.plan("twig", text).strategy
        row = [text, len(next(iter(results.values())).answer), planned]
        for name in names:
            cell = f"{results[name].stats.elapsed_ms:.1f}"
            if name == planned:
                cell += " *"
            row.append(cell)
        rows.append(row)
    print(
        format_table(
            ["twig", "matches", "planner", *[f"{n} ms" for n in names]],
            rows,
        )
    )
    print("\nAll strategies returned identical match sets "
          "(* = the planner's choice).")
    print(f"One DocumentIndex served all {len(db.history)} engine calls.")


if __name__ == "__main__":
    main()
