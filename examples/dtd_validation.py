"""DTD validation, in memory and streaming (reference [70] of the paper:
Segoufin & Vianu, "Validating Streaming XML Documents").

Run:  python examples/dtd_validation.py
"""

from repro.automata import DTD
from repro.streaming import MemoryMeter, tree_events
from repro.trees import parse_xml
from repro.workloads import xmark_like

AUCTION_DTD = DTD(
    {
        "site": "regions, people, closed_auctions",
        "regions": "(africa | asia | europe | namerica)*",
        "africa": "item*",
        "asia": "item*",
        "europe": "item*",
        "namerica": "item*",
        "item": "name, description, payment?, shipping?",
        "description": "text?",
        "text": "parlist?, keyword?",
        "parlist": "listitem",
        "listitem": "parlist?, keyword?",
        "keyword": "EMPTY",
        "name": "EMPTY",
        "payment": "EMPTY",
        "shipping": "EMPTY",
        "people": "person*",
        "person": "name, emailaddress?, profile?",
        "emailaddress": "EMPTY",
        "profile": "interest, education?",
        "interest": "EMPTY",
        "education": "EMPTY",
        "closed_auctions": "closed_auction*",
        "closed_auction": "buyer, itemref, price, annotation?",
        "buyer": "EMPTY",
        "itemref": "EMPTY",
        "price": "EMPTY",
        "annotation": "description",
    },
    root="site",
)


def main() -> None:
    document = xmark_like(60, seed=11)
    print(f"document: {document.n} nodes")

    verdict = AUCTION_DTD.validate(document)
    print("in-memory validation :", "valid" if verdict is None else verdict)

    meter = MemoryMeter()
    ok = AUCTION_DTD.stream_validate(tree_events(document), meter=meter)
    print(
        f"streaming validation : {'valid' if ok else 'INVALID'} "
        f"(peak {meter.peak_units} state units over {meter.events_seen} events, "
        f"depth {document.height()})"
    )

    broken = parse_xml("<site><people/><regions/><closed_auctions/></site>")
    print("reordered children   :", AUCTION_DTD.validate(broken))


if __name__ == "__main__":
    main()
