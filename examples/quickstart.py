"""Quickstart: one tour through the library's main entry points.

Run:  python examples/quickstart.py
"""

from repro.consistency import evaluate_boolean_xproperty
from repro.cq import parse_cq, yannakakis_unary
from repro.datalog import evaluate as datalog_evaluate, parse_program
from repro.rewrite import evaluate_via_rewriting
from repro.trees import parse_xml
from repro.twigjoin import parse_twig, twig_stack
from repro.xpath import evaluate_query_linear, parse_xpath

DOCUMENT = """
<library>
  <shelf topic="databases">
    <book><title/><author/><author/></book>
    <book><title/><award/></book>
  </shelf>
  <shelf topic="logic">
    <book><title/><author/></book>
    <journal><title/></journal>
  </shelf>
</library>
"""


def main() -> None:
    tree = parse_xml(DOCUMENT)
    print(f"parsed {tree.n} nodes, height {tree.height()}")

    # --- Core XPath (linear-time evaluator) -------------------------------
    query = parse_xpath("Child*[lab() = book][Child[lab() = author]]/Child[lab() = title]")
    titles = evaluate_query_linear(query, tree)
    print("titles of books with authors:", sorted(titles))

    # --- conjunctive queries via Yannakakis' algorithm ---------------------
    cq = parse_cq("ans(b) :- Child+(s, b), Lab:shelf(s), Lab:book(b)")
    books = yannakakis_unary(cq, tree)
    print("books on shelves:         ", sorted(books))

    # --- the same query through the Theorem 5.1 rewriting ------------------
    via_rewriting = {v for (v,) in evaluate_via_rewriting(cq, tree)}
    assert via_rewriting == books

    # --- monadic datalog (TMNF -> Horn-SAT -> Minoux) ----------------------
    program = parse_program(
        """
        OnShelf(x) :- Lab:shelf(x).
        OnShelf(x) :- Child(y, x), OnShelf(y).
        Titled(x) :- OnShelf(x), Lab:title(x).
        % query: Titled
        """
    )
    print("titles under shelves:     ", sorted(datalog_evaluate(program, tree)))

    # --- holistic twig join -------------------------------------------------
    twig = parse_twig("//shelf/book[author]")
    matches = twig_stack(twig, tree)
    print(f"twig //shelf/book[author]: {len(matches)} matches")

    # --- Boolean CQ via arc-consistency (Theorem 6.5) ----------------------
    boolean = parse_cq("ans() :- Child+(x, y), Lab:book(x), Lab:award(y)")
    print("some book holds an award? ", evaluate_boolean_xproperty(boolean, tree))


if __name__ == "__main__":
    main()
