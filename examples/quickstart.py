"""Quickstart: one tour through the library's main entry points.

Everything routes through :class:`repro.engine.Database` — one
document, one cached index, a planner that picks the evaluation
strategy, and per-call execution stats.

Run:  python examples/quickstart.py
"""

from repro.consistency import evaluate_boolean_xproperty
from repro.cq import parse_cq
from repro.engine import Database

DOCUMENT = """
<library>
  <shelf topic="databases">
    <book><title/><author/><author/></book>
    <book><title/><award/></book>
  </shelf>
  <shelf topic="logic">
    <book><title/><author/></book>
    <journal><title/></journal>
  </shelf>
</library>
"""


def main() -> None:
    db = Database.from_xml(DOCUMENT)
    print(f"parsed {db.tree.n} nodes, height {db.tree.height()}")

    # --- Core XPath: the planner picks the strategy -------------------------
    result = db.xpath(
        "Child*[lab() = book][Child[lab() = author]]/Child[lab() = title]"
    )
    print("titles of books with authors:", sorted(result.answer))
    print(f"  ran as: {result.stats.summary()}")
    print(f"  because: {result.stats.reason}")

    # --- conjunctive queries (acyclic -> Yannakakis) ------------------------
    result = db.cq("ans(b) :- Child+(s, b), Lab:shelf(s), Lab:book(b)")
    books = {v for (v,) in result.answer}
    print("books on shelves:         ", sorted(books))
    print(f"  ran as: {result.stats.summary()}")

    # --- the same query under every applicable strategy ---------------------
    checked = db.cross_check("cq", "ans(b) :- Child+(s, b), Lab:shelf(s), Lab:book(b)")
    assert all({v for (v,) in r.answer} == books for r in checked.values())
    print(f"  cross-checked against: {', '.join(checked)}")

    # --- monadic datalog (TMNF -> Horn-SAT -> Minoux) ----------------------
    result = db.datalog(
        """
        OnShelf(x) :- Lab:shelf(x).
        OnShelf(x) :- Child(y, x), OnShelf(y).
        Titled(x) :- OnShelf(x), Lab:title(x).
        % query: Titled
        """
    )
    print("titles under shelves:     ", sorted(result.answer))

    # --- holistic twig join -------------------------------------------------
    result = db.twig("//shelf/book[author]")
    print(f"twig //shelf/book[author]: {len(result.answer)} matches "
          f"(strategy: {result.stats.strategy})")

    # --- repeated queries reuse the cached DocumentIndex --------------------
    again = db.twig("//shelf/book[author]")
    assert not again.stats.index_built and again.stats.index_hits > 0
    print(f"index built once, then reused: "
          f"{sum(s.index_built for s in db.history)} build(s) "
          f"across {len(db.history)} queries")

    # --- Boolean CQ via arc-consistency (Theorem 6.5) ----------------------
    boolean = parse_cq("ans() :- Child+(x, y), Lab:book(x), Lab:award(y)")
    print("some book holds an award? ",
          evaluate_boolean_xproperty(boolean, db.tree))


if __name__ == "__main__":
    main()
