"""Selective dissemination of information (SDI): filter a stream of
documents against many standing subscriptions, in one pass per document
and with memory proportional to document depth only (Section 5 of the
paper; the XFilter/YFilter-style scenario of its introduction).

Run:  python examples/stream_filtering.py
"""

from repro.streaming import MemoryMeter, stream_match_twig, stream_select, tree_events
from repro.twigjoin import parse_twig
from repro.workloads import xmark_like
from repro.xpath import parse_xpath

SUBSCRIPTIONS = {
    "auction watchers": "//closed_auction//price",
    "keyword diggers": "//item[.//keyword]",
    "profile scouts": "//person[profile]",
    "shipping fans": "//item[shipping][payment]",
    "nonexistent tag": "//zeppelin",
}

SELECTION = "Child*[lab() = item]/Child[lab() = name]"


def main() -> None:
    documents = [xmark_like(40, seed=s) for s in range(5)]
    compiled = {name: parse_twig(text) for name, text in SUBSCRIPTIONS.items()}

    print("document  matching subscriptions")
    print("--------  ----------------------")
    for i, doc in enumerate(documents):
        hits = [
            name
            for name, pattern in compiled.items()
            if stream_match_twig(pattern, tree_events(doc))
        ]
        print(f"doc {i} ({doc.n:4d} nodes)  {', '.join(hits) or '-'}")

    # node-selecting subscription with memory instrumentation
    query = parse_xpath(SELECTION)
    meter = MemoryMeter()
    selected = list(stream_select(query, tree_events(documents[0]), meter=meter))
    print(
        f"\nselection {SELECTION!r}: {len(selected)} nodes; "
        f"peak memory {meter.peak_units} units over {meter.events_seen} events "
        f"(document depth {documents[0].height()})"
    )


if __name__ == "__main__":
    main()
