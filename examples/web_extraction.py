"""Web information extraction with monadic datalog.

The paper motivates monadic datalog as the formal core of Web wrapper
languages (Gottlob & Koch [31]: "Monadic Datalog and the Expressive
Power of Web Information Extraction Languages").  This example plays a
wrapper over a product-listing page: select the *names of products that
are discounted and in stock*, using recursive marking over the τ⁺-style
signature — then cross-checks the answer against a Core XPath query.

Run:  python examples/web_extraction.py
"""

from repro.datalog import evaluate as datalog_evaluate, parse_program
from repro.trees import parse_xml
from repro.xpath import evaluate_query_linear, parse_xpath

PAGE = """
<html>
  <body>
    <table class="products">
      <tr><th/><th/></tr>
      <tr class="product">
        <td><span class="name"/><span class="discount"/></td>
        <td><span class="stock"/></td>
      </tr>
      <tr class="product">
        <td><span class="name"/></td>
        <td><span class="stock"/></td>
      </tr>
      <tr class="product">
        <td><span class="name"/><span class="discount"/></td>
        <td><span class="soldout"/></td>
      </tr>
    </table>
  </body>
</html>
"""

WRAPPER = """
% mark the subtree of every product row
InRow(x)  :- Lab:tr(x).
InRow(x)  :- Child(y, x), InRow(y).

% a row is "hot" if its subtree contains a discount marker
Hot(r)    :- Lab:tr(r), Child+(r, d), Lab:@class=discount(d).
% ... and "live" if its subtree contains a stock marker
Live(r)   :- Lab:tr(r), Child+(r, s), Lab:@class=stock(s).

% target: the name spans inside hot, live rows
Target(n) :- Hot(r), Live(r), Child+(r, n), Lab:@class=name(n).
% query: Target
"""


def main() -> None:
    tree = parse_xml(PAGE, attributes_as_labels=True)
    print(f"page parsed: {tree.n} nodes")

    extracted = datalog_evaluate(parse_program(WRAPPER), tree)
    print("extracted name nodes:", sorted(extracted))
    for v in sorted(extracted):
        row = next(
            u for u in tree.ancestors(v) if tree.has_label(u, "tr")
        )
        print(f"  node {v} (a <span class='name'>) in row node {row}")

    # the same extraction as Core XPath, for cross-validation
    xpath = parse_xpath(
        "Child+[lab() = tr]"
        "[Child+[lab() = @class=discount]]"
        "[Child+[lab() = @class=stock]]"
        "/Child+[lab() = @class=name]"
    )
    assert evaluate_query_linear(xpath, tree) == extracted
    print("Core XPath agrees with the datalog wrapper.")


if __name__ == "__main__":
    main()
