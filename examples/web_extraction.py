"""Web information extraction with monadic datalog.

The paper motivates monadic datalog as the formal core of Web wrapper
languages (Gottlob & Koch [31]: "Monadic Datalog and the Expressive
Power of Web Information Extraction Languages").  This example plays a
wrapper over a product-listing page: select the *names of products that
are discounted and in stock*, using recursive marking over the τ⁺-style
signature — then cross-checks the answer against a Core XPath query.

Run:  python examples/web_extraction.py
"""

from repro.engine import Database

PAGE = """
<html>
  <body>
    <table class="products">
      <tr><th/><th/></tr>
      <tr class="product">
        <td><span class="name"/><span class="discount"/></td>
        <td><span class="stock"/></td>
      </tr>
      <tr class="product">
        <td><span class="name"/></td>
        <td><span class="stock"/></td>
      </tr>
      <tr class="product">
        <td><span class="name"/><span class="discount"/></td>
        <td><span class="soldout"/></td>
      </tr>
    </table>
  </body>
</html>
"""

WRAPPER = """
% mark the subtree of every product row
InRow(x)  :- Lab:tr(x).
InRow(x)  :- Child(y, x), InRow(y).

% a row is "hot" if its subtree contains a discount marker
Hot(r)    :- Lab:tr(r), Child+(r, d), Lab:@class=discount(d).
% ... and "live" if its subtree contains a stock marker
Live(r)   :- Lab:tr(r), Child+(r, s), Lab:@class=stock(s).

% target: the name spans inside hot, live rows
Target(n) :- Hot(r), Live(r), Child+(r, n), Lab:@class=name(n).
% query: Target
"""


def main() -> None:
    db = Database.from_xml(PAGE, attributes_as_labels=True)
    tree = db.tree
    print(f"page parsed: {tree.n} nodes")

    result = db.datalog(WRAPPER)
    extracted = result.answer
    print("extracted name nodes:", sorted(extracted))
    print(f"  ({result.stats.summary()})")
    for v in sorted(extracted):
        row = next(
            u for u in tree.ancestors(v) if tree.has_label(u, "tr")
        )
        print(f"  node {v} (a <span class='name'>) in row node {row}")

    # the same extraction as Core XPath, cross-checked under every
    # applicable strategy (all reuse the one cached DocumentIndex)
    xpath = (
        "Child+[lab() = tr]"
        "[Child+[lab() = @class=discount]]"
        "[Child+[lab() = @class=stock]]"
        "/Child+[lab() = @class=name]"
    )
    checked = db.cross_check("xpath", xpath)
    assert all(r.answer == extracted for r in checked.values())
    print(f"Core XPath agrees with the datalog wrapper "
          f"under {len(checked)} strategies: {', '.join(checked)}.")


if __name__ == "__main__":
    main()
