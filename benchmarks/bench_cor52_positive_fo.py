"""E10 — Corollary 5.2: a fixed positive Boolean FO query is evaluated
on trees in O(||A||), via the Theorem 5.1 rewriting plus Yannakakis.

The naive FO model checker (quantifier-nested loops, O(n^q)) is the
contrast baseline.
"""

import pytest

from repro.complexity import ScalingPoint, fit_loglog_slope
from repro.cq import parse_cq
from repro.logic import cq_to_fo, fo_eval
from repro.rewrite import evaluate_via_rewriting, rewrite_lazy
from repro.cq.yannakakis import yannakakis
from repro.trees import random_tree

from _benchutil import report, sizes, timed

# a fixed positive Boolean query: an a-node with two Child+-related
# witnesses below (cyclic as written, rewritten into acyclic disjuncts)
QUERY = parse_cq(
    "ans() :- Lab:a(x), Child+(x, y), Child+(x, z), Child+(y, z), Lab:b(z)"
)
DISJUNCTS = rewrite_lazy(QUERY)


def _evaluate_union(tree) -> bool:
    return any(yannakakis(d, tree) for d in DISJUNCTS)


def test_linear_data_complexity():
    points = []
    for n in sizes((500, 1_000, 2_000, 4_000), (250, 500, 1_000)):
        t = random_tree(n, seed=1)
        points.append(ScalingPoint(n, timed(_evaluate_union, t)))
    slope = fit_loglog_slope(points)
    report(
        "E10/Cor5.2: fixed positive Boolean query, rewritten once",
        ["n", "seconds"],
        [[p.size, p.seconds] for p in points],
    )
    assert slope < 1.8  # linear-ish in ||A|| (Child+ materialization noise)


def test_vs_naive_fo_model_checking():
    formula = cq_to_fo(QUERY)
    rows = []
    for n in sizes((30, 60), (20, 30)):
        t = random_tree(n, seed=2, alphabet=("c", "d"))  # no matches: worst case
        tf = timed(fo_eval, formula, t, repeats=1)
        tr = timed(_evaluate_union, t, repeats=1)
        rows.append([n, tr, tf, f"{tf / max(tr, 1e-9):.0f}x"])
        assert fo_eval(formula, t) == _evaluate_union(t)
    report(
        "E10/Cor5.2: rewriting route vs naive FO evaluation",
        ["n", "rewrite+Yannakakis", "naive FO", "speedup"],
        rows,
    )
    assert rows[-1][1] < rows[-1][2]


@pytest.mark.benchmark(group="cor52")
def test_bench_fixed_positive_query(benchmark):
    t = random_tree(2_000, seed=3)
    benchmark(_evaluate_union, t)
