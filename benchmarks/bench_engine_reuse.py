"""E-ENG — index amortization through the unified engine.

The claim the engine facade makes: the :class:`repro.engine.Database`
builds its :class:`~repro.engine.index.DocumentIndex` once per document
and every later query reuses it, so a workload of repeated queries pays
the pre/post/partition construction cost exactly once.  We measure:

- **cold**: a fresh ``Database`` per query — every call rebuilds the
  index (what naive per-call usage costs),
- **warm**: one ``Database`` for the whole workload — the index is
  built by the first call and only consulted afterwards.

Expected shape: warm total ≲ cold total, with the gap growing in both
document size and workload length; ``ExecutionStats`` proves the cache
behaviour (``index_built`` exactly once, ``index_hits > 0`` on reuse).
"""

import time

from repro.engine import Database
from repro.perf import Sample
from repro.workloads import xmark_like

from _benchutil import record_metrics_snapshot, record_series, report, sizes, timed

XPATH_WORKLOAD = [
    "Child*[lab() = item]/Child[lab() = keyword]",
    "Child*[lab() = person][Child[lab() = profile]]",
    "Child*[lab() = closed_auction]/Child*[lab() = price]",
    "Child*[lab() = regions]/Child+[lab() = item]",
    "Child*[lab() = item][Child+[lab() = keyword]]",
]

TWIG_WORKLOAD = [
    "//item[keyword]",
    "//person[profile]/name",
    "//closed_auction/price",
]


def _run_workload(db: Database):
    answers = []
    for q in XPATH_WORKLOAD:
        answers.append(frozenset(db.xpath(q).answer))
    for q in TWIG_WORKLOAD:
        answers.append(frozenset(db.twig(q).answer))
    return answers


def test_index_built_once_and_reused():
    db = Database(xmark_like(120, seed=7))
    first_pass = _run_workload(db)
    second_pass = _run_workload(db)
    assert first_pass == second_pass
    stats = db.history
    # exactly the first call constructed the index ...
    assert [s.index_built for s in stats] == [True] + [False] * (len(stats) - 1)
    # ... and every later call visibly consulted it
    assert all(s.index_hits > 0 for s in stats[1:])


def test_repeated_query_amortization():
    rows = []
    for n in sizes((100, 200, 400), (60, 120, 240)):
        tree = xmark_like(n, seed=11)

        start = time.perf_counter()
        cold_answers = []
        for _ in range(3):
            cold_answers = _run_workload(Database(tree))
        t_cold = time.perf_counter() - start

        db = Database(tree)
        start = time.perf_counter()
        warm_answers = []
        for _ in range(3):
            warm_answers = _run_workload(db)
        t_warm = time.perf_counter() - start

        assert cold_answers == warm_answers
        builds = sum(s.index_built for s in db.history)
        assert builds == 1
        rows.append(
            [
                db.tree.n,
                Sample.from_value(t_cold),
                Sample.from_value(t_warm),
                f"{t_cold / max(t_warm, 1e-9):.2f}x",
            ]
        )
    report(
        "E-ENG: 3× workload, fresh Database per run vs one cached index",
        ["nodes", "cold (rebuild)", "warm (cached)", "cold/warm"],
        rows,
    )
    # amortization must not lose: warm runs skip every rebuild (generous
    # factor — the build is O(n) against O(n) queries, so the win is
    # real but modest, and CI machines are noisy)
    assert rows[-1][2] <= rows[-1][1] * 1.5


def test_planner_choices_are_stable():
    """The planner is deterministic for a fixed document + query."""
    db = Database(xmark_like(80, seed=3))
    for q in XPATH_WORKLOAD:
        assert db.plan("xpath", q) == db.plan("xpath", q)
    for q in TWIG_WORKLOAD:
        assert db.plan("twig", q) == db.plan("twig", q)


def test_faultpoint_overhead_disabled():
    """The fault-injection contract (docs/ROBUSTNESS.md): with no
    FaultPlan armed, every ``faultpoint(site)`` the engine passes
    through is one module-global read and a None check.  Recorded as
    its own series so a future hook regression shows up in ``repro
    bench compare``; the workload timing here doubles as the
    disabled-faultpoints variant of the reuse sweep."""
    from repro.faults import active_plan, faultpoint

    assert active_plan() is None  # nothing armed: the disabled path

    rows = []
    for n in sizes((100, 200, 400), (60, 120)):
        tree = xmark_like(n, seed=11)
        db = Database(tree)
        t_workload = timed(_run_workload, db, repeats=3)
        rows.append([db.tree.n, t_workload])
    report(
        "E-ENG: warm workload with faultpoints compiled in, no plan armed",
        ["nodes", "workload (disabled faultpoints)"],
        rows,
    )

    # the hook itself, microbenchmarked against an empty loop
    calls = sizes(200_000, 40_000)

    def hook_loop():
        for _ in range(calls):
            faultpoint("index.build")

    def empty_loop():
        for _ in range(calls):
            pass

    t_hook = timed(hook_loop, repeats=3)
    t_empty = timed(empty_loop, repeats=3)
    per_call = max(float(t_hook) - float(t_empty), 0.0) / calls
    record_series("faultpoint disabled per-call overhead", [(calls, per_call)])
    report(
        "E-ENG: faultpoint() hook cost, disabled",
        ["calls", "hook loop", "empty loop", "per-call (s)"],
        [[calls, t_hook, t_empty, f"{per_call:.2e}"]],
    )
    # generous absolute ceiling: a global read + None check in CPython
    # is tens of nanoseconds; even a noisy CI box stays far under 5 µs
    assert per_call < 5e-6


def test_observed_workload_counter_report():
    """The same workload run observed: answers unchanged, and the
    process-wide metrics registry reports where the work went (the
    counter totals of docs/OBSERVABILITY.md)."""
    from repro.obs import METRICS

    tree = xmark_like(200, seed=7)
    plain = _run_workload(Database(tree))

    METRICS.reset()
    try:
        db = Database(tree)
        observed = []
        for q in XPATH_WORKLOAD:
            observed.append(frozenset(db.xpath(q, trace=True).answer))
        for q in TWIG_WORKLOAD:
            observed.append(frozenset(db.twig(q, trace=True).answer))
        assert observed == plain  # observation never changes answers
        assert METRICS.queries_observed == len(XPATH_WORKLOAD) + len(
            TWIG_WORKLOAD
        )
        snapshot = METRICS.snapshot()
        assert snapshot.get("nodes.visited", 0) > 0
        # cumulative per-strategy latency is queryable, not just counts
        assert METRICS.total_seconds("query.xpath") > 0.0
        assert any(name.startswith("strategy.") for name in METRICS.durations())
        record_metrics_snapshot(snapshot)  # survives the reset below
        report(
            "E-ENG: counter totals over the observed workload "
            f"({METRICS.queries_observed} queries, n={tree.n})",
            ["counter", "total"],
            [[name, total] for name, total in snapshot.items()],
        )
    finally:
        METRICS.reset()
