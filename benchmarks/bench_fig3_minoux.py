"""E3 — Figure 3: Minoux' linear-time Horn-SAT vs naive fixpoint.

The workload is chain-heavy (long unit-derivation chains): the naive
algorithm re-scans the whole clause list once per derived atom —
quadratic — while Minoux' queue touches each body occurrence once.
"""

import pytest

from repro.complexity import ScalingPoint, classify_growth, fit_loglog_slope
from repro.hornsat import minoux, naive_fixpoint
from repro.workloads import random_horn_program

from _benchutil import report, sizes, timed


def test_scaling_shapes():
    minoux_points, naive_points, rows = [], [], []
    for n in sizes((400, 800, 1_600, 3_200), (200, 400, 800)):
        program = random_horn_program(n, n * 2, chain_fraction=0.8, seed=1)
        tm = timed(minoux, program)
        tn = timed(naive_fixpoint, program)
        minoux_points.append(ScalingPoint(n, tm))
        naive_points.append(ScalingPoint(n, tn))
        rows.append([n, tm, tn, f"{tn / max(tm, 1e-9):.1f}x"])
    m_slope = fit_loglog_slope(minoux_points)
    n_slope = fit_loglog_slope(naive_points)
    report(
        "E3/Fig3: Horn-SAT on chain-heavy programs",
        ["atoms", "minoux", "naive fixpoint", "speedup"],
        rows,
    )
    # minoux near-linear; naive pays a large and growing absolute cost
    # (slope comparisons at sub-millisecond scales are too noisy to
    # assert — the constant-factor gap is the robust signal)
    assert m_slope < 1.6, f"minoux slope {m_slope}"
    assert all(n.seconds > 5 * m.seconds for m, n in zip(minoux_points, naive_points))
    assert (naive_points[-1].seconds - minoux_points[-1].seconds) > (
        naive_points[0].seconds - minoux_points[0].seconds
    )


def test_work_bound_is_linear():
    from repro.hornsat import MinouxTrace

    for n in sizes((500, 1_000, 2_000), (250, 500, 1_000)):
        program = random_horn_program(n, n * 3, seed=2)
        trace = MinouxTrace()
        minoux(program, trace=trace)
        assert trace.decrements <= program.size()


@pytest.mark.benchmark(group="fig3")
def test_bench_minoux(benchmark):
    program = random_horn_program(5_000, 10_000, chain_fraction=0.8, seed=3)
    benchmark(minoux, program)


@pytest.mark.benchmark(group="fig3")
def test_bench_naive_fixpoint(benchmark):
    program = random_horn_program(1_000, 2_000, chain_fraction=0.8, seed=3)
    benchmark(naive_fixpoint, program)
