"""E13 — Figure 6 / Propositions 6.9–6.10: backtrack-free,
output-sensitive enumeration of acyclic CQ solutions.

We hold the input roughly fixed and scale the *output* (by label
frequency): enumeration time should track output size, and the
pointer-based variant should do no wasted work (solutions emitted ==
recursion leaves).
"""

import pytest

from repro.consistency import enumerate_satisfactions, solutions_with_pointers
from repro.cq import evaluate_backtracking, parse_cq
from repro.trees import random_tree
from repro.trees.generate import tree_from_parents

from _benchutil import report, sizes, timed

QUERY = parse_cq("ans(x, y) :- Child+(x, y), Lab:a(x), Lab:b(y)")


def _tree_with_output_share(n: int, share: float, seed: int = 1):
    """A random tree where ~share of nodes are labeled a (upper half)
    and b (lower half), controlling the join output size."""
    import random as _random

    rng = _random.Random(seed)
    base = random_tree(n, seed=seed)
    labels = []
    for v in base.nodes():
        if rng.random() < share:
            labels.append("a" if base.depth[v] <= 2 else "b")
        else:
            labels.append("z")
    return tree_from_parents(list(base.parent), labels)


def test_output_sensitive_runtime():
    n = sizes(2_000, 600)
    rows = []
    for share in (0.05, 0.2, 0.8):
        t = _tree_with_output_share(n, share)
        out = solutions_with_pointers(QUERY, t)
        seconds = timed(solutions_with_pointers, QUERY, t)
        rows.append([len(out), seconds])
    report(
        "E13/Prop6.10: fixed input, growing output",
        ["|Q(A)|", "seconds"],
        rows,
    )
    # time grows with output, not explosively relative to it
    assert rows[-1][0] > rows[0][0]


def test_enumeration_agrees_with_backtracking():
    t = _tree_with_output_share(300, 0.3)
    expected = evaluate_backtracking(QUERY, t)
    assert solutions_with_pointers(QUERY, t) == expected
    got = {
        (v["x"], v["y"]) for v in enumerate_satisfactions(QUERY.with_head(()), t)
    }
    assert got == expected


def test_figure6_no_dead_ends():
    """Proposition 6.9: every partial assignment extends — the number of
    full valuations equals the number of root-value choices times their
    compatible continuations (no pruning mid-way)."""
    t = _tree_with_output_share(400, 0.3)
    sols = solutions_with_pointers(QUERY, t, project_to_head=False)
    # every enumerated valuation is a real solution (checked by test
    # suite too; here we assert non-triviality for the bench record)
    assert len(sols) == len(evaluate_backtracking(QUERY, t))


@pytest.mark.benchmark(group="fig6")
def test_bench_pointer_enumeration(benchmark):
    t = _tree_with_output_share(2_000, 0.4)
    benchmark.pedantic(solutions_with_pointers, args=(QUERY, t), rounds=3, iterations=1)


@pytest.mark.benchmark(group="fig6")
def test_bench_figure6_enumeration(benchmark):
    t = _tree_with_output_share(800, 0.4)

    def run():
        return sum(1 for _ in enumerate_satisfactions(QUERY.with_head(()), t))

    benchmark.pedantic(run, rounds=3, iterations=1)
