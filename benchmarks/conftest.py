"""Pytest hooks for the benchmark suite (helpers live in _benchutil).

The telemetry glue — per-module begin/end on :data:`repro.perf.RECORDER`,
failure marking, and the ``REPRO_BENCH_RECORD`` session-end handoff used
by ``repro bench run`` — lives in :mod:`repro.perf.hooks` and is pulled
in by name so plain ``pytest benchmarks/`` records identically.
"""

from repro.perf.hooks import (  # noqa: F401
    _bench_telemetry_module,
    pytest_runtest_logreport,
    pytest_sessionfinish,
)
