"""Pytest hooks for the benchmark suite (helpers live in _benchutil)."""
