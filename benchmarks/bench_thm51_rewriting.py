"""E9 — Theorem 5.1: conjunctive queries → unions of acyclic positive
queries.

Measured shapes:

- the *eager* proof algorithm enumerates all weak orders of the k
  variables — super-exponential in k,
- the *lazy* variant of [35] branches only on demand (ablation A2) and
  still grows exponentially on the star query family (the [35] lower
  bound says some blowup is unavoidable),
- evaluation through the rewriting matches backtracking and is far
  cheaper on larger documents (Corollary 5.2's route).
"""

import pytest

from repro.cq import ConjunctiveQuery, evaluate_backtracking, parse_cq
from repro.datalog.syntax import Atom
from repro.rewrite import (
    RewriteStats,
    evaluate_via_rewriting,
    rewrite_lazy,
    rewrite_to_acyclic_union,
)
from repro.trees import random_tree
from repro.trees.structure import lab

from _benchutil import report, sizes, timed


def star_query(k: int) -> ConjunctiveQuery:
    """k Child+ atoms into a common variable — the family [35] uses for
    the exponential lower bound."""
    atoms = [Atom("Child+", (f"x{i}", "z")) for i in range(k)]
    atoms += [Atom(lab("a"), (f"x{i}",)) for i in range(k)]
    return ConjunctiveQuery(("z",), tuple(atoms))


def test_disjunct_growth():
    rows = []
    for k in (2, 3, 4, 5):
        q = star_query(k)
        eager_stats, lazy_stats = RewriteStats(), RewriteStats()
        n_eager = len(rewrite_to_acyclic_union(q, eager_stats))
        n_lazy = len(rewrite_lazy(q, lazy_stats))
        assert n_eager >= 1 and n_lazy >= 1
        rows.append(
            [
                k,
                eager_stats.orders_considered,
                n_eager,
                lazy_stats.branches,
                n_lazy,
            ]
        )
    report(
        "E9/Thm5.1: star query rewriting",
        ["k", "eager orders", "eager disjuncts", "lazy branches", "lazy disjuncts"],
        rows,
    )
    # exponential growth of disjuncts in k (the [35] lower bound shape)
    assert rows[-1][4] > 2 * rows[-2][4]
    # the lazy variant considers far fewer candidates than the eager one
    assert rows[-1][3] < rows[-1][1]


def test_rewriting_route_correct_and_fast():
    q = star_query(3)
    rows = []
    for n in sizes((100, 200, 400), (50, 100, 200)):
        t = random_tree(n, seed=1, alphabet=("a", "b"))
        tr = timed(evaluate_via_rewriting, q, t, repeats=1)
        tb = timed(evaluate_backtracking, q, t, repeats=1)
        assert evaluate_via_rewriting(q, t) == evaluate_backtracking(q, t)
        rows.append([n, tr, tb])
    report(
        "E9/Cor5.2: evaluate via rewriting vs backtracking",
        ["n", "rewrite+Yannakakis", "backtracking"],
        rows,
    )


@pytest.mark.benchmark(group="thm51")
def test_bench_lazy_rewrite(benchmark):
    q = star_query(4)
    benchmark(rewrite_lazy, q)


@pytest.mark.benchmark(group="thm51")
def test_bench_eager_rewrite(benchmark):
    q = star_query(4)
    benchmark.pedantic(rewrite_to_acyclic_union, args=(q,), rounds=2, iterations=1)
