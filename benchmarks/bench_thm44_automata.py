"""E16 — Theorem 4.4 / §4 "Tree Data": a fixed MSO-definable query runs
in linear time via its tree automaton (and boolean combinations stay
linear through products).
"""

import pytest

from repro.automata import (
    accepts,
    child_pattern_automaton,
    label_count_mod_automaton,
    label_exists_automaton,
    product_automaton,
    run_automaton,
    selecting_run,
)
from repro.complexity import ScalingPoint, fit_loglog_slope
from repro.trees import random_tree

from _benchutil import report, sizes, timed

AUTOMATON = product_automaton(
    child_pattern_automaton("a", "b"), label_count_mod_automaton("c", 2), "and"
)


def test_linear_run():
    points = []
    for n in sizes((5_000, 10_000, 20_000, 40_000), (2_000, 4_000, 8_000)):
        t = random_tree(n, seed=1)
        points.append(ScalingPoint(n, timed(run_automaton, AUTOMATON, t)))
    slope = fit_loglog_slope(points)
    report(
        "E16/Thm4.4: automaton run (fixed MSO query)",
        ["n", "seconds"],
        [[p.size, p.seconds] for p in points],
    )
    assert slope < 1.4


def test_unary_selection_linear():
    points = []
    automaton = child_pattern_automaton("a", "b")
    for n in sizes((5_000, 10_000, 20_000), (2_000, 4_000, 8_000)):
        t = random_tree(n, seed=2)
        points.append(ScalingPoint(n, timed(selecting_run, automaton, t)))
    slope = fit_loglog_slope(points)
    report(
        "E16/Thm4.4: unary selecting run",
        ["n", "seconds"],
        [[p.size, p.seconds] for p in points],
    )
    assert slope < 1.4


def test_acceptance_is_correct_while_fast():
    t = random_tree(20_000, seed=3)
    expected = any(
        t.has_label(v, "a") and any(t.has_label(c, "b") for c in t.children[v])
        for v in t.nodes()
    ) and (sum(1 for v in t.nodes() if t.has_label(v, "c")) % 2 == 0)
    assert accepts(AUTOMATON, t) == expected


@pytest.mark.benchmark(group="thm44")
def test_bench_automaton_run(benchmark):
    t = random_tree(50_000, seed=4)
    benchmark(run_automaton, AUTOMATON, t)


@pytest.mark.benchmark(group="thm44")
def test_bench_exists_automaton(benchmark):
    t = random_tree(50_000, seed=4)
    benchmark(accepts, label_exists_automaton("a"), t)
