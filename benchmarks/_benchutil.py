"""Shared helpers for the benchmark suite (imported by every bench_*).

Every ``bench_*.py`` regenerates one table/figure-equivalent of the
paper (see the experiment index in DESIGN.md).  Timing claims are about
*shape* — linear vs quadratic vs exponential, who wins where — so the
assertions use generous factors to stay robust on noisy machines, and
each module prints a small report table (visible with ``-s`` or in
bench_output.txt).

Since the telemetry PR the same rows also feed the process-wide
:data:`repro.perf.RECORDER`: :func:`timed` returns a
:class:`~repro.perf.Sample` (a float carrying min/median/IQR/repeats),
and :func:`report` both prints the table and records it — deriving
size-sweep series with fitted growth classes — so the text report and
the ``BENCH_<n>.json`` written by ``repro bench run`` can never
disagree.  Pass *raw* values (ints, floats, Samples) in report rows;
formatting happens here.
"""

from __future__ import annotations

import os
import time

from repro.perf import RECORDER, Sample

collect_ignore: list[str] = []

#: CI smoke mode: REPRO_BENCH_FAST=1 shrinks instance sizes so a bench
#: module finishes in seconds (shape assertions still run).
FAST = os.environ.get("REPRO_BENCH_FAST", "") not in ("", "0")


def sizes(full, fast):
    """The full size ladder, or the reduced one under REPRO_BENCH_FAST."""
    return fast if FAST else full


def timed(fn, *args, repeats: int = 3, warmup: "int | None" = None, **kwargs) -> Sample:
    """Wall-clock :class:`Sample` (median seconds, float-compatible) of
    ``fn(*args)``.

    A warmup pass runs first when repeating (defaults: 1 warmup if
    ``repeats > 1``, else 0 — single-shot timings are reserved for
    expensive baselines where doubling the cost is worse than the
    cold-start noise).
    """
    if warmup is None:
        warmup = 1 if repeats > 1 else 0
    for _ in range(warmup):
        fn(*args, **kwargs)
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn(*args, **kwargs)
        samples.append(time.perf_counter() - start)
    return Sample.from_times(samples)


def _format_cell(cell) -> str:
    if isinstance(cell, float):  # Sample included — seconds-scale values
        return f"{float(cell):.5f}"
    return str(cell)


def report(title: str, headers, rows) -> None:
    """Print one report table and record it into the telemetry sink.

    Rows should carry raw values; any column of Samples (seconds) or
    ints (deterministic counts) under a numeric first column (the sweep
    size) becomes a recorded series, whose fitted slope and growth
    class are printed under the table.
    """
    from repro.complexity import format_table

    rows = [list(r) for r in rows]
    derived = RECORDER.record_table(title, headers, rows)
    print(f"\n=== {title} ===")
    print(format_table(headers, [[_format_cell(c) for c in row] for row in rows]))
    for series in derived:
        slope, growth = series.slope(), series.growth()
        if slope is not None:
            print(f"  ~ {series.name}: slope {slope:.2f} ({growth})")


def record_series(name: str, points, unit: str = "s") -> None:
    """Record an explicit size sweep (``(size, value)`` pairs or
    ScalingPoints) under the current bench module."""
    RECORDER.record_series(name, points, unit=unit)


def record_metrics_snapshot(counters) -> None:
    """Fold an explicit :data:`repro.obs.METRICS` counter snapshot into
    the current module's telemetry (for benches that reset the registry
    themselves)."""
    RECORDER.record_counters(counters)
