"""Shared helpers for the benchmark suite (imported by every bench_*).

Every ``bench_*.py`` regenerates one table/figure-equivalent of the
paper (see the experiment index in DESIGN.md).  Timing claims are about
*shape* — linear vs quadratic vs exponential, who wins where — so the
assertions use generous factors to stay robust on noisy machines, and
each module prints a small report table (visible with ``-s`` or in
bench_output.txt).
"""

from __future__ import annotations

import os
import time

collect_ignore: list[str] = []

#: CI smoke mode: REPRO_BENCH_FAST=1 shrinks instance sizes so a bench
#: module finishes in seconds (shape assertions still run).
FAST = os.environ.get("REPRO_BENCH_FAST", "") not in ("", "0")


def sizes(full, fast):
    """The full size ladder, or the reduced one under REPRO_BENCH_FAST."""
    return fast if FAST else full


def timed(fn, *args, repeats: int = 3, **kwargs) -> float:
    """Median wall-clock seconds of fn(*args)."""
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn(*args, **kwargs)
        samples.append(time.perf_counter() - start)
    samples.sort()
    return samples[len(samples) // 2]


def report(title: str, headers, rows) -> None:
    from repro.complexity import format_table

    print(f"\n=== {title} ===")
    print(format_table(headers, rows))
