"""E12 — Theorem 6.8 (Dichotomy): CQ over an axis signature is in P iff
the signature fits τ1, τ2, or τ3; otherwise NP-complete.

- the classifier verdict for every subset of a representative axis set,
- solver behaviour across the frontier: polynomial arc-consistency on
  the P side vs exponentially-growing backtracking effort on crafted
  instances of the NP-complete side.
"""

import itertools

import pytest

from repro.consistency import classify_signature, evaluate_boolean_xproperty
from repro.cq import evaluate_backtracking
from repro.cq.naive import BacktrackStats
from repro.trees import balanced_tree, random_tree
from repro.trees.axes import Axis
from repro.workloads import hard_instance_mixed_axes, random_cq

from _benchutil import report, sizes, timed

REPRESENTATIVE = [
    Axis.CHILD,
    Axis.CHILD_PLUS,
    Axis.NEXT_SIBLING,
    Axis.NEXT_SIBLING_PLUS,
    Axis.FOLLOWING,
]


def test_classification_table():
    rows = []
    p_count = np_count = 0
    for r in range(1, len(REPRESENTATIVE) + 1):
        for subset in itertools.combinations(REPRESENTATIVE, r):
            verdict, order = classify_signature(subset)
            if verdict == "P":
                p_count += 1
            else:
                np_count += 1
            rows.append(
                ["{" + ", ".join(a.value for a in subset) + "}", verdict, order or "-"]
            )
    report(
        "E12/Thm6.8: dichotomy verdicts for all signature subsets",
        ["signature", "verdict", "X-order"],
        rows,
    )
    # sanity: the frontier is non-trivial in both directions
    assert p_count >= 5 and np_count >= 10


def test_p_side_stays_polynomial():
    rows = []
    for n in sizes((200, 400, 800), (100, 200, 400)):
        t = random_tree(n, seed=1)
        q = random_cq(5, 4, axes=(Axis.CHILD_PLUS.value,), seed=2, head_arity=0)
        ta = timed(evaluate_boolean_xproperty, q, t)
        rows.append([n, ta])
    report("E12: P side (CQ[Child+] via Theorem 6.5)", ["n", "seconds"], rows)
    assert rows[-1][1] < 60 * rows[0][1] + 0.05


def test_np_side_search_effort_grows_exponentially():
    """Backtracking effort on the mixed {Child+, Following} family grows
    much faster than the query size."""
    t = balanced_tree(2, 5, alphabet=("a", "b"), seed=3)
    rows = []
    efforts = []
    for k in (3, 5, 7, 9):
        q = hard_instance_mixed_axes(k)
        assert classify_signature(q.signature())[0] == "NP-complete"
        stats = BacktrackStats()
        evaluate_backtracking(q, t, stats=stats)
        efforts.append(stats.nodes_expanded)
        rows.append([k, stats.nodes_expanded])
    report(
        "E12: NP-complete side, backtracking search-tree size",
        ["k (variables)", "nodes expanded"],
        rows,
    )
    # explosive growth in k on a fixed structure
    assert efforts[-1] > 3 * efforts[-2]
    assert efforts[-1] > 20 * efforts[0]


@pytest.mark.benchmark(group="thm68")
def test_bench_p_side(benchmark):
    t = random_tree(400, seed=4)
    q = random_cq(5, 4, axes=(Axis.CHILD_PLUS.value,), seed=5, head_arity=0)
    benchmark.pedantic(evaluate_boolean_xproperty, args=(q, t), rounds=3, iterations=1)


@pytest.mark.benchmark(group="thm68")
def test_bench_np_side(benchmark):
    t = balanced_tree(2, 5, alphabet=("a", "b"), seed=3)
    q = hard_instance_mixed_axes(6)
    benchmark.pedantic(evaluate_backtracking, args=(q, t), rounds=2, iterations=1)
