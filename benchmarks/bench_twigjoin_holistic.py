"""E14 — holistic twig joins (Section 6, [13]/[48]) vs binary
structural-join plans.

The holistic algorithms never materialize edge-join intermediates; the
binary plan does.  On patterns whose early joins are unselective, the
binary plan's peak intermediate dwarfs both the output and the holistic
state — that size gap is the experiment's headline number.  The AC-based
generalization (Prop. 6.10) is measured alongside (ablation A4).
"""

import pytest

from repro.twigjoin import (
    JoinPlanStats,
    binary_join_plan,
    holistic_via_arc_consistency,
    parse_twig,
    twig_stack,
    twig_stack_optimal,
)
from repro.twigjoin.twigstack import TwigStats
from repro.trees.generate import tree_from_parents
from repro.workloads import xmark_like

from _benchutil import report, sizes, timed

#: A pattern whose (item, description) join is big but whose keyword
#: branch is selective: binary plans pay for the big join first.
PATTERN = parse_twig("//item[.//keyword]//description")


def _skewed_tree(blocks: int, block_size: int):
    """Many a/b chains, few of which carry the selective c leaf —
    maximal intermediate-vs-output skew for //a[c]//b."""
    parents = [-1]
    labels = ["r"]
    for block in range(blocks):
        a = len(parents)
        parents.append(0)
        labels.append("a")
        cursor = a
        for _ in range(block_size):
            b = len(parents)
            parents.append(cursor)
            labels.append("b")
            cursor = b
        if block == 0:  # only the first block matches the twig fully
            c = len(parents)
            parents.append(a)
            labels.append("c")
    return tree_from_parents(parents, labels)


def test_intermediate_size_gap():
    t = _skewed_tree(blocks=30, block_size=30)
    # the unselective //b branch precedes the selective /c branch in the
    # pattern's (fixed) join order: binary plans materialize the big
    # a//b join before c can prune it
    pattern = parse_twig("//a[.//b]/c")
    bj_stats = JoinPlanStats()
    ts_stats = TwigStats()
    out_binary = binary_join_plan(pattern, t, stats=bj_stats)
    out_twig = twig_stack(pattern, t, stats=ts_stats)
    out_ac = holistic_via_arc_consistency(pattern, t)
    assert out_binary == out_twig == out_ac
    rows = [
        ["output size", len(out_twig)],
        ["binary plan max intermediate", bj_stats.max_intermediate],
        ["binary plan total intermediate", bj_stats.total_intermediate],
        ["twig_stack path solutions", ts_stats.path_solutions],
        ["arc-consistency solutions touched", len(out_ac)],
    ]
    report(
        "E14: intermediate results, //a[.//b]/c on skewed data",
        ["metric", "value"],
        rows,
    )
    # the binary plan materializes far more than the output...
    assert bj_stats.max_intermediate > 10 * max(len(out_binary), 1)
    # ...while the AC-based holistic evaluation is output-sensitive
    # (Prop. 6.10: its enumeration work tracks |Q(A)|).
    assert len(out_ac) == len(out_binary)
    # Honest ablation: the stack-based variant without the getNext
    # support filter also over-produces path solutions on /-edges —
    # the known TwigStack suboptimality for child edges.
    assert ts_stats.path_solutions >= len(out_twig)


def test_times_on_xmark():
    t = xmark_like(sizes(250, 120), seed=1)
    rows = []
    t_twig = timed(twig_stack, PATTERN, t)
    t_ac = timed(holistic_via_arc_consistency, PATTERN, t)
    t_binary = timed(binary_join_plan, PATTERN, t)
    assert (
        twig_stack(PATTERN, t)
        == holistic_via_arc_consistency(PATTERN, t)
        == binary_join_plan(PATTERN, t)
    )
    rows.append([t.n, t_twig, t_ac, t_binary])
    report(
        "E14: //item[.//keyword]//description on XMark-like data",
        ["n", "twig_stack", "arc-consistency", "binary joins"],
        rows,
    )


def test_holistic_state_bounded_on_skew():
    """On the skewed workload the binary plan's work is dominated by
    doomed partial matches; holistic wins in wall clock as skew grows."""
    rows = []
    for blocks in sizes((20, 40), (10, 20)):
        t = _skewed_tree(blocks=blocks, block_size=40)
        pattern = parse_twig("//a[c]//b")
        tt = timed(twig_stack, pattern, t, repeats=1)
        tb = timed(binary_join_plan, pattern, t, repeats=1)
        rows.append([blocks, tt, tb])
    report(
        "E14: skew sweep //a[c]//b",
        ["blocks", "twig_stack", "binary joins"],
        rows,
    )


def test_getnext_filter_optimality():
    """The full TwigStack getNext head ([13]) vs the unfiltered stack
    sweep: on //-only twigs with unproductive regions, the filter cuts
    pushes and path solutions to (near) the useful ones."""
    from repro.trees.generate import tree_from_parents

    parents, labels = [-1], ["r"]
    for block in range(200):
        a = len(parents)
        parents.append(0)
        labels.append("a")
        parents.append(a)
        labels.append("b")
        if block % 50 == 0:
            parents.append(a)
            labels.append("c")
    t = tree_from_parents(parents, labels)
    pattern = parse_twig("//a[.//b][.//c]")
    plain, filtered = TwigStats(), TwigStats()
    out_plain = twig_stack(pattern, t, stats=plain)
    out_filtered = twig_stack_optimal(pattern, t, stats=filtered)
    assert out_plain == out_filtered
    rows = [
        ["output size", len(out_plain), len(out_filtered)],
        ["pushes", plain.pushes, filtered.pushes],
        ["path solutions", plain.path_solutions, filtered.path_solutions],
    ]
    report(
        "E14: TwigStack getNext filter (//a[.//b][.//c], 4/200 productive)",
        ["metric", "no filter", "getNext filter"],
        rows,
    )
    assert filtered.pushes < plain.pushes / 5


def test_columnar_pruning_vs_plain_streams():
    """TwigStack over the arc-consistency-pruned columnar streams vs the
    raw label streams, on the skewed corpus where only one block of many
    is productive.

    Pruning relaxes every edge to descendant containment (sound: no real
    match participant is dropped) and runs two interval sweeps over the
    columns; the stack machinery then only ever sees the productive
    block.  The ≥2x band at the largest size is this module's half of
    the PR's acceptance gate."""
    from repro.engine.columns import ColumnStore

    pattern = parse_twig("//a[c]//b")
    rows = []
    for blocks in sizes((20, 40, 80), (10, 20)):
        t = _skewed_tree(blocks=blocks, block_size=40)
        store = ColumnStore(t)
        plain = twig_stack(pattern, t)
        pruned = twig_stack(pattern, t, streams=store.twig_streams(pattern))
        assert set(pruned) == set(plain)
        t_plain = timed(twig_stack, pattern, t)
        t_pruned = timed(
            lambda: twig_stack(pattern, t, streams=store.twig_streams(pattern))
        )
        rows.append(
            [
                blocks,
                len(plain),
                t_plain,
                t_pruned,
                f"{t_plain / max(t_pruned, 1e-9):.1f}x",
            ]
        )
    report(
        "E14: //a[c]//b, plain streams vs columnar-pruned streams",
        ["blocks", "matches", "plain streams", "pruned streams", "plain/pruned"],
        rows,
    )
    # the acceptance gate: ≥2x at the largest size
    assert rows[-1][2] > 2.0 * rows[-1][3], (
        f"pruned streams won only {rows[-1][2] / rows[-1][3]:.2f}x"
    )


@pytest.mark.benchmark(group="twig")
def test_bench_twig_stack_optimal(benchmark):
    t = xmark_like(300, seed=2)
    benchmark.pedantic(twig_stack_optimal, args=(PATTERN, t), rounds=3, iterations=1)


@pytest.mark.benchmark(group="twig")
def test_bench_twig_stack(benchmark):
    t = xmark_like(300, seed=2)
    benchmark.pedantic(twig_stack, args=(PATTERN, t), rounds=3, iterations=1)


@pytest.mark.benchmark(group="twig")
def test_bench_arc_consistency(benchmark):
    t = xmark_like(300, seed=2)
    benchmark.pedantic(
        holistic_via_arc_consistency, args=(PATTERN, t), rounds=3, iterations=1
    )


@pytest.mark.benchmark(group="twig")
def test_bench_binary_plan(benchmark):
    t = xmark_like(300, seed=2)
    benchmark.pedantic(binary_join_plan, args=(PATTERN, t), rounds=3, iterations=1)
