"""E11 — Figure 5 / Theorem 6.5: arc-consistency evaluation on
X-property signatures.

- Proposition 6.6 regenerated as an empirical table (which axis has the
  X-property under which order),
- CQ evaluation over τ1 via arc-consistency: linear-ish data scaling,
  Horn-SAT encoding vs direct worklist (ablation A1),
- the backtracking baseline for contrast.
"""

import pytest

from repro.complexity import ScalingPoint, fit_loglog_slope
from repro.consistency import (
    arc_consistency_hornsat,
    arc_consistency_worklist,
    evaluate_boolean_xproperty,
    x_property_table,
)
from repro.consistency.xproperty import PROP_6_6
from repro.cq import evaluate_backtracking
from repro.trees import random_tree
from repro.trees.axes import Axis
from repro.workloads import random_cq

from _benchutil import report, sizes, timed

TAU1_AXES = (Axis.CHILD_PLUS.value, Axis.CHILD_STAR.value)


def _query(seed: int):
    return random_cq(5, 4, axes=TAU1_AXES, seed=seed, head_arity=0)


def test_regenerate_proposition_6_6():
    witnesses = [random_tree(12, seed=s) for s in range(6)]
    table = x_property_table(witnesses)
    rows = []
    for (axis, order), holds in sorted(
        table.items(), key=lambda kv: (kv[0][1], kv[0][0].value)
    ):
        claim = axis in PROP_6_6[order]
        rows.append([axis.value, order, "X" if holds else "-", "X" if claim else "-"])
        assert holds == claim
    report(
        "E11/Prop6.6: empirical X-property table (X = holds)",
        ["axis", "order", "empirical", "paper"],
        rows,
    )


def test_ablation_hornsat_vs_worklist():
    rows = []
    for n in sizes((100, 200, 400), (50, 100, 200)):
        t = random_tree(n, seed=1)
        q = _query(3)
        th = timed(arc_consistency_hornsat, q, t)
        tw = timed(arc_consistency_worklist, q, t)
        assert arc_consistency_hornsat(q, t) == arc_consistency_worklist(q, t)
        rows.append([n, th, tw, f"{th / max(tw, 1e-9):.1f}x"])
    report(
        "E11/A1: arc-consistency via Horn-SAT vs direct worklist",
        ["n", "hornsat", "worklist", "hornsat/worklist"],
        rows,
    )


def test_scaling_and_vs_backtracking():
    points, rows = [], []
    for n in sizes((100, 200, 400, 800), (100, 200, 400)):
        t = random_tree(n, seed=2)
        q = _query(5)
        ta = timed(evaluate_boolean_xproperty, q, t)
        points.append(ScalingPoint(n, ta))
        tb = timed(
            lambda: bool(evaluate_backtracking(q, t, first_only=True)), repeats=1
        )
        assert evaluate_boolean_xproperty(q, t) == bool(
            evaluate_backtracking(q, t, first_only=True)
        )
        rows.append([n, ta, tb])
    slope = fit_loglog_slope(points)
    report(
        "E11/Thm6.5: Boolean CQ[τ1] via arc-consistency",
        ["n", "AC (Thm 6.5)", "backtracking"],
        rows,
    )
    assert slope < 2.2  # ||A|| itself grows superlinearly with Child+


@pytest.mark.benchmark(group="fig5")
def test_bench_ac_worklist(benchmark):
    t = random_tree(500, seed=4)
    q = _query(7)
    benchmark.pedantic(arc_consistency_worklist, args=(q, t), rounds=3, iterations=1)


@pytest.mark.benchmark(group="fig5")
def test_bench_ac_hornsat(benchmark):
    t = random_tree(500, seed=4)
    q = _query(7)
    benchmark.pedantic(arc_consistency_hornsat, args=(q, t), rounds=3, iterations=1)
