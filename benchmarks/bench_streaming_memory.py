"""E15 — streaming memory (Section 5 / the §7 lower-bound discussion).

Claims regenerated:

- peak memory of the streaming evaluators grows *linearly with depth*
  (the [40] lower bound is Ω(depth); the [60, 70] recognizers meet it),
- at fixed depth, memory is flat no matter how large the document gets,
- throughput is linear in document size.
"""

import pytest

from repro.complexity import ScalingPoint, fit_loglog_slope
from repro.streaming import MemoryMeter, stream_match_twig, stream_select, tree_events
from repro.trees import caterpillar_tree, path_tree
from repro.twigjoin import parse_twig
from repro.xpath import parse_xpath

from _benchutil import report, sizes, timed

QUERY = parse_xpath("Child*[lab() = a]/Child[lab() = b]")
TWIG = parse_twig("//a//b")


def _peak_select(tree) -> int:
    meter = MemoryMeter()
    for _ in stream_select(QUERY, tree_events(tree), meter=meter):
        pass
    return meter.peak_units


def test_memory_linear_in_depth():
    points, rows = [], []
    for depth in sizes((250, 500, 1_000, 2_000), (250, 500, 1_000)):
        t = path_tree(depth)
        peak = _peak_select(t)
        points.append(ScalingPoint(depth, max(peak, 1) * 1e-6))
        rows.append([depth, peak])
    slope = fit_loglog_slope(points)
    report(
        "E15: peak memory vs depth (path documents)",
        ["depth", "peak units"],
        rows,
    )
    assert 0.8 < slope < 1.2


def test_memory_flat_in_size_at_fixed_depth():
    rows, peaks = [], []
    for legs in (10, 100, 1_000):
        t = caterpillar_tree(spine=12, legs=legs)
        peak = _peak_select(t)
        peaks.append(peak)
        rows.append([t.n, peak])
    report(
        "E15: peak memory vs size at fixed depth (caterpillars)",
        ["n", "peak units"],
        rows,
    )
    assert max(peaks) <= 2 * min(peaks)


def test_twig_matching_memory_profile():
    rows = []
    deep = MemoryMeter()
    stream_match_twig(TWIG, tree_events(path_tree(1_500)), meter=deep)
    wide = MemoryMeter()
    stream_match_twig(TWIG, tree_events(caterpillar_tree(10, 150)), meter=wide)
    rows.append(["path depth 1500", deep.peak_units])
    rows.append(["caterpillar depth 11", wide.peak_units])
    report("E15: Boolean twig matching peak memory", ["document", "peak units"], rows)
    assert deep.peak_units > 20 * wide.peak_units


def test_throughput_linear():
    points = []
    for legs in sizes((200, 400, 800, 1_600), (200, 400, 800)):
        t = caterpillar_tree(spine=10, legs=legs)
        points.append(
            ScalingPoint(t.n, timed(lambda: list(stream_select(QUERY, tree_events(t)))))
        )
    slope = fit_loglog_slope(points)
    report(
        "E15: streaming throughput",
        ["n", "seconds"],
        [[p.size, p.seconds] for p in points],
    )
    assert slope < 1.5


def test_concurrency_forces_buffering():
    """[Bar-Yossef et al., PODS'04] / §7: lookahead qualifiers make peak
    memory scale with the number of concurrently alive candidates — on a
    depth-1 document, far beyond the O(depth) of the pure fragment."""
    from repro.streaming import stream_select_lookahead
    from repro.trees.generate import tree_from_parents

    expr = parse_xpath("Child[lab() = a][NextSibling+[lab() = b]]")
    rows = []
    peaks = []
    for n in sizes((500, 1_000, 2_000), (250, 500, 1_000)):
        wide = tree_from_parents(
            [-1] + [0] * (n - 1), ["r"] + ["a"] * (n - 2) + ["b"]
        )
        meter = MemoryMeter()
        matched = sum(
            1 for _ in stream_select_lookahead(expr, tree_events(wide), meter=meter)
        )
        peaks.append(meter.peak_units)
        rows.append([n, wide.height(), matched, meter.peak_units])
    report(
        "E15: lookahead buffering — candidates, not depth, drive memory",
        ["n", "depth", "matches", "peak units"],
        rows,
    )
    assert peaks[-1] > 3 * peaks[0]  # grows with concurrency at fixed depth


def test_counting_vs_enumeration_cost():
    """Companion to E13: counting solutions (one AC + one bottom-up pass)
    vs materializing them all (Prop. 6.10 enumeration)."""
    from repro.consistency import count_solutions, solutions_with_pointers
    from repro.cq import parse_cq
    from repro.trees import path_tree

    query = parse_cq("ans(x) :- Child+(x, y), Child+(y, z)")
    rows = []
    for n in (40, 80, 160):
        t = path_tree(n)
        tc = timed(count_solutions, query, t)
        te = timed(solutions_with_pointers, query, t, repeats=1)
        count = count_solutions(query, t)
        assert count == len(solutions_with_pointers(query, t, project_to_head=False))
        rows.append([n, count, tc, te])
    report(
        "E13+: count vs enumerate (x < y < z chains on a path)",
        ["n", "|solutions|", "count", "enumerate"],
        rows,
    )
    # counting must not pay for the (cubically growing) output
    assert rows[-1][2] < rows[-1][3]


@pytest.mark.benchmark(group="streaming")
def test_bench_stream_select(benchmark):
    t = caterpillar_tree(spine=20, legs=500)
    benchmark(lambda: list(stream_select(QUERY, tree_events(t))))


@pytest.mark.benchmark(group="streaming")
def test_bench_stream_match_twig(benchmark):
    t = caterpillar_tree(spine=20, legs=500)
    benchmark(lambda: stream_match_twig(TWIG, tree_events(t)))
