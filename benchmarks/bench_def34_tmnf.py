"""E5 — Definition 3.4: TMNF normalization is linear-size and
semantics-preserving; TMNF evaluation is linear.
"""

import pytest

from repro.datalog import evaluate, is_tmnf, parse_program, to_tmnf
from repro.trees import random_tree
from repro.trees.axes import Axis

from _benchutil import report, sizes, timed


def _axis_program(axes: list[str]) -> str:
    rules = [f"Q{i}(x) :- {axis}(y, x), Lab:a(y)." for i, axis in enumerate(axes)]
    return "\n".join(rules) + "% query: Q0"


def test_translation_size_is_linear():
    axes = [
        Axis.CHILD.value,
        Axis.CHILD_PLUS.value,
        Axis.FOLLOWING.value,
        Axis.NEXT_SIBLING_PLUS.value,
    ]
    rows = []
    for k in (1, 2, 4, 8):
        prog = parse_program(_axis_program((axes * k)[: 4 * k]))
        out = to_tmnf(prog)
        assert is_tmnf(out)
        rows.append([prog.size(), out.size(), f"{out.size() / prog.size():.1f}x"])
    report(
        "E5/Def3.4: TMNF translation size",
        ["|P| in", "|P| out", "blowup"],
        rows,
    )
    # output is O(|P|): the blowup factor shrinks as the program grows
    # (shared marking predicates are memoized across rules)
    assert float(rows[-1][2][:-1]) <= float(rows[0][2][:-1])
    # and per-rule cost is bounded: doubling |P| at most roughly doubles out
    assert rows[-1][1] <= 2 * rows[-2][1]


def test_translation_preserves_semantics():
    prog = parse_program(_axis_program([Axis.FOLLOWING.value, Axis.CHILD_PLUS.value]))
    out = to_tmnf(prog)
    for seed in range(3):
        t = random_tree(150, seed=seed)
        assert evaluate(prog, t) == evaluate(out, t, normalize=False)


def test_tmnf_evaluation_linear():
    from repro.complexity import ScalingPoint, fit_loglog_slope

    prog = to_tmnf(parse_program(_axis_program([Axis.FOLLOWING.value])))
    points = []
    for n in sizes((1_000, 2_000, 4_000, 8_000), (500, 1_000, 2_000)):
        t = random_tree(n, seed=5)
        points.append(ScalingPoint(n, timed(evaluate, prog, t, normalize=False)))
    slope = fit_loglog_slope(points)
    report(
        "E5/Def3.4: TMNF evaluation scaling",
        ["n", "seconds"],
        [[p.size, p.seconds] for p in points],
    )
    assert slope < 1.5


@pytest.mark.benchmark(group="def34")
def test_bench_to_tmnf(benchmark):
    prog = parse_program(
        _axis_program(
            [Axis.FOLLOWING.value, Axis.CHILD_PLUS.value, Axis.PRECEDING.value] * 5
        )
    )
    benchmark(to_tmnf, prog)
