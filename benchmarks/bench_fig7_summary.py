"""E17 — Figure 7: the complexity-and-expressiveness summary, regenerated
empirically.

One row per query language implemented in this library: a shared data
sweep, the fitted log-log slope, the growth class, and the complexity
the paper states.  Then the expressiveness arrows of Figure 7 are
executed as translations and checked for semantic preservation.
"""

import pytest

from repro.automata import label_count_mod_automaton, run_automaton
from repro.complexity import ScalingPoint, classify_growth, fit_loglog_slope
from repro.consistency import evaluate_boolean_xproperty
from repro.cq import parse_cq, yannakakis_unary
from repro.datalog import evaluate as datalog_evaluate, parse_program
from repro.logic import cq_to_fo, fo_eval
from repro.trees import random_tree
from repro.workloads import random_cq
from repro.trees.axes import Axis
from repro.xpath import (
    evaluate_query,
    evaluate_query_linear,
    parse_xpath,
    xpath_to_cq,
    xpath_to_datalog,
)
from repro.xpath.translate import evaluate_datalog_translation

from _benchutil import record_series, report, sizes as _sizes, timed

XPATH_QUERY = parse_xpath("Child*[lab() = a][not(Child[lab() = b])]/Child+[lab() = c]")
POSITIVE_XPATH = parse_xpath("Child*[lab() = a]/Child+[lab() = c]")
ACYCLIC_CQ = parse_cq("ans(z) :- Child+(x, y), Child(y, z), Lab:a(x), Lab:c(z)")
XPROP_CQ = random_cq(4, 3, axes=(Axis.CHILD_PLUS.value,), seed=1, head_arity=0)
DATALOG = parse_program(
    """
    M(x) :- Lab:a(x).
    M(x) :- Child(y, x), M(y).
    % query: M
    """
)
AUTOMATON = label_count_mod_automaton("a", 3)


def test_summary_table():
    languages = [
        ("Core XPath (linear eval)", lambda t: evaluate_query_linear(XPATH_QUERY, t),
         "PTIME-complete (combined)",
         _sizes((1_000, 2_000, 4_000), (500, 1_000, 2_000))),
        ("pos. Core XPath", lambda t: evaluate_query_linear(POSITIVE_XPATH, t),
         "LOGCFL-complete", _sizes((1_000, 2_000, 4_000), (500, 1_000, 2_000))),
        ("acyclic CQ (Yannakakis)", lambda t: yannakakis_unary(ACYCLIC_CQ, t),
         "O(||A||·|Q|)", _sizes((500, 1_000, 2_000), (250, 500, 1_000))),
        ("CQ[X] (arc-consistency)", lambda t: evaluate_boolean_xproperty(XPROP_CQ, t),
         "P via Thm 6.5", _sizes((500, 1_000, 2_000), (250, 500, 1_000))),
        ("monadic datalog", lambda t: datalog_evaluate(DATALOG, t),
         "O(|P|·|Dom|)", _sizes((1_000, 2_000, 4_000), (500, 1_000, 2_000))),
        ("MSO (tree automaton)", lambda t: run_automaton(AUTOMATON, t),
         "linear data complexity",
         _sizes((5_000, 10_000, 20_000), (2_000, 4_000, 8_000))),
    ]
    rows = []
    for name, fn, paper_bound, sweep in languages:
        points = []
        for n in sweep:
            t = random_tree(n, seed=7)
            points.append(ScalingPoint(n, timed(fn, t)))
        slope = fit_loglog_slope(points)
        record_series(f"summary/{name}", points)
        rows.append(
            [name, f"{slope:.2f}", classify_growth(points), paper_bound]
        )
    report(
        "E17/Fig7: empirical data-complexity summary",
        ["language", "slope", "measured class", "paper (combined) bound"],
        rows,
    )
    # every implemented language has polynomial (here: at most quadratic)
    # data complexity — the Figure 7 languages are all inside P for data
    for row in rows:
        assert float(row[1]) < 2.5, row


def test_expressiveness_arrows():
    """Figure 7's arrows, executed: conjunctive Core XPath → CQ,
    Core XPath → monadic datalog, CQ → positive FO."""
    t = random_tree(60, seed=8)
    # conjunctive Core XPath -> CQ
    cq = xpath_to_cq(POSITIVE_XPATH)
    assert yannakakis_unary(cq, t) == evaluate_query(POSITIVE_XPATH, t)
    # Core XPath (with negation) -> stratified monadic datalog
    prog = xpath_to_datalog(XPATH_QUERY)
    assert evaluate_datalog_translation(prog, t) == evaluate_query(XPATH_QUERY, t)
    # CQ -> positive FO
    formula = cq_to_fo(ACYCLIC_CQ.with_head(()))
    from repro.cq import evaluate_backtracking

    assert fo_eval(formula, t) == bool(evaluate_backtracking(ACYCLIC_CQ, t))


@pytest.mark.benchmark(group="fig7")
def test_bench_core_xpath_linear(benchmark):
    t = random_tree(10_000, seed=9)
    benchmark(evaluate_query_linear, XPATH_QUERY, t)


@pytest.mark.benchmark(group="fig7")
def test_bench_core_xpath_memoized_denotational(benchmark):
    """Ablation A3: the memoized denotational evaluator (the [33]
    dynamic-programming algorithm) on the same query and data."""
    t = random_tree(2_000, seed=9)
    benchmark.pedantic(evaluate_query, args=(XPATH_QUERY, t), rounds=3, iterations=1)
