"""E7 — Proposition 4.2: unary conjunctive Core XPath via Yannakakis in
O(||A|| · |Q|): linear in the data and linear in the query, with the
exponential backtracking baseline for contrast.
"""

import pytest

from repro.complexity import ScalingPoint, fit_loglog_slope
from repro.cq import evaluate_backtracking, yannakakis_unary
from repro.trees import random_tree
from repro.workloads import xmark_like
from repro.xpath import parse_xpath, xpath_to_cq

from _benchutil import report, sizes, timed

TWIG = parse_xpath(
    "Child*[lab() = item][Child[lab() = payment]]/Child[lab() = description]"
)
TWIG_CQ = xpath_to_cq(TWIG)


def _chain_cq(k: int):
    from repro.cq import parse_cq

    atoms = ", ".join(f"Child+(v{i}, v{i+1})" for i in range(k))
    return parse_cq(f"ans(v{k}) :- {atoms}, Lab:a(v0)")


def test_linear_in_data():
    points = []
    for items in sizes((50, 100, 200, 400), (25, 50, 100)):
        t = xmark_like(items, seed=1)
        points.append(ScalingPoint(t.n, timed(yannakakis_unary, TWIG_CQ, t)))
    slope = fit_loglog_slope(points)
    report(
        "E7/Prop4.2: Yannakakis, fixed twig query on XMark-like data",
        ["||A||", "seconds"],
        [[p.size, p.seconds] for p in points],
    )
    assert slope < 1.7


def test_polynomial_in_query():
    t = random_tree(sizes(250, 120), seed=2)
    points = []
    for k in (2, 4, 8):
        q = _chain_cq(k)
        points.append(ScalingPoint(k, timed(yannakakis_unary, q, t)))
    report(
        "E7/Prop4.2: Yannakakis, growing chain query",
        ["|Q| chain length", "seconds"],
        [[p.size, p.seconds] for p in points],
    )
    # growing the query 4x should not grow time by more than ~8x
    assert points[-1].seconds < 10 * points[0].seconds + 0.05


def test_beats_backtracking():
    rows = []
    n = sizes(300, 150)
    t = random_tree(n, seed=3, alphabet=("a", "b"))
    q = _chain_cq(4)
    ty = timed(yannakakis_unary, q, t, repeats=1)
    tb = timed(evaluate_backtracking, q, t, repeats=1)
    rows.append([n, ty, tb, f"{tb / max(ty, 1e-9):.1f}x"])
    report(
        "E7/Prop4.2: Yannakakis vs backtracking (Child+ chain)",
        ["n", "yannakakis", "backtracking", "speedup"],
        rows,
    )
    assert {r[0] for r in evaluate_backtracking(q, t)} == yannakakis_unary(q, t)


@pytest.mark.benchmark(group="prop42")
def test_bench_yannakakis_twig(benchmark):
    t = xmark_like(300, seed=4)
    benchmark(yannakakis_unary, TWIG_CQ, t)
