"""E2 — Figure 2 / Example 2.1: structural joins on the XASR.

The paper's claim: on the (pre, post) representation, a descendant join
is a *single* theta-join ("structural join"), which is "clearly better
than computing the transitive closure of the Child relation ... or
storing a quadratically-sized Child+ relation".  We measure:

- stack-based structural join (output-linear),
- the naive nested-loop theta-join (the literal SQL view),
- materializing Child+ by iterated joins (the baseline the paper calls
  out).

Expected shape: the stack join wins by a growing factor; both baselines
blow up super-linearly.
"""

import pytest

from repro.storage import (
    XASR,
    nested_loop_join,
    stack_structural_join,
    transitive_closure_pairs,
)
from repro.trees import random_tree

from _benchutil import FAST, report, sizes, timed


def _labels(tree, label):
    return [(v, tree.post[v]) for v in tree.nodes_with_label(label)]


def test_who_wins_and_by_how_much():
    rows = []
    for n in sizes((500, 1_000, 2_000, 4_000), (250, 500, 1_000)):
        t = random_tree(n, seed=1)
        ancestors = _labels(t, "a")
        descendants = _labels(t, "b")
        t_stack = timed(stack_structural_join, ancestors, descendants)
        t_nested = timed(nested_loop_join, ancestors, descendants)
        t_closure = timed(transitive_closure_pairs, t)
        rows.append(
            [
                n,
                t_stack,
                t_nested,
                t_closure,
                f"{t_nested / max(t_stack, 1e-9):.1f}x",
            ]
        )
    report(
        "E2/Fig2: descendant join (label a // label b)",
        ["n", "stack join", "nested loop", "materialize Child+", "nested/stack"],
        rows,
    )
    # at the largest size the structural join must beat both baselines
    assert rows[-1][1] < rows[-1][2]
    assert rows[-1][1] < rows[-1][3]


def test_representation_size_vs_closure_size():
    """XASR rows are Θ(n); the materialized Child+ is Θ(n · depth)."""
    rows = []
    for n in sizes((1_000, 2_000, 4_000), (500, 1_000, 2_000)):
        t = random_tree(n, seed=2)
        xasr_rows = XASR.from_tree(t).size()
        closure_rows = len(transitive_closure_pairs(t))
        rows.append([n, xasr_rows, closure_rows, f"{closure_rows / xasr_rows:.1f}x"])
    report(
        "E2/Fig2: representation sizes",
        ["n", "XASR rows", "Child+ rows", "ratio"],
        rows,
    )
    assert rows[-1][2] > rows[-1][1]


def test_example_2_1_views_agree():
    t = random_tree(300, seed=3)
    x = XASR.from_tree(t)
    view = {(a - 1, d - 1) for a, d in x.descendant_pairs().rows}
    assert view == transitive_closure_pairs(t)


def test_columnar_semijoin_vs_object_join():
    """The columnar interval semi-join vs the pair-producing stack join,
    both answering the same question (descendant *targets* of a//b).

    The object path materializes every (ancestor, descendant) pair and
    projects; the column path collapses the frontier to maximal
    intervals and slices the posting array — O(|A|+|D|+|out|) with no
    pair list.  The ≥2x band at the largest size is the PR's headline
    gate (CI runs this module under ``repro bench run``)."""
    from repro.engine.columns import ColumnStore

    rows = []
    for n in sizes((2_000, 4_000, 8_000), (500, 1_000, 2_000)):
        t = random_tree(n, seed=1)
        store = ColumnStore(t)
        ancestors = _labels(t, "a")
        descendants = _labels(t, "b")

        def object_targets():
            return {d[0] for _a, d in stack_structural_join(ancestors, descendants)}

        def column_targets():
            return store.descendant_semijoin(store.posting("a"), store.posting("b"))

        assert object_targets() == set(column_targets())
        t_object = timed(object_targets)
        t_column = timed(column_targets)
        rows.append(
            [n, t_object, t_column, f"{t_object / max(t_column, 1e-9):.1f}x"]
        )
    report(
        "E2/Fig2: descendant targets, object join vs columnar semi-join",
        ["n", "object join", "columnar semi-join", "object/column"],
        rows,
    )
    # the acceptance gate: ≥2x at the largest size
    assert rows[-1][1] > 2.0 * rows[-1][2], (
        f"columnar semi-join won only {rows[-1][1] / rows[-1][2]:.2f}x"
    )


def test_engine_both_backends_structural_join():
    """End-to-end through the engine: the same spine query, explicitly
    routed through the structural-join strategy, on both backends."""
    from repro.engine import Database

    query = "Child+[lab() = a]/Child+[lab() = b]"
    rows = []
    for n in sizes((2_000, 4_000, 8_000), (500, 1_000, 2_000)):
        t = random_tree(n, seed=1)
        db_objects = Database(t)
        db_columns = Database(t, columns="on")
        assert set(db_objects.xpath(query, "structural-join").answer) == set(
            db_columns.xpath(query, "structural-join").answer
        )
        t_objects = timed(
            lambda: db_objects.xpath(query, "structural-join").answer
        )
        t_columns = timed(
            lambda: db_columns.xpath(query, "structural-join").answer
        )
        rows.append(
            [n, t_objects, t_columns, f"{t_objects / max(t_columns, 1e-9):.1f}x"]
        )
    report(
        "E2/Fig2: engine a//b spine, object vs columnar backend",
        ["n", "objects", "columns", "objects/columns"],
        rows,
    )
    # weaker band than the kernel-level gate: engine overhead (parse
    # cache, planning, stats) is shared by both backends
    assert rows[-1][2] < rows[-1][1]


@pytest.mark.benchmark(group="fig2")
def test_bench_stack_join(benchmark):
    t = random_tree(800 if FAST else 8_000, seed=4)
    everything = [(v, t.post[v]) for v in t.nodes()]
    benchmark(stack_structural_join, everything, _labels(t, "b"))


@pytest.mark.benchmark(group="fig2")
def test_bench_transitive_closure(benchmark):
    t = random_tree(800 if FAST else 8_000, seed=4)
    benchmark(transitive_closure_pairs, t)
