"""E2 — Figure 2 / Example 2.1: structural joins on the XASR.

The paper's claim: on the (pre, post) representation, a descendant join
is a *single* theta-join ("structural join"), which is "clearly better
than computing the transitive closure of the Child relation ... or
storing a quadratically-sized Child+ relation".  We measure:

- stack-based structural join (output-linear),
- the naive nested-loop theta-join (the literal SQL view),
- materializing Child+ by iterated joins (the baseline the paper calls
  out).

Expected shape: the stack join wins by a growing factor; both baselines
blow up super-linearly.
"""

import pytest

from repro.storage import (
    XASR,
    nested_loop_join,
    stack_structural_join,
    transitive_closure_pairs,
)
from repro.trees import random_tree

from _benchutil import FAST, report, sizes, timed


def _labels(tree, label):
    return [(v, tree.post[v]) for v in tree.nodes_with_label(label)]


def test_who_wins_and_by_how_much():
    rows = []
    for n in sizes((500, 1_000, 2_000, 4_000), (250, 500, 1_000)):
        t = random_tree(n, seed=1)
        ancestors = _labels(t, "a")
        descendants = _labels(t, "b")
        t_stack = timed(stack_structural_join, ancestors, descendants)
        t_nested = timed(nested_loop_join, ancestors, descendants)
        t_closure = timed(transitive_closure_pairs, t)
        rows.append(
            [
                n,
                t_stack,
                t_nested,
                t_closure,
                f"{t_nested / max(t_stack, 1e-9):.1f}x",
            ]
        )
    report(
        "E2/Fig2: descendant join (label a // label b)",
        ["n", "stack join", "nested loop", "materialize Child+", "nested/stack"],
        rows,
    )
    # at the largest size the structural join must beat both baselines
    assert rows[-1][1] < rows[-1][2]
    assert rows[-1][1] < rows[-1][3]


def test_representation_size_vs_closure_size():
    """XASR rows are Θ(n); the materialized Child+ is Θ(n · depth)."""
    rows = []
    for n in sizes((1_000, 2_000, 4_000), (500, 1_000, 2_000)):
        t = random_tree(n, seed=2)
        xasr_rows = XASR.from_tree(t).size()
        closure_rows = len(transitive_closure_pairs(t))
        rows.append([n, xasr_rows, closure_rows, f"{closure_rows / xasr_rows:.1f}x"])
    report(
        "E2/Fig2: representation sizes",
        ["n", "XASR rows", "Child+ rows", "ratio"],
        rows,
    )
    assert rows[-1][2] > rows[-1][1]


def test_example_2_1_views_agree():
    t = random_tree(300, seed=3)
    x = XASR.from_tree(t)
    view = {(a - 1, d - 1) for a, d in x.descendant_pairs().rows}
    assert view == transitive_closure_pairs(t)


@pytest.mark.benchmark(group="fig2")
def test_bench_stack_join(benchmark):
    t = random_tree(800 if FAST else 8_000, seed=4)
    everything = [(v, t.post[v]) for v in t.nodes()]
    benchmark(stack_structural_join, everything, _labels(t, "b"))


@pytest.mark.benchmark(group="fig2")
def test_bench_transitive_closure(benchmark):
    t = random_tree(800 if FAST else 8_000, seed=4)
    benchmark(transitive_closure_pairs, t)
