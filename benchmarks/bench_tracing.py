"""E-TRC — the request-tracing pipeline's disabled-path overhead.

The tracing contract (docs/OBSERVABILITY.md): a request the sampler
does **not** retain pays almost nothing.  Three gates make that true,
and each is pinned here as its own recorded series so a regression
shows up in ``repro bench compare``:

- **the ambient gate** — every ``Database._execute`` call reads the
  observation ContextVar and checks ``.tracer``; with no context (the
  library-user path) that is one C-level lookup plus a None test,
- **head sampling** — ``head_decision(trace_id, rate)`` is a slice of
  8 hex digits and one integer compare, deterministic per id,
- **the unsampled record** — ``TraceSampler.record`` with head rate 0
  and no tail/error policy returns False without allocating a tracer.

The macro check re-runs the warm engine workload inside an *unsampled*
ambient Observation: the gate routes through the supervised path, but
with no tracer attached the answers and the timing must match the
bare run within noise.
"""

import time

from repro.engine import Database
from repro.obs import Observation, current, head_decision, new_trace_id, observed
from repro.obs.sampling import TraceSampler
from repro.perf import Sample
from repro.workloads import xmark_like

from _benchutil import record_series, report, sizes, timed

XPATH_WORKLOAD = [
    "Child*[lab() = item]/Child[lab() = keyword]",
    "Child*[lab() = person][Child[lab() = profile]]",
    "Child*[lab() = regions]/Child+[lab() = item]",
]


def _run_workload(db: Database):
    return [frozenset(db.xpath(q).answer) for q in XPATH_WORKLOAD]


def test_ambient_gate_cost_disabled():
    """``current()`` + the tracer check, microbenchmarked against an
    empty loop — the whole per-call cost tracing adds to an engine
    call made outside any request."""
    assert current() is None  # nothing active: the library-user path

    calls = sizes(200_000, 40_000)

    def gate_loop():
        for _ in range(calls):
            ctx = current()
            if ctx is not None and ctx.tracer is not None:
                raise AssertionError("no context should be active")

    def empty_loop():
        for _ in range(calls):
            pass

    t_gate = timed(gate_loop, repeats=3)
    t_empty = timed(empty_loop, repeats=3)
    per_call = max(float(t_gate) - float(t_empty), 0.0) / calls
    record_series("trace gate disabled per-call overhead", [(calls, per_call)])
    report(
        "E-TRC: ambient observation gate, no context active",
        ["calls", "gate loop", "empty loop", "per-call (s)"],
        [[calls, t_gate, t_empty, f"{per_call:.2e}"]],
    )
    # a ContextVar read + None check in CPython is tens of nanoseconds
    assert per_call < 5e-6


def test_head_decision_cost():
    """One sampling decision per request: 8 hex digits to an int and a
    compare.  Also pins determinism — the decision is a pure function
    of (id, rate), so replaying an id replays its fate."""
    tid = new_trace_id()
    assert head_decision(tid, 0.5) == head_decision(tid, 0.5)

    calls = sizes(200_000, 40_000)

    def decide_loop():
        for _ in range(calls):
            head_decision(tid, 0.1)

    def empty_loop():
        for _ in range(calls):
            pass

    t_decide = timed(decide_loop, repeats=3)
    t_empty = timed(empty_loop, repeats=3)
    per_call = max(float(t_decide) - float(t_empty), 0.0) / calls
    record_series("head sampling decision per-call cost", [(calls, per_call)])
    report(
        "E-TRC: head_decision(trace_id, 0.1)",
        ["calls", "decide loop", "empty loop", "per-call (s)"],
        [[calls, t_decide, t_empty, f"{per_call:.2e}"]],
    )
    assert per_call < 5e-6


def test_unsampled_record_cost():
    """``TraceSampler.record`` on a sampled-out configuration: the
    per-request cost of running the service with tracing *off* (head
    rate 0, no tail threshold, errors not kept)."""
    sampler = TraceSampler(head_rate=0.0, slow_ms=None, keep_errors=False)
    assert not sampler.enabled
    tid = new_trace_id()
    assert sampler.record(tid) is False

    calls = sizes(200_000, 40_000)

    def record_loop():
        for _ in range(calls):
            sampler.record(tid)

    def empty_loop():
        for _ in range(calls):
            pass

    t_record = timed(record_loop, repeats=3)
    t_empty = timed(empty_loop, repeats=3)
    per_call = max(float(t_record) - float(t_empty), 0.0) / calls
    record_series("unsampled TraceSampler.record per-call cost", [(calls, per_call)])
    report(
        "E-TRC: TraceSampler.record, sampling disabled",
        ["calls", "record loop", "empty loop", "per-call (s)"],
        [[calls, t_record, t_empty, f"{per_call:.2e}"]],
    )
    assert per_call < 5e-6


def test_unsampled_ambient_workload_within_noise():
    """The macro contract: a warm workload run under an unsampled
    ambient Observation (trace id issued, no tracer — exactly what the
    service middleware activates when the sampler declines) must match
    the bare run's answers and stay within noise of its time."""
    rows = []
    for n in sizes((100, 200, 400), (60, 120)):
        tree = xmark_like(n, seed=11)

        db_bare = Database(tree)
        _run_workload(db_bare)  # build the index outside the timer
        start = time.perf_counter()
        bare_answers = []
        for _ in range(3):
            bare_answers = _run_workload(db_bare)
        t_bare = time.perf_counter() - start

        db_traced = Database(tree)
        _run_workload(db_traced)
        obs = Observation(tracer=None, trace_id=new_trace_id())
        start = time.perf_counter()
        traced_answers = []
        with observed(obs):
            for _ in range(3):
                traced_answers = _run_workload(db_traced)
        t_traced = time.perf_counter() - start

        assert traced_answers == bare_answers
        # the ambient id is stamped on every stats record even unsampled
        assert all(
            s.trace_id == obs.trace_id for s in db_traced.history[len(XPATH_WORKLOAD):]
        )
        rows.append(
            [
                tree.n,
                Sample.from_value(t_bare),
                Sample.from_value(t_traced),
                f"{t_traced / max(t_bare, 1e-9):.2f}x",
            ]
        )
    report(
        "E-TRC: 3× warm workload, bare vs unsampled ambient observation",
        ["nodes", "bare", "unsampled ambient", "ratio"],
        rows,
    )
    # within noise: generous 1.5× ceiling for shared-CI jitter
    assert rows[-1][2] <= rows[-1][1] * 1.5
