"""E6 — Theorem 4.1 / Figure 4: bounded tree-width CQ evaluation in
O((|A|^{k+1} + ||A||) · |Q|).

Queries of tree-width 1 (paths) and 2 (cycles) over growing trees: the
fitted exponent should track k+1 (up to join pruning), and the bounded-
tree-width evaluator should dominate plain backtracking on the cyclic
query.  Also re-certifies the Figure 4 claim that (Child, NextSibling)-
trees have tree-width 2.
"""

import pytest

from repro.complexity import ScalingPoint, fit_loglog_slope
from repro.cq import (
    evaluate_backtracking,
    evaluate_bounded_treewidth,
    parse_cq,
    query_treewidth,
)
from repro.cq.treewidth import graph_treewidth, tree_structure_graph
from repro.trees import random_tree

from _benchutil import record_series, report, sizes, timed

PATH_QUERY = parse_cq("ans(x) :- Child(x, y), Child(y, z), Lab:a(z)")
CYCLE_QUERY = parse_cq(
    "ans() :- Child+(x, y), Child+(y, z), Child+(x, z), Lab:a(z)"
)


def test_figure_4_treewidth_two():
    rows = []
    for seed in range(5):
        t = random_tree(13, seed=seed)
        width = graph_treewidth(tree_structure_graph(t))
        rows.append([seed, t.n, width])
        assert width <= 2
    report("E6/Fig4: tree-width of (Child,NextSibling)-trees", ["seed", "n", "tw"], rows)


def test_query_widths():
    assert query_treewidth(PATH_QUERY) == 1
    assert query_treewidth(CYCLE_QUERY) == 2


def test_scaling_by_width():
    rows = []
    slopes = {}
    for name, query, sweep in (
        ("tw=1 path", PATH_QUERY, sizes((100, 200, 400), (50, 100, 200))),
        ("tw=2 cycle", CYCLE_QUERY, sizes((50, 100, 200), (25, 50, 100))),
    ):
        points = []
        for n in sweep:
            t = random_tree(n, seed=1)
            points.append(
                ScalingPoint(n, timed(evaluate_bounded_treewidth, query, t))
            )
            rows.append([name, n, points[-1].seconds])
        slopes[name] = fit_loglog_slope(points)
        record_series(f"treewidth/{name}", points)
    report("E6/Thm4.1: evaluation by query tree-width", ["query", "n", "sec"], rows)
    # the O(|A|^{k+1}) upper bound: exponent <= k+1 (plus fit noise);
    # constraint pruning often lands the cyclic query well below n^3
    assert slopes["tw=1 path"] < 2.5
    assert slopes["tw=2 cycle"] < 3.5


def test_bounded_tw_beats_backtracking_on_cyclic_query():
    rows = []
    for n in sizes((60, 120), (30, 60)):
        t = random_tree(n, seed=2, alphabet=("a", "b"))
        tb = timed(evaluate_backtracking, CYCLE_QUERY, t, repeats=1)
        tw = timed(evaluate_bounded_treewidth, CYCLE_QUERY, t, repeats=1)
        assert evaluate_backtracking(CYCLE_QUERY, t) == evaluate_bounded_treewidth(
            CYCLE_QUERY, t
        )
        rows.append([n, tw, tb])
    report(
        "E6/Thm4.1: tw-evaluator vs backtracking (cyclic query)",
        ["n", "bounded-tw", "backtracking"],
        rows,
    )


@pytest.mark.benchmark(group="thm41")
def test_bench_bounded_tw_path(benchmark):
    t = random_tree(250, seed=3)
    benchmark.pedantic(
        evaluate_bounded_treewidth, args=(PATH_QUERY, t), rounds=3, iterations=1
    )


@pytest.mark.benchmark(group="thm41")
def test_bench_bounded_tw_cycle(benchmark):
    t = random_tree(120, seed=3)
    benchmark.pedantic(
        evaluate_bounded_treewidth, args=(CYCLE_QUERY, t), rounds=3, iterations=1
    )
