"""E1 — Figure 1: tree representations and axis interdefinability.

Regenerates the content of Figure 1 (the (FirstChild, NextSibling)
binary representation) as an executable claim: index construction is
linear, the representation round-trips, and the §2 equations relating
<pre, <post, Child+ and Following hold on every pair of a sample.
"""

import pytest

from repro.complexity import classify_growth, fit_loglog_slope
from repro.trees import Tree, TreeStructure, random_tree
from repro.trees.orders import (
    descendant_from_orders,
    following_from_orders,
    post_lt_from_axes,
    pre_lt_from_axes,
)

from _benchutil import report, sizes, timed


def _rebuild(tree: Tree) -> Tree:
    return Tree(tree.label, tree.labels, tree.parent, tree.children)


def test_index_construction_scaling():
    from repro.complexity import ScalingPoint

    points = []
    for n in sizes((2_000, 4_000, 8_000, 16_000, 32_000), (1_000, 2_000, 4_000)):
        t = random_tree(n, seed=1)
        points.append(ScalingPoint(n, timed(_rebuild, t)))
    slope = fit_loglog_slope(points)
    report(
        "E1/Fig1: index construction",
        ["n", "seconds"],
        [[p.size, p.seconds] for p in points],
    )
    print(f"fitted slope {slope:.2f} ({classify_growth(points)})")
    assert slope < 1.6  # linear-ish


def test_binary_representation_is_complete():
    """FirstChild + NextSibling determine the whole tree (Figure 1b)."""
    t = random_tree(3_000, seed=2)
    s = TreeStructure(t)
    # reconstruct parent/children purely from the two binary relations
    first_child = dict(s.pairs("FirstChild"))
    next_sibling = dict(s.pairs("NextSibling"))
    parent = [-1] * t.n
    for p, fc in first_child.items():
        c = fc
        while True:
            parent[c] = p
            if c not in next_sibling:
                break
            c = next_sibling[c]
    assert parent == t.parent


def test_order_axis_interdefinability_sampled():
    t = random_tree(400, seed=3)
    for u in range(0, t.n, 7):
        for v in range(0, t.n, 11):
            if u == v:
                continue
            assert pre_lt_from_axes(t, u, v) == (u < v)
            assert post_lt_from_axes(t, u, v) == (t.post[u] < t.post[v])
            assert descendant_from_orders(t, u, v) == t.is_descendant(u, v)
            assert following_from_orders(t, u, v) == t.is_following(u, v)


@pytest.mark.benchmark(group="fig1")
def test_bench_build_tree(benchmark):
    t = random_tree(20_000, seed=4)
    benchmark(_rebuild, t)


@pytest.mark.benchmark(group="fig1")
def test_bench_axis_checks(benchmark):
    t = random_tree(20_000, seed=5)

    def probe():
        acc = 0
        for u in range(0, t.n, 17):
            for v in range(0, t.n, 23):
                acc += t.is_descendant(u, v)
        return acc

    benchmark(probe)
