"""E4 — Theorem 3.2: monadic datalog over τ⁺ in O(|P| · |Dom|).

Two sweeps: data scaling with a fixed program (expect linear), and
program scaling with a fixed tree (expect linear), plus the naive
rule-matching baseline for contrast.
"""

import pytest

from repro.complexity import ScalingPoint, fit_loglog_slope
from repro.datalog import evaluate, evaluate_naive, parse_program
from repro.trees import random_tree
from repro.workloads import xmark_like

from _benchutil import report, sizes, timed

ANCESTOR_PROGRAM = """
P0(x) :- Lab:a(x).
P0(x) :- NextSibling(x, y), P0(y).
P(x) :- FirstChild(x, y), P0(y).
P0(x) :- P(x).
% query: P
"""


def _wide_program(k: int) -> str:
    """k independent copies of the Example 3.1 program."""
    parts = []
    for i in range(k):
        parts.append(
            f"""
            P0_{i}(x) :- Lab:a(x).
            P0_{i}(x) :- NextSibling(x, y), P0_{i}(y).
            P_{i}(x) :- FirstChild(x, y), P0_{i}(y).
            P0_{i}(x) :- P_{i}(x).
            """
        )
    return "\n".join(parts) + "% query: P_0"


def test_linear_in_data():
    prog = parse_program(ANCESTOR_PROGRAM)
    points = []
    for n in sizes((1_000, 2_000, 4_000, 8_000), (500, 1_000, 2_000)):
        t = random_tree(n, seed=1)
        points.append(ScalingPoint(n, timed(evaluate, prog, t)))
    slope = fit_loglog_slope(points)
    report(
        "E4/Thm3.2: fixed program, growing tree",
        ["|Dom|", "seconds"],
        [[p.size, p.seconds] for p in points],
    )
    assert slope < 1.5


def test_linear_in_program():
    t = random_tree(sizes(1_500, 750), seed=2)
    points = []
    for k in sizes((2, 4, 8, 16), (2, 4, 8)):
        prog = parse_program(_wide_program(k))
        points.append(ScalingPoint(k, timed(evaluate, prog, t)))
    slope = fit_loglog_slope(points)
    report(
        "E4/Thm3.2: fixed tree, growing program",
        ["|P| factor", "seconds"],
        [[p.size, p.seconds] for p in points],
    )
    assert slope < 1.5


def test_pipeline_beats_naive_on_recursion():
    """Naive bottom-up iterates fixpoint rounds over materialized rules;
    the TMNF → Horn-SAT route does one linear pass."""
    prog = parse_program(ANCESTOR_PROGRAM)
    rows = []
    for n in sizes((500, 1_000, 2_000), (250, 500, 1_000)):
        t = random_tree(n, seed=3)
        tp = timed(evaluate, prog, t)
        tn = timed(evaluate_naive, prog, t)
        rows.append([n, tp, tn, f"{tn / max(tp, 1e-9):.1f}x"])
    report(
        "E4/Thm3.2: pipeline vs naive bottom-up",
        ["n", "TMNF+Minoux", "naive", "speedup"],
        rows,
    )
    assert rows[-1][1] < rows[-1][2]


@pytest.mark.benchmark(group="thm32")
def test_bench_datalog_on_xmark(benchmark):
    prog = parse_program(
        """
        InItem(x) :- Lab:item(x).
        InItem(x) :- Child(y, x), InItem(y).
        Kw(x) :- InItem(x), Lab:keyword(x).
        % query: Kw
        """
    )
    t = xmark_like(200, seed=4)
    benchmark(evaluate, prog, t)
