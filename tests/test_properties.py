"""Cross-cutting property tests (hypothesis) tying the subsystems
together through the invariants the paper's theory guarantees."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.consistency import (
    arc_consistency_worklist,
    count_solutions,
    is_tree_shaped,
    solutions_with_pointers,
)
from repro.cq import ConjunctiveQuery, evaluate_backtracking, is_acyclic, yannakakis
from repro.datalog import evaluate as datalog_evaluate, parse_program
from repro.rewrite import rewrite_lazy
from repro.storage import IntervalLabeling, OrdpathLabeling, dumps_tree, loads_tree
from repro.streaming import stream_select, tree_events
from repro.trees import (
    Tree,
    delete_subtree,
    insert_leaf,
    parse_xml,
    random_tree,
    to_xml,
)
from repro.trees.axes import Axis, axis_holds
from repro.workloads import random_cq, random_twig, random_xpath
from repro.xpath import evaluate_query, evaluate_query_linear, parse_xpath

from conftest import trees


class TestEditInvariants:
    """Edits preserve the Tree invariants and compose with everything."""

    @given(trees(max_size=20), st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=50, deadline=None)
    def test_edits_preserve_preorder_invariant(self, t, seed):
        parent = seed % t.n
        position = seed % (len(t.children[parent]) + 1)
        edited = insert_leaf(t, parent, position, "zz")
        # Tree's constructor validates the pre-order id invariant, and
        # the subtree-interval characterization must keep working:
        for u in edited.nodes():
            for v in edited.descendants(u):
                assert edited.is_descendant(u, v)

    @given(trees(max_size=20), st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=40, deadline=None)
    def test_edits_survive_serialization(self, t, seed):
        parent = seed % t.n
        edited = insert_leaf(t, parent, 0, "zz")
        assert loads_tree(dumps_tree(edited)) == edited
        assert parse_xml(to_xml(edited)) == edited

    @given(trees(max_size=20), st.integers(min_value=1, max_value=10_000))
    @settings(max_examples=40, deadline=None)
    def test_delete_shrinks_consistently(self, t, seed):
        if t.n == 1:
            return
        victim = 1 + seed % (t.n - 1)
        reduced = delete_subtree(t, victim)
        assert reduced.n == t.n - t.subtree_size(victim)
        labeling = IntervalLabeling(reduced)
        for u in reduced.nodes():
            for v in reduced.nodes():
                assert labeling.is_ancestor(
                    labeling.label_of(u), labeling.label_of(v)
                ) == reduced.is_descendant(u, v)


class TestOrdpathInsertFriendliness:
    """ORDPATH's raison d'être (§2): a label can be interposed between
    any two siblings without touching existing labels, and the new
    label's order/ancestry relations come out right."""

    @given(trees(max_size=20), st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=50, deadline=None)
    def test_between_agrees_with_actual_insert(self, t, seed):
        candidates = [
            v for v in t.nodes() if len(t.children[v]) >= 2
        ]
        if not candidates:
            return
        parent = candidates[seed % len(candidates)]
        slot = 1 + seed % (len(t.children[parent]) - 1)
        op = OrdpathLabeling(t)
        left = op.label_of(t.children[parent][slot - 1])
        right = op.label_of(t.children[parent][slot])
        fresh = OrdpathLabeling.between(left, right)
        assert left < fresh < right
        # the fresh label is a child of parent, not of either sibling
        assert OrdpathLabeling.is_ancestor(op.label_of(parent), fresh)
        assert not OrdpathLabeling.is_ancestor(left, fresh)


class TestAnswerConsistencyAcrossEngines:
    """One workload, every engine: the Figure 7 languages can disagree
    only through bugs."""

    @given(trees(max_size=18), st.integers(min_value=0, max_value=500))
    @settings(max_examples=40, deadline=None)
    def test_cq_engines(self, t, seed):
        q = random_cq(3, 2, seed=seed, head_arity=1)
        reference = evaluate_backtracking(q, t)
        if is_acyclic(q):
            assert yannakakis(q, t) == reference
        union: set = set()
        for disjunct in rewrite_lazy(q):
            union |= yannakakis(disjunct, t)
        assert union == reference
        if is_tree_shaped(q):
            assert solutions_with_pointers(q, t) == reference
            full = ConjunctiveQuery(tuple(q.variables()), q.atoms)
            assert count_solutions(q, t) == len(evaluate_backtracking(full, t))

    @given(trees(max_size=20), st.integers(min_value=0, max_value=500))
    @settings(max_examples=40, deadline=None)
    def test_xpath_engines(self, t, seed):
        expr = parse_xpath(random_xpath(2, seed=seed))
        assert evaluate_query_linear(expr, t) == evaluate_query(expr, t)


class TestThetaMaximality:
    """The arc-consistent pre-valuation is the unique subset-maximal one:
    adding any excluded value breaks arc-consistency (Prop. 6.2)."""

    @given(trees(max_size=12), st.integers(min_value=0, max_value=200))
    @settings(max_examples=30, deadline=None)
    def test_no_excluded_value_is_consistent(self, t, seed):
        from repro.consistency import is_arc_consistent

        q = random_cq(3, 2, seed=seed, head_arity=0)
        theta = arc_consistency_worklist(q, t)
        if theta is None:
            return
        for x, values in theta.items():
            for v in range(t.n):
                if v in values:
                    continue
                widened = {k: set(vs) for k, vs in theta.items()}
                widened[x].add(v)
                assert not is_arc_consistent(q, t, widened), (x, v)


class TestDatalogStreamingAgreement:
    """Recursion (datalog) and streaming see the same document."""

    @given(trees(max_size=30))
    @settings(max_examples=30, deadline=None)
    def test_descendants_of_a(self, t):
        prog = parse_program(
            """
            In(x) :- Lab:a(x).
            In(x) :- Child(y, x), In(y).
            Out(x) :- In(x), Lab:b(x).
            % query: Out
            """
        )
        expr = parse_xpath("Child*[lab() = a]/Child+[lab() = b]")
        datalog_answer = datalog_evaluate(prog, t)
        xpath_answer = evaluate_query_linear(expr, t)
        stream_answer = set(
            stream_select(
                parse_xpath("Child*[lab() = a]/Child*/Child[lab() = b]"),
                tree_events(t),
            )
        )
        # In marks a-nodes and everything below them; Out keeps the b's.
        expected = {
            v
            for v in t.nodes()
            if t.has_label(v, "b")
            and any(t.has_label(u, "a") for u in [v, *t.ancestors(v)])
        }
        assert datalog_answer == expected
        # the XPath variants select b-descendants of a-nodes (proper)
        proper = {
            v
            for v in t.nodes()
            if t.has_label(v, "b")
            and any(t.has_label(u, "a") for u in t.ancestors(v))
        }
        assert xpath_answer == proper
        assert stream_answer == proper


class TestTwigCqRoundTrip:
    @given(st.integers(min_value=0, max_value=400))
    @settings(max_examples=40, deadline=None)
    def test_pattern_cq_signature(self, seed):
        pattern = random_twig(4, seed=seed)
        cq = pattern.to_cq()
        assert is_acyclic(cq)
        assert cq.signature() <= {Axis.CHILD, Axis.CHILD_PLUS}
        assert len(cq.head) == len(pattern)
