"""Tests for repro.trees.tree and repro.trees.orders (Section 2)."""

import pytest
from hypothesis import given, settings

from repro.trees import Tree, post_order, pre_order, bflr_order, random_tree
from repro.trees.node import Node
from repro.trees.orders import (
    descendant_from_orders,
    following_from_orders,
    post_lt,
    post_lt_from_axes,
    pre_lt_from_axes,
)

from conftest import trees


class TestConstruction:
    def test_single_node(self):
        t = Tree.from_tuple("a")
        assert t.n == 1
        assert t.root == 0
        assert t.is_leaf(0)
        assert t.height() == 0

    def test_from_tuple_shape(self):
        t = Tree.from_tuple(("a", ["b", ("c", ["d", "e"]), "f"]))
        assert t.n == 6
        assert t.label == ["a", "b", "c", "d", "e", "f"]
        assert t.parent == [-1, 0, 0, 2, 2, 0]
        assert t.children[0] == [1, 2, 5]
        assert t.children[2] == [3, 4]

    def test_empty_tree_rejected(self):
        with pytest.raises(ValueError):
            Tree([], [], [], [])

    def test_non_preorder_ids_rejected(self):
        # node 2 is a child of the root while node 1 sits deeper: ids do
        # not follow pre-order, which Tree must refuse
        with pytest.raises(ValueError):
            Tree(
                ["a", "b", "c"],
                [frozenset("a"), frozenset("b"), frozenset("c")],
                [-1, 2, 0],
                [[2], [], [1]],
            )

    def test_build_from_nodes(self):
        root = Node("r")
        child = root.add(Node("x"))
        child.add(Node("y"))
        t = Tree.build(root)
        assert t.label == ["r", "x", "y"]
        assert t.depth == [0, 1, 2]

    def test_multi_labels(self):
        root = Node("a", extra_labels=["big", "red"])
        t = Tree.build(root)
        assert t.has_label(0, "a")
        assert t.has_label(0, "big")
        assert t.has_label(0, "red")
        assert not t.has_label(0, "blue")


class TestIndexes:
    def test_post_order_of_paper_tree(self, paper_tree):
        # Figure 2: post indexes (1-based) are 7,3,1,2,6,4,5
        assert [p + 1 for p in paper_tree.post] == [7, 3, 1, 2, 6, 4, 5]

    def test_subtree_end_gives_descendant_ranges(self, paper_tree):
        assert list(paper_tree.descendants(0)) == [1, 2, 3, 4, 5, 6]
        assert list(paper_tree.descendants(1)) == [2, 3]
        assert list(paper_tree.descendants(4)) == [5, 6]
        assert list(paper_tree.descendants(2)) == []

    def test_sibling_links(self, paper_tree):
        assert paper_tree.next_sibling[1] == 4
        assert paper_tree.prev_sibling[4] == 1
        assert paper_tree.next_sibling[4] == -1
        assert paper_tree.sibling_index[4] == 1

    @given(trees())
    @settings(max_examples=60, deadline=None)
    def test_orders_are_permutations(self, t):
        for order in (pre_order(t), post_order(t), bflr_order(t)):
            assert sorted(order) == list(range(t.n))

    @given(trees())
    @settings(max_examples=60, deadline=None)
    def test_depth_consistent_with_parent(self, t):
        for v in t.nodes():
            if t.parent[v] >= 0:
                assert t.depth[v] == t.depth[t.parent[v]] + 1
            else:
                assert t.depth[v] == 0

    @given(trees())
    @settings(max_examples=40, deadline=None)
    def test_bflr_sorts_by_depth_then_document_order(self, t):
        order = bflr_order(t)
        keys = [(t.depth[v],) for v in order]
        assert keys == sorted(keys)


class TestOrderInterdefinability:
    """The §2 equations relating <pre, <post, Child+, Following."""

    @given(trees(max_size=20))
    @settings(max_examples=40, deadline=None)
    def test_pre_from_axes(self, t):
        for u in t.nodes():
            for v in t.nodes():
                if u != v:
                    assert pre_lt_from_axes(t, u, v) == (u < v)

    @given(trees(max_size=20))
    @settings(max_examples=40, deadline=None)
    def test_post_from_axes(self, t):
        for u in t.nodes():
            for v in t.nodes():
                if u != v:
                    assert post_lt_from_axes(t, u, v) == post_lt(t, u, v)

    @given(trees(max_size=20))
    @settings(max_examples=40, deadline=None)
    def test_axes_from_orders(self, t):
        for u in t.nodes():
            for v in t.nodes():
                assert descendant_from_orders(t, u, v) == t.is_descendant(u, v)
                assert following_from_orders(t, u, v) == t.is_following(u, v)

    @given(trees(max_size=25))
    @settings(max_examples=40, deadline=None)
    def test_trichotomy(self, t):
        """Any two distinct nodes are related by exactly one of
        Child+(u,v), Child+(v,u), Following(u,v), Following(v,u)."""
        for u in t.nodes():
            for v in t.nodes():
                if u == v:
                    continue
                relations = [
                    t.is_descendant(u, v),
                    t.is_descendant(v, u),
                    t.is_following(u, v),
                    t.is_following(v, u),
                ]
                assert sum(relations) == 1


class TestNavigation:
    def test_lca(self, paper_tree):
        assert paper_tree.lca(2, 3) == 1
        assert paper_tree.lca(2, 5) == 0
        assert paper_tree.lca(5, 6) == 4
        assert paper_tree.lca(3, 3) == 3
        assert paper_tree.lca(0, 6) == 0

    def test_ancestors(self, paper_tree):
        assert list(paper_tree.ancestors(3)) == [1, 0]
        assert list(paper_tree.ancestors(0)) == []

    def test_leaves(self, paper_tree):
        assert list(paper_tree.leaves()) == [2, 3, 5, 6]

    def test_first_last_child(self, paper_tree):
        assert paper_tree.first_child(0) == 1
        assert paper_tree.last_child(0) == 4
        assert paper_tree.first_child(2) == -1

    def test_label_index_cached_and_correct(self, paper_tree):
        assert paper_tree.nodes_with_label("a") == [0, 2, 4]
        assert paper_tree.nodes_with_label("b") == [1, 5]
        assert paper_tree.nodes_with_label("zzz") == []

    def test_alphabet(self, paper_tree):
        assert paper_tree.alphabet() == frozenset("abcd")


class TestEquality:
    def test_structural_equality(self):
        a = Tree.from_tuple(("a", ["b", "c"]))
        b = Tree.from_tuple(("a", ["b", "c"]))
        c = Tree.from_tuple(("a", ["c", "b"]))
        assert a == b
        assert hash(a) == hash(b)
        assert a != c

    @given(trees(max_size=15))
    @settings(max_examples=30, deadline=None)
    def test_len_matches_n(self, t):
        assert len(t) == t.n == len(list(t.nodes()))


class TestDeepTrees:
    def test_no_recursion_limit_on_deep_trees(self):
        from repro.trees import path_tree

        t = path_tree(50_000)
        assert t.height() == 49_999
        assert t.post[0] == t.n - 1
        assert t.subtree_end[0] == t.n
