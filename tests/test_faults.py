"""Tests for repro.faults: the site registry, the spec grammar, plan
determinism and scoping, and trip recording (docs/ROBUSTNESS.md)."""

from __future__ import annotations

import pytest

from repro.errors import InjectedFault, QueryError, TransientError
from repro.faults import (
    FaultPlan,
    FaultRule,
    active_plan,
    faultpoint,
    register_site,
    registered_sites,
)
from repro.obs.metrics import METRICS

# importing the engine and the ingestion modules registers every site
import repro.chaos  # noqa: F401


class TestRegistry:
    def test_register_is_idempotent_and_returns_name(self):
        assert register_site("test.site.a", "first doc") == "test.site.a"
        register_site("test.site.a", "second doc ignored")
        assert registered_sites()["test.site.a"] == "first doc"

    def test_all_contractual_sites_registered(self):
        sites = registered_sites()
        for expected in (
            "index.build",
            "planner.plan",
            "query.parse",
            "join.merge",
            "xml.parse",
            "stream.events",
            "disk.read",
            "strategy.linear",
            "strategy.twigstack",
            "strategy.yannakakis",
            "strategy.minoux",
        ):
            assert expected in sites, expected

    def test_faultpoint_is_identity_with_no_plan(self):
        assert active_plan() is None
        assert faultpoint("index.build") is None
        payload = object()
        assert faultpoint("index.build", payload) is payload


class TestSpecGrammar:
    def test_minimal_spec_defaults_to_nth_1(self):
        rule = FaultRule.parse("index.build:error")
        assert rule.site == "index.build"
        assert rule.kind == "error"
        assert rule.nth == 1 and rule.every is None and rule.p is None

    @pytest.mark.parametrize(
        "spec, attr, value",
        [
            ("a.b:transient@nth=3", "nth", 3),
            ("a.b:error@every=4", "every", 4),
            ("a.b:error@p=0.25", "p", 0.25),
            ("strategy.*:latency:0.005", "latency_s", 0.005),
        ],
    )
    def test_trigger_and_arg_parsing(self, spec, attr, value):
        assert getattr(FaultRule.parse(spec), attr) == value

    @pytest.mark.parametrize(
        "bad",
        [
            "no-colon",
            ":error",
            "site:bogus-kind",
            "site:error:0.5",  # only latency takes an argument
            "site:latency:abc",
            "site:error@nth=0",
            "site:error@p=1.5",
            "site:error@sometimes",
            "site:error@nth=x",
        ],
    )
    def test_malformed_specs_raise_query_error(self, bad):
        with pytest.raises(QueryError):
            FaultRule.parse(bad)

    def test_spec_round_trips(self):
        for spec in (
            "a.b:error@nth=1",
            "a.b:transient@every=2",
            "a.b:latency:0.002@nth=5",
            "strategy.*:error@p=0.5",
        ):
            assert FaultRule.parse(spec).spec() == spec

    def test_glob_site_matching(self):
        rule = FaultRule.parse("strategy.*:error")
        assert rule.matches("strategy.linear")
        assert rule.matches("strategy.structural-join")
        assert not rule.matches("index.build")


class TestPlanBehaviour:
    def test_error_kind_raises_injected_fault_with_site(self):
        with FaultPlan(["site.x:error"]):
            with pytest.raises(InjectedFault) as exc_info:
                faultpoint("site.x")
        assert exc_info.value.site == "site.x"

    def test_transient_kind_raises_transient_error(self):
        with FaultPlan(["site.x:transient"]):
            with pytest.raises(TransientError):
                faultpoint("site.x")

    def test_nth_trigger_trips_exactly_once(self):
        with FaultPlan(["site.x:error@nth=2"]) as plan:
            faultpoint("site.x")  # call 1: no trip
            with pytest.raises(InjectedFault):
                faultpoint("site.x")  # call 2: trip
            faultpoint("site.x")  # call 3: no trip
        assert [t.call_index for t in plan.trips] == [2]

    def test_every_trigger_trips_periodically(self):
        tripped = []
        with FaultPlan(["site.x:error@every=3"]) as plan:
            for i in range(1, 10):
                try:
                    faultpoint("site.x")
                except InjectedFault:
                    tripped.append(i)
        assert tripped == [3, 6, 9]
        assert plan.calls["site.x"] == 9

    def test_probability_trigger_is_seed_deterministic(self):
        def trips(seed):
            out = []
            with FaultPlan(["site.x:error@p=0.5"], seed=seed):
                for i in range(20):
                    try:
                        faultpoint("site.x")
                    except InjectedFault:
                        out.append(i)
            return out

        assert trips(7) == trips(7)
        assert 0 < len(trips(7)) < 20  # actually probabilistic
        assert trips(7) != trips(8)  # seed matters

    def test_latency_kind_sleeps_and_passes_payload_through(self):
        slept = []
        with FaultPlan(["site.x:latency:0.25"]) as plan:
            plan._sleep = slept.append
            assert faultpoint("site.x", "payload") == "payload"
        assert slept == [0.25]
        assert plan.trips[0].kind == "latency"

    def test_corrupt_kind_uses_the_site_mutator(self):
        with FaultPlan(["site.x:corrupt"], seed=3):
            out = faultpoint(
                "site.x", "abcdefgh", mutator=lambda s, rng: s[: rng.randrange(1, 4)]
            )
        assert out in ("a", "ab", "abc")

    def test_corrupt_without_mutator_degrades_to_injected_fault(self):
        with FaultPlan(["site.x:corrupt"]):
            with pytest.raises(InjectedFault):
                faultpoint("site.x")

    def test_plan_scoping_restores_previous_plan(self):
        assert active_plan() is None
        with FaultPlan(["a:error@nth=99"]) as outer:
            assert active_plan() is outer
            with FaultPlan(["b:error@nth=99"]) as inner:
                assert active_plan() is inner
            assert active_plan() is outer
        assert active_plan() is None

    def test_plan_restored_even_when_fault_escapes(self):
        with pytest.raises(InjectedFault):
            with FaultPlan(["site.x:error"]):
                faultpoint("site.x")
        assert active_plan() is None

    def test_same_rules_and_seed_trip_identically(self):
        def run():
            trips = []
            with FaultPlan(["site.x:error@p=0.3"], seed=11) as plan:
                for _ in range(15):
                    try:
                        faultpoint("site.x")
                    except InjectedFault:
                        pass
                trips = [(t.site, t.kind, t.call_index) for t in plan.trips]
            return trips

        assert run() == run()

    def test_trips_recorded_into_metrics(self):
        before_total = METRICS.snapshot().get("fault.trips", 0)
        before_site = METRICS.snapshot().get("fault.site.metrics-test", 0)
        with FaultPlan(["site.metrics-test:error"]):
            with pytest.raises(InjectedFault):
                faultpoint("site.metrics-test")
        snap = METRICS.snapshot()
        assert snap["fault.trips"] == before_total + 1
        assert snap["fault.site.metrics-test"] == before_site + 1

    def test_tripped_sites_in_first_trip_order(self):
        with FaultPlan(["b.site:error@every=1", "a.site:error@every=1"]) as plan:
            for site in ("b.site", "a.site", "b.site"):
                with pytest.raises(InjectedFault):
                    faultpoint(site)
        assert plan.tripped_sites() == ["b.site", "a.site"]

    def test_rules_accept_prebuilt_fault_rules(self):
        rule = FaultRule("site.x", "error", nth=1)
        with FaultPlan([rule]):
            with pytest.raises(InjectedFault):
                faultpoint("site.x")
