"""Snapshot tests: every documented planner heuristic branch.

The planner's docstring enumerates its rules; this module exercises
each branch with a query built to hit exactly that rule and pins both
the chosen strategy and the *reason string* (the reasons surface in
``--stats`` output and in traces, so they are user-facing contract).

Includes the regression pin for the twig rule ordering: the "≤ 2
pattern nodes" rule must fire *before* the path-pattern rule — every
≤ 2-node pattern is also a path, so the old ordering made the single
structural-join branch unreachable.
"""

from __future__ import annotations

import pytest

from repro.engine import Database

# 10 nodes: b×4, c×3, a×2, d×1 (see tests/test_obs.py for the layout)
DOC = "<a><b><c/><b/></b><c><b/></c><a><b><c/></b></a><d/></a>"

# 4 nodes, b on 3 of them: the b-partition is NOT selective (3 > 0.5·4)
DENSE_DOC = "<a><b/><b/><b/></a>"


@pytest.fixture()
def db():
    return Database.from_xml(DOC)


# ---------------------------------------------------------------------------
# Core XPath branches
# ---------------------------------------------------------------------------


def test_xpath_rule_1_position_forces_denotational(db):
    plan = db.plan("xpath", "Child[lab() = b][position() = 1]")
    assert plan.strategy == "denotational"
    assert plan.reason == (
        "position() needs the memoized denotational evaluator"
    )


def test_xpath_rule_2a_absent_label_short_circuits(db):
    plan = db.plan("xpath", "Child+[lab() = zzz]")
    assert plan.strategy == "structural-join"
    assert plan.reason == (
        "a referenced label is absent; the join plan "
        "short-circuits to the empty answer"
    )


def test_xpath_rule_2b_selective_partitions(db):
    plan = db.plan("xpath", "Child+[lab() = b]")
    assert plan.strategy == "structural-join"
    # 4 b-nodes of 10: under the 0.5 selectivity fraction
    assert plan.reason == "label partitions are selective (4/10 nodes touched)"


def test_xpath_rule_3_downward_with_nested_qualifiers(db):
    plan = db.plan("xpath", "Child+[lab() = a][Child[lab() = b]]")
    assert plan.strategy == "automaton"
    assert plan.reason == (
        "downward query with nested path qualifiers: one "
        "bottom-up pass computes all of them"
    )


def test_xpath_rule_4_general_fallback_linear(db):
    plan = db.plan("xpath", "Following[lab() = b]")
    assert plan.strategy == "linear"
    assert plan.reason == (
        "general query: O(|Q|·||A||) context-set evaluator"
    )


def test_xpath_unselective_downward_falls_through_to_linear():
    db = Database.from_xml(DENSE_DOC)
    # sj-compatible spine, but the b-partition covers 3/4 of the
    # document: the selectivity gate rejects it; no nested qualifier,
    # so the automaton rule passes too → linear
    plan = db.plan("xpath", "Child+[lab() = b]")
    assert plan.strategy == "linear"
    assert plan.reason == (
        "general query: O(|Q|·||A||) context-set evaluator"
    )


# ---------------------------------------------------------------------------
# twig branches
# ---------------------------------------------------------------------------


def test_twig_rule_1_absent_label(db):
    plan = db.plan("twig", "//zzz[b]//c")
    assert plan.strategy == "binary"
    assert plan.reason == (
        "a pattern label is absent; the first empty stream "
        "empties the join plan"
    )


def test_twig_rule_2_two_node_pattern_uses_single_join(db):
    """Regression: this branch was unreachable before the reordering —
    a 2-node pattern is also a path, and the path rule fired first."""
    plan = db.plan("twig", "//a//b")
    assert plan.strategy == "binary"
    assert plan.reason == "≤ 2 pattern nodes: a single structural join"


def test_twig_rule_3_path_pattern_uses_pathstack(db):
    plan = db.plan("twig", "//a//b//c")
    assert plan.strategy == "pathstack"
    assert plan.reason == "path pattern: PathStack suffices"


def test_twig_rule_4_branching_uses_twigstack(db):
    plan = db.plan("twig", "//a[b]//c")
    assert plan.strategy == "twigstack"
    assert plan.reason == (
        "branching twig: holistic TwigStack bounds "
        "intermediate state by document depth"
    )


# ---------------------------------------------------------------------------
# CQ branches
# ---------------------------------------------------------------------------


def test_cq_rule_1_acyclic_uses_yannakakis(db):
    plan = db.plan("cq", "ans(x) :- Child+(y, x), Lab:b(x)")
    assert plan.strategy == "yannakakis"
    assert plan.reason == "acyclic query: Yannakakis is O(||A||·|Q|)"


def test_cq_rule_2_treewidth_2_uses_dp(db):
    # a triangle over Child+ is cyclic with tree-width exactly 2
    plan = db.plan(
        "cq", "ans(x) :- Child+(x, y), Child+(y, z), Child+(x, z)"
    )
    assert plan.strategy == "treewidth"
    assert plan.reason == "cyclic query of tree-width 2: Theorem 4.1 DP"


def test_cq_rule_3_high_treewidth_backtracks(db):
    # K4 over Child+ has tree-width 3, above the DP cutoff
    plan = db.plan(
        "cq",
        "ans(w) :- Child+(w, x), Child+(w, y), Child+(w, z), "
        "Child+(x, y), Child+(x, z), Child+(y, z)",
    )
    assert plan.strategy == "backtracking"
    assert plan.reason == (
        "tree-width 3 exceeds the DP cutoff; falling back "
        "to backtracking search"
    )


# ---------------------------------------------------------------------------
# datalog, explicit requests, and the fallback ranking
# ---------------------------------------------------------------------------


def test_datalog_always_minoux(db):
    plan = db.plan("datalog", "Q(x) :- Lab:b(x).\n% query: Q")
    assert plan.strategy == "minoux"
    assert plan.reason == "TMNF → Horn-SAT → Minoux pipeline"


def test_explicit_request_reason(db):
    result = db.xpath("Child+[lab() = b]", "linear")
    assert result.stats.strategy == "linear"
    assert result.stats.reason == "explicitly requested"


def test_ranked_puts_plan_first_then_registry_order(db):
    from repro.engine.strategies import strategies_for
    from repro.xpath.parser import parse_xpath

    text = "Child+[lab() = b]"
    expr = parse_xpath(text)
    index = db.index
    planner = db._planner
    plans = planner.ranked("xpath", expr, index)
    chosen = planner.plan("xpath", expr, index)
    assert plans[0] == chosen
    expected_rest = [
        s.name
        for s in strategies_for("xpath", expr, index)
        if s.name != chosen.strategy
    ]
    assert [p.strategy for p in plans[1:]] == expected_rest
    for p in plans[1:]:
        assert p.reason == (
            f"budget fallback after {chosen.strategy!r} (registry order)"
        )
