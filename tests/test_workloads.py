"""Tests for the workload generators and the scaling harness."""

import pytest

from repro.complexity import (
    classify_growth,
    fit_loglog_slope,
    format_table,
    measure_scaling,
)
from repro.complexity.scaling import ScalingPoint, ratio_test
from repro.consistency import classify_signature
from repro.cq import is_acyclic
from repro.hornsat import minoux, naive_fixpoint
from repro.workloads import (
    dblp_like,
    deep_sections,
    hard_instance_mixed_axes,
    random_cq,
    random_horn_program,
    random_twig,
    random_xpath,
    xmark_like,
)
from repro.xpath import parse_xpath


class TestDocuments:
    def test_xmark_schema_labels(self):
        t = xmark_like(30, seed=1)
        labels = t.alphabet()
        assert {"site", "regions", "item", "people", "closed_auctions"} <= labels
        assert t.label[0] == "site"

    def test_xmark_deterministic(self):
        assert xmark_like(20, seed=5) == xmark_like(20, seed=5)
        assert xmark_like(20, seed=5) != xmark_like(20, seed=6)

    def test_dblp_flat(self):
        t = dblp_like(50, seed=2)
        assert t.height() == 2
        assert t.label[0] == "dblp"

    def test_deep_sections_depth(self):
        t = deep_sections(25)
        assert t.height() >= 25
        assert "section" in t.alphabet()


class TestQueries:
    def test_random_cq_valid_and_deterministic(self):
        for seed in range(30):
            q = random_cq(4, 3, seed=seed)
            q.validate()
            assert q == random_cq(4, 3, seed=seed)

    def test_random_cq_connected(self):
        for seed in range(20):
            assert random_cq(5, 4, seed=seed, connected=True).is_connected()

    def test_random_twig_parses(self):
        for seed in range(30):
            pattern = random_twig(5, seed=seed)
            assert 1 <= len(pattern) <= 5
            pattern.to_cq().validate()

    def test_random_xpath_parses(self):
        for seed in range(30):
            parse_xpath(random_xpath(3, seed=seed))

    def test_random_horn_runs(self):
        p = random_horn_program(50, 120, seed=3)
        m1, _ = minoux(p)
        m2, _ = naive_fixpoint(p)
        assert m1 == m2

    def test_hard_instance_signature_is_np_complete(self):
        q = hard_instance_mixed_axes(6)
        assert classify_signature(q.signature())[0] == "NP-complete"
        assert is_acyclic(q)  # hardness comes from the signature, not shape


class TestScalingHarness:
    def test_linear_classified(self):
        pts = [ScalingPoint(n, n * 1e-6) for n in (100, 200, 400, 800)]
        assert classify_growth(pts) == "linear"
        assert abs(fit_loglog_slope(pts) - 1.0) < 1e-9

    def test_quadratic_classified(self):
        pts = [ScalingPoint(n, n * n * 1e-9) for n in (100, 200, 400, 800)]
        assert classify_growth(pts) == "quadratic"

    def test_measure_scaling_runs(self):
        pts = measure_scaling(
            lambda n: list(range(n)), sum, [500, 1000, 2000], repeats=2
        )
        assert [p.size for p in pts] == [500, 1000, 2000]
        assert all(p.seconds >= 0 for p in pts)

    def test_slope_needs_two_points(self):
        with pytest.raises(ValueError):
            fit_loglog_slope([ScalingPoint(10, 1.0)])

    def test_ratio_test(self):
        pts = [ScalingPoint(n, 2.0 ** n) for n in (1, 2, 3)]
        assert all(r == 2.0 for r in ratio_test(pts))

    def test_format_table(self):
        text = format_table(["n", "time"], [[10, 0.5], [20, 1.0]])
        assert "n" in text and "20" in text
