"""Tests for conjunctive queries: acyclicity, Yannakakis, tree-width (§4)."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cq import (
    ConjunctiveQuery,
    build_join_tree,
    evaluate_backtracking,
    evaluate_bounded_treewidth,
    is_acyclic,
    parse_cq,
    query_treewidth,
    tree_decomposition,
    is_valid_decomposition,
    yannakakis,
    yannakakis_boolean,
    yannakakis_unary,
)
from repro.cq.naive import BacktrackStats
from repro.cq.treewidth import graph_treewidth, tree_structure_graph, treewidth_exact
from repro.datalog.syntax import Atom
from repro.errors import EvaluationError, NotAcyclicError, QueryError
from repro.trees import random_tree
from repro.trees.axes import Axis
from repro.workloads import random_cq

from conftest import trees


class TestQueryBasics:
    def test_parse_and_str(self):
        q = parse_cq("ans(x) :- Child(x, y), Lab:a(y)")
        assert q.head == ("x",)
        assert q.size() == 2

    def test_boolean_query(self):
        q = parse_cq("ans() :- Lab:a(x)")
        assert q.is_boolean()
        q2 = parse_cq("ans :- Lab:a(x)")
        assert q2.is_boolean()

    def test_head_var_must_occur(self):
        with pytest.raises(QueryError):
            parse_cq("ans(z) :- Lab:a(x)")

    def test_canonicalization_flips_inverse_axes(self):
        q = parse_cq("ans(x) :- Parent(x, y)")
        atom = q.binary_atoms()[0]
        assert atom.pred == Axis.CHILD.value
        assert atom.args == ("y", "x")

    def test_signature(self):
        q = parse_cq("ans(x) :- Child+(x, y), Following(y, z)")
        assert q.signature() == {Axis.CHILD_PLUS, Axis.FOLLOWING}

    def test_connectivity(self):
        assert parse_cq("ans(x) :- Child(x, y), Child(y, z)").is_connected()
        assert not parse_cq(
            "ans(x) :- Child(x, y), Child(u, w)"
        ).is_connected()


class TestAcyclicity:
    def test_twig_is_acyclic(self):
        q = parse_cq("ans(x) :- Child+(r, x), Child+(r, y), Lab:a(y)")
        assert is_acyclic(q)

    def test_triangle_is_cyclic(self):
        q = parse_cq("ans() :- Child+(x, y), Child+(y, z), Child+(x, z)")
        assert not is_acyclic(q)

    def test_single_atom(self):
        assert is_acyclic(parse_cq("ans(x) :- Lab:a(x)"))

    def test_join_tree_variable_connectivity(self):
        """Join-tree property: atoms containing any given variable form a
        connected subtree."""
        for seed in range(20):
            q = random_cq(5, 4, seed=seed)
            if not is_acyclic(q):
                continue
            jt = build_join_tree(q)
            for v in q.variables():
                holders = {
                    i
                    for i, a in enumerate(q.atoms)
                    if v in set(a.variables())
                }
                # check connectivity of holders within the join tree
                graph = nx.Graph()
                graph.add_nodes_from(range(len(q.atoms)))
                for child, parent in jt.parent.items():
                    graph.add_edge(child, parent)
                sub = graph.subgraph(holders)
                assert nx.is_connected(sub), (seed, v)

    def test_join_tree_root_var(self):
        q = parse_cq("ans(z) :- Child(x, y), Child(y, z)")
        jt = build_join_tree(q, root_var="z")
        assert "z" in set(q.atoms[jt.root].variables())

    def test_join_tree_cyclic_raises(self):
        q = parse_cq("ans() :- Child+(x, y), Child+(y, z), Child+(x, z)")
        with pytest.raises(NotAcyclicError):
            build_join_tree(q)


class TestYannakakis:
    @given(trees(max_size=30), st.integers(min_value=0, max_value=200))
    @settings(max_examples=60, deadline=None)
    def test_vs_backtracking_on_acyclic(self, t, seed):
        q = random_cq(4, 3, seed=seed, head_arity=2)
        if not is_acyclic(q):
            return
        assert yannakakis(q, t) == evaluate_backtracking(q, t)

    @given(trees(max_size=30), st.integers(min_value=0, max_value=100))
    @settings(max_examples=40, deadline=None)
    def test_unary_fast_path(self, t, seed):
        q = random_cq(4, 3, seed=seed, head_arity=1)
        if not is_acyclic(q):
            return
        expected = {r[0] for r in evaluate_backtracking(q, t)}
        assert yannakakis_unary(q, t) == expected

    @given(trees(max_size=30), st.integers(min_value=0, max_value=100))
    @settings(max_examples=40, deadline=None)
    def test_boolean_fast_path(self, t, seed):
        q = random_cq(4, 3, seed=seed, head_arity=0)
        if not is_acyclic(q):
            return
        expected = bool(evaluate_backtracking(q, t, first_only=True))
        assert yannakakis_boolean(q, t) == expected

    def test_constants_in_atoms(self):
        t = random_tree(20, seed=1)
        q = ConjunctiveQuery(("x",), (Atom("Child+", (0, "x")),))
        assert yannakakis(q, t) == {(v,) for v in range(1, 20)}

    def test_repeated_variable_atom(self):
        t = random_tree(15, seed=2)
        q = ConjunctiveQuery(("x",), (Atom("Child*", ("x", "x")),))
        assert yannakakis(q, t) == {(v,) for v in t.nodes()}

    def test_empty_result(self):
        t = random_tree(10, seed=3, alphabet=("a",))
        q = parse_cq("ans(x) :- Lab:zzz(x)")
        assert yannakakis(q, t) == set()
        assert yannakakis_boolean(q.with_head(()), t) is False

    def test_unary_requires_one_head_var(self):
        q = parse_cq("ans(x, y) :- Child(x, y)")
        with pytest.raises(EvaluationError):
            yannakakis_unary(q, random_tree(5))

    def test_disconnected_query(self):
        t = random_tree(20, seed=4)
        q = parse_cq("ans(x) :- Lab:a(x), Lab:b(y), Dom(y)")
        expected = (
            set((v,) for v in t.nodes_with_label("a"))
            if t.nodes_with_label("b")
            else set()
        )
        assert yannakakis(q, t) == expected


class TestBacktracking:
    def test_stats_counted(self):
        t = random_tree(20, seed=1)
        q = parse_cq("ans(x) :- Child(x, y)")
        stats = BacktrackStats()
        evaluate_backtracking(q, t, stats=stats)
        assert stats.nodes_expanded > 0
        # one count per satisfying assignment; at least one per head tuple
        assert stats.solutions >= len(evaluate_backtracking(q, t))

    def test_step_limit(self):
        t = random_tree(60, seed=1)
        q = parse_cq("ans() :- Child+(a, b), Child+(b, c), Child+(c, d)")
        with pytest.raises(EvaluationError):
            evaluate_backtracking(q, t, max_steps=3)

    def test_first_only_stops_early(self):
        t = random_tree(60, seed=1)
        q = parse_cq("ans() :- Child(x, y)")
        r = evaluate_backtracking(q, t, first_only=True)
        assert r == {()}


class TestTreewidth:
    def test_clique_treewidth(self):
        assert treewidth_exact(nx.complete_graph(5)) == 4

    def test_tree_treewidth_one(self):
        assert treewidth_exact(nx.balanced_tree(2, 2)) == 1
        assert treewidth_exact(nx.path_graph(10)) == 1

    def test_cycle_treewidth_two(self):
        assert treewidth_exact(nx.cycle_graph(6)) == 2

    def test_single_vertex(self):
        g = nx.Graph()
        g.add_node(0)
        assert treewidth_exact(g) == 0

    def test_grid_treewidth(self):
        assert treewidth_exact(nx.grid_2d_graph(3, 3)) == 3

    def test_exact_limit(self):
        with pytest.raises(ValueError):
            treewidth_exact(nx.path_graph(20))

    def test_figure_4_claim(self):
        """(Child, NextSibling)-trees are graphs of tree-width two."""
        widths = {
            graph_treewidth(tree_structure_graph(random_tree(12, seed=s)))
            for s in range(6)
        }
        assert widths <= {1, 2}
        assert 2 in widths  # generically it is exactly two

    def test_query_treewidth(self):
        path = parse_cq("ans(x) :- Child(x, y), Child(y, z)")
        assert query_treewidth(path) == 1
        triangle = parse_cq("ans() :- Child+(x, y), Child+(y, z), Child+(x, z)")
        assert query_treewidth(triangle) == 2

    def test_decomposition_validity(self):
        g = tree_structure_graph(random_tree(20, seed=1))
        _w, decomposition = tree_decomposition(g)
        assert is_valid_decomposition(g, decomposition)

    def test_invalid_decomposition_detected(self):
        g = nx.path_graph(3)
        bad = nx.Graph()
        bad.add_node(frozenset({0, 1}))  # edge (1,2) not covered
        assert not is_valid_decomposition(g, bad)


class TestBoundedTreewidthEvaluation:
    @given(trees(max_size=20), st.integers(min_value=0, max_value=100))
    @settings(max_examples=40, deadline=None)
    def test_vs_backtracking(self, t, seed):
        q = random_cq(4, 4, seed=seed, head_arity=1, connected=False)
        assert evaluate_bounded_treewidth(q, t) == evaluate_backtracking(q, t)

    def test_cyclic_query(self):
        t = random_tree(15, seed=6)
        q = parse_cq("ans(x) :- Child(x, y), Child(y, z), Child+(x, z)")
        assert evaluate_bounded_treewidth(q, t) == evaluate_backtracking(q, t)

    def test_boolean(self):
        t = random_tree(15, seed=7)
        q = parse_cq("ans() :- Child+(x, y), Child+(y, z), Child+(x, z)")
        expected = bool(evaluate_backtracking(q, t, first_only=True))
        assert bool(evaluate_bounded_treewidth(q, t)) == expected
