"""The request-scoped tracing pipeline, end to end.

Covers the four layers of docs/OBSERVABILITY.md's tracing section:

- **identity** — trace ids issued or accepted (``X-Repro-Trace``),
  echoed in response headers, success bodies and typed error payloads,
  and stamped on every supervisor attempt via the Observation
  ContextVar (including survival across the ThreadingHTTPServer's
  worker threads and *no* leakage between requests reusing a thread),
- **sampling** — the deterministic head draw, tail/error record-all
  policies, and the sampled-out fast path,
- **the event log** — bounded background JSONL writer: schema, size
  rotation, drop-and-count under a stalled disk, telemetry faults
  degrading to counted drops,
- **retrieval** — ``GET /debug/traces[/id]``, the ``repro trace``
  CLI, and the acceptance path: a fault-injected failing request's
  trace id, quoted from its typed error body, replays the span tree
  including the failed attempt.
"""

from __future__ import annotations

import http.client
import json
import threading

import pytest

from repro.engine import Database
from repro.faults import FaultPlan
from repro.obs import (
    METRICS,
    Observation,
    TraceSampler,
    Tracer,
    current,
    head_decision,
    lint_openmetrics,
    new_trace_id,
    observed,
    render_openmetrics,
)
from repro.obs.events import EVENT_SCHEMA, EventLogWriter, TraceBuffer
from repro.service import QueryService, make_server

pytestmark = pytest.mark.service

DOC = (
    "<site><item><name/><keyword/></item>"
    "<item><name/></item>"
    "<people><person><profile/><name/></person></people></site>"
)

XPATH = "Child*[lab() = item]/Child[lab() = name]"


# ---------------------------------------------------------------------------
# sampling
# ---------------------------------------------------------------------------


class TestHeadDecision:
    def test_boundary_rates(self):
        tid = new_trace_id()
        assert head_decision(tid, 1.0) is True
        assert head_decision(tid, 0.0) is False

    def test_deterministic_per_id(self):
        tid = new_trace_id()
        verdicts = {head_decision(tid, 0.37) for _ in range(50)}
        assert len(verdicts) == 1

    def test_rate_monotone(self):
        """An id kept at a low rate is kept at every higher rate — the
        threshold construction, not independent coin flips."""
        ids = [new_trace_id() for _ in range(500)]
        low = {t for t in ids if head_decision(t, 0.2)}
        high = {t for t in ids if head_decision(t, 0.8)}
        assert low <= high

    def test_rate_is_approximately_honored(self):
        ids = [new_trace_id() for _ in range(4000)]
        kept = sum(head_decision(t, 0.25) for t in ids)
        assert 0.17 < kept / len(ids) < 0.33

    def test_malformed_id_never_raises(self):
        assert head_decision("not-hex!!", 0.5) in (True, False)
        assert head_decision("", 0.5) in (True, False)


class TestTraceSampler:
    def test_validation(self):
        with pytest.raises(ValueError):
            TraceSampler(head_rate=1.5)
        with pytest.raises(ValueError):
            TraceSampler(head_rate=-0.1)
        with pytest.raises(ValueError):
            TraceSampler(slow_ms=-1)

    def test_head_only_record_matches_decision(self):
        sampler = TraceSampler(head_rate=0.3, slow_ms=None, keep_errors=False)
        for _ in range(50):
            tid = new_trace_id()
            assert sampler.record(tid) == head_decision(tid, 0.3)

    def test_tail_and_error_force_record_all(self):
        assert TraceSampler(head_rate=0.0, slow_ms=5.0,
                            keep_errors=False).record(new_trace_id())
        assert TraceSampler(head_rate=0.0, slow_ms=None,
                            keep_errors=True).record(new_trace_id())

    def test_disabled_sampler(self):
        sampler = TraceSampler(head_rate=0.0, slow_ms=None, keep_errors=False)
        assert not sampler.enabled
        assert sampler.record(new_trace_id()) is False
        assert sampler.retain(new_trace_id(), 10.0, failed=True) is None

    def test_retain_policy_precedence(self):
        sampler = TraceSampler(head_rate=1.0, slow_ms=100.0, keep_errors=True)
        tid = new_trace_id()
        assert sampler.retain(tid, 0.5, failed=True) == "error"
        assert sampler.retain(tid, 0.5, failed=False) == "slow"
        assert sampler.retain(tid, 0.001, failed=False) == "head"
        strict = TraceSampler(head_rate=0.0, slow_ms=100.0, keep_errors=True)
        assert strict.retain(tid, 0.001, failed=False) is None

    def test_describe(self):
        assert TraceSampler(head_rate=0.5, slow_ms=20.0).describe() == {
            "head_rate": 0.5, "slow_ms": 20.0, "keep_errors": True,
        }


# ---------------------------------------------------------------------------
# the event log writer
# ---------------------------------------------------------------------------


def _record(tid: str, **extra) -> dict:
    base = {"schema": EVENT_SCHEMA, "trace_id": tid, "route": "query",
            "outcome": "ok", "duration_ms": 1.0, "sampled": True}
    base.update(extra)
    return base


class TestEventLogWriter:
    def test_writes_one_json_line_per_record(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        ids = [new_trace_id() for _ in range(5)]
        with EventLogWriter(path) as writer:
            for tid in ids:
                assert writer.submit(_record(tid)) is True
            assert writer.flush(timeout=5.0)
            stats = writer.stats()
        assert stats["submitted"] == 5
        assert stats["written"] == 5
        assert stats["dropped"] == 0
        with open(path, encoding="utf-8") as fh:
            lines = [json.loads(line) for line in fh]
        assert [r["trace_id"] for r in lines] == ids
        assert all(r["schema"] == EVENT_SCHEMA for r in lines)

    def test_size_rotation_bounds_the_pair(self, tmp_path):
        import os

        path = str(tmp_path / "events.jsonl")
        with EventLogWriter(path, max_bytes=1024) as writer:
            for i in range(200):
                writer.submit(_record(new_trace_id(), pad="x" * 64, i=i))
            assert writer.flush(timeout=10.0)
            stats = writer.stats()
        assert stats["rotations"] >= 1
        assert os.path.exists(path + ".1")
        # one backup generation only: the pair never exceeds ~2x the cap
        total = os.path.getsize(path) + os.path.getsize(path + ".1")
        assert total <= 2 * 1024 + 512

    def test_full_queue_drops_and_counts_never_blocks(self, tmp_path):
        """A stalled disk must turn into counted data loss, not into
        request latency: submit() returns False immediately."""
        path = str(tmp_path / "events.jsonl")
        writer = EventLogWriter(path, queue_size=2)
        gate = threading.Event()
        inner = writer._write_one
        writer._write_one = lambda record: (gate.wait(10.0), inner(record))[1]
        try:
            before = METRICS.snapshot().get("eventlog.dropped", 0)
            results = [writer.submit(_record(new_trace_id())) for _ in range(8)]
            # one record stalls in the writer thread, two fill the queue;
            # everything past that bounded backlog is dropped
            assert results.count(False) >= 5
            assert not any(results[3:])
            gate.set()
            assert writer.flush(timeout=10.0)
            stats = writer.stats()
            assert stats["dropped"] == results.count(False)
            assert stats["written"] == results.count(True)
            assert stats["submitted"] == 8
            after = METRICS.snapshot().get("eventlog.dropped", 0)
            assert after - before == stats["dropped"]
        finally:
            gate.set()
            writer.close()

    def test_closed_writer_drops_and_counts(self, tmp_path):
        writer = EventLogWriter(str(tmp_path / "events.jsonl"))
        writer.close()
        assert writer.submit(_record(new_trace_id())) is False
        assert writer.stats()["dropped"] == 1

    def test_injected_fault_degrades_to_counted_drop(self, tmp_path):
        """The obs.eventlog fault site: an injected write failure costs
        exactly the one record, and the writer keeps going."""
        path = str(tmp_path / "events.jsonl")
        with EventLogWriter(path) as writer:
            with FaultPlan(["obs.eventlog:error@nth=1"], seed=0) as plan:
                writer.submit(_record("doomed-record-0000"))
                writer.submit(_record("survivor-record-00"))
                assert writer.flush(timeout=5.0)
            assert plan.trips
            stats = writer.stats()
        assert stats == {
            "submitted": 2, "written": 1, "dropped": 1,
            "rotations": 0, "queued": 0,
        }
        with open(path, encoding="utf-8") as fh:
            survivors = [json.loads(line)["trace_id"] for line in fh]
        assert survivors == ["survivor-record-00"]

    def test_validation(self, tmp_path):
        with pytest.raises(ValueError):
            EventLogWriter(str(tmp_path / "x"), max_bytes=10)
        with pytest.raises(ValueError):
            EventLogWriter(str(tmp_path / "x"), queue_size=0)


class TestTraceBuffer:
    def test_ring_trims_oldest(self):
        ring = TraceBuffer(capacity=3)
        for i in range(5):
            ring.add(_record(f"trace-{i:032d}"))
        assert len(ring) == 3
        assert ring.get("trace-" + "0" * 31 + "0") is None
        assert ring.get(f"trace-{4:032d}") is not None

    def test_list_is_newest_first_without_spans(self):
        ring = TraceBuffer(capacity=8)
        ring.add(_record("a" * 32, spans={"name": "request:query"}))
        ring.add(_record("b" * 32))
        listing = ring.list()
        assert [r["trace_id"] for r in listing] == ["b" * 32, "a" * 32]
        assert all("spans" not in r for r in listing)

    def test_get_returns_a_copy(self):
        ring = TraceBuffer()
        ring.add(_record("c" * 32))
        ring.get("c" * 32)["outcome"] = "mutated"
        assert ring.get("c" * 32)["outcome"] == "ok"


# ---------------------------------------------------------------------------
# ContextVar propagation
# ---------------------------------------------------------------------------


class TestContextPropagation:
    def test_observed_scopes_the_context(self):
        tid = new_trace_id()
        assert current() is None
        with observed(Observation(trace_id=tid)) as obs:
            assert current() is obs
            assert current().trace_id == tid
        assert current() is None  # no leak past the request

    def test_fresh_thread_sees_no_foreign_context(self):
        """Each server worker thread gets its own ContextVar slot: one
        request's observation must be invisible to another thread."""
        seen: list = []
        with observed(Observation(trace_id=new_trace_id())):
            worker = threading.Thread(target=lambda: seen.append(current()))
            worker.start()
            worker.join()
        assert seen == [None]

    def test_engine_stamps_ambient_id_on_stats_fast_path(self):
        tid = new_trace_id()
        db = Database.from_xml(DOC)
        with observed(Observation(trace_id=tid)):
            stats = db.xpath(XPATH).stats
        assert stats.trace_id == tid
        assert db.xpath(XPATH).stats.trace_id is None  # outside: untagged

    def test_supervisor_attempts_tagged_with_trace_id(self):
        """Every retry leg of a supervised call carries the request id —
        the attempt chain in an error payload is joinable to its trace."""
        tid = new_trace_id()
        db = Database.from_xml(DOC)
        with FaultPlan(["strategy.linear:transient@nth=1"], seed=0) as plan:
            with observed(Observation(trace_id=tid)):
                result = db.xpath(XPATH, strategy="linear", retries=1)
        assert plan.trips
        stats = result.stats
        assert stats.trace_id == tid
        assert len(stats.attempts) == 2
        assert [a.trace_id for a in stats.attempts] == [tid, tid]
        assert stats.attempts[0].outcome == "transient"

    def test_engine_spans_nest_under_ambient_tracer(self):
        """The service middleware's open request root adopts the engine
        call's spans — one tree per request, not one per engine call."""
        tracer = Tracer()
        obs = Observation(tracer=tracer, trace_id=new_trace_id())
        db = Database.from_xml(DOC)
        with observed(obs):
            with obs.span("request:query"):
                db.xpath(XPATH)
        names = [span.name for span in tracer.root.iter_spans()]
        assert names[0] == "request:query"
        assert "query:xpath" in names
        assert any(name.startswith("strategy:xpath:") for name in names)


# ---------------------------------------------------------------------------
# the service: echo, retrieval, acceptance
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def traced_setup(tmp_path_factory):
    log_path = str(tmp_path_factory.mktemp("tracing") / "events.jsonl")
    event_log = EventLogWriter(log_path)
    service = QueryService(
        sampler=TraceSampler(head_rate=1.0, keep_errors=True),
        event_log=event_log,
    )
    srv = make_server(service)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield srv.server_address[1], service, log_path
    srv.shutdown()
    srv.server_close()
    thread.join(timeout=10)
    event_log.close()


def request(port, method, path, body=None, headers=None):
    """One HTTP exchange; returns (status, response headers, JSON)."""
    if isinstance(body, (dict, list)):
        body = json.dumps(body).encode()
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        conn.request(method, path, body=body, headers=headers or {})
        response = conn.getresponse()
        payload = response.read()
    finally:
        conn.close()
    return (
        response.status,
        dict(response.getheaders()),
        json.loads(payload) if payload else None,
    )


@pytest.fixture()
def traced_store(traced_setup):
    port, _, _ = traced_setup
    status, _, _ = request(port, "PUT", "/stores/tdocs", DOC.encode())
    assert status == 201
    yield "tdocs"
    request(port, "DELETE", "/stores/tdocs")


class TestServiceTraceEcho:
    def test_fresh_id_in_header_body_and_stats(self, traced_setup, traced_store):
        port, _, _ = traced_setup
        status, headers, payload = request(
            port, "POST", f"/stores/{traced_store}/query",
            {"kind": "xpath", "query": XPATH},
        )
        assert status == 200
        tid = payload["trace_id"]
        assert len(tid) == 32 and set(tid) <= set("0123456789abcdef")
        assert headers["X-Repro-Trace"] == tid
        assert payload["stats"]["trace_id"] == tid

    def test_client_supplied_id_round_trips(self, traced_setup, traced_store):
        port, _, _ = traced_setup
        mine = "client-trace-0042"
        status, headers, payload = request(
            port, "POST", f"/stores/{traced_store}/query",
            {"kind": "xpath", "query": XPATH},
            headers={"X-Repro-Trace": mine},
        )
        assert status == 200
        assert payload["trace_id"] == mine
        assert headers["X-Repro-Trace"] == mine

    @pytest.mark.parametrize(
        "bad", ["short", "x" * 200, "bad id with spaces", "crlf\r\nInjected: 1"]
    )
    def test_unusable_client_id_gets_a_fresh_one(
        self, traced_setup, traced_store, bad
    ):
        port, _, _ = traced_setup
        status, headers, payload = request(
            port, "POST", f"/stores/{traced_store}/query",
            {"kind": "xpath", "query": XPATH},
            headers={"X-Repro-Trace": bad.replace("\r\n", "")},
        )
        assert status == 200
        assert payload["trace_id"] != bad
        assert len(payload["trace_id"]) == 32

    def test_error_payload_carries_trace_id(self, traced_setup):
        port, _, _ = traced_setup
        status, headers, payload = request(
            port, "GET", "/stores/no-such-store"
        )
        assert status == 404
        assert payload["error"]["trace_id"] == headers["X-Repro-Trace"]

    def test_same_worker_thread_does_not_leak_ids(
        self, traced_setup, traced_store
    ):
        """Back-to-back requests on one keep-alive connection reuse one
        handler thread; each must still get its own trace id."""
        port, _, _ = traced_setup
        body = json.dumps({"kind": "xpath", "query": XPATH}).encode()
        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
        try:
            ids = []
            for _ in range(3):
                conn.request(
                    "POST", f"/stores/{traced_store}/query", body=body
                )
                response = conn.getresponse()
                ids.append(json.loads(response.read())["trace_id"])
        finally:
            conn.close()
        assert len(set(ids)) == 3


class TestTraceRetrieval:
    def test_debug_traces_listing(self, traced_setup, traced_store):
        port, service, _ = traced_setup
        _, _, payload = request(
            port, "POST", f"/stores/{traced_store}/query",
            {"kind": "xpath", "query": XPATH},
        )
        tid = payload["trace_id"]
        status, _, listing = request(port, "GET", "/debug/traces?limit=10")
        assert status == 200
        assert listing["sampler"] == service.sampler.describe()
        assert "event_log" in listing
        entry = next(t for t in listing["traces"] if t["trace_id"] == tid)
        assert entry["route"] == "query"
        assert entry["outcome"] == "ok"
        assert entry["store"] == traced_store
        assert "spans" not in entry  # span trees stay behind the id lookup

    def test_debug_trace_by_id_has_span_tree(self, traced_setup, traced_store):
        port, _, _ = traced_setup
        _, _, payload = request(
            port, "POST", f"/stores/{traced_store}/query",
            {"kind": "xpath", "query": XPATH, "strategy": "linear"},
        )
        tid = payload["trace_id"]
        status, _, got = request(port, "GET", f"/debug/traces/{tid}")
        assert status == 200
        record = got["trace"]
        assert record["schema"] == EVENT_SCHEMA
        assert record["retained_by"] == "head"
        assert record["strategy"] == "linear"
        spans = record["spans"]
        assert spans["name"] == "request:query"

        def names(node):
            yield node["name"]
            for child in node.get("children", ()):
                yield from names(child)

        assert "query:xpath" in list(names(spans))

    def test_unknown_trace_is_a_typed_404(self, traced_setup):
        port, _, _ = traced_setup
        status, _, payload = request(port, "GET", "/debug/traces/" + "f" * 32)
        assert status == 404
        assert payload["error"]["code"] == "trace-not-found"
        assert payload["error"]["trace_id"]  # even this error is traced

    def test_bad_limit_is_a_typed_400(self, traced_setup):
        port, _, _ = traced_setup
        status, _, payload = request(port, "GET", "/debug/traces?limit=bogus")
        assert status == 400
        assert payload["error"]["code"] == "bad-limit"

    def test_acceptance_failed_request_replays_with_failed_attempt(
        self, traced_setup, traced_store
    ):
        """The PR's acceptance path: a fault-injected failing request
        hands the client a trace id inside the typed error body, and
        both retrieval surfaces replay its span tree including the
        failed attempt."""
        from repro.cli import main

        port, service, log_path = traced_setup
        with FaultPlan(["strategy.linear:error@nth=1"], seed=0) as plan:
            status, headers, payload = request(
                port, "POST", f"/stores/{traced_store}/query",
                {"kind": "xpath", "query": XPATH, "strategy": "linear"},
            )
        assert plan.trips
        assert status == 500
        error = payload["error"]
        assert error["code"] == "injected-fault"
        tid = error["trace_id"]
        assert tid == headers["X-Repro-Trace"]

        # surface 1: the live ring buffer
        status, _, got = request(port, "GET", f"/debug/traces/{tid}")
        assert status == 200
        record = got["trace"]
        assert record["outcome"] == "error"
        assert record["retained_by"] == "error"
        assert record["error_code"] == "injected-fault"

        def names(node):
            yield node["name"]
            for child in node.get("children", ()):
                yield from names(child)

        tree = list(names(record["spans"]))
        assert tree[0] == "request:query"
        assert any("linear" in name for name in tree)  # the failed attempt

        # surface 2: the event log via the CLI (same record, from disk)
        assert service.event_log.flush(timeout=5.0)
        assert main(["trace", "show", tid, "--log", log_path]) == 0


# ---------------------------------------------------------------------------
# the repro trace CLI
# ---------------------------------------------------------------------------


@pytest.fixture()
def event_log_file(tmp_path):
    """A small hand-rolled event log with one span-bearing record."""
    from repro.obs.export import trace_to_dict

    tracer = Tracer()
    with tracer.span("request:query"):
        with tracer.span("query:xpath"):
            pass
    path = str(tmp_path / "events.jsonl")
    records = [
        _record("a" * 32, duration_ms=5.0),
        _record("b" * 32, duration_ms=50.0, spans=trace_to_dict(tracer.root)),
        _record("c" * 32, duration_ms=0.5),
    ]
    with open(path, "w", encoding="utf-8") as fh:
        fh.write("this line is corrupt{{{\n")  # skipped, not fatal
        for record in records:
            fh.write(json.dumps(record) + "\n")
    return path


class TestTraceCli:
    def test_list(self, event_log_file, capsys):
        from repro.cli import main

        assert main(["trace", "list", "--log", event_log_file]) == 0
        out = capsys.readouterr().out
        assert "a" * 32 in out and "c" * 32 in out

    def test_list_limit(self, event_log_file, capsys):
        from repro.cli import main

        assert main(
            ["trace", "list", "--log", event_log_file, "--limit", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert "c" * 32 in out and "a" * 32 not in out

    def test_show_renders_the_waterfall(self, event_log_file, capsys):
        from repro.cli import main

        assert main(["trace", "show", "b" * 32, "--log", event_log_file]) == 0
        out = capsys.readouterr().out
        assert "request:query" in out
        assert "query:xpath" in out

    def test_show_unknown_id_exits_1(self, event_log_file):
        from repro.cli import main

        assert main(["trace", "show", "nope", "--log", event_log_file]) == 1

    def test_top_ranks_by_duration(self, event_log_file, capsys):
        from repro.cli import main

        assert main(
            ["trace", "top", "--log", event_log_file, "--slowest", "2"]
        ) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines[0].startswith("b" * 32)
        assert lines[1].startswith("a" * 32)
        assert len(lines) == 2

    def test_missing_log_exits_2(self, tmp_path):
        from repro.cli import main

        missing = str(tmp_path / "nope.jsonl")
        assert main(["trace", "list", "--log", missing]) == 2
        assert main(["trace", "top", "--log", missing]) == 2


# ---------------------------------------------------------------------------
# OpenMetrics exposition lint
# ---------------------------------------------------------------------------


class TestOpenMetricsLint:
    def test_live_exposition_is_clean(self):
        METRICS.observe_duration("service.request", 0.012)
        METRICS.add("service.requests")
        text = render_openmetrics(METRICS)
        assert lint_openmetrics(text) == []

    def test_missing_eof_is_flagged(self):
        assert any(
            "EOF" in problem
            for problem in lint_openmetrics("repro_queries_total 1\n")
        )

    def test_nonmonotone_buckets_are_flagged(self):
        text = (
            "# TYPE repro_duration_seconds histogram\n"
            'repro_duration_seconds_bucket{name="x",le="0.1"} 5\n'
            'repro_duration_seconds_bucket{name="x",le="1"} 3\n'
            'repro_duration_seconds_bucket{name="x",le="+Inf"} 5\n'
            'repro_duration_seconds_count{name="x"} 5\n'
            'repro_duration_seconds_sum{name="x"} 1.0\n'
            "# EOF\n"
        )
        assert any("monoton" in p for p in lint_openmetrics(text))

    def test_missing_inf_bucket_is_flagged(self):
        text = (
            "# TYPE repro_duration_seconds histogram\n"
            'repro_duration_seconds_bucket{name="x",le="0.1"} 5\n'
            'repro_duration_seconds_count{name="x"} 5\n'
            'repro_duration_seconds_sum{name="x"} 1.0\n'
            "# EOF\n"
        )
        assert any("+Inf" in p for p in lint_openmetrics(text))

    def test_malformed_sample_is_flagged(self):
        assert lint_openmetrics("this is not a sample line\n# EOF\n")


# ---------------------------------------------------------------------------
# tracing under load
# ---------------------------------------------------------------------------


class TestLoadgenTracing:
    def test_scorecard_names_the_slowest_trace(self, tmp_path):
        from repro.service.loadgen import run_load

        log_path = str(tmp_path / "load-events.jsonl")
        event_log = EventLogWriter(log_path)
        service = QueryService(sampler=TraceSampler(), event_log=event_log)
        try:
            report = run_load(
                scenarios=["deep-tree"], fast=True, requests=12,
                concurrency=3, record=False, service=service,
            )
        finally:
            event_log.close()
        card = report["scenarios"]["deep-tree"]
        assert card["errors"] == 0
        tid = card["slowest_trace_id"]
        assert tid and len(tid) == 32
        assert card["slowest_ms"] >= card["p50_ms"]
        # the named trace is retrievable from the event log the run wrote
        with open(log_path, encoding="utf-8") as fh:
            logged = {json.loads(line)["trace_id"] for line in fh}
        assert tid in logged

    def test_bounded_writer_drops_and_counts_under_load(self, tmp_path):
        """The no-blocking invariant under pressure: with the writer
        stalled and a one-slot queue, a full load run still answers
        every request, and the backlog shows up as counted drops."""
        from repro.service.loadgen import run_load

        event_log = EventLogWriter(
            str(tmp_path / "stalled.jsonl"), queue_size=1
        )
        gate = threading.Event()
        inner = event_log._write_one
        event_log._write_one = (
            lambda record: (gate.wait(30.0), inner(record))[1]
        )
        try:
            report = run_load(
                scenarios=["deep-tree"], fast=True, requests=16,
                concurrency=4, record=False,
                service=QueryService(
                    sampler=TraceSampler(), event_log=event_log
                ),
            )
            card = report["scenarios"]["deep-tree"]
            assert card["requests"] == 16  # nobody blocked on telemetry
            assert card["errors"] == 0
            gate.set()
            event_log.flush(timeout=10.0)
            stats = event_log.stats()
            assert stats["dropped"] > 0
            assert stats["written"] + stats["dropped"] >= stats["submitted"]
        finally:
            gate.set()
            event_log.close()
