"""Cross-subsystem integration tests.

The paper's Figure 7 draws translation arrows between query languages;
these tests execute those arrows on shared workloads and check that
every route computes the same answers:

- Core XPath → {denotational, linear context-set, monadic datalog}
- conjunctive Core XPath → CQ → {Yannakakis, arc-consistency
  enumeration, Theorem 5.1 rewriting, bounded tree-width}
- twig patterns → {TwigStack, binary joins, AC, CQ backtracking,
  streaming Boolean}
- CQ → FO → naive model checking
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.consistency import solutions_with_pointers, is_tree_shaped
from repro.cq import (
    evaluate_backtracking,
    evaluate_bounded_treewidth,
    is_acyclic,
    yannakakis,
    yannakakis_unary,
)
from repro.logic import cq_to_fo
from repro.logic.fo import fo_query
from repro.rewrite import evaluate_via_rewriting
from repro.streaming import stream_match_twig, stream_select, tree_events
from repro.trees import random_tree
from repro.twigjoin import (
    binary_join_plan,
    holistic_via_arc_consistency,
    parse_twig,
    twig_stack,
)
from repro.workloads import random_cq, random_twig, random_xpath, xmark_like
from repro.xpath import (
    evaluate_query,
    evaluate_query_linear,
    is_conjunctive,
    parse_xpath,
    xpath_to_cq,
    xpath_to_datalog,
)
from repro.xpath.translate import evaluate_datalog_translation

from conftest import trees


class TestXPathRoutes:
    """Every implemented route for Core XPath agrees."""

    @given(trees(max_size=30), st.integers(min_value=0, max_value=400))
    @settings(max_examples=40, deadline=None)
    def test_three_routes(self, t, seed):
        expr = parse_xpath(random_xpath(3, seed=seed))
        reference = evaluate_query(expr, t)
        assert evaluate_query_linear(expr, t) == reference
        assert evaluate_datalog_translation(xpath_to_datalog(expr), t) == reference

    @given(trees(max_size=25), st.integers(min_value=0, max_value=300))
    @settings(max_examples=40, deadline=None)
    def test_conjunctive_routes(self, t, seed):
        expr = parse_xpath(random_xpath(3, negation_prob=0.0, seed=seed))
        if not is_conjunctive(expr):
            return
        reference = evaluate_query(expr, t)
        cq = xpath_to_cq(expr)
        assert is_acyclic(cq)  # Proposition 4.2's premise
        assert yannakakis_unary(cq, t) == reference
        assert {r[0] for r in evaluate_via_rewriting(cq, t)} == reference
        assert {r[0] for r in evaluate_bounded_treewidth(cq, t)} == reference
        if is_tree_shaped(cq):
            assert {r[0] for r in solutions_with_pointers(cq, t)} == reference


class TestCQRoutes:
    @given(trees(max_size=20), st.integers(min_value=0, max_value=300))
    @settings(max_examples=40, deadline=None)
    def test_five_evaluators(self, t, seed):
        q = random_cq(4, 3, seed=seed, head_arity=1)
        reference = evaluate_backtracking(q, t)
        assert evaluate_via_rewriting(q, t) == reference
        assert evaluate_bounded_treewidth(q, t) == reference
        if is_acyclic(q):
            assert yannakakis(q, t) == reference
        if is_tree_shaped(q):
            assert solutions_with_pointers(q, t) == reference

    @given(trees(max_size=12), st.integers(min_value=0, max_value=100))
    @settings(max_examples=25, deadline=None)
    def test_fo_route(self, t, seed):
        q = random_cq(3, 2, seed=seed, head_arity=1)
        expected = {r[0] for r in evaluate_backtracking(q, t)}
        assert fo_query(cq_to_fo(q), t, q.head[0]) == expected


class TestTwigRoutes:
    @given(trees(max_size=25), st.integers(min_value=0, max_value=300))
    @settings(max_examples=40, deadline=None)
    def test_all_twig_evaluators(self, t, seed):
        pattern = random_twig(4, seed=seed)
        cq = pattern.to_cq()
        reference = evaluate_backtracking(cq, t)
        assert twig_stack(pattern, t) == reference
        assert holistic_via_arc_consistency(pattern, t) == reference
        assert binary_join_plan(pattern, t) == reference
        assert stream_match_twig(pattern, tree_events(t)) == bool(reference)


class TestRealisticDocuments:
    """End-to-end runs on the XMark-like corpus."""

    XPATH_QUERIES = [
        "Child*[lab() = item]/Child[lab() = description]",
        "Child*[lab() = closed_auction]/Child[lab() = price]",
        "Child*[lab() = parlist]/Child+[lab() = keyword]",
    ]

    @pytest.mark.parametrize("text", XPATH_QUERIES)
    def test_xpath_on_xmark(self, text):
        t = xmark_like(40, seed=7)
        expr = parse_xpath(text)
        reference = evaluate_query(expr, t)
        assert evaluate_query_linear(expr, t) == reference
        # these queries are in the streamable fragment (label tests only)
        assert set(stream_select(expr, tree_events(t))) == reference

    def test_xpath_with_path_qualifier_on_xmark(self):
        t = xmark_like(40, seed=7)
        expr = parse_xpath("Child*[lab() = person][Child[lab() = profile]]")
        assert evaluate_query_linear(expr, t) == evaluate_query(expr, t)

    def test_twigs_on_xmark(self):
        t = xmark_like(40, seed=7)
        for text in ("//item[.//keyword]//description", "//person[profile]/name"):
            pattern = parse_twig(text)
            reference = evaluate_backtracking(pattern.to_cq(), t)
            assert twig_stack(pattern, t) == reference
            assert holistic_via_arc_consistency(pattern, t) == reference

    def test_datalog_on_xmark(self):
        from repro.datalog import evaluate, parse_program

        t = xmark_like(30, seed=2)
        prog = parse_program(
            """
            InItem(x) :- Lab:item(x).
            InItem(x) :- Child(y, x), InItem(y).
            Kw(x) :- InItem(x), Lab:keyword(x).
            % query: Kw
            """
        )
        expected = {
            v
            for v in t.nodes()
            if t.has_label(v, "keyword")
            and any(t.has_label(u, "item") for u in t.ancestors(v))
        }
        assert evaluate(prog, t) == expected
