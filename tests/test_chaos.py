"""The chaos differential harness: under any single injected fault the
library returns the clean answer or a typed ReproError — never a wrong
answer, never a foreign exception (docs/ROBUSTNESS.md)."""

from __future__ import annotations

import pytest

from repro.chaos import (
    ChaosScenario,
    chaos_sweep,
    default_documents,
    default_queries,
    fallback_demos,
    generate_scenarios,
    run_scenario,
)
from repro.errors import QueryError
from repro.faults import registered_sites


@pytest.fixture(scope="module")
def full_report():
    return chaos_sweep(seed=0)


class TestSweepContract:
    def test_sweep_is_large_and_covers_every_site(self, full_report):
        assert len(full_report.outcomes) >= 150
        assert full_report.uncovered_sites() == set()
        assert full_report.tripped_sites() == set(registered_sites())

    def test_no_wrong_answers_and_no_foreign_errors(self, full_report):
        assert full_report.violations() == []
        assert full_report.ok
        assert "OK" in full_report.summary()

    def test_recoveries_and_typed_errors_both_exercised(self, full_report):
        counts = full_report.by_status()
        assert counts.get("recovered", 0) > 0
        assert counts.get("typed-error", 0) > 0

    def test_sweep_is_seed_deterministic(self):
        first = chaos_sweep(seed=3, fast=True)
        second = chaos_sweep(seed=3, fast=True)
        assert [(o.scenario, o.status) for o in first.outcomes] == [
            (o.scenario, o.status) for o in second.outcomes
        ]

    def test_fast_sweep_still_touches_every_site(self):
        report = chaos_sweep(seed=0, fast=True)
        assert report.ok
        assert report.uncovered_sites() == set()
        assert len(report.outcomes) < 100  # genuinely trimmed


class TestScenarioGeneration:
    def test_matrix_spans_documents_queries_and_kinds(self):
        scenarios = generate_scenarios(seed=0)
        docs = {s.doc for s in scenarios}
        kinds = {s.kind for s in scenarios}
        fault_kinds = {s.spec.split(":")[1].split("@")[0] for s in scenarios}
        assert docs == set(default_documents())
        assert kinds == {"xpath", "twig", "cq", "datalog", "ingest",
                         "service", "corpus", "corpus-kill"}
        assert fault_kinds == {"error", "transient", "latency", "corrupt",
                               "kill"}

    def test_every_registered_site_has_scenarios(self):
        scenarios = generate_scenarios(seed=0)
        assert {s.site for s in scenarios} == set(registered_sites())

    def test_sites_filter_restricts_the_matrix(self):
        scenarios = generate_scenarios(seed=0, sites=["index.build"])
        assert {s.site for s in scenarios} == {"index.build"}

    def test_sites_filter_expands_globs_against_the_registry(self):
        scenarios = generate_scenarios(seed=0, sites=["strategy.*"])
        swept = {s.site for s in scenarios}
        assert swept == {
            s for s in registered_sites() if s.startswith("strategy.")
        }
        # and the scenarios carry the concrete strategy, never the glob
        assert all(s.strategy != "*" for s in scenarios)
        report = chaos_sweep(seed=0, sites=["strategy.*"], fast=True)
        assert report.ok and not report.violations()
        assert report.tripped_sites() == swept
        # coverage is held against the targeted subset, not the registry
        assert report.uncovered_sites() == set()

    def test_sites_filter_rejects_unknown_site(self):
        with pytest.raises(QueryError, match="unknown fault site"):
            generate_scenarios(seed=0, sites=["no.such.site"])

    def test_max_scenarios_caps_the_sweep(self):
        report = chaos_sweep(seed=0, max_scenarios=10)
        assert len(report.outcomes) == 10


class TestSingleScenarios:
    def test_engine_error_scenario_recovers_or_types(self):
        outcome = run_scenario(
            ChaosScenario(
                "strategy.linear",
                "strategy.linear:error@nth=1",
                "tiny", "xpath", default_queries()[0][1], 0, "linear",
            )
        )
        assert outcome.status == "typed-error"
        assert outcome.tripped

    def test_auto_engine_recovers_from_chosen_strategy_fault(self):
        from repro.engine import Database

        doc = default_documents()["tiny"]
        chosen = Database.from_xml(doc).plan("xpath", "Child+[lab() = b]").strategy
        outcome = run_scenario(
            ChaosScenario(
                f"strategy.{chosen}",
                f"strategy.{chosen}:error@nth=1",
                "tiny", "xpath", "Child+[lab() = b]", 0,
            )
        )
        assert outcome.status == "recovered"
        assert outcome.stats is not None
        assert len(outcome.stats.attempts) >= 2

    def test_ingestion_corrupt_scenarios_degrade_or_type(self):
        for site in ("xml.parse", "disk.read", "stream.events"):
            outcome = run_scenario(
                ChaosScenario(site, f"{site}:corrupt@nth=1", "wide", "ingest", site, 0)
            )
            assert outcome.status in ("typed-error", "degraded", "recovered"), (
                site, outcome.status, outcome.detail,
            )
            assert outcome.tripped, site

    def test_latency_scenarios_still_answer_correctly(self):
        outcome = run_scenario(
            ChaosScenario(
                "index.build", "index.build:latency@nth=1",
                "tiny", "xpath", "Child+[lab() = b]", 0,
            )
        )
        assert outcome.status == "recovered"


class TestFallbackDemos:
    @pytest.fixture(scope="class")
    def demos(self):
        return fallback_demos(seed=0)

    def test_every_engine_site_has_a_recovery_demo(self, demos):
        # ingestion, HTTP-boundary, telemetry and corpus sites have no
        # engine attempt chain; the sweep covers them through dedicated
        # drivers
        engine_sites = {
            s for s in registered_sites()
            if s not in ("xml.parse", "stream.events", "disk.read",
                         "disk.write", "disk.verify",
                         "service.decode", "service.handler",
                         "service.admission", "service.breaker",
                         "service.drain", "obs.sample", "obs.eventlog")
            and not s.startswith("corpus.")
        }
        assert set(demos) == engine_sites

    def test_demos_carry_attempt_chains_and_fault_sites(self, demos):
        for site, stats in demos.items():
            assert len(stats.attempts) >= 2, site
            assert stats.attempts[-1].outcome == "ok", site
            assert site in stats.faults, site

    def test_true_fallback_demo_exists_for_planner_choices(self, demos):
        # at least one demo shows the paper's redundancy: the chosen
        # strategy dies and a DIFFERENT one answers
        assert any(
            stats.fallback_from for stats in demos.values()
        ), "no demo fell back to a different strategy"


class TestColumnsChaos:
    """Single faults in the columnar paths and the plan cache never
    yield wrong answers — the chaos contract extended to the new sites.

    ``columns.*`` scenarios run the *faulted* database on the columnar
    backend against an object-path clean twin, so every outcome is also
    a columns-vs-objects differential under fault.
    """

    COLUMN_SITES = ("columns.build", "columns.semijoin", "planner.cache")

    def test_new_sites_are_registered(self):
        for site in self.COLUMN_SITES:
            assert site in registered_sites(), site

    def test_full_sweep_trips_column_sites_without_violations(self, full_report):
        for site in self.COLUMN_SITES:
            assert site in full_report.tripped_sites(), site
        assert not [
            o for o in full_report.violations()
            if o.scenario.site in self.COLUMN_SITES
        ]

    def test_column_scenarios_run_the_columnar_backend(self):
        scenarios = generate_scenarios(sites=["columns.*"])
        assert scenarios
        assert all(s.columns for s in scenarios)
        # everything else stays on the object path
        others = generate_scenarios(sites=["planner.*", "strategy.linear"])
        assert all(not s.columns for s in others)

    @pytest.mark.parametrize("site", COLUMN_SITES)
    def test_transient_fault_recovers_with_clean_answer(self, site):
        outcome = run_scenario(
            ChaosScenario(
                site, f"{site}:transient@nth=1",
                "tiny", "xpath", "Child+[lab() = b]", 0, "auto",
                site.startswith("columns."),
            )
        )
        assert outcome.status == "recovered", (site, outcome.detail)
        assert outcome.tripped

    @pytest.mark.parametrize("site", COLUMN_SITES)
    def test_error_fault_never_wrong_answer(self, site):
        outcome = run_scenario(
            ChaosScenario(
                site, f"{site}:error@nth=1",
                "wide", "twig", "//item[keyword]", 0, "auto",
                site.startswith("columns."),
            )
        )
        assert outcome.status in ("recovered", "typed-error", "match"), (
            site, outcome.status, outcome.detail,
        )

    def test_column_sites_have_fallback_demos(self):
        demos = fallback_demos(seed=0)
        for site in ("columns.build", "columns.semijoin"):
            stats = demos[site]
            assert len(stats.attempts) >= 2, site
            assert stats.attempts[-1].outcome == "ok", site
            assert site in stats.faults, site


@pytest.mark.service
class TestServiceChaos:
    """The chaos contract extended over the HTTP boundary: a fault in
    the request path yields a typed error response or the clean answer.
    Request-path scenarios share one live server per sweep
    (``ServiceHarness``); ``service.drain`` boots its own per scenario
    (docs/SERVICE.md)."""

    SERVICE_SITES = (
        "service.decode", "service.handler",
        "service.admission", "service.breaker",
    )

    def test_new_sites_are_registered(self):
        for site in self.SERVICE_SITES:
            assert site in registered_sites(), site

    def test_full_sweep_trips_service_sites_without_violations(self, full_report):
        for site in self.SERVICE_SITES:
            assert site in full_report.tripped_sites(), site
        assert not [
            o for o in full_report.violations()
            if o.scenario.site in self.SERVICE_SITES
        ]

    @pytest.mark.parametrize("site", SERVICE_SITES)
    def test_error_fault_becomes_typed_http_error(self, site):
        outcome = run_scenario(
            ChaosScenario(
                site, f"{site}:error@nth=1",
                "tiny", "service", site, 0,
            )
        )
        assert outcome.status == "typed-error", (site, outcome.detail)
        assert outcome.tripped
        assert "injected-fault" in outcome.detail

    @pytest.mark.parametrize("site", SERVICE_SITES)
    def test_transient_fault_recovers_via_client_retry(self, site):
        outcome = run_scenario(
            ChaosScenario(
                site, f"{site}:transient@nth=1",
                "tiny", "service", site, 0,
            )
        )
        assert outcome.status == "recovered", (site, outcome.detail)
        assert outcome.tripped

    def test_corrupt_body_never_silently_wrong(self):
        outcome = run_scenario(
            ChaosScenario(
                "service.decode", "service.decode:corrupt@nth=1",
                "tiny", "service", "service.decode", 0,
            )
        )
        assert outcome.status in ("recovered", "typed-error"), outcome.detail
        assert outcome.tripped

    def test_scenarios_share_one_harness(self):
        """A shared harness serves several scenarios back to back with
        no state bleed: each still recovers or types independently."""
        from repro.chaos import ServiceHarness

        harness = ServiceHarness()
        try:
            for site in self.SERVICE_SITES:
                for kind in ("error", "transient"):
                    outcome = run_scenario(
                        ChaosScenario(
                            site, f"{site}:{kind}@nth=1",
                            "tiny", "service", site, 0,
                        ),
                        harness=harness,
                    )
                    expected = (
                        "typed-error" if kind == "error" else "recovered"
                    )
                    assert outcome.status == expected, (
                        site, kind, outcome.detail,
                    )
                    assert outcome.tripped, (site, kind)
        finally:
            harness.close()


@pytest.mark.service
class TestDrainChaos:
    """``service.drain`` faults degrade to an immediate close — never a
    hang, never an untyped escape — and stragglers always get the typed
    503 ``draining`` refusal."""

    def test_drain_fault_degrades(self):
        outcome = run_scenario(
            ChaosScenario(
                "service.drain", "service.drain:error@nth=1",
                "tiny", "service", "service.drain", 0,
            )
        )
        assert outcome.status == "degraded", outcome.detail
        assert outcome.tripped

    def test_drain_latency_still_clean(self):
        outcome = run_scenario(
            ChaosScenario(
                "service.drain", "service.drain:latency@nth=1",
                "tiny", "service", "service.drain", 0,
            )
        )
        assert outcome.status == "recovered", outcome.detail
        assert outcome.tripped


class TestDiskCrashSafety:
    """``disk.write`` / ``disk.verify`` chaos: a faulted write leaves
    the previous version loadable; a corrupted verify raises the typed
    checksum error — the crash-safety differential."""

    def test_write_fault_preserves_previous_version(self):
        for kind in ("error", "corrupt"):
            outcome = run_scenario(
                ChaosScenario(
                    "disk.write", f"disk.write:{kind}@nth=1",
                    "tiny", "ingest", "disk.write", 0,
                )
            )
            assert outcome.status == "typed-error", (kind, outcome.detail)
            assert outcome.tripped, kind

    def test_write_transient_retries_to_new_version(self):
        outcome = run_scenario(
            ChaosScenario(
                "disk.write", "disk.write:transient@nth=1",
                "tiny", "ingest", "disk.write", 0,
            )
        )
        assert outcome.status == "recovered", outcome.detail
        assert outcome.tripped

    def test_verify_corruption_is_typed(self):
        outcome = run_scenario(
            ChaosScenario(
                "disk.verify", "disk.verify:corrupt@nth=1",
                "tiny", "ingest", "disk.verify", 0,
            )
        )
        assert outcome.status == "typed-error", outcome.detail
        assert outcome.tripped


@pytest.mark.service
class TestThreadLeakCheck:
    def test_sweep_reports_no_leaked_threads(self):
        report = chaos_sweep(seed=0, sites=["service.*"], fast=True)
        assert report.ok
        assert report.leaked_threads == []
