"""Tests for XASR, structural joins, and labeling schemes (Section 2)."""

import pytest
from hypothesis import given, settings

from repro.errors import QueryError
from repro.storage import (
    DietzLabeling,
    IntervalLabeling,
    OrdpathLabeling,
    Table,
    XASR,
    merge_structural_join,
    nested_loop_join,
    stack_structural_join,
    transitive_closure_pairs,
)
from repro.storage.structural_join import following_join
from repro.trees import Tree, random_tree

from conftest import trees


class TestTable:
    def test_schema_validation(self):
        with pytest.raises(QueryError):
            Table(("a", "a"))
        with pytest.raises(QueryError):
            Table(("a", "b"), [(1,)])

    def test_select_project(self):
        t = Table(("x", "y"), [(1, 2), (3, 4), (5, 2)])
        assert t.select(lambda r: r["y"] == 2).rows == [(1, 2), (5, 2)]
        assert t.project(["y"]).rows == [(2,), (4,)]

    def test_theta_join_example_2_1_semantics(self):
        t = Table(("pre", "post"), [(1, 3), (2, 1), (3, 2)])
        joined = t.theta_join(
            t, lambda r1, r2: r1["pre"] < r2["pre"] and r2["post"] < r1["post"]
        )
        assert set(joined.project(["pre", "pre_r"], dedup=False).rows) == {
            (1, 2),
            (1, 3),
        }

    def test_equi_join(self):
        left = Table(("a", "b"), [(1, 10), (2, 20)])
        right = Table(("b", "c"), [(10, "x"), (10, "y")])
        out = left.equi_join(right, "b", "b")
        assert len(out) == 2
        assert out.columns == ("a", "b", "b_r", "c")

    def test_order_by_and_distinct(self):
        t = Table(("x",), [(3,), (1,), (3,)])
        assert t.order_by("x").rows == [(1,), (3,), (3,)]
        assert t.distinct().rows == [(3,), (1,)]

    def test_pretty(self):
        text = Table(("pre", "lab"), [(1, "a")]).pretty()
        assert "pre" in text and "a" in text


class TestXASR:
    def test_figure_2_verbatim(self, paper_tree):
        """The XASR table of Figure 2(b), row by row."""
        x = XASR.from_tree(paper_tree)
        assert x.table.rows == [
            (1, 7, None, "a"),
            (2, 3, 1, "b"),
            (3, 1, 2, "a"),
            (4, 2, 2, "c"),
            (5, 6, 1, "a"),
            (6, 4, 5, "b"),
            (7, 5, 5, "d"),
        ]

    def test_descendant_view(self, paper_tree):
        x = XASR.from_tree(paper_tree)
        got = set(x.descendant_pairs().rows)
        expected = {
            (u + 1, v + 1)
            for u in paper_tree.nodes()
            for v in paper_tree.descendants(u)
        }
        assert got == expected

    def test_child_view(self, paper_tree):
        x = XASR.from_tree(paper_tree)
        got = set(x.child_pairs().rows)
        expected = {
            (paper_tree.parent[v] + 1, v + 1) for v in range(1, paper_tree.n)
        }
        assert got == expected

    @given(trees(max_size=30))
    @settings(max_examples=25, deadline=None)
    def test_views_on_random_trees(self, t):
        x = XASR.from_tree(t)
        assert set(x.descendant_pairs().rows) == {
            (u + 1, v + 1) for u in t.nodes() for v in t.descendants(u)
        }


class TestStructuralJoins:
    @given(trees(max_size=60))
    @settings(max_examples=30, deadline=None)
    def test_three_algorithms_agree(self, t):
        labels = [(v, t.post[v]) for v in t.nodes()]
        expected = set(nested_loop_join(labels, labels))
        assert set(stack_structural_join(labels, labels)) == expected
        assert set(merge_structural_join(labels, labels)) == expected

    @given(trees(max_size=60))
    @settings(max_examples=25, deadline=None)
    def test_join_equals_transitive_closure(self, t):
        labels = [(v, t.post[v]) for v in t.nodes()]
        join = {(a[0], d[0]) for a, d in stack_structural_join(labels, labels)}
        assert join == transitive_closure_pairs(t)

    def test_label_filtered_inputs(self):
        t = random_tree(60, seed=4)
        ancestors = [(v, t.post[v]) for v in t.nodes_with_label("a")]
        descendants = [(v, t.post[v]) for v in t.nodes_with_label("b")]
        got = set(stack_structural_join(ancestors, descendants))
        expected = {
            ((u, t.post[u]), (v, t.post[v]))
            for u in t.nodes_with_label("a")
            for v in t.nodes_with_label("b")
            if t.is_descendant(u, v)
        }
        assert got == expected

    def test_output_sorted_by_descendant(self):
        t = random_tree(40, seed=2)
        labels = [(v, t.post[v]) for v in t.nodes()]
        out = stack_structural_join(labels, labels)
        descendant_pres = [d[0] for _a, d in out]
        assert descendant_pres == sorted(descendant_pres)

    @given(trees(max_size=40))
    @settings(max_examples=20, deadline=None)
    def test_following_join(self, t):
        labels = [(v, t.post[v]) for v in t.nodes()]
        got = {(l[0], r[0]) for l, r in following_join(labels, labels)}
        expected = {
            (u, v) for u in t.nodes() for v in t.nodes() if t.is_following(u, v)
        }
        assert got == expected

    def test_empty_inputs(self):
        assert stack_structural_join([], [(1, 2)]) == []
        assert stack_structural_join([(1, 2)], []) == []


class TestLabelings:
    @given(trees(max_size=40))
    @settings(max_examples=25, deadline=None)
    def test_all_schemes_decide_ancestor(self, t):
        il, op, dz = IntervalLabeling(t), OrdpathLabeling(t), DietzLabeling(t)
        for u in t.nodes():
            for v in t.nodes():
                expected = t.is_descendant(u, v)
                assert il.is_ancestor(il.label_of(u), il.label_of(v)) == expected
                assert op.is_ancestor(op.label_of(u), op.label_of(v)) == expected
                assert dz.is_ancestor(dz.label_of(u), dz.label_of(v)) == expected

    @given(trees(max_size=40))
    @settings(max_examples=25, deadline=None)
    def test_all_schemes_decide_following(self, t):
        il, op, dz = IntervalLabeling(t), OrdpathLabeling(t), DietzLabeling(t)
        for u in t.nodes():
            for v in t.nodes():
                expected = t.is_following(u, v)
                assert il.is_following(il.label_of(u), il.label_of(v)) == expected
                assert op.is_following(op.label_of(u), op.label_of(v)) == expected
                assert dz.is_following(dz.label_of(u), dz.label_of(v)) == expected

    @given(trees(max_size=30))
    @settings(max_examples=25, deadline=None)
    def test_document_order_keys(self, t):
        il, op = IntervalLabeling(t), OrdpathLabeling(t)
        il_keys = [il.document_order_key(il.label_of(v)) for v in t.nodes()]
        op_keys = [op.document_order_key(op.label_of(v)) for v in t.nodes()]
        assert il_keys == sorted(il_keys)
        assert op_keys == sorted(op_keys)

    def test_interval_parent_test(self, paper_tree):
        il = IntervalLabeling(paper_tree)
        assert il.is_parent(il.label_of(1), il.label_of(2))
        assert not il.is_parent(il.label_of(0), il.label_of(2))

    def test_interval_bits_per_label(self):
        t = random_tree(100, seed=1)
        assert IntervalLabeling(t).bits_per_label() == 3 * 7

    def test_dietz_insert_leaf(self):
        t = Tree.from_tuple(("a", ["b", "c"]))
        dz = DietzLabeling(t, gap=16)
        new = dz.insert_leaf_label(0)
        assert new is not None
        new_pre, new_post = new
        p_pre, p_post = dz.label_of(0)
        assert p_pre < new_pre and new_post < p_post
        # still after the last existing child
        last_pre, last_post = dz.label_of(2)
        assert last_post < new_post

    def test_dietz_gap_exhaustion(self):
        t = Tree.from_tuple(("a", ["b"]))
        dz = DietzLabeling(t, gap=2)
        # repeated inserts cannot be accommodated forever without renumber
        label = dz.insert_leaf_label(0)
        assert label is None or isinstance(label, tuple)

    def test_ordpath_between(self):
        left, right = (1, 3), (1, 5)
        mid = OrdpathLabeling.between(left, right)
        assert left < mid < right
        # adjacent labels: caret in
        left, right = (1, 3), (1, 5)
        mid2 = OrdpathLabeling.between((1, 3), (1, 5))
        assert mid2 == (1, 4, 1)

    def test_ordpath_between_adjacent(self):
        mid = OrdpathLabeling.between((1, 1), (1, 3))
        assert (1, 1) < mid < (1, 3)

    def test_ordpath_root(self):
        t = Tree.from_tuple(("a", ["b"]))
        op = OrdpathLabeling(t)
        assert op.label_of(0) == (1,)
        assert op.label_of(1) == (1, 1)

    def test_dietz_invalid_gap(self):
        with pytest.raises(ValueError):
            DietzLabeling(Tree.from_tuple("a"), gap=1)


class TestDiskstoreHardening:
    """Corrupt or truncated .rtre stores must fail with typed errors
    naming the problem (and the path, at the file layer) — never a raw
    struct.error, OSError or array size mismatch."""

    def _dumped(self):
        from repro.storage import dumps_tree

        return dumps_tree(Tree.from_tuple(("a", [("b", ["c"]), "d"])))

    def _payload(self, data=None):
        """The serialized bytes without the 12-byte checksum trailer —
        structure-corruption tests target the parse layer beneath the
        CRC check (which would otherwise catch the damage first)."""
        from repro.storage.diskstore import _TRAILER_LEN

        return (data if data is not None else self._dumped())[:-_TRAILER_LEN]

    def test_every_payload_truncation_is_a_parse_error(self):
        from repro.errors import ParseError
        from repro.storage import loads_tree

        payload = self._payload()
        for cut in range(len(payload)):
            with pytest.raises(ParseError):
                loads_tree(payload[:cut])

    def test_trailer_truncations_still_load_as_legacy(self):
        # shaving only trailer bytes leaves a well-formed legacy blob —
        # files written before the trailer existed must keep loading
        from repro.storage import loads_tree

        data = self._dumped()
        for cut in range(len(self._payload(data)), len(data)):
            assert loads_tree(data[:cut]) is not None

    def test_bad_magic(self):
        from repro.errors import ParseError
        from repro.storage import loads_tree

        with pytest.raises(ParseError, match="magic"):
            loads_tree(b"NOPE" + self._payload()[4:])

    def test_unsupported_version(self):
        import struct

        from repro.errors import ParseError
        from repro.storage import loads_tree

        data = bytearray(self._payload())
        data[4:8] = struct.pack("<I", 99)
        with pytest.raises(ParseError, match="version"):
            loads_tree(bytes(data))

    def test_undecodable_label_table(self):
        from repro.errors import ParseError
        from repro.storage import dumps_tree, loads_tree

        data = bytearray(
            self._payload(dumps_tree(Tree.from_tuple(("aaaa", ["bbbb"]))))
        )
        # corrupt the first label's bytes into invalid UTF-8
        idx = data.index(b"aaaa")
        data[idx:idx + 4] = b"\xff\xfe\xfd\xfc"
        with pytest.raises(ParseError, match="label"):
            loads_tree(bytes(data))

    def test_load_tree_missing_file_is_storage_error_with_path(self, tmp_path):
        from repro.errors import StorageError
        from repro.storage import load_tree

        missing = str(tmp_path / "absent.rtre")
        with pytest.raises(StorageError, match="absent.rtre"):
            load_tree(missing)

    def test_load_tree_truncated_file_names_the_path(self, tmp_path):
        from repro.errors import ParseError
        from repro.storage import load_tree

        path = tmp_path / "cut.rtre"
        path.write_bytes(self._dumped()[:10])
        with pytest.raises(ParseError, match="cut.rtre"):
            load_tree(str(path))

    @given(trees(max_size=20))
    @settings(max_examples=25, deadline=None)
    def test_round_trip_survives(self, t):
        from repro.storage import dumps_tree, loads_tree

        assert loads_tree(dumps_tree(t)) == t


class TestCrashSafeStore:
    """The checksum trailer and atomic-write guarantees of dump_tree
    (docs/ROBUSTNESS.md): torn or bit-flipped files fail typed with the
    path and offset; pre-trailer files keep loading; a failed write
    never clobbers the previous version."""

    TREE = Tree.from_tuple(("a", [("b", ["c"]), "d"]))

    def test_dump_carries_a_verifiable_trailer(self):
        from repro.storage import dumps_tree
        from repro.storage.diskstore import _TRAILER_LEN, _TRAILER_MAGIC

        data = dumps_tree(self.TREE)
        assert data[-_TRAILER_LEN:-8] == _TRAILER_MAGIC

    def test_bitflip_raises_checksum_error_with_path_and_offset(self, tmp_path):
        from repro.errors import StorageError
        from repro.storage import dump_tree, load_tree
        from repro.storage.diskstore import _TRAILER_LEN

        path = tmp_path / "doc.rtre"
        dump_tree(self.TREE, str(path))
        data = bytearray(path.read_bytes())
        offset = len(data) - _TRAILER_LEN
        data[10] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(StorageError) as err:
            load_tree(str(path))
        message = str(err.value)
        assert "doc.rtre" in message and "checksum" in message
        assert f"offset {offset}" in message

    def test_legacy_trailerless_file_still_loads(self, tmp_path):
        from repro.storage import dump_tree, load_tree, verify_store
        from repro.storage.diskstore import _TRAILER_LEN

        path = tmp_path / "old.rtre"
        dump_tree(self.TREE, str(path))
        path.write_bytes(path.read_bytes()[:-_TRAILER_LEN])
        assert load_tree(str(path)).label == self.TREE.label
        assert verify_store(str(path))["checksum"] == "legacy"

    def test_verify_store_summary(self, tmp_path):
        from repro.storage import dump_tree, verify_store

        path = tmp_path / "doc.rtre"
        size = dump_tree(self.TREE, str(path))
        summary = verify_store(str(path))
        assert summary["checksum"] == "ok"
        assert summary["nodes"] == self.TREE.n
        assert summary["bytes"] == size
        assert summary["path"] == str(path)

    def test_failed_replace_keeps_previous_version(self, tmp_path, monkeypatch):
        import os as _os

        from repro.errors import StorageError
        from repro.storage import dump_tree, load_tree
        from repro.trees.tree import Tree as _Tree

        path = tmp_path / "doc.rtre"
        dump_tree(self.TREE, str(path))

        def explode(src, dst):
            raise OSError("disk on fire")

        monkeypatch.setattr(_os, "replace", explode)
        with pytest.raises(StorageError, match="doc.rtre"):
            dump_tree(_Tree.from_tuple(("x", ["y"])), str(path))
        monkeypatch.undo()
        assert load_tree(str(path)).label == self.TREE.label
        assert not (tmp_path / "doc.rtre.tmp").exists()

    def test_corrupted_write_never_replaces_the_destination(self, tmp_path):
        from repro.errors import StorageError
        from repro.faults import FaultPlan
        from repro.storage import dump_tree, load_tree
        from repro.trees.tree import Tree as _Tree

        path = tmp_path / "doc.rtre"
        dump_tree(self.TREE, str(path))
        with FaultPlan(["disk.write:corrupt@nth=1"], seed=3):
            with pytest.raises(StorageError):
                dump_tree(_Tree.from_tuple(("x", ["y"])), str(path))
        # the readback check fired before os.replace: v1 survives
        assert load_tree(str(path)).label == self.TREE.label
        assert not (tmp_path / "doc.rtre.tmp").exists()
