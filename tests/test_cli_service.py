"""Table-driven CLI exit codes for the service era (satellite 3).

The exit-code contract (module docstring of :mod:`repro.cli`): 0 ok,
1 error/disagreement, 2 bad arguments/engine, 3 budget exceeded,
4 supervision exhausted.  This table pins the fault, budget and
serve/load argument-validation paths in one place.
"""

from __future__ import annotations

import os

import pytest

from repro.cli import main as cli_main

DOC = (
    "<site><item><name/><keyword/></item>"
    "<item><name/></item>"
    "<people><person><profile/><name/></person></people></site>"
)

XPATH = "Child*[lab() = item]/Child[lab() = name]"


@pytest.fixture
def doc(tmp_path):
    path = os.path.join(tmp_path, "doc.xml")
    with open(path, "w") as fh:
        fh.write(DOC)
    return path


#: (id, argv-builder, expected exit code); {doc} is the document path
EXIT_TABLE = [
    ("ok-baseline",
     lambda doc: ["xpath", XPATH, doc], 0),
    ("parse-fault-exit-4",
     lambda doc: ["xpath", XPATH, doc, "--fault", "query.parse:error@nth=1"], 4),
    ("strategy-fault-exit-4",
     lambda doc: ["xpath", XPATH, doc, "--engine", "linear",
                  "--fault", "strategy.linear:error@nth=1"], 4),
    ("all-strategies-exhausted-exit-4",
     lambda doc: ["xpath", XPATH, doc, "--on-error", "fallback",
                  "--fault", "strategy.*:error@every=1"], 4),
    ("budget-visits-exit-3",
     lambda doc: ["xpath", XPATH, doc, "--engine", "linear",
                  "--max-visited", "1"], 3),
    ("budget-deadline-exit-3",
     lambda doc: ["xpath", XPATH, doc, "--engine", "linear",
                  "--deadline-ms", "0"], 3),
    ("partial-never-fails-exit-0",
     lambda doc: ["xpath", XPATH, doc, "--on-error", "partial",
                  "--fault", "strategy.*:error@every=1"], 0),
    ("recovered-transient-exit-0",
     lambda doc: ["xpath", XPATH, doc, "--engine", "linear", "--retries", "2",
                  "--fault", "strategy.linear:transient@nth=1"], 0),
    ("serve-port-out-of-range-exit-2",
     lambda doc: ["serve", "--port", "99999"], 2),
    ("serve-bad-store-spec-exit-2",
     lambda doc: ["serve", "--store", "nameonly"], 2),
    ("serve-store-missing-path-exit-2",
     lambda doc: ["serve", "--store", "name="], 2),
    ("load-zero-requests-exit-2",
     lambda doc: ["load", "--requests", "0"], 2),
    ("load-zero-concurrency-exit-2",
     lambda doc: ["load", "--concurrency", "0"], 2),
    ("load-unknown-scenario-exit-2",
     lambda doc: ["load", "--scenario", "nope"], 2),
    ("load-missing-baseline-exit-2",
     lambda doc: ["load", "--baseline", "/no/such/LOADTEST.json"], 2),
    ("serve-zero-max-concurrency-exit-2",
     lambda doc: ["serve", "--max-concurrency", "0"], 2),
    ("serve-negative-queue-limit-exit-2",
     lambda doc: ["serve", "--queue-limit", "-1"], 2),
    ("serve-negative-drain-exit-2",
     lambda doc: ["serve", "--drain-s", "-1"], 2),
    ("load-zero-max-concurrency-exit-2",
     lambda doc: ["load", "--max-concurrency", "0"], 2),
    ("load-negative-shed-tolerance-exit-2",
     lambda doc: ["load", "--shed-tolerance", "-0.5"], 2),
    ("store-verify-missing-file-exit-1",
     lambda doc: ["store", "verify", "/no/such/store.rtre"], 1),
]


@pytest.mark.parametrize(
    "argv_for,expected", [(row[1], row[2]) for row in EXIT_TABLE],
    ids=[row[0] for row in EXIT_TABLE],
)
def test_exit_code_table(doc, capsys, argv_for, expected):
    assert cli_main(argv_for(doc)) == expected
    capsys.readouterr()  # drain


class TestStoreVerifyCommand:
    """``repro store verify``: exit 0 with a summary line per OK file,
    exit 1 naming each corrupt or unreadable one."""

    def _store(self, tmp_path, name="doc.rtre"):
        from repro.storage import dump_tree
        from repro.trees.xmlio import parse_xml

        path = os.path.join(tmp_path, name)
        dump_tree(parse_xml(DOC), path)
        return path

    def test_ok_store_exit_0(self, tmp_path, capsys):
        path = self._store(tmp_path)
        assert cli_main(["store", "verify", path]) == 0
        out = capsys.readouterr().out
        assert "OK" in out and "checksum ok" in out

    def test_corrupt_store_exit_1_names_the_file(self, tmp_path, capsys):
        path = self._store(tmp_path)
        with open(path, "r+b") as fh:
            fh.seek(10)
            byte = fh.read(1)
            fh.seek(10)
            fh.write(bytes([byte[0] ^ 0xFF]))
        assert cli_main(["store", "verify", path]) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out and "doc.rtre" in out

    def test_mixed_batch_exit_1_but_reports_both(self, tmp_path, capsys):
        good = self._store(tmp_path, "good.rtre")
        bad = os.path.join(tmp_path, "missing.rtre")
        assert cli_main(["store", "verify", good, bad]) == 1
        out = capsys.readouterr().out
        assert "OK" in out and "FAIL" in out


@pytest.mark.service
class TestLoadCommand:
    def test_fast_load_writes_and_passes_own_baseline(self, tmp_path, capsys):
        argv = ["load", "--fast", "--scenario", "deep-tree",
                "--requests", "8", "--concurrency", "2",
                "--write", "--out", str(tmp_path)]
        assert cli_main(argv) == 0
        out = capsys.readouterr()
        assert "deep-tree" in out.out
        written = [p for p in os.listdir(tmp_path) if p.startswith("LOADTEST_")]
        assert written == ["LOADTEST_0001.json"]
        baseline = os.path.join(tmp_path, written[0])
        assert cli_main(argv[:-3] + ["--baseline", baseline]) == 0
