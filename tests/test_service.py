"""The HTTP query service, over real sockets.

Boots the threaded server on an ephemeral port once per module and
drives it with plain ``http.client`` connections: endpoint coverage,
the typed error taxonomy (HTTP twins of the CLI exit codes), the two
service fault-injection sites, and a concurrent smoke test showing N
simultaneous HTTP clients get byte-identical answers.

The fault tests pin the headline robustness property: an armed
:class:`~repro.faults.FaultPlan` (deliberately process-global, so a
plan armed on the test thread trips the server's worker threads) makes
the service answer *degraded, typed* errors — never wrong answers.
"""

from __future__ import annotations

import http.client
import json
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.engine import Database
from repro.faults import FaultPlan
from repro.service import QueryService, make_server

pytestmark = pytest.mark.service

DOC = (
    "<site><item><name/><keyword/></item>"
    "<item><name/></item>"
    "<people><person><profile/><name/></person></people></site>"
)

XPATH = "Child*[lab() = item]/Child[lab() = name]"


@pytest.fixture(scope="module")
def server():
    srv = make_server(QueryService())
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield srv
    srv.shutdown()
    srv.server_close()
    thread.join(timeout=10)


@pytest.fixture(scope="module")
def port(server):
    return server.server_address[1]


def request(port, method, path, body=None, raw=False):
    """One HTTP exchange; returns (status, parsed JSON | raw bytes)."""
    if isinstance(body, (dict, list)):
        body = json.dumps(body).encode()
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        conn.request(method, path, body=body)
        response = conn.getresponse()
        payload = response.read()
    finally:
        conn.close()
    if raw:
        return response.status, payload
    return response.status, (json.loads(payload) if payload else None)


@pytest.fixture()
def store(port):
    """A fresh 'docs' store for each test; dropped afterwards."""
    status, _ = request(port, "PUT", "/stores/docs", DOC.encode())
    assert status == 201
    yield "docs"
    request(port, "DELETE", "/stores/docs")


class TestEndpoints:
    def test_healthz(self, port):
        status, payload = request(port, "GET", "/healthz")
        assert status == 200 and payload["ok"] is True

    def test_store_lifecycle(self, port):
        status, payload = request(port, "PUT", "/stores/life", DOC.encode())
        assert status == 201
        assert payload["store"]["nodes"] == 10
        assert payload["store"]["replaced"] is False

        status, payload = request(port, "GET", "/stores")
        assert status == 200
        assert "life" in [s["name"] for s in payload["stores"]]

        status, payload = request(port, "GET", "/stores/life")
        assert status == 200 and payload["store"]["queries_served"] == 0

        status, payload = request(port, "PUT", "/stores/life", DOC.encode())
        assert status == 201 and payload["store"]["replaced"] is True

        status, payload = request(port, "DELETE", "/stores/life")
        assert status == 200 and payload["deleted"] == "life"
        assert request(port, "GET", "/stores/life")[0] == 404

    @pytest.mark.parametrize(
        "body",
        [
            {"kind": "xpath", "query": XPATH},
            {"kind": "twig", "query": "//item/name"},
            {"kind": "cq", "query": "ans(y) :- Child(x, y), Lab:item(x), Lab:name(y)"},
            {"kind": "datalog", "query": "Q(x) :- Lab:name(x).", "query_pred": "Q"},
        ],
        ids=["xpath", "twig", "cq", "datalog"],
    )
    def test_each_language_matches_direct_engine(self, port, store, body):
        from repro.service.protocol import encode_answer

        db = Database.from_xml(DOC)
        if body["kind"] == "datalog":
            expected = db.datalog(body["query"], query_pred="Q").answer
        else:
            expected = db.run(body["kind"], body["query"]).answer
        status, payload = request(port, "POST", f"/stores/{store}/query", body)
        assert status == 200
        assert payload["answer"] == encode_answer(expected)
        assert payload["stats"]["strategy"]

    def test_query_with_supervision_keywords(self, port, store):
        body = {
            "kind": "xpath", "query": XPATH,
            "deadline_ms": 60_000, "retries": 1, "on_error": "fallback",
        }
        status, payload = request(port, "POST", f"/stores/{store}/query", body)
        assert status == 200 and payload["stats"]["degraded"] is False

    def test_batch_mixed_outcomes(self, port, store):
        body = {"queries": [
            {"kind": "xpath", "query": XPATH},
            {"kind": "xpath", "query": "(("},
            {"kind": "nope", "query": "x"},
        ]}
        status, payload = request(port, "POST", f"/stores/{store}/batch", body)
        assert status == 200
        assert payload["total"] == 3 and payload["failed"] == 2
        ok, bad_parse, bad_kind = payload["results"]
        assert ok["ok"] is True and ok["answer"] == [2, 5]
        assert bad_parse["ok"] is False
        assert bad_parse["error"]["code"] == "parse-error"
        assert bad_kind["ok"] is False
        assert bad_kind["error"]["code"] == "bad-request"

    def test_metrics_exposition(self, port, store):
        request(port, "POST", f"/stores/{store}/query",
                {"kind": "xpath", "query": XPATH})
        status, payload = request(port, "GET", "/metrics", raw=True)
        assert status == 200
        text = payload.decode()
        assert "repro_duration_seconds" in text
        assert "service.request" in text or "service_request" in text


class TestErrorTaxonomy:
    def test_unknown_store_404(self, port):
        status, payload = request(
            port, "POST", "/stores/ghost/query", {"kind": "xpath", "query": "Child"}
        )
        assert status == 404 and payload["error"]["code"] == "store-not-found"

    def test_unknown_route_404(self, port):
        status, payload = request(port, "GET", "/not/a/route")
        assert status == 404 and payload["error"]["code"] == "no-such-route"

    def test_bad_store_name_400(self, port):
        status, payload = request(port, "PUT", "/stores/bad%20name", DOC.encode())
        assert status == 400 and payload["error"]["code"] == "bad-store-name"

    def test_bad_json_body_400(self, port, store):
        status, payload = request(
            port, "POST", f"/stores/{store}/query", b"{not json"
        )
        assert status == 400 and payload["error"]["code"] == "bad-json"

    def test_unknown_field_400(self, port, store):
        status, payload = request(
            port, "POST", f"/stores/{store}/query",
            {"kind": "xpath", "query": "Child", "bogus": 1},
        )
        assert status == 400 and payload["error"]["code"] == "bad-request"
        assert "bogus" in payload["error"]["message"]

    def test_query_parse_error_400(self, port, store):
        status, payload = request(
            port, "POST", f"/stores/{store}/query", {"kind": "xpath", "query": "(("}
        )
        assert status == 400 and payload["error"]["code"] == "parse-error"

    def test_document_parse_error_400(self, port):
        status, payload = request(
            port, "PUT", "/stores/badxml", b"<a><unclosed></a>"
        )
        assert status == 400 and payload["error"]["code"] == "parse-error"

    def test_budget_exhaustion_429(self, port, store):
        status, payload = request(
            port, "POST", f"/stores/{store}/query",
            {"kind": "xpath", "query": XPATH, "strategy": "linear",
             "max_visited": 1},
        )
        assert status == 429 and payload["error"]["code"] == "budget-exhausted"

    def test_transient_failure_503(self, port, store):
        with FaultPlan(["strategy.linear:transient@every=1"]):
            status, payload = request(
                port, "POST", f"/stores/{store}/query",
                {"kind": "xpath", "query": XPATH, "strategy": "linear"},
            )
        assert status == 503 and payload["error"]["code"] == "transient-failure"

    def test_all_strategies_failed_503(self, port, store):
        with FaultPlan(["strategy.*:error@every=1"]):
            status, payload = request(
                port, "POST", f"/stores/{store}/query",
                {"kind": "xpath", "query": XPATH, "on_error": "fallback"},
            )
        assert status == 503
        assert payload["error"]["code"] == "all-strategies-failed"


class TestFaultInjectedDegradation:
    """Armed fault plans degrade the service; they never corrupt it."""

    def test_handler_fault_is_typed_500(self, port, store):
        plan = FaultPlan(["service.handler:error@every=1"])
        with plan:
            status, payload = request(port, "GET", "/healthz")
        assert status == 500 and payload["error"]["code"] == "injected-fault"
        assert list(plan.tripped_sites()) == ["service.handler"]

    def test_decode_fault_is_typed_500(self, port, store):
        plan = FaultPlan(["service.decode:error@every=1"])
        with plan:
            status, payload = request(
                port, "POST", f"/stores/{store}/query",
                {"kind": "xpath", "query": XPATH},
            )
        assert status == 500 and payload["error"]["code"] == "injected-fault"

    def test_decode_corruption_degrades_not_wrong(self, port, store):
        """A chopped request body must parse-fail or answer correctly —
        never return a silently wrong answer."""
        expected = request(
            port, "POST", f"/stores/{store}/query",
            {"kind": "xpath", "query": XPATH},
        )[1]["answer"]
        with FaultPlan(["service.decode:corrupt@every=1"], seed=5):
            status, payload = request(
                port, "POST", f"/stores/{store}/query",
                {"kind": "xpath", "query": XPATH},
            )
        if status == 200:
            assert payload["answer"] == expected
        else:
            assert status == 400
            assert payload["error"]["code"] in ("bad-json", "bad-request")

    def test_transient_fault_recovered_by_retries(self, port, store):
        """One injected transient + retries => a correct 200, with the
        recovery visible in the attempt chain."""
        with FaultPlan(["strategy.linear:transient@nth=1"]):
            status, payload = request(
                port, "POST", f"/stores/{store}/query",
                {"kind": "xpath", "query": XPATH, "strategy": "linear",
                 "retries": 2},
            )
        assert status == 200
        assert payload["answer"] == [2, 5]
        outcomes = [a["outcome"] for a in payload["stats"]["attempts"]]
        assert outcomes == ["transient", "ok"]

    def test_on_error_partial_degrades_to_empty(self, port, store):
        with FaultPlan(["strategy.*:error@every=1"]):
            status, payload = request(
                port, "POST", f"/stores/{store}/query",
                {"kind": "xpath", "query": XPATH, "on_error": "partial"},
            )
        assert status == 200
        assert payload["answer"] == [] and payload["stats"]["degraded"] is True


class TestConcurrentClients:
    def test_8_clients_byte_identical(self, port, store):
        bodies = [
            {"kind": "xpath", "query": XPATH},
            {"kind": "twig", "query": "//item/name"},
            {"kind": "cq",
             "query": "ans(y) :- Child(x, y), Lab:item(x), Lab:name(y)"},
            {"kind": "datalog", "query": "Q(x) :- Lab:name(x).",
             "query_pred": "Q"},
        ]
        def answer_bytes(payload) -> bytes:
            # stats carry per-request timings; the *answer* is what must
            # be byte-stable across clients
            return json.dumps(payload["answer"]).encode()

        expected = {}
        for body in bodies:
            status, payload = request(port, "POST", f"/stores/{store}/query", body)
            assert status == 200
            expected[body["kind"]] = answer_bytes(payload)

        def work(i):
            body = bodies[i % len(bodies)]
            status, payload = request(
                port, "POST", f"/stores/{store}/query", body
            )
            return body["kind"], status, payload

        with ThreadPoolExecutor(max_workers=8) as pool:
            for kind, status, payload in pool.map(work, range(64)):
                assert status == 200
                assert answer_bytes(payload) == expected[kind], (
                    f"{kind} diverged over HTTP"
                )
