"""Tests for the second extension wave: the optimal TwigStack, DTD
validation, and positional XPath predicates."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata import DTD, ContentModel
from repro.cq import evaluate_backtracking
from repro.errors import ParseError, QueryError
from repro.streaming import MemoryMeter, tree_events
from repro.trees import Tree, flat_tree, parse_xml, path_tree, random_tree
from repro.twigjoin import parse_twig, twig_stack, twig_stack_optimal
from repro.twigjoin.twigstack import TwigStats
from repro.trees.generate import tree_from_parents
from repro.workloads import random_twig
from repro.xpath import evaluate_query, evaluate_query_linear, parse_xpath

from conftest import trees


class TestOptimalTwigStack:
    PATTERNS = [
        "//a//b",
        "//a/b",
        "//a[b]//c",
        "//a[.//b]/c[d]",
        "/a//b[c]",
        "//a[b][.//c]/d",
    ]

    @pytest.mark.parametrize("text", PATTERNS)
    def test_matches_simple_variant(self, text, small_trees):
        pattern = parse_twig(text)
        for t in small_trees:
            assert twig_stack_optimal(pattern, t) == twig_stack(pattern, t)

    @given(trees(max_size=30), st.integers(min_value=0, max_value=400))
    @settings(max_examples=50, deadline=None)
    def test_fuzz_vs_backtracking(self, t, seed):
        pattern = random_twig(4, seed=seed)
        expected = evaluate_backtracking(pattern.to_cq(), t)
        assert twig_stack_optimal(pattern, t) == expected

    def test_getnext_filters_unsupported_elements(self):
        """On //-only twigs the filter makes pushes output-relevant:
        a-blocks without a c-descendant are never pushed."""
        parents, labels = [-1], ["r"]
        for block in range(30):
            a = len(parents)
            parents.append(0)
            labels.append("a")
            parents.append(a)
            labels.append("b")
            if block == 0:
                parents.append(a)
                labels.append("c")
        t = tree_from_parents(parents, labels)
        pattern = parse_twig("//a[.//b][.//c]")
        plain, filtered = TwigStats(), TwigStats()
        assert twig_stack(pattern, t, stats=plain) == twig_stack_optimal(
            pattern, t, stats=filtered
        )
        assert filtered.pushes < plain.pushes
        assert filtered.path_solutions < plain.path_solutions

    def test_partially_exhausted_branch(self):
        """One pattern branch runs out of stream elements early; the
        other must keep producing (regression for the getNext eof case)."""
        pattern = parse_twig("//a[.//b]/c[d]")
        t = Tree.from_tuple(("a", [("c", ["d", "b"])]))
        assert twig_stack_optimal(pattern, t) == {(0, 3, 1, 2)}


class TestContentModels:
    def test_sequence_with_modifiers(self):
        cm = ContentModel("a, b?, c*")
        assert cm.matches(["a"])
        assert cm.matches(["a", "b", "c", "c"])
        assert not cm.matches([])
        assert not cm.matches(["a", "b", "b"])
        assert not cm.matches(["b"])

    def test_alternation_plus(self):
        cm = ContentModel("(a | b)+")
        assert cm.matches(["a"]) and cm.matches(["b", "a", "b"])
        assert not cm.matches([]) and not cm.matches(["a", "c"])

    def test_empty_and_any(self):
        assert ContentModel("EMPTY").matches([])
        assert not ContentModel("EMPTY").matches(["x"])
        assert ContentModel("ANY").matches(["anything", "at", "all"])

    def test_nested_groups(self):
        cm = ContentModel("(a, b)*, c")
        assert cm.matches(["c"])
        assert cm.matches(["a", "b", "a", "b", "c"])
        assert not cm.matches(["a", "c"])

    def test_bad_syntax(self):
        for bad in ("a,,b", "(a", "a |", "*", ""):
            if bad == "":
                assert ContentModel(bad).matches([])  # empty == EMPTY
                continue
            with pytest.raises(ParseError):
                ContentModel(bad)


class TestDTDValidation:
    DTD_RULES = {
        "site": "regions, people?",
        "regions": "item*",
        "item": "name, keyword?",
        "people": "person+",
        "person": "name",
        "name": "EMPTY",
        "keyword": "EMPTY",
    }

    def setup_method(self):
        self.dtd = DTD(self.DTD_RULES, root="site")

    def test_valid_document(self):
        doc = parse_xml(
            "<site><regions><item><name/><keyword/></item></regions>"
            "<people><person><name/></person></people></site>"
        )
        assert self.dtd.validate(doc) is None
        assert self.dtd.stream_validate(tree_events(doc))

    def test_missing_required_child(self):
        doc = parse_xml("<site><regions><item><keyword/></item></regions></site>")
        message = self.dtd.validate(doc)
        assert message is not None and "item" in message
        assert not self.dtd.stream_validate(tree_events(doc))

    def test_wrong_root(self):
        doc = parse_xml("<regions/>")
        assert self.dtd.validate(doc) is not None
        assert not self.dtd.stream_validate(tree_events(doc))

    def test_undeclared_element(self):
        doc = parse_xml("<site><regions><mystery/></regions></site>")
        assert "mystery" in (self.dtd.validate(doc) or "")

    @given(trees(max_size=30), st.integers(min_value=0, max_value=50))
    @settings(max_examples=40, deadline=None)
    def test_streaming_equals_in_memory(self, t, seed):
        models = ["ANY", "a*, b*", "(a|b|c|d)*", "EMPTY", "a?, (b|c)*, d?"]
        dtd = DTD(
            {lab: models[(seed + i) % len(models)] for i, lab in enumerate("abcd")}
        )
        assert dtd.stream_validate(tree_events(t)) == dtd.is_valid(t)

    def test_streaming_memory_tracks_depth(self):
        dtd = DTD({lab: "(a|b|c|d)?" for lab in "abcd"})
        deep, wide = MemoryMeter(), MemoryMeter()
        dtd.stream_validate(tree_events(path_tree(1_000)), meter=deep)
        dtd.stream_validate(tree_events(flat_tree(1_000)), meter=wide)
        assert deep.peak_units > 50 * wide.peak_units


class TestPositionalPredicates:
    def setup_method(self):
        self.tree = Tree.from_tuple(("r", ["a", "b", "a", "c", "a"]))

    def test_numeric_shorthand(self):
        assert evaluate_query(parse_xpath("Child[2]"), self.tree) == {2}

    def test_last(self):
        assert evaluate_query(parse_xpath("Child[last()]"), self.tree) == {5}
        assert evaluate_query(
            parse_xpath("Child[position() = last()]"), self.tree
        ) == {5}

    def test_predicate_order_matters(self):
        # [lab()=a][2]: the second a-child; [2][lab()=a]: child 2 if a
        assert evaluate_query(
            parse_xpath("Child[lab() = a][2]"), self.tree
        ) == {3}
        assert evaluate_query(
            parse_xpath("Child[2][lab() = a]"), self.tree
        ) == set()

    @pytest.mark.parametrize(
        "op, expected",
        [(">= 3", {3, 4, 5}), ("< 2", {1}), ("!= 1", {2, 3, 4, 5}), ("<= 2", {1, 2})],
    )
    def test_comparisons(self, op, expected):
        assert evaluate_query(
            parse_xpath(f"Child[position() {op}]"), self.tree
        ) == expected

    def test_reverse_axis_proximity_order(self):
        t = Tree.from_tuple(("r", [("m", [("x", ["y"])])]))
        assert evaluate_query(
            parse_xpath("Child/Child/Child/Ancestor[1]"), t
        ) == {2}
        assert evaluate_query(
            parse_xpath("Child/Child/Child/Ancestor[last()]"), t
        ) == {0}

    def test_preceding_proximity(self):
        t = Tree.from_tuple(("r", ["a", "b", "c"]))
        assert evaluate_query(
            parse_xpath("Child[lab() = c]/Preceding[1]"), t
        ) == {2}

    def test_linear_evaluator_rejects(self):
        with pytest.raises(QueryError):
            evaluate_query_linear(parse_xpath("Child[2]"), self.tree)

    def test_nested_positions(self):
        t = Tree.from_tuple(("r", [("s", ["a", "b"]), ("s", ["c", "d"])]))
        assert evaluate_query(parse_xpath("Child[2]/Child[1]"), t) == {5}

    @given(trees(max_size=25))
    @settings(max_examples=30, deadline=None)
    def test_position_partition(self, t):
        """Child[position() <= k] ∪ Child[position() > k] = Child."""
        whole = evaluate_query(parse_xpath("Child/Child"), t)
        low = evaluate_query(parse_xpath("Child/Child[position() <= 2]"), t)
        high = evaluate_query(parse_xpath("Child/Child[position() > 2]"), t)
        assert low | high == whole
        assert not (low & high)


class TestTwoPassSelection:
    """The top-down context pass completes Theorem 4.4's unary story:
    context-dependent queries (not subtree-definable) become automaton
    selections."""

    def setup_method(self):
        from repro.automata import has_marked_ancestor_query

        self.auto, self.universe, self.select = has_marked_ancestor_query("a")

    @given(trees(max_size=35))
    @settings(max_examples=40, deadline=None)
    def test_ancestor_query(self, t):
        from repro.automata import select_two_pass

        got = select_two_pass(self.auto, t, self.universe, self.select)
        expected = {
            v
            for v in t.nodes()
            if any(t.has_label(u, "a") for u in t.ancestors(v))
        }
        assert got == expected

    def test_root_context_is_accepting_set(self):
        from repro.automata import context_run

        t = random_tree(15, seed=3)
        _states, contexts = context_run(self.auto, t, self.universe)
        assert contexts[t.root] == frozenset(
            q for q in self.universe if self.auto.accepting(q)
        )

    def test_universe_validation(self):
        from repro.automata import context_run, label_count_mod_automaton

        counter = label_count_mod_automaton("a", 3)
        t = random_tree(20, seed=4)  # contains several a-nodes
        with pytest.raises(ValueError):
            context_run(counter, t, [0])  # reachable states 1, 2 missing

    def test_deep_tree_no_recursion(self):
        from repro.automata import select_two_pass

        t = path_tree(10_000, alphabet=("a", "b"))
        got = select_two_pass(self.auto, t, self.universe, self.select)
        expected = {
            v
            for v in t.nodes()
            if any(t.has_label(u, "a") for u in t.ancestors(v))
        }
        assert got == expected
