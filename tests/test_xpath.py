"""Tests for Core XPath: parser, semantics, evaluators, translations."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cq import yannakakis_unary
from repro.errors import ParseError, QueryError
from repro.trees import Tree, random_tree
from repro.trees.axes import AXES, Axis, axis_holds
from repro.xpath import (
    AxisStep,
    LabelTest,
    NotQual,
    Path,
    PathQualifier,
    UnionExpr,
    apply_axis_to_set,
    evaluate_nodeset,
    evaluate_query,
    evaluate_query_linear,
    is_conjunctive,
    is_forward,
    parse_xpath,
    qualifier_holds,
    to_forward,
    xpath_to_cq,
    xpath_to_datalog,
)
from repro.xpath.ast import expr_size, walk_expr
from repro.xpath.translate import evaluate_datalog_translation
from repro.workloads import random_xpath

from conftest import trees


class TestParser:
    def test_simple_path(self):
        e = parse_xpath("Child/Descendant")
        assert isinstance(e, Path)
        assert e.left.axis is Axis.CHILD
        assert e.right.axis is Axis.CHILD_PLUS

    def test_label_sugar(self):
        e = parse_xpath("child::section")
        assert e.axis is Axis.CHILD
        assert e.qualifiers == (LabelTest("section"),)

    def test_qualifier_parsing(self):
        e = parse_xpath("Child[lab() = a and not(Child[lab() = b])]")
        (q,) = e.qualifiers
        assert "and" in str(q)

    def test_union(self):
        e = parse_xpath("Child union Descendant")
        assert isinstance(e, UnionExpr)

    def test_double_slash_sugar(self):
        e = parse_xpath("Child//Child")
        # Child / Child* / Child
        assert isinstance(e, Path)

    def test_inverse_suffix(self):
        e = parse_xpath("Child^-1")
        assert e.axis is Axis.PARENT

    def test_group_qualifier_distributes(self):
        e = parse_xpath("(Child union Descendant)[lab() = a]")
        assert isinstance(e, UnionExpr)
        assert e.left.qualifiers == (LabelTest("a"),)

    def test_or_precedence(self):
        e = parse_xpath("Child[lab() = a and lab() = b or lab() = c]")
        assert "or" in str(e.qualifiers[0])

    @pytest.mark.parametrize(
        "bad", ["Child/", "[lab() = a]", "Child[", "Child)", "Frobnicate", ""]
    )
    def test_errors(self, bad):
        with pytest.raises(ParseError):
            parse_xpath(bad)

    def test_expr_size(self):
        e = parse_xpath("Child[lab() = a]/Child")
        assert expr_size(e) == 4  # Path, two steps, one label test


class TestSemantics:
    def test_p1_axis_application(self, paper_tree):
        e = AxisStep(Axis.CHILD)
        assert evaluate_nodeset(e, paper_tree, 0) == {1, 4}

    def test_p2_qualifier_filtering(self, paper_tree):
        e = AxisStep(Axis.CHILD, (LabelTest("b"),))
        assert evaluate_nodeset(e, paper_tree, 0) == {1}

    def test_p3_composition(self, paper_tree):
        e = parse_xpath("Child/Child")
        assert evaluate_nodeset(e, paper_tree, 0) == {2, 3, 5, 6}

    def test_p4_union(self, paper_tree):
        e = parse_xpath("Child union Child/Child")
        assert evaluate_nodeset(e, paper_tree, 0) == {1, 2, 3, 4, 5, 6}

    def test_q2_existential_path_qualifier(self, paper_tree):
        e = parse_xpath("Child[Child[lab() = c]]")
        assert evaluate_query(e, paper_tree) == {1}

    def test_q5_negation(self, paper_tree):
        e = parse_xpath("Child+[not(Child)]")  # leaves below root
        assert evaluate_query(e, paper_tree) == {2, 3, 5, 6}

    def test_qualifier_holds_directly(self, paper_tree):
        q = NotQual(PathQualifier(AxisStep(Axis.CHILD)))
        assert qualifier_holds(q, paper_tree, 2)
        assert not qualifier_holds(q, paper_tree, 0)

    def test_inverse_axes(self, paper_tree):
        e = parse_xpath("Child/Child/Parent")
        assert evaluate_query(e, paper_tree) == {1, 4}


class TestAxisToSet:
    @pytest.mark.parametrize("axis", list(AXES))
    def test_against_pointwise(self, axis, small_trees):
        for t in small_trees:
            for subset_seed in range(3):
                nodes = {v for v in t.nodes() if (v * 7 + subset_seed) % 3 == 0}
                expected = {
                    v
                    for u in nodes
                    for v in t.nodes()
                    if axis_holds(t, axis, u, v)
                }
                assert apply_axis_to_set(t, axis, nodes) == expected, axis

    def test_empty_set(self, paper_tree):
        for axis in AXES:
            assert apply_axis_to_set(paper_tree, axis, set()) == set()


class TestEvaluatorAgreement:
    QUERIES = [
        "Child/Child+[lab() = a]",
        "Child*[lab() = b]/NextSibling+[lab() = a or lab() = c]",
        "Descendant[not(Child[lab() = a]) and lab() = b]",
        "Child[Following[lab() = d]]/Child*",
        "(Child union Child+/NextSibling)[lab() = a]",
        "Child+[Parent[lab() = a]]",
        "Child+[Preceding[lab() = a]]/Ancestor[lab() = b]",
        "Self[not(Child)]",
        "Child+[not(Following-Sibling[lab() = a])]",
    ]

    @pytest.mark.parametrize("text", QUERIES)
    def test_linear_vs_denotational(self, text, small_trees):
        e = parse_xpath(text)
        for t in small_trees:
            assert evaluate_query_linear(e, t) == evaluate_query(e, t)

    @pytest.mark.parametrize("text", QUERIES)
    def test_datalog_translation(self, text):
        e = parse_xpath(text)
        prog = xpath_to_datalog(e)
        for seed in range(3):
            t = random_tree(40, seed=seed)
            assert evaluate_datalog_translation(prog, t) == evaluate_query(e, t)

    @given(trees(max_size=25), st.integers(min_value=0, max_value=500))
    @settings(max_examples=50, deadline=None)
    def test_random_queries(self, t, seed):
        e = parse_xpath(random_xpath(3, seed=seed))
        assert evaluate_query_linear(e, t) == evaluate_query(e, t)


class TestCQBridge:
    def test_conjunctive_detection(self):
        assert is_conjunctive(parse_xpath("Child[lab() = a]/Child+"))
        assert not is_conjunctive(parse_xpath("Child union Child+"))
        assert not is_conjunctive(parse_xpath("Child[not(Child)]"))
        assert not is_conjunctive(parse_xpath("Child[lab() = a or lab() = b]"))

    def test_rejects_non_conjunctive(self):
        with pytest.raises(QueryError):
            xpath_to_cq(parse_xpath("Child union Child+"))

    def test_cq_is_acyclic(self):
        from repro.cq import is_acyclic

        cq = xpath_to_cq(parse_xpath("Child+[Child[lab() = a]]/Child[lab() = b]"))
        assert is_acyclic(cq)  # Proposition 4.2's premise

    @given(trees(max_size=30), st.integers(min_value=0, max_value=100))
    @settings(max_examples=30, deadline=None)
    def test_yannakakis_agrees(self, t, seed):
        text = random_xpath(3, qualifier_prob=0.5, negation_prob=0.0, seed=seed)
        e = parse_xpath(text)
        if not is_conjunctive(e):
            return
        cq = xpath_to_cq(e)
        assert yannakakis_unary(cq, t) == evaluate_query(e, t)


class TestForwardRewriting:
    REVERSE_QUERIES = [
        "Child+[lab() = b]/Parent[lab() = a]",
        "Child+[lab() = c]/Ancestor[Child[lab() = d]]",
        "Child/Child[lab() = a]/PrecedingSibling",
        "Child+/Parent/Parent",
        "Child*[lab() = a]/Ancestor-or-self[lab() = b]",
    ]

    def test_is_forward(self):
        assert is_forward(parse_xpath("Child/Following/NextSibling+"))
        assert not is_forward(parse_xpath("Child/Parent"))
        assert not is_forward(parse_xpath("Child[Ancestor[lab() = a]]"))

    @pytest.mark.parametrize("text", REVERSE_QUERIES)
    def test_to_forward_equivalence(self, text):
        rev = parse_xpath(text)
        fwd = to_forward(rev)
        assert is_forward(fwd)
        for seed in range(6):
            t = random_tree(30, seed=seed)
            assert evaluate_query(rev, t) == evaluate_query_linear(fwd, t)

    def test_forward_query_returned_unchanged(self):
        e = parse_xpath("Child/Child+")
        assert to_forward(e) is e

    def test_non_conjunctive_rejected(self):
        with pytest.raises(QueryError):
            to_forward(parse_xpath("Parent union Child"))

    def test_always_empty_reverse_query(self):
        # the root has no parent: query selecting Parent-of-root context
        rev = parse_xpath("Parent")
        fwd = to_forward(rev)
        assert is_forward(fwd)
        for seed in range(3):
            t = random_tree(10, seed=seed)
            assert evaluate_query_linear(fwd, t) == set()


class TestWalk:
    def test_walk_covers_all_nodes(self):
        e = parse_xpath("Child[lab() = a and not(Child+)]/Child union Self")
        kinds = {type(n).__name__ for n in walk_expr(e)}
        assert "UnionExpr" in kinds and "NotQual" in kinds and "AndQual" in kinds
