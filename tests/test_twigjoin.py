"""Tests for holistic twig joins (Section 6 / [13])."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cq import evaluate_backtracking
from repro.errors import ParseError, QueryError
from repro.trees import Tree, random_tree
from repro.twigjoin import (
    JoinPlanStats,
    TwigPattern,
    binary_join_plan,
    holistic_via_arc_consistency,
    parse_twig,
    path_stack,
    twig_stack,
)
from repro.twigjoin.twigstack import TwigStats
from repro.workloads import random_twig, xmark_like

from conftest import trees


class TestPatternParsing:
    def test_simple_path(self):
        p = parse_twig("//a/b")
        assert len(p) == 2
        assert p.root.label == "a" and p.root.edge == "//"
        assert p.nodes[1].label == "b" and p.nodes[1].edge == "/"

    def test_branches(self):
        p = parse_twig("//a[b][.//c]/d")
        assert len(p) == 4
        assert [n.label for n in p.nodes] == ["a", "b", "c", "d"]
        assert p.nodes[2].edge == "//"
        assert p.parent == [-1, 0, 0, 0]

    def test_rooted_pattern(self):
        p = parse_twig("/site//item")
        assert p.root.edge == "/"

    def test_wildcard(self):
        p = parse_twig("//*/a")
        assert p.root.label == "*"

    def test_paths_decomposition(self):
        p = parse_twig("//a[b/c]//d")
        paths = p.paths()
        assert sorted(len(path) for path in paths) == [2, 3]

    def test_to_cq(self):
        cq = parse_twig("//a/b").to_cq()
        assert len(cq.head) == 2
        preds = {a.pred for a in cq.atoms}
        assert "Child" in preds and "Lab:a" in preds

    def test_rooted_to_cq_has_root_atom(self):
        cq = parse_twig("/a//b").to_cq()
        assert any(a.pred == "Root" for a in cq.atoms)

    def test_parse_errors(self):
        with pytest.raises(ParseError):
            parse_twig("//a[b")
        with pytest.raises(ParseError):
            parse_twig("//")


ALGOS = [
    ("twig_stack", lambda p, t: twig_stack(p, t)),
    ("arc_consistency", lambda p, t: holistic_via_arc_consistency(p, t)),
    ("binary_join", lambda p, t: binary_join_plan(p, t)),
]


class TestAlgorithmsAgree:
    PATTERNS = [
        "//a//b",
        "//a/b",
        "//a[b]//c",
        "//a[.//b]/c[d]",
        "/a//b[c]",
        "//a[b][.//c]/d",
        "//*[a]/b",
    ]

    @pytest.mark.parametrize("text", PATTERNS)
    @pytest.mark.parametrize("name, algo", ALGOS)
    def test_vs_backtracking(self, text, name, algo, small_trees):
        pattern = parse_twig(text)
        cq = pattern.to_cq()
        for t in small_trees:
            assert algo(pattern, t) == evaluate_backtracking(cq, t), (text, name)

    @given(trees(max_size=30), st.integers(min_value=0, max_value=300))
    @settings(max_examples=40, deadline=None)
    def test_fuzz(self, t, seed):
        pattern = random_twig(4, seed=seed)
        expected = evaluate_backtracking(pattern.to_cq(), t)
        assert twig_stack(pattern, t) == expected
        assert holistic_via_arc_consistency(pattern, t) == expected
        assert binary_join_plan(pattern, t) == expected


class TestPathStack:
    @pytest.mark.parametrize("text", ["//a//b//c", "//a/b//c", "/a/b", "//a"])
    def test_vs_backtracking(self, text, small_trees):
        pattern = parse_twig(text)
        cq = pattern.to_cq()
        for t in small_trees:
            assert path_stack(pattern, t) == evaluate_backtracking(cq, t)

    def test_rejects_branching_patterns(self):
        with pytest.raises(QueryError):
            path_stack(parse_twig("//a[b]/c"), random_tree(5))

    def test_nested_same_label_matches(self):
        # a(a(b)) — both a's match //a//b's top node
        t = Tree.from_tuple(("a", [("a", ["b"])]))
        result = path_stack(parse_twig("//a//b"), t)
        assert result == {(0, 2), (1, 2)}


class TestStatsAsymmetry:
    def test_binary_join_materializes_more(self):
        """E14's point: on branchy patterns the binary plan's intermediate
        results dwarf the holistic path solutions."""
        t = xmark_like(40, seed=1)
        pattern = parse_twig("//item[.//keyword]//description")
        bj_stats = JoinPlanStats()
        ts_stats = TwigStats()
        out_bj = binary_join_plan(pattern, t, stats=bj_stats)
        out_ts = twig_stack(pattern, t, stats=ts_stats)
        assert out_bj == out_ts
        assert bj_stats.max_intermediate >= len(out_bj)
        assert ts_stats.merge_output == len(out_ts)

    def test_stats_counts(self):
        t = random_tree(60, seed=5)
        stats = TwigStats()
        twig_stack(parse_twig("//a//b"), t, stats=stats)
        assert stats.pushes > 0
