"""DocumentIndex correctness and cache behaviour.

Correctness: the index's pre/post/level arrays must match what
:mod:`repro.trees.orders` recomputes from scratch, and the label
partition must be complete (every (node, label) pair present) and
sorted in document order.

Cache behaviour: one build per Database, ``index_built``/``index_hits``
accounted per call, invalidation after every :mod:`repro.trees.edit`
mutation exposed on the facade.
"""

from __future__ import annotations

import pytest

from repro.engine import Database, DocumentIndex
from repro.trees.generate import random_tree
from repro.trees.orders import post_order, pre_order
from repro.trees.xmlio import parse_xml

DOC = (
    "<site><item><name/><keyword/></item>"
    "<item><name/><payment/></item>"
    "<people><person><name/></person></people></site>"
)


@pytest.fixture(params=[3, 17, 99])
def tree(request):
    return random_tree(60, seed=request.param)


# ---------------------------------------------------------------------------
# array correctness vs trees.orders recomputation
# ---------------------------------------------------------------------------


class TestArrays:
    def test_pre_matches_orders(self, tree):
        assert DocumentIndex(tree).pre == pre_order(tree)

    def test_post_matches_orders(self, tree):
        index = DocumentIndex(tree)
        # index.post[v] is v's post-order *rank*; inverting it must give
        # exactly the <post-sorted node list orders.post_order computes
        inverse = [0] * tree.n
        for v in range(tree.n):
            inverse[index.post[v]] = v
        assert inverse == post_order(tree)

    def test_level_is_root_distance(self, tree):
        index = DocumentIndex(tree)
        for v in range(tree.n):
            assert index.level[v] == len(list(tree.ancestors(v)))

    def test_interval_containment_is_descendant(self, tree):
        """pre/post intervals encode Child+: a < d < subtree_end[a] iff
        pre[a] < pre[d] and post[d] < post[a] (Lemma 2.2 shape)."""
        index = DocumentIndex(tree)
        for a in range(0, tree.n, 7):
            for d in range(tree.n):
                by_range = a < d < tree.subtree_end[a]
                by_orders = index.pre[a] < index.pre[d] and \
                    index.post[d] < index.post[a]
                assert by_range == by_orders


# ---------------------------------------------------------------------------
# label partition: complete, sorted, consistent with the tree
# ---------------------------------------------------------------------------


class TestLabelPartition:
    def test_complete(self, tree):
        index = DocumentIndex(tree)
        expected: dict[str, list[int]] = {}
        for v in range(tree.n):
            for label in tree.labels[v]:
                expected.setdefault(label, []).append(v)
        assert dict(index.label_partition) == expected

    def test_sorted_in_document_order(self, tree):
        index = DocumentIndex(tree)
        for label, nodes in index.label_partition.items():
            assert nodes == sorted(nodes), f"partition {label!r} unsorted"

    def test_accessors_count_usage(self, tree):
        index = DocumentIndex(tree)
        assert index.hits == 0 and index.nodes_streamed == 0
        label = tree.label[0]
        count = index.label_count(label)
        assert index.hits == 1 and index.nodes_streamed == 0
        nodes = index.nodes_with_label(label)
        assert len(nodes) == count
        assert index.hits == 2 and index.nodes_streamed == count

    def test_label_pairs_are_pre_post(self, tree):
        index = DocumentIndex(tree)
        label = tree.label[tree.n // 2]
        pairs = index.label_pairs(label)
        assert pairs == [(v, tree.post[v]) for v in tree.nodes_with_label(label)]
        # second fetch serves the cached stream (same object)
        assert index.label_pairs(label) is pairs

    def test_descendant_pairs_match_naive(self, tree):
        index = DocumentIndex(tree)
        a, b = tree.label[1], tree.label[tree.n - 1]
        naive = {
            (u, v)
            for u in tree.nodes_with_label(a)
            for v in tree.nodes_with_label(b)
            if u < v < tree.subtree_end[u]
        }
        assert set(index.descendant_pairs(a, b)) == naive

    def test_child_pairs_match_naive(self, tree):
        index = DocumentIndex(tree)
        a, b = tree.label[1], tree.label[tree.n - 1]
        naive = {
            (tree.parent[v], v)
            for v in tree.nodes_with_label(b)
            if v != tree.root and tree.has_label(tree.parent[v], a)
        }
        assert set(index.child_pairs(a, b)) == naive

    def test_partition_shared_with_tree_cache(self, tree):
        index = DocumentIndex(tree)
        # the Tree's lazy label cache and the index are the same dict,
        # so direct evaluator calls read the materialized lists too
        assert tree._label_index is index.label_partition


# ---------------------------------------------------------------------------
# cache behaviour through the Database facade
# ---------------------------------------------------------------------------


class TestCaching:
    def test_built_lazily(self):
        db = Database.from_xml(DOC)
        assert not db.has_index
        db.index
        assert db.has_index

    def test_built_once_same_object(self):
        db = Database.from_xml(DOC)
        assert db.index is db.index
        db.xpath("Child*[lab() = name]")
        assert db.index is db.index

    def test_stats_mark_the_building_call(self):
        db = Database.from_xml(DOC)
        first = db.xpath("Child*[lab() = name]")
        second = db.xpath("Child*[lab() = name]")
        third = db.twig("//item[keyword]")
        assert first.stats.index_built
        assert not second.stats.index_built
        assert not third.stats.index_built
        assert second.stats.index_hits > 0
        assert third.stats.index_hits > 0
        assert second.answer == first.answer

    def test_hits_are_per_call_deltas(self):
        # the plan cache would skip the planner's label_count probes on
        # the repeat call, so disable it to pin the per-call delta
        db = Database.from_xml(DOC, plan_cache=0)
        r1 = db.xpath("Child*[lab() = name]")
        r2 = db.xpath("Child*[lab() = name]")
        # same query, warm parse cache and index: identical consultation
        assert r2.stats.index_hits == r1.stats.index_hits


class TestInvalidation:
    def test_relabel_invalidates(self):
        db = Database.from_xml(DOC)
        before = db.xpath("Child*[lab() = keyword]")
        assert before.stats.index_built
        db.relabel(5, "keyword")
        assert not db.has_index
        after = db.xpath("Child*[lab() = keyword]")
        assert after.stats.index_built
        assert len(after.answer) == len(before.answer) + 1

    def test_insert_leaf_invalidates(self):
        db = Database.from_xml(DOC)
        n_before = len(db.xpath("Child*[lab() = keyword]").answer)
        db.insert_leaf(db.tree.root, 0, "keyword")
        assert not db.has_index
        assert len(db.xpath("Child*[lab() = keyword]").answer) == n_before + 1

    def test_delete_subtree_invalidates(self):
        db = Database.from_xml(DOC)
        db.xpath("Child*[lab() = person]")
        people = next(iter(db.xpath("Child*[lab() = people]").answer))
        db.delete_subtree(people)
        assert not db.has_index
        assert db.xpath("Child*[lab() = person]").answer == set()

    def test_insert_subtree_invalidates(self):
        db = Database.from_xml(DOC)
        db.index
        sub = parse_xml("<person><name/></person>")
        db.insert_subtree(db.tree.root, 0, sub)
        assert not db.has_index
        assert len(db.xpath("Child[lab() = person]").answer) == 1

    def test_splice_invalidates(self):
        db = Database.from_xml(DOC)
        db.index
        people = next(iter(db.xpath("Child*[lab() = people]").answer))
        db.splice(people)
        assert not db.has_index
        assert db.xpath("Child*[lab() = people]").answer == set()
        assert len(db.xpath("Child[lab() = person]").answer) == 1

    def test_stale_answers_impossible(self):
        """The old index object keeps working on the old tree, but the
        facade never serves it for the new one."""
        db = Database.from_xml(DOC)
        old_index = db.index
        old_n = db.tree.n
        db.insert_leaf(db.tree.root, 0, "zzz")
        new_index = db.index
        assert new_index is not old_index
        assert old_index.n == old_n and new_index.n == old_n + 1
        assert db.xpath("Child[lab() = zzz]").answer != set()
