"""Coverage for smaller utility surfaces: the Node builder, the mini
relational engine, AST rendering, and the datalog Program container."""

import pytest

from repro.datalog import Atom, Program, Rule, parse_rule
from repro.errors import QueryError
from repro.storage import Table
from repro.trees import Tree
from repro.trees.node import Node
from repro.xpath import parse_xpath
from repro.xpath.ast import expr_size, steps_of


class TestNodeBuilder:
    def test_from_tuple_strings_are_leaves(self):
        node = Node.from_tuple(("a", ["b", ("c", ["d"])]))
        assert node.size() == 4
        assert [n.label for n in node.walk()] == ["a", "b", "c", "d"]

    def test_deep_spec_iterative(self):
        spec = "x"
        for _ in range(5_000):
            spec = ("s", [spec])
        node = Node.from_tuple(spec)
        assert node.size() == 5_001  # no RecursionError

    def test_add_chains(self):
        root = Node("r")
        child = root.add(Node("c"))
        assert root.children == [child]

    def test_labels_property(self):
        node = Node("a", extra_labels=["x"])
        assert node.labels == frozenset({"a", "x"})
        assert Node("a").labels == frozenset({"a"})


class TestRelationalEngine:
    def test_rename(self):
        t = Table(("a", "b"), [(1, 2)])
        assert t.rename({"a": "z"}).columns == ("z", "b")

    def test_missing_column(self):
        with pytest.raises(QueryError):
            Table(("a",), [(1,)]).col("zzz")

    def test_theta_join_suffixes_clashing_columns(self):
        t = Table(("a",), [(1,)])
        joined = t.theta_join(t, lambda l, r: True)
        assert joined.columns == ("a", "a_r")

    def test_project_no_dedup(self):
        t = Table(("a", "b"), [(1, 2), (1, 3)])
        assert t.project(["a"], dedup=False).rows == [(1,), (1,)]
        assert t.project(["a"]).rows == [(1,)]

    def test_select_sees_column_dict(self):
        t = Table(("x", "y"), [(1, 10), (2, 20)])
        assert t.select(lambda r: r["x"] + r["y"] == 22).rows == [(2, 20)]

    def test_pretty_truncates(self):
        t = Table(("n",), [(i,) for i in range(50)])
        text = t.pretty(limit=3)
        assert "more rows" in text


class TestAstUtilities:
    def test_steps_of_flat_path(self):
        e = parse_xpath("Child/Child+/Self")
        assert [s.axis.value for s in steps_of(e)] == ["Child", "Child+", "Self"]

    def test_steps_of_rejects_union(self):
        with pytest.raises(ValueError):
            steps_of(parse_xpath("Child union Self"))

    def test_str_reparses_to_same_semantics(self):
        from repro.trees import random_tree
        from repro.xpath import evaluate_query

        for text in (
            "Child[lab() = a]/Child+",
            "Self[not(Child)] union Child*",
            "Descendant[lab() = a or lab() = b]",
        ):
            e = parse_xpath(text)
            reparsed = parse_xpath(str(e))
            t = random_tree(25, seed=1)
            assert evaluate_query(e, t) == evaluate_query(reparsed, t)

    def test_expr_size_counts_qualifiers(self):
        assert expr_size(parse_xpath("Child")) == 1
        assert expr_size(parse_xpath("Child[lab() = a]")) == 2


class TestProgramContainer:
    def test_str_includes_query_pred(self):
        program = Program([parse_rule("P(x) :- Dom(x)")], query_pred="P")
        assert "% query: P" in str(program)

    def test_rule_builder(self):
        program = Program().rule(Atom("P", ("x",)), Atom("Dom", ("x",)))
        assert len(program) == 1
        assert program.is_tau_plus()

    def test_is_tau_plus_false_for_derived_axis(self):
        program = Program([parse_rule("P(x) :- Child+(y, x), Dom(y)")])
        assert not program.canonicalized().is_tau_plus()

    def test_canonicalized_does_not_touch_idb(self):
        # an intensional predicate that shadows an axis alias must be
        # left alone by canonicalization... (unary IDB cannot clash with
        # binary axes thanks to arity checks)
        program = Program(
            [
                parse_rule("Self2(x) :- Dom(x)"),
                parse_rule("P(x) :- Self2(x)"),
            ]
        )
        program.canonicalized().validate()

    def test_size(self):
        program = Program([parse_rule("P(x) :- Dom(x), Leaf(x)")])
        assert program.size() == 3


class TestTreeMiscellanea:
    def test_repr_smoke(self):
        t = Tree.from_tuple(("a", ["b"]))
        assert "Tree" in repr(t)

    def test_subtree_size(self):
        t = Tree.from_tuple(("a", [("b", ["c", "d"]), "e"]))
        assert t.subtree_size(0) == 5
        assert t.subtree_size(1) == 3
        assert t.subtree_size(4) == 1
