"""Cross-engine differential tests: every strategy, same answers.

The paper's algorithms are different *costs* for the same semantics, so
any disagreement between two registered strategies is a bug by
construction.  This harness pins that invariant down property-style:
random documents from :func:`repro.trees.generate.random_tree`, random
queries from :mod:`repro.workloads.queries`, every applicable strategy
run through one shared :class:`repro.engine.Database`, answer sets
compared pairwise.  Everything is seeded — a failure message carries
the (tree seed, query seed, query) triple needed to replay it.

Volume: 120 XPath + 60 twig + 40 CQ cases = 220 random (tree, query)
pairs, each checked under at least 3 strategies.
"""

from __future__ import annotations

import pytest

from repro.engine import Database
from repro.trees.generate import random_tree
from repro.workloads.queries import random_cq, random_twig, random_xpath

LABELS = ("a", "b", "c", "d")

# one Database (→ one DocumentIndex) per document, shared by every
# query case on that document — the differential sweep doubles as an
# index-reuse soak test
_DB_CACHE: dict[tuple, Database] = {}


def _db(n: int, seed: int, alphabet=LABELS) -> Database:
    key = (n, seed, alphabet)
    if key not in _DB_CACHE:
        _DB_CACHE[key] = Database(random_tree(n, seed=seed, alphabet=alphabet))
    return _DB_CACHE[key]


def _assert_agreement(db: Database, kind: str, query, context: str) -> int:
    """Run every applicable strategy; fail loudly on any mismatch.

    Returns the number of strategies exercised.
    """
    results = db.cross_check(kind, query)
    assert len(results) >= 3, (
        f"{context}: only {len(results)} applicable strategies "
        f"({', '.join(results)}) — expected at least 3"
    )
    reference_name, reference = next(iter(results.items()))
    for name, result in results.items():
        assert set(result.answer) == set(reference.answer), (
            f"{context}: strategy {name!r} disagrees with "
            f"{reference_name!r}\n"
            f"  {name}: {sorted(set(result.answer) - set(reference.answer))} extra, "
            f"{sorted(set(reference.answer) - set(result.answer))} missing"
        )
    return len(results)


# ---------------------------------------------------------------------------
# Core XPath: 120 cases (30 documents × 4 queries)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("tree_seed", range(30))
def test_xpath_strategies_agree(tree_seed):
    n = 20 + 7 * tree_seed
    db = _db(n, tree_seed)
    for query_seed in range(4):
        text = random_xpath(
            n_steps=1 + query_seed % 3,
            labels=LABELS,
            qualifier_prob=0.5,
            negation_prob=0.2,
            seed=100 * tree_seed + query_seed,
        )
        context = f"tree(n={n}, seed={tree_seed}) xpath seed=" \
                  f"{100 * tree_seed + query_seed} {text!r}"
        _assert_agreement(db, "xpath", text, context)


# ---------------------------------------------------------------------------
# twig patterns: 60 cases (20 documents × 3 patterns)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("tree_seed", range(20))
def test_twig_strategies_agree(tree_seed):
    n = 15 + 9 * tree_seed
    db = _db(n, 1000 + tree_seed)
    for query_seed in range(3):
        pattern = random_twig(
            n_nodes=2 + query_seed,
            labels=LABELS,
            seed=100 * tree_seed + query_seed,
        )
        context = f"tree(n={n}, seed={1000 + tree_seed}) twig seed=" \
                  f"{100 * tree_seed + query_seed} {pattern!r}"
        _assert_agreement(db, "twig", pattern, context)


# ---------------------------------------------------------------------------
# conjunctive queries: 40 cases (20 documents × 2 queries)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("tree_seed", range(20))
def test_cq_strategies_agree(tree_seed):
    n = 12 + 5 * tree_seed
    db = _db(n, 2000 + tree_seed)
    for query_seed in range(2):
        query = random_cq(
            n_vars=2 + query_seed,
            n_binary=1 + query_seed,
            labels=LABELS,
            seed=100 * tree_seed + query_seed,
        )
        context = f"tree(n={n}, seed={2000 + tree_seed}) cq seed=" \
                  f"{100 * tree_seed + query_seed} {query!r}"
        _assert_agreement(db, "cq", query, context)


# ---------------------------------------------------------------------------
# the sweep doubles as an index-reuse soak: per shared Database, the
# index must have been built exactly once
# ---------------------------------------------------------------------------


def test_differential_sweep_reused_indexes():
    """Runs after the sweeps above (same module): every cached Database
    built its DocumentIndex exactly once across all of its queries."""
    if not _DB_CACHE:
        pytest.skip("differential sweeps did not run in this selection")
    total_reuse_hits = 0
    for (n, seed, _alphabet), db in _DB_CACHE.items():
        builds = sum(s.index_built for s in db.history)
        assert builds <= 1, f"Database(n={n}, seed={seed}) rebuilt its index"
        total_reuse_hits += sum(
            s.index_hits for s in db.history if not s.index_built
        )
    # individual label-free queries legitimately consult no partitions,
    # but across the whole sweep the cached indexes must be visibly hit
    assert total_reuse_hits > 0


def test_planner_choice_always_among_applicable():
    """The planner never picks a strategy whose applicability gate the
    registry would reject for that query."""
    for tree_seed in range(5):
        db = _db(25 + 5 * tree_seed, 3000 + tree_seed)
        for query_seed in range(3):
            text = random_xpath(
                n_steps=2, labels=LABELS, seed=10 * tree_seed + query_seed
            )
            plan = db.plan("xpath", text)
            assert plan.strategy in db.strategies("xpath", text), (
                f"planner chose inapplicable {plan.strategy!r} for {text!r} "
                f"(seed {10 * tree_seed + query_seed})"
            )


# ---------------------------------------------------------------------------
# fault injection: a strategy that always blows the visit budget must be
# transparently downgraded away from, with identical answers
# ---------------------------------------------------------------------------


def _register_budget_hog():
    """Install an xpath strategy whose first act is to charge a visit
    count no budget survives; returns an uninstall callback."""
    from repro.engine.strategies import STRATEGIES, Strategy, _register
    from repro.obs.context import current

    def hog_execute(query, index):
        ctx = current()
        if ctx is not None:
            ctx.tick(10**9)
        raise AssertionError(
            "the hog must only ever run under a budget that stops it"
        )

    _register(
        Strategy(
            kind="xpath",
            name="budget-hog",
            summary="fault injection: always exceeds max_visited",
            applicable=lambda query, index: True,
            execute=hog_execute,
        )
    )

    def uninstall():
        del STRATEGIES["xpath"]["budget-hog"]

    return uninstall


def test_budget_fallback_is_differentially_transparent():
    """Seeded sweep: with a fault-injected strategy ranked first, every
    budgeted auto query downgrades to the next route and returns exactly
    the unbudgeted answer, recording the hog in ``fallback_from``."""
    from repro.engine.planner import Plan

    uninstall = _register_budget_hog()
    try:
        for tree_seed in range(10):
            db = Database(
                random_tree(20 + 5 * tree_seed, seed=tree_seed, alphabet=LABELS)
            )
            planner = db._planner
            original_ranked = planner.ranked

            def hog_first(kind, query, index):
                plans = original_ranked(kind, query, index)
                return [
                    Plan(kind, "budget-hog", "fault injection: ranked first")
                ] + [p for p in plans if p.strategy != "budget-hog"]

            planner.ranked = hog_first
            try:
                for query_seed in range(3):
                    text = random_xpath(
                        n_steps=1 + query_seed,
                        labels=LABELS,
                        seed=100 * tree_seed + query_seed,
                    )
                    context = (
                        f"tree seed={tree_seed} query seed="
                        f"{100 * tree_seed + query_seed} {text!r}"
                    )
                    expected = db.xpath(text)  # unbudgeted, hog never ranked
                    result = db.xpath(text, max_visited=1_000_000)
                    assert set(result.answer) == set(expected.answer), (
                        f"{context}: budget fallback changed the answer"
                    )
                    assert result.stats.fallback_from == ("budget-hog",), (
                        f"{context}: expected a recorded downgrade, got "
                        f"{result.stats.fallback_from!r}"
                    )
                    assert result.stats.strategy != "budget-hog", context
            finally:
                planner.ranked = original_ranked
    finally:
        uninstall()


def test_budget_fallback_preserves_cross_strategy_agreement():
    """After a forced downgrade the surviving strategies still agree —
    the differential invariant holds under resource governance too."""
    uninstall = _register_budget_hog()
    try:
        db = _db(40, 4000)
        text = "Child+[lab() = a]/Child[lab() = b]"
        # explicitly requested strategies never fall back, so the hog
        # itself must be excluded from the budgeted sweep
        survivors = [
            name for name in db.strategies("xpath", text)
            if name != "budget-hog"
        ]
        budgeted = db.cross_check(
            "xpath", text, survivors, max_visited=1_000_000
        )
        unbudgeted = db.cross_check("xpath", text, survivors)
        for name, result in budgeted.items():
            assert set(result.answer) == set(unbudgeted[name].answer), (
                f"strategy {name!r} changed its answer under a generous budget"
            )
    finally:
        uninstall()


# ---------------------------------------------------------------------------
# columns vs objects: the same strategies over the columnar backend must
# produce identical answers AND identical plans — ≥ 200 seeded pairs
# spanning every registered strategy
# ---------------------------------------------------------------------------

# (object Database, columnar Database) sharing one Tree per document
_PAIR_CACHE: dict[tuple, tuple[Database, Database]] = {}

# (kind, strategy) pairs exercised by the columns sweep, checked for
# full registry coverage by the final test of this module
_COLUMNS_STRATEGIES_SEEN: set[tuple[str, str]] = set()


def _db_pair(n: int, seed: int, alphabet=LABELS) -> tuple[Database, Database]:
    key = (n, seed, alphabet)
    if key not in _PAIR_CACHE:
        tree = random_tree(n, seed=seed, alphabet=alphabet)
        _PAIR_CACHE[key] = (Database(tree), Database(tree, columns="on"))
    return _PAIR_CACHE[key]


def _assert_columns_agreement(
    db_objects: Database, db_columns: Database, kind: str, query, context: str
) -> None:
    """Identical planner output and identical per-strategy answers."""
    plan_o = db_objects.plan(kind, query)
    plan_c = db_columns.plan(kind, query)
    assert (plan_o.strategy, plan_o.reason) == (plan_c.strategy, plan_c.reason), (
        f"{context}: the planner diverges between backends "
        f"({plan_o} vs {plan_c})"
    )
    results_o = db_objects.cross_check(kind, query)
    results_c = db_columns.cross_check(kind, query)
    assert set(results_o) == set(results_c), (
        f"{context}: applicable strategies differ between backends"
    )
    for name in results_o:
        a = set(results_o[name].answer)
        b = set(results_c[name].answer)
        assert a == b, (
            f"{context}: strategy {name!r} disagrees between backends — "
            f"objects-only {sorted(a - b)}, columns-only {sorted(b - a)}"
        )
        _COLUMNS_STRATEGIES_SEEN.add((kind, name))


@pytest.mark.parametrize("tree_seed", range(30))
def test_columns_xpath_differential(tree_seed):
    n = 20 + 7 * tree_seed
    db_o, db_c = _db_pair(n, tree_seed)
    for query_seed in range(4):
        text = random_xpath(
            n_steps=1 + query_seed % 3,
            labels=LABELS,
            qualifier_prob=0.5,
            negation_prob=0.2,
            seed=100 * tree_seed + query_seed,
        )
        context = (
            f"tree(n={n}, seed={tree_seed}) xpath seed="
            f"{100 * tree_seed + query_seed} {text!r}"
        )
        _assert_columns_agreement(db_o, db_c, "xpath", text, context)


@pytest.mark.parametrize("tree_seed", range(20))
def test_columns_twig_differential(tree_seed):
    n = 15 + 9 * tree_seed
    db_o, db_c = _db_pair(n, 1000 + tree_seed)
    for query_seed in range(3):
        pattern = random_twig(
            n_nodes=2 + query_seed,
            labels=LABELS,
            seed=100 * tree_seed + query_seed,
        )
        context = (
            f"tree(n={n}, seed={1000 + tree_seed}) twig seed="
            f"{100 * tree_seed + query_seed} {pattern!r}"
        )
        _assert_columns_agreement(db_o, db_c, "twig", pattern, context)


@pytest.mark.parametrize("tree_seed", range(10))
def test_columns_cq_differential(tree_seed):
    n = 12 + 5 * tree_seed
    db_o, db_c = _db_pair(n, 2000 + tree_seed)
    for query_seed in range(2):
        query = random_cq(
            n_vars=2 + query_seed,
            n_binary=1 + query_seed,
            labels=LABELS,
            seed=100 * tree_seed + query_seed,
        )
        context = (
            f"tree(n={n}, seed={2000 + tree_seed}) cq seed="
            f"{100 * tree_seed + query_seed} {query!r}"
        )
        _assert_columns_agreement(db_o, db_c, "cq", query, context)


# there is no random datalog generator, so the datalog leg of the sweep
# uses fixed programs over seeded random documents
_DATALOG_PROGRAMS = (
    "Q(x) :- Lab:b(x).\n% query: Q",
    "P(x) :- Lab:a(x).\nQ(y) :- Child(x, y), P(x), Lab:b(y).\n% query: Q",
)


@pytest.mark.parametrize("tree_seed", range(10))
def test_columns_datalog_differential(tree_seed):
    n = 15 + 6 * tree_seed
    db_o, db_c = _db_pair(n, 5000 + tree_seed)
    for pi, program in enumerate(_DATALOG_PROGRAMS):
        context = f"tree(n={n}, seed={5000 + tree_seed}) datalog #{pi}"
        _assert_columns_agreement(db_o, db_c, "datalog", program, context)


def test_columns_sweep_is_at_least_200_pairs_and_covers_every_strategy():
    """Runs after the columns sweeps above (same module): the sweep must
    span ≥ 200 (tree, query) pairs and exercise every registered
    strategy on both backends."""
    from repro.engine.strategies import STRATEGIES

    if not _COLUMNS_STRATEGIES_SEEN:
        pytest.skip("columns sweeps did not run in this selection")
    pair_count = 30 * 4 + 20 * 3 + 10 * 2 + 10 * len(_DATALOG_PROGRAMS)
    assert pair_count >= 200
    registered = {
        (kind, name)
        for kind, registry in STRATEGIES.items()
        for name in registry
        if name != "budget-hog"  # transient fault-injection registrant
    }
    missing = registered - _COLUMNS_STRATEGIES_SEEN
    assert not missing, (
        f"columns sweep never exercised: {sorted(missing)}"
    )
