"""Tests for the tree generators and the TreeStructure view."""

import pytest
from hypothesis import given, settings

from repro.errors import QueryError
from repro.trees import (
    TreeStructure,
    balanced_tree,
    caterpillar_tree,
    flat_tree,
    path_tree,
    random_tree,
)
from repro.trees.generate import tree_from_parents
from repro.trees.structure import lab

from conftest import trees


class TestGenerators:
    def test_path_tree(self):
        t = path_tree(10)
        assert t.height() == 9
        assert all(len(t.children[v]) <= 1 for v in t.nodes())

    def test_flat_tree(self):
        t = flat_tree(10)
        assert t.height() == 1
        assert len(t.children[0]) == 9

    def test_balanced_tree_size(self):
        t = balanced_tree(2, 3)
        assert t.n == 15  # 1 + 2 + 4 + 8
        assert t.height() == 3

    def test_caterpillar(self):
        t = caterpillar_tree(spine=5, legs=2)
        assert t.height() == 5
        assert t.n == 5 + 5 * 2

    def test_determinism(self):
        assert random_tree(50, seed=7) == random_tree(50, seed=7)
        assert random_tree(50, seed=7) != random_tree(50, seed=8)

    @pytest.mark.parametrize("policy", ["uniform", "preferential", "binaryish"])
    def test_attachment_policies_produce_valid_trees(self, policy):
        t = random_tree(80, seed=3, attachment=policy)
        assert t.n == 80
        # every node is a descendant of the root
        assert all(t.is_descendant(0, v) for v in range(1, t.n))

    def test_binaryish_bounded_fanout(self):
        t = random_tree(100, seed=1, attachment="binaryish")
        assert max(len(c) for c in t.children) <= 2

    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            random_tree(5, attachment="bogus")

    def test_tree_from_parents_renumbers_to_preorder(self):
        # ids 0..3 where node 3 is the child of node 1 — pre-order must
        # renumber so descendants are contiguous
        t = tree_from_parents([-1, 0, 0, 1], ["r", "x", "y", "z"])
        assert t.label == ["r", "x", "z", "y"]
        assert list(t.descendants(1)) == [2]

    def test_tree_from_parents_rejects_forward_refs(self):
        with pytest.raises(ValueError):
            tree_from_parents([-1, 2, 0], ["a", "b", "c"])

    def test_tree_from_parents_rejects_two_roots(self):
        with pytest.raises(ValueError):
            tree_from_parents([-1, -1], ["a", "b"])


class TestTreeStructure:
    def test_unary_relations(self, paper_tree):
        s = TreeStructure(paper_tree)
        assert set(s.unary_members("Root")) == {0}
        assert set(s.unary_members("Leaf")) == {2, 3, 5, 6}
        assert set(s.unary_members(lab("a"))) == {0, 2, 4}
        assert set(s.unary_members("FirstSibling")) == {0, 1, 2, 5}
        assert set(s.unary_members("LastSibling")) == {0, 3, 4, 6}
        assert set(s.unary_members("Dom")) == set(range(7))

    def test_unknown_unary_raises(self, paper_tree):
        with pytest.raises(QueryError):
            TreeStructure(paper_tree).holds_unary("Blue", 0)

    def test_signature_restriction(self, paper_tree):
        s = TreeStructure.tau_plus(paper_tree)
        assert s.has_binary("FirstChild")
        assert not s.has_binary("Child+")
        with pytest.raises(QueryError):
            list(s.successors("Child+", 0))

    @given(trees(max_size=25))
    @settings(max_examples=30, deadline=None)
    def test_relation_sizes_match_enumeration(self, t):
        s = TreeStructure(t)
        for name in s.binary_names():
            assert s.relation_size(name) == sum(1 for _ in s.pairs(name))

    @given(trees(max_size=25))
    @settings(max_examples=20, deadline=None)
    def test_structure_size_decomposition(self, t):
        s = TreeStructure.tau_plus(t)
        expected = (
            t.n
            + sum(len(labels) for labels in t.labels)
            + s.relation_size("FirstChild")
            + s.relation_size("NextSibling")
        )
        assert s.size() == expected
