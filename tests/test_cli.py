"""CLI coverage: every strategy flag on every query command.

The CLI delegates strategy dispatch to the engine registry and the
planner — these tests pin down that every registered name is reachable
through ``--engine``, that ``auto`` and ``all`` work everywhere, and
that the exit-code contract holds (0 ok, 1 error/disagreement, 2 bad
or inapplicable engine).
"""

from __future__ import annotations

import os

import pytest

from repro.cli import main as cli_main
from repro.engine import strategy_names

DOC = (
    "<site><item><name/><keyword/></item>"
    "<item><name/></item>"
    "<people><person><profile/><name/></person></people></site>"
)


@pytest.fixture
def doc(tmp_path):
    path = os.path.join(tmp_path, "doc.xml")
    with open(path, "w") as fh:
        fh.write(DOC)
    return path


@pytest.fixture
def program(tmp_path):
    path = os.path.join(tmp_path, "p.dl")
    with open(path, "w") as fh:
        fh.write("Q(x) :- Lab:keyword(x).\n% query: Q\n")
    return path


XPATH_QUERY = "Child*[lab() = item]/Child[lab() = name]"
XPATH_NODES = ["2", "5"]


class TestXPathEngines:
    @pytest.mark.parametrize("engine", strategy_names("xpath"))
    def test_each_registered_strategy(self, doc, capsys, engine):
        assert cli_main(["xpath", XPATH_QUERY, doc, "--engine", engine]) == 0
        assert capsys.readouterr().out.split() == XPATH_NODES

    def test_auto_is_default(self, doc, capsys):
        assert cli_main(["xpath", XPATH_QUERY, doc]) == 0
        assert capsys.readouterr().out.split() == XPATH_NODES

    def test_all_cross_checks(self, doc, capsys):
        assert cli_main(["xpath", XPATH_QUERY, doc, "--engine", "all"]) == 0
        captured = capsys.readouterr()
        assert captured.out.split() == XPATH_NODES
        for name in strategy_names("xpath"):
            assert f"# {name}:" in captured.err

    def test_stats_flag(self, doc, capsys):
        assert cli_main(["xpath", XPATH_QUERY, doc, "--stats"]) == 0
        err = capsys.readouterr().err
        assert "index hits" in err

    def test_unknown_engine_exit_2(self, doc):
        assert cli_main(["xpath", "Child", doc, "--engine", "warp"]) == 2

    def test_inapplicable_engine_exit_2(self, doc, capsys):
        # position() is only supported by the denotational route
        query = "Child*[lab() = item][position() = 1]"
        assert cli_main(["xpath", query, doc, "--engine", "linear"]) == 2
        assert "not applicable" in capsys.readouterr().err
        assert cli_main(["xpath", query, doc, "--engine", "denotational"]) == 0

    def test_planner_routes_position_queries(self, doc, capsys):
        # auto must pick the denotational strategy, not crash
        query = "Child*[lab() = item][position() = 1]"
        assert cli_main(["xpath", query, doc, "--stats"]) == 0
        assert "denotational" in capsys.readouterr().err


class TestTwigEngines:
    @pytest.mark.parametrize("engine", strategy_names("twig"))
    def test_each_registered_strategy(self, doc, capsys, engine):
        # path pattern so pathstack applies too
        assert cli_main(["twig", "//item/name", doc, "--engine", engine]) == 0
        out = capsys.readouterr().out
        assert sorted(out.split("\n")[:-1]) == ["1\t2", "4\t5"]

    def test_auto_and_all(self, doc, capsys):
        assert cli_main(["twig", "//item[keyword]", doc]) == 0
        assert capsys.readouterr().out.split() == ["1", "3"]
        assert cli_main(["twig", "//item[keyword]", doc, "--engine", "all"]) == 0

    def test_pathstack_inapplicable_on_branching_twig(self, doc):
        assert (
            cli_main(["twig", "//item[keyword]/name", doc, "--engine", "pathstack"])
            == 2
        )


class TestCQEngines:
    CQ = "ans(x) :- Child(y, x), Lab:item(y)"

    @pytest.mark.parametrize("engine", strategy_names("cq"))
    def test_each_registered_strategy(self, doc, capsys, engine):
        assert cli_main(["cq", self.CQ, doc, "--engine", engine]) == 0
        assert capsys.readouterr().out.split() == ["2", "3", "5"]

    def test_auto_and_all(self, doc, capsys):
        assert cli_main(["cq", self.CQ, doc]) == 0
        capsys.readouterr()
        assert cli_main(["cq", self.CQ, doc, "--engine", "all"]) == 0


class TestDatalogEngines:
    @pytest.mark.parametrize("engine", strategy_names("datalog"))
    def test_each_registered_strategy(self, doc, program, capsys, engine):
        assert cli_main(["datalog", program, doc, "--engine", engine]) == 0
        assert capsys.readouterr().out.split() == ["3"]

    def test_auto_and_all(self, doc, program, capsys):
        assert cli_main(["datalog", program, doc]) == 0
        assert capsys.readouterr().out.split() == ["3"]
        assert cli_main(["datalog", program, doc, "--engine", "all"]) == 0


class TestObservabilityFlags:
    def test_bare_trace_pretty_prints_to_stderr(self, doc, capsys):
        assert cli_main(["xpath", XPATH_QUERY, doc, "--trace"]) == 0
        captured = capsys.readouterr()
        assert captured.out.split() == XPATH_NODES  # answers untouched
        assert "query:xpath" in captured.err
        assert "ms" in captured.err

    def test_trace_file_writes_json(self, doc, tmp_path, capsys):
        import json

        trace_path = os.path.join(tmp_path, "trace.json")
        assert cli_main(["xpath", XPATH_QUERY, doc, "--trace", trace_path]) == 0
        captured = capsys.readouterr()
        assert captured.out.split() == XPATH_NODES
        assert f"trace written to {trace_path}" in captured.err
        with open(trace_path) as fh:
            data = json.load(fh)
        assert data["name"] == "query:xpath"
        assert any(
            child["name"].startswith("execute:") for child in data["children"]
        )

    def test_max_visited_exceeded_exit_3(self, doc, capsys):
        rc = cli_main(
            ["xpath", XPATH_QUERY, doc, "--engine", "linear", "--max-visited", "1"]
        )
        assert rc == 3
        assert "budget exceeded" in capsys.readouterr().err

    def test_generous_budget_unchanged_answers(self, doc, capsys):
        rc = cli_main(
            [
                "xpath", XPATH_QUERY, doc,
                "--deadline-ms", "60000", "--max-visited", "1000000",
            ]
        )
        assert rc == 0
        assert capsys.readouterr().out.split() == XPATH_NODES

    def test_trace_works_on_twig_and_datalog(self, doc, program, capsys):
        assert cli_main(["twig", "//item[keyword]", doc, "--trace"]) == 0
        assert "query:twig" in capsys.readouterr().err
        assert cli_main(["datalog", program, doc, "--trace"]) == 0
        assert "query:datalog" in capsys.readouterr().err


class TestOtherCommands:
    def test_stats(self, doc, capsys):
        assert cli_main(["stats", doc]) == 0
        assert "nodes   : 10" in capsys.readouterr().out

    def test_convert_round_trip(self, doc, tmp_path, capsys):
        store = os.path.join(tmp_path, "doc.rtre")
        assert cli_main(["convert", doc, store]) == 0
        assert cli_main(["xpath", XPATH_QUERY, store]) == 0
        assert capsys.readouterr().out.split() == XPATH_NODES

    def test_classify(self, capsys):
        assert cli_main(["classify", "Child+", "Following"]) == 0
        assert "NP-complete" in capsys.readouterr().out

    def test_error_exit_1(self):
        assert cli_main(["stats", "/nonexistent/file.xml"]) == 1
        assert cli_main(["xpath", "Child[", "/nonexistent.xml"]) == 1


class TestBenchCommands:
    """The `repro bench` subcommands against hand-written run files —
    the subprocess sweep itself is covered in tests/test_perf.py."""

    @staticmethod
    def _write_run(tmp_path, seconds_by_size):
        from repro.perf import BenchRecorder, Sample, write_run

        rec = BenchRecorder()
        rec.record_series(
            "metric",
            [(n, Sample(s * 0.9, s, s * 0.05, 3)) for n, s in seconds_by_size],
            module="bench_m",
        )
        return write_run(rec.as_dict(), root=str(tmp_path))

    LINEAR = [(100, 0.1), (200, 0.2), (400, 0.4)]
    QUADRATIC = [(100, 0.1), (200, 0.4), (400, 1.6)]

    def test_compare_identical_runs_exit_0(self, tmp_path, capsys):
        old = self._write_run(tmp_path, self.LINEAR)
        new = self._write_run(tmp_path, self.LINEAR)
        assert cli_main(["bench", "compare", old, new]) == 0
        assert "verdict: ok" in capsys.readouterr().out

    def test_compare_growth_class_flip_exit_1(self, tmp_path, capsys):
        old = self._write_run(tmp_path, self.LINEAR)
        new = self._write_run(tmp_path, self.QUADRATIC)
        assert cli_main(["bench", "compare", old, new]) == 1
        out = capsys.readouterr().out
        assert "growth class changed" in out and "REGRESSION" in out

    def test_compare_defaults_to_latest_two_in_dir(self, tmp_path, capsys):
        self._write_run(tmp_path, self.LINEAR)
        self._write_run(tmp_path, self.LINEAR)
        assert cli_main(["bench", "compare", "--dir", str(tmp_path)]) == 0
        assert "run 1 (baseline) -> run 2" in capsys.readouterr().out

    def test_compare_timing_warn_only_downgrades(self, tmp_path, capsys):
        old = self._write_run(tmp_path, self.LINEAR)
        new = self._write_run(
            tmp_path, [(n, s * 5) for n, s in self.LINEAR]
        )
        assert cli_main(["bench", "compare", old, new]) == 1
        capsys.readouterr()
        assert (
            cli_main(["bench", "compare", old, new, "--timing-warn-only"]) == 0
        )

    def test_compare_needs_two_runs(self, tmp_path, capsys):
        assert cli_main(["bench", "compare", "--dir", str(tmp_path)]) == 2
        assert "need two BENCH_*.json" in capsys.readouterr().err
        self._write_run(tmp_path, self.LINEAR)
        assert cli_main(["bench", "compare", "--dir", str(tmp_path)]) == 2

    def test_compare_rejects_single_positional(self, tmp_path, capsys):
        old = self._write_run(tmp_path, self.LINEAR)
        assert cli_main(["bench", "compare", old]) == 2
        assert "two run files or none" in capsys.readouterr().err

    def test_export_renders_openmetrics(self, tmp_path, capsys):
        path = self._write_run(tmp_path, self.LINEAR)
        assert cli_main(["bench", "export", path]) == 0
        out = capsys.readouterr().out
        assert out.endswith("# EOF\n")
        assert "repro_bench_median" in out
        capsys.readouterr()
        # default: the latest run under --dir
        assert cli_main(["bench", "export", "--dir", str(tmp_path)]) == 0
        assert "repro_bench_run_info" in capsys.readouterr().out

    def test_export_without_runs_exit_2(self, tmp_path, capsys):
        assert cli_main(["bench", "export", "--dir", str(tmp_path)]) == 2
        assert "no BENCH_*.json" in capsys.readouterr().err


class TestSupervisionFlags:
    def test_retries_recover_a_transient(self, doc, capsys):
        code = cli_main([
            "xpath", XPATH_QUERY, doc,
            "--fault", "strategy.*:transient@nth=1", "--retries", "1",
            "--stats",
        ])
        assert code == 0
        captured = capsys.readouterr()
        assert captured.out.split() == XPATH_NODES
        assert "2 attempts" in captured.err
        assert "fault plan: 1 trips" in captured.err

    def test_on_error_fallback_survives_a_poisoned_strategy(self, doc, capsys):
        code = cli_main([
            "xpath", XPATH_QUERY, doc,
            "--fault", "strategy.structural-join:error@nth=1",
            "--on-error", "fallback", "--stats",
        ])
        assert code == 0
        captured = capsys.readouterr()
        assert captured.out.split() == XPATH_NODES

    def test_unrecovered_injected_fault_exit_4(self, doc, capsys):
        code = cli_main([
            "xpath", XPATH_QUERY, doc,
            "--engine", "linear", "--fault", "strategy.linear:error@nth=1",
        ])
        assert code == 4
        assert "supervision exhausted" in capsys.readouterr().err

    def test_all_strategies_failed_exit_4(self, doc, capsys):
        code = cli_main([
            "xpath", XPATH_QUERY, doc,
            "--fault", "strategy.*:error@every=1", "--on-error", "fallback",
        ])
        assert code == 4
        assert "all strategies failed" in capsys.readouterr().err

    def test_on_error_partial_always_exits_0(self, doc, capsys):
        code = cli_main([
            "xpath", XPATH_QUERY, doc,
            "--fault", "strategy.*:error@every=1", "--on-error", "partial",
            "--stats",
        ])
        assert code == 0
        captured = capsys.readouterr()
        assert captured.out.strip() == ""  # degraded to the empty answer
        assert "DEGRADED" in captured.err

    def test_bad_fault_spec_exit_1(self, doc, capsys):
        code = cli_main(["xpath", XPATH_QUERY, doc, "--fault", "nonsense"])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_missing_document_is_a_clean_error(self, capsys):
        code = cli_main(["xpath", XPATH_QUERY, "/no/such/file.xml"])
        assert code == 1
        assert "/no/such/file.xml" in capsys.readouterr().err


class TestChaosCommand:
    def test_fast_sweep_exits_0_and_reports(self, capsys):
        assert cli_main(["chaos", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "chaos sweep" in out
        assert "OK" in out

    def test_sites_and_scenarios_filters(self, capsys):
        code = cli_main([
            "chaos", "--sites", "index.build", "--scenarios", "4",
            "--seed", "9",
        ])
        assert code == 0
        assert "seed=9" in capsys.readouterr().out
