"""Tests for the FO layer (§3/§4)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cq import evaluate_backtracking, parse_cq
from repro.errors import EvaluationError
from repro.logic import (
    And,
    Eq,
    Exists,
    Forall,
    Not,
    Or,
    RelAtom,
    cq_to_fo,
    fo_eval,
    is_positive,
    variable_width,
)
from repro.logic.fo import fo_query
from repro.trees import Tree, random_tree

from conftest import trees


class TestEvaluation:
    def test_exists_label(self):
        t = Tree.from_tuple(("a", ["b"]))
        f = Exists("x", RelAtom("Lab:b", ("x",)))
        assert fo_eval(f, t)
        assert not fo_eval(Exists("x", RelAtom("Lab:c", ("x",))), t)

    def test_forall(self):
        t = Tree.from_tuple(("a", ["a", "a"]))
        f = Forall("x", RelAtom("Lab:a", ("x",)))
        assert fo_eval(f, t)
        t2 = Tree.from_tuple(("a", ["b"]))
        assert not fo_eval(f, t2)

    def test_negation_and_equality(self):
        t = Tree.from_tuple(("a", ["b", "c"]))
        # there are two distinct non-root nodes
        f = Exists(
            "x",
            Exists(
                "y",
                And(
                    Not(Eq("x", "y")),
                    And(
                        Not(RelAtom("Root", ("x",))),
                        Not(RelAtom("Root", ("y",))),
                    ),
                ),
            ),
        )
        assert fo_eval(f, t)

    def test_binary_atoms(self):
        t = Tree.from_tuple(("a", [("b", ["c"])]))
        f = Exists("x", Exists("y", And(RelAtom("Child+", ("x", "y")), RelAtom("Lab:c", ("y",)))))
        assert fo_eval(f, t)

    def test_unbound_variable_raises(self):
        t = Tree.from_tuple("a")
        with pytest.raises(EvaluationError):
            fo_eval(RelAtom("Lab:a", ("x",)), t)

    def test_free_variable_query(self):
        t = Tree.from_tuple(("a", ["b", ("a", ["b"])]))
        # nodes labeled a with a b child
        f = Exists(
            "y", And(RelAtom("Child", ("x", "y")), RelAtom("Lab:b", ("y",)))
        )
        got = {v for v in t.nodes() if fo_eval(And(RelAtom("Lab:a", ("x",)), f), t, {"x": v})}
        assert got == {0, 2}

    @given(trees(max_size=15), st.integers(min_value=0, max_value=60))
    @settings(max_examples=30, deadline=None)
    def test_cq_to_fo_agrees_with_backtracking(self, t, seed):
        from repro.workloads import random_cq

        q = random_cq(3, 2, seed=seed, head_arity=1)
        f = cq_to_fo(q)
        expected = {r[0] for r in evaluate_backtracking(q, t)}
        assert fo_query(f, t, q.head[0]) == expected


class TestMeasures:
    def test_variable_width(self):
        q = parse_cq("ans(x) :- Child(x, y), Child(y, z)")
        assert variable_width(cq_to_fo(q)) == 3

    def test_two_variable_reuse(self):
        # ∃y Child(x,y) ∧ ∃x' ... reusing names keeps width at 2
        f = Exists("y", And(RelAtom("Child", ("x", "y")), RelAtom("Lab:a", ("y",))))
        assert variable_width(f) == 2

    def test_is_positive(self):
        q = parse_cq("ans(x) :- Child(x, y)")
        assert is_positive(cq_to_fo(q))
        assert not is_positive(Not(RelAtom("Lab:a", ("x",))))
        assert not is_positive(Forall("x", RelAtom("Lab:a", ("x",))))

    def test_str_rendering(self):
        f = Exists("x", Or(RelAtom("Leaf", ("x",)), Not(RelAtom("Root", ("x",)))))
        text = str(f)
        assert "∃x" in text and "∨" in text and "¬" in text
