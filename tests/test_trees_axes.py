"""Tests for the axis relations against a first-principles oracle."""

import pytest
from hypothesis import given, settings

from repro.errors import UnsupportedAxisError
from repro.trees import (
    AXES,
    FORWARD_AXES,
    REVERSE_AXES,
    Tree,
    axis_holds,
    axis_pairs,
    axis_targets,
    inverse_axis,
)
from repro.trees.axes import Axis, axis_sources, resolve_axis

from conftest import brute_axis_pairs, trees


class TestResolution:
    @pytest.mark.parametrize(
        "alias, axis",
        [
            ("child", Axis.CHILD),
            ("descendant", Axis.CHILD_PLUS),
            ("Child+", Axis.CHILD_PLUS),
            ("descendant-or-self", Axis.CHILD_STAR),
            ("following-sibling", Axis.NEXT_SIBLING_PLUS),
            ("following", Axis.FOLLOWING),
            ("parent", Axis.PARENT),
            ("ancestor", Axis.ANCESTOR),
            ("preceding-sibling", Axis.PRECEDING_SIBLING),
            ("self", Axis.SELF),
            ("first-child", Axis.FIRST_CHILD),
        ],
    )
    def test_aliases(self, alias, axis):
        assert resolve_axis(alias) is axis

    def test_unknown_axis_raises(self):
        with pytest.raises(UnsupportedAxisError):
            resolve_axis("sideways")

    def test_axis_enum_passthrough(self):
        assert resolve_axis(Axis.FOLLOWING) is Axis.FOLLOWING


class TestInverses:
    def test_inverse_is_involution(self):
        for axis in AXES:
            assert inverse_axis(inverse_axis(axis)) is axis

    def test_self_is_self_inverse(self):
        assert inverse_axis(Axis.SELF) is Axis.SELF

    def test_forward_reverse_partition(self):
        assert Axis.SELF in FORWARD_AXES
        assert not (FORWARD_AXES - {Axis.SELF}) & REVERSE_AXES
        for axis in FORWARD_AXES - {Axis.SELF}:
            assert inverse_axis(axis) in REVERSE_AXES

    @given(trees(max_size=15))
    @settings(max_examples=25, deadline=None)
    def test_inverse_semantics(self, t):
        for axis in AXES:
            inv = inverse_axis(axis)
            for u in t.nodes():
                for v in t.nodes():
                    assert axis_holds(t, axis, u, v) == axis_holds(t, inv, v, u)


class TestSemantics:
    @pytest.mark.parametrize("axis", list(AXES))
    def test_holds_matches_brute_force(self, axis, small_trees):
        for t in small_trees:
            expected = brute_axis_pairs(t, axis)
            got = {
                (u, v)
                for u in t.nodes()
                for v in t.nodes()
                if axis_holds(t, axis, u, v)
            }
            assert got == expected, axis

    @pytest.mark.parametrize("axis", list(AXES))
    def test_targets_match_holds(self, axis, small_trees):
        for t in small_trees:
            for u in t.nodes():
                targets = set(axis_targets(t, axis, u))
                expected = {v for v in t.nodes() if axis_holds(t, axis, u, v)}
                assert targets == expected

    @pytest.mark.parametrize("axis", list(AXES))
    def test_sources_are_inverse_targets(self, axis, small_trees):
        for t in small_trees:
            for v in t.nodes():
                sources = set(axis_sources(t, axis, v))
                expected = {u for u in t.nodes() if axis_holds(t, axis, u, v)}
                assert sources == expected

    @given(trees(max_size=20))
    @settings(max_examples=20, deadline=None)
    def test_pairs_enumeration(self, t):
        for axis in (Axis.CHILD, Axis.CHILD_PLUS, Axis.FOLLOWING, Axis.NEXT_SIBLING):
            assert set(axis_pairs(t, axis)) == brute_axis_pairs(t, axis)

    @given(trees(max_size=25))
    @settings(max_examples=30, deadline=None)
    def test_following_partitions_non_tree_pairs(self, t):
        """Following ∪ Preceding ∪ Ancestor ∪ Descendant ∪ Self covers
        all pairs of nodes (the document-region partition)."""
        for u in t.nodes():
            for v in t.nodes():
                covered = (
                    axis_holds(t, "Self", u, v)
                    or axis_holds(t, "Child+", u, v)
                    or axis_holds(t, "Ancestor", u, v)
                    or axis_holds(t, "Following", u, v)
                    or axis_holds(t, "Preceding", u, v)
                )
                assert covered


class TestDocumentOrderOfTargets:
    def test_descendant_targets_in_document_order(self, paper_tree):
        assert list(axis_targets(paper_tree, "Child+", 0)) == [1, 2, 3, 4, 5, 6]

    def test_following_targets(self, paper_tree):
        # node 1 (labeled b, first child): following = the second subtree
        assert list(axis_targets(paper_tree, "Following", 1)) == [4, 5, 6]

    def test_preceding_targets(self, paper_tree):
        assert list(axis_targets(paper_tree, "Preceding", 4)) == [1, 2, 3]

    def test_sibling_axes(self, paper_tree):
        assert list(axis_targets(paper_tree, "NextSibling+", 1)) == [4]
        assert list(axis_targets(paper_tree, "NextSibling*", 1)) == [1, 4]
        assert list(axis_targets(paper_tree, "PrecedingSibling", 4)) == [1]
