"""Tests for the extension modules: counting, FO², buffered streaming,
tree edits, the disk store, containment, and the CLI."""

import os
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main as cli_main
from repro.consistency import (
    ExplicitStructure,
    count_answers_per_value,
    count_solutions,
    is_tree_shaped,
)
from repro.cq import (
    ConjunctiveQuery,
    contained_by_homomorphism,
    decide_containment_sampled,
    evaluate_backtracking,
    homomorphism,
    parse_cq,
    refute_containment,
)
from repro.errors import ParseError
from repro.logic import variable_width
from repro.logic.fo import fo_query
from repro.storage import dump_tree, dumps_tree, load_tree, loads_tree
from repro.streaming import (
    MemoryMeter,
    split_lookahead,
    stream_select_lookahead,
    tree_events,
)
from repro.trees import (
    Tree,
    delete_subtree,
    insert_leaf,
    insert_subtree,
    parse_xml,
    random_tree,
    relabel,
    splice,
    to_xml,
)
from repro.trees.generate import tree_from_parents
from repro.workloads import random_cq, random_xpath
from repro.xpath import evaluate_query, parse_xpath, xpath_to_fo2

from conftest import trees


class TestCounting:
    @given(trees(max_size=18), st.integers(min_value=0, max_value=200))
    @settings(max_examples=50, deadline=None)
    def test_count_matches_enumeration(self, t, seed):
        q = random_cq(4, 3, seed=seed, head_arity=1)
        if not is_tree_shaped(q):
            return
        full = ConjunctiveQuery(tuple(q.variables()), q.atoms)
        solutions = evaluate_backtracking(full, t)
        assert count_solutions(q, t) == len(solutions)

    @given(trees(max_size=18), st.integers(min_value=0, max_value=200))
    @settings(max_examples=40, deadline=None)
    def test_per_value_counts(self, t, seed):
        q = random_cq(3, 2, seed=seed, head_arity=1)
        if not is_tree_shaped(q):
            return
        full = ConjunctiveQuery(tuple(q.variables()), q.atoms)
        idx = q.variables().index(q.head[0])
        expected = Counter(s[idx] for s in evaluate_backtracking(full, t))
        assert count_answers_per_value(q, t, q.head[0]) == dict(expected)

    def test_unsatisfiable_counts_zero(self):
        t = random_tree(10, seed=1, alphabet=("a",))
        q = parse_cq("ans(x) :- Child+(x, y), Lab:zzz(y)")
        assert count_solutions(q, t) == 0
        assert count_answers_per_value(q, t) == {}

    def test_large_counts_without_enumeration(self):
        """Counting stays cheap when the output would be huge: a chain
        x < y < z on a 100-node path has C(100, 3) = 161 700 solutions."""
        from repro.trees import path_tree

        t = path_tree(100)
        q = parse_cq("ans(x) :- Child+(x, y), Child+(y, z)")
        assert count_solutions(q, t) == 161_700


class TestFO2:
    QUERIES = [
        "Child/Child+[lab() = a]",
        "Child*[not(Child[lab() = b])]",
        "(Child union Following)[lab() = a]/Child",
        "Child+[Parent[lab() = a] or lab() = b]",
    ]

    @pytest.mark.parametrize("text", QUERIES)
    def test_width_two(self, text):
        formula = xpath_to_fo2(parse_xpath(text))
        assert variable_width(formula) <= 2

    @pytest.mark.parametrize("text", QUERIES)
    def test_semantics(self, text):
        expr = parse_xpath(text)
        formula = xpath_to_fo2(expr)
        for seed in range(3):
            t = random_tree(12, seed=seed)
            assert fo_query(formula, t, "y") == evaluate_query(expr, t)

    @given(st.integers(min_value=0, max_value=300))
    @settings(max_examples=30, deadline=None)
    def test_random_queries(self, seed):
        expr = parse_xpath(random_xpath(2, seed=seed))
        formula = xpath_to_fo2(expr)
        assert variable_width(formula) <= 2
        t = random_tree(9, seed=seed)
        assert fo_query(formula, t, "y") == evaluate_query(expr, t)


class TestBufferedStreaming:
    def test_split_lookahead(self):
        expr = parse_xpath("Child*[lab() = a][NextSibling+[lab() = b]]")
        core, lookahead = split_lookahead(expr)
        assert lookahead == {"b"}
        assert "NextSibling" not in str(core)

    QUERIES = [
        "Child*[lab() = a][NextSibling+[lab() = b]]",
        "Child[lab() = a]/Child*[lab() = b][NextSibling+[lab() = c]]",
        "Child+[NextSibling+[lab() = a]][NextSibling+[lab() = b]]",
        "Child*[lab() = a]",  # no lookahead: falls through to stream_select
    ]

    @pytest.mark.parametrize("text", QUERIES)
    def test_vs_in_memory(self, text, small_trees):
        expr = parse_xpath(text)
        for t in small_trees:
            got = set(stream_select_lookahead(expr, tree_events(t)))
            assert got == evaluate_query(expr, t), text

    @given(trees(max_size=40), st.sampled_from(QUERIES))
    @settings(max_examples=40, deadline=None)
    def test_fuzz(self, t, text):
        expr = parse_xpath(text)
        got = set(stream_select_lookahead(expr, tree_events(t)))
        assert got == evaluate_query(expr, t)

    def test_concurrency_forces_buffering(self):
        """[Bar-Yossef et al.]: memory must scale with the number of
        concurrently alive candidate answers — here on a depth-1 tree."""
        expr = parse_xpath("Child[lab() = a][NextSibling+[lab() = b]]")
        n = 1_001
        wide = tree_from_parents(
            [-1] + [0] * (n - 1), ["r"] + ["a"] * (n - 2) + ["b"]
        )
        meter = MemoryMeter()
        result = list(stream_select_lookahead(expr, tree_events(wide), meter=meter))
        assert len(result) == n - 2
        assert meter.peak_units > (n - 2)  # >> depth, which is 1


class TestEdits:
    def test_insert_leaf_positions(self):
        t = Tree.from_tuple(("r", ["a", "b"]))
        assert to_xml(insert_leaf(t, 0, 0, "x")) == "<r><x/><a/><b/></r>"
        assert to_xml(insert_leaf(t, 0, 2, "x")) == "<r><a/><b/><x/></r>"

    def test_insert_leaf_bad_position(self):
        t = Tree.from_tuple(("r", ["a"]))
        with pytest.raises(IndexError):
            insert_leaf(t, 0, 5, "x")

    def test_insert_subtree(self):
        t = Tree.from_tuple(("r", ["a"]))
        sub = Tree.from_tuple(("s", ["u", "v"]))
        out = insert_subtree(t, 1, 0, sub)
        assert to_xml(out) == "<r><a><s><u/><v/></s></a></r>"

    def test_delete_subtree(self):
        t = Tree.from_tuple(("r", [("a", ["x"]), "b"]))
        assert to_xml(delete_subtree(t, 1)) == "<r><b/></r>"
        with pytest.raises(ValueError):
            delete_subtree(t, 0)

    def test_relabel(self):
        t = Tree.from_tuple(("r", ["a"]))
        out = relabel(t, 1, "z")
        assert out.label[1] == "z" and out.has_label(1, "z")
        assert not out.has_label(1, "a")

    def test_splice(self):
        t = Tree.from_tuple(("r", [("a", ["x", "y"]), "b"]))
        assert to_xml(splice(t, 1)) == "<r><x/><y/><b/></r>"
        with pytest.raises(ValueError):
            splice(t, 0)

    @given(trees(max_size=20), st.integers(min_value=0, max_value=50))
    @settings(max_examples=40, deadline=None)
    def test_insert_then_delete_roundtrip(self, t, seed):
        parent = seed % t.n
        position = seed % (len(t.children[parent]) + 1)
        grown = insert_leaf(t, parent, position, "fresh")
        assert grown.n == t.n + 1
        new_node = next(
            v for v in grown.nodes() if grown.label[v] == "fresh"
        )
        assert delete_subtree(grown, new_node) == t


class TestDiskStore:
    @given(trees(max_size=50))
    @settings(max_examples=40, deadline=None)
    def test_round_trip(self, t):
        assert loads_tree(dumps_tree(t)) == t

    def test_multi_label_round_trip(self):
        t = parse_xml('<r id="1"><a/></r>', attributes_as_labels=True)
        assert loads_tree(dumps_tree(t)) == t

    def test_file_round_trip(self, tmp_path):
        t = random_tree(500, seed=3)
        path = os.path.join(tmp_path, "tree.rtre")
        size = dump_tree(t, path)
        assert size == os.path.getsize(path)
        assert load_tree(path) == t

    def test_compactness(self):
        """The store is a small constant number of bytes per node."""
        t = random_tree(10_000, seed=4)
        data = dumps_tree(t)
        assert len(data) < 24 * t.n

    def test_bad_magic(self):
        with pytest.raises(ParseError):
            loads_tree(b"NOPE" + b"\x00" * 32)


class TestContainment:
    def test_child_in_descendant(self):
        q_child = parse_cq("ans(y) :- Child(x, y), Lab:a(x)")
        q_desc = parse_cq("ans(y) :- Child+(x, y), Lab:a(x)")
        assert contained_by_homomorphism(q_child, q_desc)
        assert not contained_by_homomorphism(q_desc, q_child)
        assert decide_containment_sampled(q_desc, q_child)[0] is False

    def test_refutation_returns_counterexample(self):
        # binary heads: the grandparent pair separates Child+ from Child
        q1 = parse_cq("ans(x, y) :- Child+(x, y)")
        q2 = parse_cq("ans(x, y) :- Child(x, y)")
        witness = refute_containment(q1, q2)
        assert witness is not None
        r1 = evaluate_backtracking(q1, witness)
        r2 = evaluate_backtracking(q2, witness)
        assert not r1 <= r2

    def test_unary_projection_equivalence_not_refuted(self):
        """ans(y) :- Child+(x, y) ≡ ans(y) :- Child(x, y): having an
        ancestor is having a parent — the bounded refuter finds no
        counterexample (correctly), though no homomorphism exists:
        the incompleteness band of the Chandra–Merlin test over trees."""
        q1 = parse_cq("ans(y) :- Child+(x, y)")
        q2 = parse_cq("ans(y) :- Child(x, y)")
        assert not contained_by_homomorphism(q1, q2)
        assert refute_containment(q1, q2) is None
        assert decide_containment_sampled(q1, q2) == (
            True,
            "no-small-counterexample",
        )

    def test_homomorphism_respects_labels(self):
        q1 = parse_cq("ans(y) :- Child(x, y), Lab:a(x)")
        q2 = parse_cq("ans(y) :- Child(x, y), Lab:b(x)")
        assert not contained_by_homomorphism(q1, q2)
        assert decide_containment_sampled(q1, q2)[0] is False

    def test_equivalent_renamings(self):
        q1 = parse_cq("ans(y) :- Child(x, y)")
        q2 = parse_cq("ans(w) :- Child(z, w)")
        assert contained_by_homomorphism(q1, q2)
        assert contained_by_homomorphism(q2, q1)

    def test_extra_atom_containment(self):
        smaller = parse_cq("ans(y) :- Child(x, y), Lab:a(y), Leaf(y)")
        larger = parse_cq("ans(y) :- Child(x, y), Lab:a(y)")
        assert contained_by_homomorphism(smaller, larger)
        assert decide_containment_sampled(larger, smaller)[0] is False

    @given(st.integers(min_value=0, max_value=100))
    @settings(max_examples=25, deadline=None)
    def test_homomorphism_soundness(self, seed):
        """Whenever the homomorphism test fires, containment really holds
        on sampled trees."""
        q1 = random_cq(3, 2, seed=seed, head_arity=1)
        q2 = random_cq(3, 2, seed=seed + 1000, head_arity=1)
        if not contained_by_homomorphism(q1, q2):
            return
        for tree_seed in range(4):
            t = random_tree(12, seed=tree_seed)
            assert evaluate_backtracking(q1, t) <= evaluate_backtracking(q2, t)


class TestCLI:
    @pytest.fixture
    def doc(self, tmp_path):
        path = os.path.join(tmp_path, "doc.xml")
        with open(path, "w") as fh:
            fh.write("<site><item><name/><keyword/></item><item><name/></item></site>")
        return path

    def test_stats(self, doc, capsys):
        assert cli_main(["stats", doc]) == 0
        out = capsys.readouterr().out
        assert "nodes   : 6" in out

    def test_xpath_all_engines(self, doc, capsys):
        code = cli_main(
            ["xpath", "Child*[lab() = item]/Child[lab() = name]", doc, "--engine", "all"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert out.split() == ["2", "5"]

    def test_cq(self, doc, capsys):
        code = cli_main(
            ["cq", "ans(x) :- Child(y, x), Lab:item(y)", doc, "--engine", "all"]
        )
        assert code == 0

    def test_twig(self, doc, capsys):
        assert cli_main(["twig", "//item[keyword]", doc]) == 0
        out = capsys.readouterr().out
        assert "1" in out

    def test_classify(self, capsys):
        assert cli_main(["classify", "Child+", "Following"]) == 0
        assert "NP-complete" in capsys.readouterr().out
        assert cli_main(["classify", "descendant"]) == 0
        assert "<pre" in capsys.readouterr().out

    def test_convert_round_trip(self, doc, tmp_path, capsys):
        store = os.path.join(tmp_path, "doc.rtre")
        assert cli_main(["convert", doc, store]) == 0
        assert cli_main(["stats", store]) == 0
        assert "nodes   : 6" in capsys.readouterr().out

    def test_datalog(self, doc, tmp_path, capsys):
        program = os.path.join(tmp_path, "p.dl")
        with open(program, "w") as fh:
            fh.write("Q(x) :- Lab:keyword(x).\n% query: Q\n")
        assert cli_main(["datalog", program, doc]) == 0
        assert capsys.readouterr().out.strip() == "3"

    def test_error_path(self, capsys):
        assert cli_main(["stats", "/nonexistent/file.xml"]) == 1

    def test_bad_engine(self, doc, capsys):
        assert cli_main(["xpath", "Child", doc, "--engine", "warp"]) == 2


class TestExplicitStructureExports:
    def test_example_6_1_through_public_api(self):
        from repro.consistency import arc_consistency_worklist
        from repro.datalog.syntax import Atom

        q = ConjunctiveQuery((), (Atom("R", ("x", "y")), Atom("S", ("x", "y"))))
        s = ExplicitStructure(
            [1, 2, 3, 4], binary={"R": [(1, 2), (3, 4)], "S": [(3, 2), (1, 4)]}
        )
        assert arc_consistency_worklist(q, None, s) == {
            "x": {1, 3},
            "y": {2, 4},
        }
