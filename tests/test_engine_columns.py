"""Unit tests for the columnar index core (repro.engine.columns).

The differential sweep (test_engine_differential.py) proves the column
paths observationally identical to the object paths end-to-end; this
module pins the pieces in isolation — the mode resolver, the
ColumnStore layout and interning, the interval semi-joins against a
brute-force oracle, the stream pruning, and the columnar automaton.
"""

from __future__ import annotations

import pytest

from repro.engine import ColumnStore, Database, resolve_mode
from repro.engine.columns import COLUMNS_ENV, evaluate_xpath_automaton_columns
from repro.errors import QueryError
from repro.trees.generate import random_tree
from repro.twigjoin.pattern import parse_twig
from repro.workloads.queries import random_twig, random_xpath
from repro.xpath.parser import parse_xpath

LABELS = ("a", "b", "c", "d")


def _tree(seed: int, n: int = 40):
    return random_tree(n, seed=seed, alphabet=LABELS)


def _numpy_or_skip():
    np = pytest.importorskip("numpy")
    return np


# ---------------------------------------------------------------------------
# mode resolution and feature gating
# ---------------------------------------------------------------------------


class TestResolveMode:
    @pytest.mark.parametrize("spelling", ["", "0", "off", "no", "objects", None])
    def test_off_spellings(self, spelling, monkeypatch):
        monkeypatch.delenv(COLUMNS_ENV, raising=False)
        assert resolve_mode(spelling) == "off"

    @pytest.mark.parametrize("spelling", ["1", "on", "array", "columns", True])
    def test_on_spellings(self, spelling):
        assert resolve_mode(spelling) == "array"

    def test_false_is_off(self):
        assert resolve_mode(False) == "off"

    def test_env_var_is_the_default(self, monkeypatch):
        monkeypatch.setenv(COLUMNS_ENV, "on")
        assert resolve_mode(None) == "array"
        monkeypatch.setenv(COLUMNS_ENV, "off")
        assert resolve_mode(None) == "off"

    def test_explicit_request_beats_env(self, monkeypatch):
        monkeypatch.setenv(COLUMNS_ENV, "on")
        assert resolve_mode("off") == "off"

    def test_unknown_mode_is_a_query_error(self):
        with pytest.raises(QueryError, match="columns mode"):
            resolve_mode("quantum")

    def test_numpy_mode_resolves(self):
        # resolves to "numpy" when importable, "array" otherwise —
        # never an error: columns must not introduce a dependency
        assert resolve_mode("numpy") in ("numpy", "array")

    def test_database_env_gating(self, monkeypatch):
        monkeypatch.setenv(COLUMNS_ENV, "on")
        db = Database(_tree(0))
        assert db.index.columns is not None
        monkeypatch.delenv(COLUMNS_ENV)
        db = Database(_tree(0))
        assert db.index.columns is None


# ---------------------------------------------------------------------------
# layout and interning
# ---------------------------------------------------------------------------


class TestColumnStore:
    def test_columns_mirror_the_tree(self):
        tree = _tree(1)
        store = ColumnStore(tree)
        assert list(store.pre) == list(range(tree.n))
        assert list(store.post) == list(tree.post)
        assert list(store.level) == list(tree.depth)
        assert list(store.parent) == list(tree.parent)
        assert list(store.subtree_end) == list(tree.subtree_end)

    def test_interning_round_trips(self):
        store = ColumnStore(_tree(2))
        for label in store.labels():
            lid = store.label_id(label)
            assert lid >= 0
            assert store.label_of(lid) == label
        assert store.label_id("no-such-label") == -1

    def test_postings_are_sorted_document_order(self):
        tree = _tree(3)
        store = ColumnStore(tree)
        for label in store.labels():
            posting = list(store.posting(label))
            assert posting == sorted(posting)
            assert posting == [
                v for v in range(tree.n) if tree.has_label(v, label)
            ]

    def test_absent_label_posting_is_empty(self):
        store = ColumnStore(_tree(4))
        assert len(store.posting("zzz")) == 0

    def test_mask_matches_posting(self):
        tree = _tree(5)
        store = ColumnStore(tree)
        for label in store.labels():
            mask = store.mask(label)
            assert [v for v in range(tree.n) if mask[v]] == list(
                store.posting(label)
            )

    def test_label_pairs_match_index_pairs(self):
        tree = _tree(6)
        store = ColumnStore(tree)
        from repro.engine.index import DocumentIndex

        index = DocumentIndex(tree)
        for label in store.labels():
            nodes, posts = store.label_pairs(label)
            assert list(zip(nodes, posts)) == [
                tuple(p) for p in index.label_pairs(label)
            ]

    def test_derived_cache_is_bounded_lru(self):
        store = ColumnStore(_tree(7), derived_cache_size=2)
        labels = sorted(store.labels())
        assert len(labels) >= 3
        for label in labels:
            store.mask(label)
        assert store.derived_cached() <= 2
        assert store.derived_evictions >= len(labels) - 2
        # evictions must not disturb the permanent interning table, and
        # re-derived artifacts must be equal to the originals
        fresh = ColumnStore(_tree(7))
        for label in labels:
            assert store.label_id(label) == fresh.label_id(label)
            assert bytes(store.mask(label)) == bytes(fresh.mask(label))


# ---------------------------------------------------------------------------
# the interval semi-joins, against a brute-force oracle
# ---------------------------------------------------------------------------


class TestSemijoins:
    @pytest.mark.parametrize("seed", range(15))
    def test_descendant_semijoin_matches_oracle(self, seed):
        tree = _tree(seed, n=30 + 5 * seed)
        store = ColumnStore(tree)
        frontier = sorted(v for v in range(tree.n) if v % 3 == seed % 3)
        candidates = store.posting(LABELS[seed % len(LABELS)])
        got = store.descendant_semijoin(frontier, candidates)
        expected = sorted(
            {
                d
                for u in frontier
                for d in tree.descendants(u)
                if d in set(candidates)
            }
        )
        assert got == expected, f"seed={seed}"
        # sorted and duplicate-free by construction
        assert got == sorted(set(got))

    @pytest.mark.parametrize("seed", range(15))
    def test_child_semijoin_matches_oracle(self, seed):
        tree = _tree(seed, n=30 + 5 * seed)
        store = ColumnStore(tree)
        frontier = sorted(v for v in range(tree.n) if v % 2 == seed % 2)
        members = set(frontier)
        candidates = store.posting(LABELS[seed % len(LABELS)])
        got = store.child_semijoin(frontier, candidates)
        expected = [c for c in candidates if tree.parent[c] in members]
        assert got == expected, f"seed={seed}"

    def test_nested_frontier_collapses_to_maximal_intervals(self):
        # the root's interval covers the whole document, so a frontier
        # containing every node produces exactly the root's descendants
        tree = _tree(8)
        store = ColumnStore(tree)
        candidates = list(range(tree.n))
        everything = store.descendant_semijoin(list(range(tree.n)), candidates)
        from_root = store.descendant_semijoin([tree.root], candidates)
        assert everything == from_root == list(range(1, tree.n))


# ---------------------------------------------------------------------------
# twig stream pruning: sound (equal answers), effective (smaller streams)
# ---------------------------------------------------------------------------


class TestTwigStreamPruning:
    @pytest.mark.parametrize("seed", range(20))
    def test_pruned_streams_preserve_answers(self, seed):
        from repro.twigjoin.twigstack import twig_stack

        tree = _tree(seed, n=25 + 6 * seed)
        store = ColumnStore(tree)
        pattern = random_twig(n_nodes=2 + seed % 4, labels=LABELS, seed=seed)
        plain = twig_stack(pattern, tree)
        pruned = twig_stack(pattern, tree, streams=store.twig_streams(pattern))
        assert set(pruned) == set(plain), f"seed={seed} pattern={pattern}"

    @pytest.mark.parametrize("seed", range(20))
    def test_pruned_streams_are_subsets(self, seed):
        tree = _tree(seed, n=25 + 6 * seed)
        store = ColumnStore(tree)
        from repro.engine.index import DocumentIndex

        index = DocumentIndex(tree)
        pattern = random_twig(n_nodes=2 + seed % 4, labels=LABELS, seed=seed)
        plain = index.twig_streams(pattern)
        pruned = store.twig_streams(pattern)
        for qi, (p, q) in enumerate(zip(plain, pruned)):
            assert set(q) <= set(p), f"seed={seed} pattern node {qi}"
            assert q == sorted(q)

    def test_pruning_removes_unproductive_regions(self):
        # only one of many <a> blocks contains the <c> the pattern
        # demands — pruning must drop the others from the a-stream
        blocks = "".join(
            "<a><b/><c/></a>" if i == 0 else "<a><b/></a>" for i in range(20)
        )
        db = Database.from_xml(f"<r>{blocks}</r>", columns="on")
        store = db.index.columns
        pattern = parse_twig("//a[c]//b")
        pruned = store.twig_streams(pattern)
        assert len(pruned[0]) == 1  # just the productive <a>
        assert len(pruned[1]) == 1  # its <c>... pattern order: a, c, b
        result = db.twig(pattern)
        assert len(result.answer) == 1


# ---------------------------------------------------------------------------
# the columnar automaton
# ---------------------------------------------------------------------------


class TestColumnarAutomaton:
    @pytest.mark.parametrize("seed", range(25))
    def test_matches_object_automaton(self, seed):
        from repro.automata.xpathrun import evaluate_xpath_automaton, is_downward

        tree = _tree(seed, n=20 + 7 * seed)
        store = ColumnStore(tree)
        for query_seed in range(3):
            expr = parse_xpath(
                random_xpath(
                    n_steps=1 + query_seed,
                    labels=LABELS,
                    qualifier_prob=0.6,
                    negation_prob=0.2,
                    seed=50 * seed + query_seed,
                )
            )
            if not is_downward(expr):
                continue
            assert evaluate_xpath_automaton_columns(
                expr, store
            ) == evaluate_xpath_automaton(expr, tree), (
                f"seed={seed} query_seed={query_seed}"
            )

    def test_rejects_non_downward_like_the_object_path(self):
        store = ColumnStore(_tree(9))
        expr = parse_xpath("Parent[lab() = a]")
        with pytest.raises(QueryError, match="downward fragment"):
            evaluate_xpath_automaton_columns(expr, store)

    def test_rejects_position_like_the_object_path(self):
        store = ColumnStore(_tree(9))
        expr = parse_xpath("Child[position() = 1]")
        with pytest.raises(QueryError):
            evaluate_xpath_automaton_columns(expr, store)


# ---------------------------------------------------------------------------
# the numpy fast path (skipped when numpy is unavailable)
# ---------------------------------------------------------------------------


class TestNumpyMode:
    def test_numpy_columns_agree_with_array_columns(self):
        np = _numpy_or_skip()
        tree = _tree(10, n=80)
        arr = ColumnStore(tree, mode="array")
        npy = ColumnStore(tree, mode="numpy")
        assert npy.mode == "numpy"
        assert isinstance(npy.pre, np.ndarray)
        frontier = sorted(v for v in range(tree.n) if v % 3 == 0)
        for label in arr.labels():
            assert list(arr.posting(label)) == list(npy.posting(label))
            assert arr.descendant_semijoin(
                frontier, arr.posting(label)
            ) == npy.descendant_semijoin(frontier, npy.posting(label))

    def test_numpy_database_end_to_end(self):
        _numpy_or_skip()
        tree = _tree(11, n=60)
        db_obj = Database(tree)
        db_np = Database(tree, columns="numpy")
        for q in ("Child+[lab() = b]", "Child[lab() = a]/Child+[lab() = c]"):
            assert set(db_np.xpath(q).answer) == set(db_obj.xpath(q).answer)


# ---------------------------------------------------------------------------
# engine integration: stats still observable through the column path
# ---------------------------------------------------------------------------


class TestEngineIntegration:
    def test_columns_built_lazily_and_cached(self):
        db = Database(_tree(12), columns="on")
        index = db.index
        assert index._columns is None  # not built by indexing alone
        db.xpath("Child+[lab() = b]")
        assert index._columns is not None
        assert index.columns is index.columns

    def test_off_mode_never_builds_columns(self):
        db = Database(_tree(12))
        db.xpath("Child+[lab() = b]")
        assert db.index.columns is None

    def test_column_counters_surface_in_stats(self):
        db = Database(_tree(13), columns="on")
        result = db.xpath("Child+[lab() = b]", trace=True)
        assert result.stats.counters.get("index.columns_built") == 1
        assert result.stats.strategy == "structural-join"
        assert "sj.frontier" in result.stats.counters

    def test_supervised_spans_unchanged_by_columns(self):
        db = Database(_tree(13), columns="on")
        result = db.xpath("Child+[lab() = b]", trace=True)
        names = [s.name for s in result.stats.trace.children]
        assert names == ["index-build", "plan", "execute:structural-join"]
