"""Tests for the observability layer itself (repro.obs).

Three groups:

- unit tests of the primitives — Span/Tracer nesting and counter
  attribution, ResourceBudget limits, the metrics registry,
- exact-counter tests on a hand-built 10-node document, pinning the
  instrumentation points of the structural-join and linear routes,
- disabled-path tests proving that without ``trace``/budget kwargs the
  engine allocates no tracer, no spans and touches no registry.
"""

from __future__ import annotations

import json

import pytest

from repro.engine import Database
from repro.errors import ResourceBudgetExceeded
from repro.obs import (
    METRICS,
    Observation,
    ResourceBudget,
    Span,
    Tracer,
    current,
    observed,
    render_pretty,
    trace_json,
    trace_to_dict,
)

# 10 nodes; ids are pre-order positions:
#   0:a  1:b  2:c  3:b  4:c  5:b  6:a  7:b  8:c  9:d
# so the b-partition is [1, 3, 5, 7] and the c-partition [2, 4, 8].
DOC = "<a><b><c/><b/></b><c><b/></c><a><b><c/></b></a><d/></a>"
B_NODES = {1, 3, 5, 7}


# ---------------------------------------------------------------------------
# Tracer / Span primitives
# ---------------------------------------------------------------------------


def test_span_nesting_matches_call_structure():
    tracer = Tracer()
    with tracer.span("outer", tag="x"):
        with tracer.span("inner-1"):
            tracer.count("work", 2)
        with tracer.span("inner-2"):
            with tracer.span("leaf"):
                tracer.count("work", 3)
    root = tracer.root
    assert root.name == "outer"
    assert root.meta == {"tag": "x"}
    assert [c.name for c in root.children] == ["inner-1", "inner-2"]
    assert [c.name for c in root.children[1].children] == ["leaf"]
    # counters attach to the innermost open span, not the root
    assert root.find("inner-1").counters == {"work": 2}
    assert root.find("leaf").counters == {"work": 3}
    assert root.counters == {}
    assert root.total_counters() == {"work": 5}


def test_tracer_durations_are_monotone():
    ticks = iter(range(100))
    tracer = Tracer(clock=lambda: next(ticks))
    with tracer.span("outer"):
        with tracer.span("inner"):
            pass
    outer, inner = tracer.root, tracer.root.children[0]
    assert outer.start_s <= inner.start_s <= inner.end_s <= outer.end_s
    assert outer.duration_s >= inner.duration_s


def test_tracer_second_toplevel_span_reparented_under_root():
    tracer = Tracer()
    with tracer.span("first"):
        pass
    with tracer.span("second"):
        pass
    assert tracer.root.name == "first"
    assert [c.name for c in tracer.root.children] == ["second"]


def test_tracer_end_unwinds_spans_abandoned_by_exceptions():
    tracer = Tracer()
    outer = tracer.start("outer")
    tracer.start("abandoned")  # never explicitly ended
    tracer.end(outer)
    assert tracer.current is None
    abandoned = tracer.root.children[0]
    assert abandoned.end_s == outer.end_s  # closed by the unwind


def test_span_find_is_preorder_first_match():
    tracer = Tracer()
    with tracer.span("a"):
        with tracer.span("b"):
            tracer.count("hits", 1)
        with tracer.span("b"):
            tracer.count("hits", 7)
    assert tracer.root.find("b").counters == {"hits": 1}
    assert tracer.root.find("zzz") is None


def test_trace_export_roundtrip_and_pretty():
    tracer = Tracer()
    with tracer.span("query", q="test"):
        with tracer.span("step"):
            tracer.count("nodes.visited", 4)
    d = trace_to_dict(tracer.root)
    assert d["name"] == "query"
    assert d["meta"] == {"q": "test"}
    assert d["children"][0]["counters"] == {"nodes.visited": 4}
    parsed = json.loads(trace_json(tracer.root))
    assert parsed == d
    pretty = render_pretty(tracer.root)
    assert "query" in pretty and "step" in pretty
    assert "nodes.visited=4" in pretty


# ---------------------------------------------------------------------------
# ResourceBudget
# ---------------------------------------------------------------------------


def test_budget_max_visited_raises_with_details():
    budget = ResourceBudget(max_visited=10)
    budget.charge(10)  # exactly at the limit: fine
    assert budget.remaining_visits() == 0
    with pytest.raises(ResourceBudgetExceeded) as exc_info:
        budget.charge(1)
    err = exc_info.value
    assert err.reason == "max_visited"
    assert err.limit == 10
    assert err.spent == 11


def test_budget_deadline_uses_injected_clock():
    now = [0.0]
    budget = ResourceBudget(deadline_s=5.0, clock=lambda: now[0])
    budget.charge()
    now[0] = 4.9
    budget.charge()
    now[0] = 5.0
    with pytest.raises(ResourceBudgetExceeded) as exc_info:
        budget.charge()
    assert exc_info.value.reason == "deadline"
    assert exc_info.value.limit == 5.0


def test_budget_rejects_negative_limits():
    with pytest.raises(ValueError):
        ResourceBudget(deadline_s=-1.0)
    with pytest.raises(ValueError):
        ResourceBudget(max_visited=-1)


def test_budget_batched_overshoot_reports_pre_batch_plus_batch():
    # regression: a batched charge that crosses the ceiling must report
    # spent = pre-batch total + whole batch, and keep the accounting
    budget = ResourceBudget(max_visited=10)
    budget.charge(7)
    with pytest.raises(ResourceBudgetExceeded) as exc_info:
        budget.charge(100)
    assert exc_info.value.spent == 107
    assert budget.visited == 107
    # a subsequent charge keeps reporting consistently
    with pytest.raises(ResourceBudgetExceeded) as exc_info:
        budget.charge(3)
    assert exc_info.value.spent == 110


def test_budget_deadline_spent_is_elapsed_seconds():
    # regression: the deadline error used to report the *visit count*
    # as "spent" against a limit measured in seconds
    now = [100.0]
    budget = ResourceBudget(deadline_s=2.0, clock=lambda: now[0])
    budget.charge(500)
    now[0] = 103.5
    with pytest.raises(ResourceBudgetExceeded) as exc_info:
        budget.charge(500)
    assert exc_info.value.reason == "deadline"
    assert exc_info.value.limit == 2.0
    assert exc_info.value.spent == pytest.approx(3.5)


def test_budget_zero_deadline_fails_on_first_charge_deterministically():
    # regression: deadline_s=0 depended on the clock having advanced
    # between __init__ and the first charge — now it always fires, even
    # with a frozen clock
    frozen = lambda: 42.0  # noqa: E731
    for _ in range(50):
        budget = ResourceBudget(deadline_s=0, clock=frozen)
        with pytest.raises(ResourceBudgetExceeded) as exc_info:
            budget.charge()
        assert exc_info.value.reason == "deadline"


def test_budget_zero_deadline_through_the_engine():
    from repro.engine import Database

    db = Database.from_xml("<a><b/><c/></a>")
    with pytest.raises(ResourceBudgetExceeded):
        db.xpath("Child[lab() = b]", deadline=0.0)


def test_observation_tick_counts_and_charges():
    obs = Observation(budget=ResourceBudget(max_visited=5))
    with observed(obs):
        assert current() is obs
        current().tick(3)
        with pytest.raises(ResourceBudgetExceeded):
            current().tick(3)
    assert current() is None
    assert obs.counters["nodes.visited"] == 6  # counted before the raise


def test_observed_restores_previous_context_on_exception():
    obs = Observation()
    with pytest.raises(RuntimeError):
        with observed(obs):
            raise RuntimeError("boom")
    assert current() is None


# ---------------------------------------------------------------------------
# exact counters on the hand-built document
# ---------------------------------------------------------------------------


def test_structural_join_exact_counters():
    db = Database.from_xml(DOC)
    result = db.xpath("Child+[lab() = b]", "structural-join", trace=True)
    assert set(result.answer) == B_NODES
    counters = result.stats.counters
    # the index was built inside this (first) observed call
    assert counters["index.builds"] == 1
    assert counters["index.nodes_indexed"] == 10
    assert counters["index.labels_indexed"] == 4  # a, b, c, d
    # one join step: ancestors {root} (1) + b-stream (4) scanned, then
    # 4 result pairs ticked on output → 5 + 4 visits
    assert counters["sj.elements_scanned"] == 5
    assert counters["sj.pairs"] == 4
    assert counters["sj.frontier"] == 4
    assert counters["nodes.visited"] == 9
    assert counters["strategy.executions"] == 1


def test_linear_exact_counters():
    db = Database.from_xml(DOC)
    db.xpath("Self")  # warm the index outside observation
    result = db.xpath("Child+[lab() = b]", "linear", trace=True)
    assert set(result.answer) == B_NODES
    counters = result.stats.counters
    assert counters["linear.axis_applications"] == 1
    assert counters["index.labels_touched"] == 1
    # _touch streams the b-partition (4), the axis application charges
    # its input frontier {root} (1) and its output, the 9 descendants
    assert counters["nodes.visited"] == 4 + 1 + 9
    assert "index.builds" not in counters  # index pre-built above


def test_trace_span_tree_shape():
    db = Database.from_xml(DOC)
    result = db.xpath("Child+[lab() = b]", trace=True)
    root = result.stats.trace
    assert root is not None
    assert root.name == "query:xpath"
    assert root.meta["query"] == "Child+[lab() = b]"
    names = [c.name for c in root.children]
    assert names == ["index-build", "plan", "execute:structural-join"]
    execute = root.children[2]
    assert [c.name for c in execute.children] == [
        "strategy:xpath:structural-join"
    ]
    strategy = execute.children[0]
    assert [c.name for c in strategy.children] == ["sj-step"]
    step = strategy.children[0]
    assert step.meta == {"axis": "Child+", "labels": "b"}
    # per-span counters roll up to the stats totals
    totals = root.total_counters()
    assert totals == result.stats.counters
    assert result.stats.counter("sj.pairs") == 4


def test_every_registered_strategy_emits_a_span():
    """Acceptance: with tracing on, each registered strategy that runs
    emits at least one span (the strategy:<kind>:<name> wrapper)."""
    from repro.engine.strategies import STRATEGIES

    db = Database.from_xml(DOC)
    cases = [
        ("xpath", "Child+[lab() = b]"),
        ("xpath", "Child+[lab() = b]/Child[lab() = c][not(Child)]"),
        ("twig", "//a[b]//c"),
        ("twig", "//a//b//c"),
        ("cq", "ans(x) :- Child+(y, x), Child+(y, z), Child+(x, z), Lab:b(x)"),
        ("cq", "ans(x) :- Child+(y, x), Lab:b(x)"),
        ("datalog", "Q(x) :- Lab:b(x).\n% query: Q"),
    ]
    seen: set[tuple[str, str]] = set()
    for kind, query in cases:
        for name, result in db.cross_check(kind, query, trace=True).items():
            span = result.stats.trace.find(f"strategy:{kind}:{name}")
            assert span is not None, f"no span for {kind}:{name}"
            seen.add((kind, name))
    missing = {
        (kind, name)
        for kind, registry in STRATEGIES.items()
        for name in registry
    } - seen
    assert not missing, f"strategies never exercised with a span: {missing}"


# ---------------------------------------------------------------------------
# disabled path
# ---------------------------------------------------------------------------


def test_disabled_path_allocates_no_tracer_or_span(monkeypatch):
    def forbidden(self, *args, **kwargs):
        raise AssertionError("allocated on the disabled path")

    monkeypatch.setattr(Tracer, "__init__", forbidden)
    monkeypatch.setattr(Span, "__init__", forbidden)
    db = Database.from_xml(DOC)
    result = db.xpath("Child+[lab() = b]")
    assert set(result.answer) == B_NODES
    assert result.stats.trace is None
    assert result.stats.counters is None
    assert current() is None


def test_disabled_path_does_not_touch_metrics():
    db = Database.from_xml(DOC)
    METRICS.reset()
    db.xpath("Child+[lab() = b]")
    assert METRICS.queries_observed == 0
    assert METRICS.snapshot() == {}


def test_observed_calls_merge_into_metrics():
    db = Database.from_xml(DOC)
    METRICS.reset()
    try:
        db.xpath("Child+[lab() = b]", trace=True)
        db.xpath("Child+[lab() = b]", "linear", max_visited=10_000)
        assert METRICS.queries_observed == 2
        snap = METRICS.snapshot()
        assert snap["strategy.executions"] == 2
        assert snap["nodes.visited"] > 0
    finally:
        METRICS.reset()


# ---------------------------------------------------------------------------
# budget enforcement through the engine
# ---------------------------------------------------------------------------


def test_explicit_strategy_budget_propagates():
    db = Database.from_xml(DOC)
    with pytest.raises(ResourceBudgetExceeded):
        db.xpath("Child+[lab() = b]", "linear", max_visited=2)


def test_auto_budget_exhausting_all_strategies_reraises():
    db = Database.from_xml(DOC)
    # no route can answer this within 0 visits
    with pytest.raises(ResourceBudgetExceeded):
        db.xpath("Child+[lab() = b]", max_visited=0)


def test_generous_budget_changes_nothing():
    db = Database.from_xml(DOC)
    plain = db.xpath("Child+[lab() = b]")
    budgeted = db.xpath(
        "Child+[lab() = b]", deadline=60.0, max_visited=10_000_000
    )
    assert set(budgeted.answer) == set(plain.answer)
    assert budgeted.stats.strategy == plain.stats.strategy
    assert budgeted.stats.fallback_from == ()


# ---------------------------------------------------------------------------
# duration histograms and the OpenMetrics exposition
# ---------------------------------------------------------------------------


def test_duration_histogram_single_observation_is_exact():
    from repro.obs import DurationHistogram

    hist = DurationHistogram()
    hist.observe(0.25)
    d = hist.to_dict()
    assert d["count"] == 1
    assert d["sum"] == pytest.approx(0.25)
    assert d["min"] == d["max"] == pytest.approx(0.25)
    assert d["p50"] == pytest.approx(0.25)


def test_duration_histogram_percentiles_are_monotone_and_bracketed():
    from repro.obs import DurationHistogram

    hist = DurationHistogram()
    for ms in range(1, 101):  # 1ms .. 100ms
        hist.observe(ms * 1e-3)
    p50, p90, p99 = (hist.percentile(q) for q in (0.5, 0.9, 0.99))
    assert hist.min <= p50 <= p90 <= p99 <= hist.max
    assert hist.mean == pytest.approx(0.0505, rel=1e-6)
    # bucket resolution is a factor of two: estimates stay within that
    assert 0.025 <= p50 <= 0.1
    assert 0.05 <= p90 <= 0.2


def test_duration_histogram_merge_matches_combined_stream():
    from repro.obs import DurationHistogram

    left, right, combined = (DurationHistogram() for _ in range(3))
    for t in (0.001, 0.004, 0.016):
        left.observe(t)
        combined.observe(t)
    for t in (0.002, 0.064):
        right.observe(t)
        combined.observe(t)
    left.merge(right)
    assert left.count == combined.count == 5
    assert left.sum == pytest.approx(combined.sum)
    assert left.buckets() == combined.buckets()
    assert left.percentile(0.9) == pytest.approx(combined.percentile(0.9))


def test_empty_histogram_is_all_zeros():
    from repro.obs import DurationHistogram

    hist = DurationHistogram()
    assert hist.percentile(0.5) == 0.0
    assert hist.mean == 0.0
    assert hist.to_dict()["count"] == 0
    assert hist.buckets() == []


def test_registry_duration_accessors():
    from repro.obs import MetricsRegistry

    reg = MetricsRegistry()
    assert reg.total_seconds("nope") == 0.0 and reg.duration("nope") is None
    reg.observe_duration("query.xpath", 0.1)
    reg.observe_duration("query.xpath", 0.3)
    assert reg.total_seconds("query.xpath") == pytest.approx(0.4)
    assert reg.duration("query.xpath").count == 2
    assert list(reg.durations()) == ["query.xpath"]
    reg.reset()
    assert reg.durations() == {}


def test_observed_calls_fold_durations_per_strategy_and_span():
    db = Database.from_xml(DOC)
    METRICS.reset()
    try:
        result = db.xpath("Child+[lab() = b]", trace=True)
        strategy = result.stats.strategy
        assert METRICS.total_seconds("query.xpath") > 0.0
        assert METRICS.total_seconds(f"strategy.{strategy}") > 0.0
        # with a tracer attached, every span contributes its duration
        assert METRICS.duration("span.query:xpath").count == 1
        assert METRICS.duration("span.plan").count == 1
    finally:
        METRICS.reset()


def test_budget_only_calls_fold_query_duration_without_spans():
    db = Database.from_xml(DOC)
    METRICS.reset()
    try:
        db.xpath("Child+[lab() = b]", max_visited=10_000)
        assert METRICS.duration("query.xpath").count == 1
        assert not any(name.startswith("span.") for name in METRICS.durations())
    finally:
        METRICS.reset()


def test_render_openmetrics_exposition():
    from repro.obs import MetricsRegistry, render_openmetrics

    reg = MetricsRegistry()
    reg.merge({"sj.pairs": 4, 'odd"name': 2})
    reg.observe_duration("strategy.linear", 0.01)
    text = render_openmetrics(reg)
    assert text.endswith("# EOF\n")
    assert "repro_queries_observed_total 1" in text
    assert 'repro_counter_total{name="sj.pairs"} 4' in text
    assert 'repro_counter_total{name="odd\\"name"} 2' in text
    # native histogram family: cumulative buckets ending at +Inf
    assert "# TYPE repro_duration_seconds histogram" in text
    assert 'repro_duration_seconds_bucket{name="strategy.linear",le="+Inf"} 1' in text
    assert 'repro_duration_seconds_count{name="strategy.linear"} 1' in text
    assert 'repro_duration_seconds_sum{name="strategy.linear"} 0.01' in text
    # quantile estimates live in their own summary family (a histogram
    # family cannot carry quantile samples)
    assert 'repro_duration_quantiles{name="strategy.linear",quantile="0.5"}' in text
    # the exposition passes its own lint
    from repro.obs import lint_openmetrics

    assert lint_openmetrics(text) == []
