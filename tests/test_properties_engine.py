"""Property-based correctness harness: metamorphic invariants of the
engine over seeded random trees and random downward queries.

Four invariant families, each checked on ~40 seeded random instances
(every failure message carries the seed needed to replay it):

1. **axis/inverse-axis symmetry** — for every axis A,
   ``v ∈ A(u)  iff  u ∈ A⁻¹(v)``: the relation computed by
   :func:`apply_axis_to_set` equals the transpose of its inverse axis.
2. **pre/post order consistency with ancestry** — u is a proper
   ancestor of v (parent-chain walk) iff ``pre[u] < pre[v]`` and
   ``post[u] > post[v]`` iff the subtree interval contains v.
3. **descendant = transitive closure of child** — the Child+ relation
   the engine answers with equals the closure of the Child relation
   computed independently, under *every* registered strategy.
4. **result monotonicity under subtree grafting** — positive downward
   queries (no negation, no position()) are monotone: grafting a new
   subtree anywhere can only add answers; old answers survive under
   the pre-order renumbering.  Checked for Core XPath and for twig
   patterns, across every applicable strategy.
"""

from __future__ import annotations

import random

import pytest

from repro.engine import Database
from repro.trees.axes import AXES, inverse_axis
from repro.trees.edit import insert_subtree
from repro.trees.generate import random_tree
from repro.trees.tree import Tree
from repro.workloads.queries import random_twig, random_xpath
from repro.xpath.contextset import apply_axis_to_set

LABELS = ("a", "b", "c", "d")

SEEDS = range(40)


def _tree(seed: int, n: "int | None" = None) -> Tree:
    return random_tree(n or (6 + seed), seed=seed, alphabet=LABELS)


# ---------------------------------------------------------------------------
# 1. axis / inverse-axis symmetry
# ---------------------------------------------------------------------------


def _relation(tree: Tree, axis) -> set[tuple[int, int]]:
    return {
        (u, v)
        for u in tree.nodes()
        for v in apply_axis_to_set(tree, axis, {u})
    }


@pytest.mark.parametrize("seed", SEEDS)
def test_axis_inverse_symmetry(seed):
    tree = _tree(seed)
    for axis in AXES:
        forward = _relation(tree, axis)
        backward = _relation(tree, inverse_axis(axis))
        assert forward == {(u, v) for (v, u) in backward}, (
            f"seed={seed} axis={axis}: apply_axis_to_set({axis}) is not "
            f"the transpose of {inverse_axis(axis)}"
        )


# ---------------------------------------------------------------------------
# 2. pre/post order consistency with ancestry
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", SEEDS)
def test_pre_post_consistent_with_ancestry(seed):
    tree = _tree(seed, n=8 + 2 * seed)
    post = tree.post
    for v in tree.nodes():
        chain = set(tree.ancestors(v))
        for u in tree.nodes():
            by_chain = u in chain
            by_prepost = u < v and post[u] > post[v]
            by_interval = u < v < tree.subtree_end[u]
            assert by_chain == by_prepost == by_interval, (
                f"seed={seed}: ancestry of ({u}, {v}) disagrees between "
                f"parent chain ({by_chain}), pre/post ({by_prepost}) and "
                f"interval ({by_interval})"
            )


# ---------------------------------------------------------------------------
# 3. descendant = transitive closure of child
# ---------------------------------------------------------------------------


def _child_closure(tree: Tree) -> dict[int, set[int]]:
    """Reachability over the Child relation, computed without any of the
    engine's pre/post machinery (plain BFS per node)."""
    closure: dict[int, set[int]] = {}
    for u in reversed(range(tree.n)):  # children before parents
        reach: set[int] = set()
        for c in tree.children[u]:
            reach.add(c)
            reach |= closure[c]
        closure[u] = reach
    return closure


@pytest.mark.parametrize("seed", SEEDS)
def test_descendant_is_child_transitive_closure(seed):
    tree = _tree(seed)
    closure = _child_closure(tree)
    # structural: the interval view agrees with the BFS closure
    for u in tree.nodes():
        assert closure[u] == set(tree.descendants(u)), (
            f"seed={seed}: descendants({u}) is not the Child-closure"
        )
    # engine: Child+ answers match the closure oracle, per strategy
    db = Database(tree)
    label = LABELS[seed % len(LABELS)]
    oracle = {v for v in closure[tree.root] if tree.has_label(v, label)}
    query = f"Child+[lab() = {label}]"
    for name, result in db.cross_check("xpath", query).items():
        assert set(result.answer) == oracle, (
            f"seed={seed}: strategy {name!r} disagrees with the "
            f"Child-closure oracle on {query!r}"
        )


# ---------------------------------------------------------------------------
# 4. result monotonicity under subtree grafting
# ---------------------------------------------------------------------------


def _graft(tree: Tree, seed: int):
    """Graft a small random subtree at a random slot; return the new
    tree plus the id-mapping old → new."""
    rng = random.Random(seed)
    sub = random_tree(1 + rng.randrange(5), seed=seed + 7, alphabet=LABELS)
    parent = rng.randrange(tree.n)
    position = rng.randrange(len(tree.children[parent]) + 1)
    grafted = insert_subtree(tree, parent, position, sub)
    # pre-order id where the grafted root lands: the old id of the child
    # it was inserted before, or one past the parent's subtree on append
    if position < len(tree.children[parent]):
        graft_at = tree.children[parent][position]
    else:
        graft_at = tree.subtree_end[parent]

    def remap(v: int) -> int:
        return v if v < graft_at else v + sub.n

    return grafted, remap


@pytest.mark.parametrize("seed", SEEDS)
def test_xpath_monotone_under_grafting(seed):
    tree = _tree(seed, n=10 + seed)
    query = random_xpath(
        n_steps=1 + seed % 3,
        labels=LABELS,
        qualifier_prob=0.5,
        negation_prob=0.0,  # positive fragment only: monotone
        seed=seed,
    )
    grafted, remap = _graft(tree, seed)
    before = Database(tree).cross_check("xpath", query)
    after = Database(grafted).cross_check("xpath", query)
    after_sets = {name: set(r.answer) for name, r in after.items()}
    reference = next(iter(after_sets.values()))
    for name, result in before.items():
        mapped = {remap(v) for v in result.answer}
        assert mapped <= reference, (
            f"seed={seed} query={query!r}: grafting lost answers "
            f"{sorted(mapped - reference)} (strategy {name!r})"
        )
    for name, answer in after_sets.items():
        assert answer == reference, (
            f"seed={seed} query={query!r}: post-graft strategies disagree "
            f"({name!r})"
        )


@pytest.mark.parametrize("seed", SEEDS)
def test_twig_monotone_under_grafting(seed):
    tree = _tree(seed, n=10 + seed)
    pattern = random_twig(n_nodes=2 + seed % 3, labels=LABELS, seed=seed)
    grafted, remap = _graft(tree, seed)
    before = Database(tree).cross_check("twig", pattern)
    after = Database(grafted).cross_check("twig", pattern)
    after_sets = {name: set(r.answer) for name, r in after.items()}
    reference = next(iter(after_sets.values()))
    for name, result in before.items():
        mapped = {tuple(remap(v) for v in row) for row in result.answer}
        assert mapped <= reference, (
            f"seed={seed} pattern={pattern!r}: grafting lost matches "
            f"(strategy {name!r})"
        )
    for name, answer in after_sets.items():
        assert answer == reference, (
            f"seed={seed} pattern={pattern!r}: post-graft strategies "
            f"disagree ({name!r})"
        )


# ---------------------------------------------------------------------------
# 5. columnar layout invariants (repro.engine.columns)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", SEEDS)
def test_column_orders_are_permutations(seed):
    """pre and post columns are each a permutation of 0..n-1."""
    from repro.engine import ColumnStore

    tree = _tree(seed, n=8 + 2 * seed)
    store = ColumnStore(tree)
    identity = list(range(tree.n))
    assert sorted(store.pre) == identity, f"seed={seed}: pre not a permutation"
    assert sorted(store.post) == identity, f"seed={seed}: post not a permutation"
    assert len(store.level) == len(store.parent) == tree.n


@pytest.mark.parametrize("seed", SEEDS)
def test_column_intervals_match_axis_ancestry(seed):
    """The (pre, subtree_end) interval check over the columns equals the
    Child+ axis relation computed by axes.py."""
    from repro.engine import ColumnStore
    from repro.trees.axes import Axis, axis_holds

    tree = _tree(seed, n=8 + 2 * seed)
    store = ColumnStore(tree)
    post = store.post
    end = store.subtree_end
    for u in range(tree.n):
        for v in range(tree.n):
            by_interval = u < v < end[u]
            by_prepost = u < v and post[u] > post[v]
            by_axis = axis_holds(tree, Axis.CHILD_PLUS, u, v)
            assert by_interval == by_prepost == by_axis, (
                f"seed={seed}: column ancestry of ({u}, {v}) disagrees "
                f"(interval={by_interval}, pre/post={by_prepost}, "
                f"axis={by_axis})"
            )


@pytest.mark.parametrize("seed", SEEDS)
def test_label_interning_survives_derived_cache_eviction(seed):
    """Label ids are permanent: churning the derived-artifact LRU far
    past its bound never changes an id, and every artifact re-derived
    after eviction equals its original."""
    from repro.engine import ColumnStore

    tree = _tree(seed, n=10 + seed)
    store = ColumnStore(tree, derived_cache_size=2)
    labels = sorted(store.labels())
    ids_before = {label: store.label_id(label) for label in labels}
    masks_before = {label: bytes(store.mask(label)) for label in labels}
    pairs_before = {
        label: tuple(zip(*store.label_pairs(label))) for label in labels
    }
    # churn the LRU: alternate artifact kinds across every label, twice
    for _round in range(2):
        for label in labels:
            store.mask(label)
            store.label_pairs(label)
    assert store.derived_cached() <= 2
    for label in labels:
        assert store.label_id(label) == ids_before[label], (
            f"seed={seed}: label id of {label!r} changed across eviction"
        )
        assert store.label_of(ids_before[label]) == label
        assert bytes(store.mask(label)) == masks_before[label], (
            f"seed={seed}: re-derived mask of {label!r} differs"
        )
        assert tuple(zip(*store.label_pairs(label))) == pairs_before[label], (
            f"seed={seed}: re-derived pair columns of {label!r} differ"
        )
