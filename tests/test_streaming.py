"""Tests for the streaming evaluators and the O(depth) memory claim."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import QueryError
from repro.streaming import (
    MemoryMeter,
    stream_match_twig,
    stream_select,
    tree_events,
    xml_events,
)
from repro.trees import (
    caterpillar_tree,
    flat_tree,
    path_tree,
    random_tree,
    to_xml,
)
from repro.twigjoin import parse_twig, twig_stack
from repro.xpath import evaluate_query, parse_xpath
from repro.workloads import deep_sections, random_twig

from conftest import trees


class TestEvents:
    def test_tree_events_balanced(self):
        t = random_tree(30, seed=1)
        events = list(tree_events(t))
        assert len(events) == 2 * t.n
        depth = 0
        for e in events:
            depth += 1 if e[0] == "start" else -1
            assert depth >= 0
        assert depth == 0

    def test_xml_events_ids_match_tree(self):
        t = random_tree(25, seed=2)
        assert list(xml_events(to_xml(t))) == list(tree_events(t))


class TestStreamSelect:
    QUERIES = [
        "Child[lab() = a]",
        "Child*[lab() = a]/Child[lab() = b]",
        "Child+/Child+[lab() = c]",
        "Self/Child*[lab() = d]",
        "Child[lab() = a]/Child+[lab() = b]/Child*[lab() = c]",
        "Child*",
    ]

    @pytest.mark.parametrize("text", QUERIES)
    def test_vs_in_memory(self, text, small_trees):
        e = parse_xpath(text)
        for t in small_trees:
            assert set(stream_select(e, tree_events(t))) == evaluate_query(e, t)

    @given(trees(max_size=40), st.sampled_from(QUERIES))
    @settings(max_examples=40, deadline=None)
    def test_fuzz(self, t, text):
        e = parse_xpath(text)
        assert set(stream_select(e, tree_events(t))) == evaluate_query(e, t)

    def test_results_in_document_order(self):
        t = random_tree(50, seed=3)
        e = parse_xpath("Child*[lab() = a]")
        out = list(stream_select(e, tree_events(t)))
        assert out == sorted(out)

    def test_unsupported_axis_rejected(self):
        with pytest.raises(QueryError):
            list(stream_select(parse_xpath("Parent"), []))

    def test_unsupported_qualifier_rejected(self):
        with pytest.raises(QueryError):
            list(stream_select(parse_xpath("Child[Child]"), []))

    def test_union_rejected(self):
        with pytest.raises(QueryError):
            list(stream_select(parse_xpath("Child union Self"), []))


class TestStreamMatchTwig:
    @given(trees(max_size=40), st.integers(min_value=0, max_value=200))
    @settings(max_examples=50, deadline=None)
    def test_vs_twig_stack(self, t, seed):
        pattern = random_twig(4, seed=seed)
        expected = bool(twig_stack(pattern, t))
        assert stream_match_twig(pattern, tree_events(t)) == expected

    def test_rooted_pattern(self):
        pattern = parse_twig("/a/b")
        from repro.trees import Tree

        assert stream_match_twig(pattern, tree_events(Tree.from_tuple(("a", ["b"]))))
        assert not stream_match_twig(
            pattern, tree_events(Tree.from_tuple(("c", [("a", ["b"])])))
        )


class TestMemoryClaim:
    """Section 7: streaming memory is Θ(depth), not Θ(size)."""

    def test_select_memory_tracks_depth_not_size(self):
        e = parse_xpath("Child*[lab() = a]/Child[lab() = b]")
        deep = MemoryMeter()
        list(stream_select(e, tree_events(path_tree(3000)), meter=deep))
        wide = MemoryMeter()
        list(stream_select(e, tree_events(flat_tree(3000)), meter=wide))
        assert deep.peak_units > 100 * wide.peak_units

    def test_twig_memory_tracks_depth_not_size(self):
        pattern = parse_twig("//section//para")
        deep = MemoryMeter()
        stream_match_twig(pattern, tree_events(deep_sections(400)), meter=deep)
        wide = MemoryMeter()
        stream_match_twig(pattern, tree_events(flat_tree(1300)), meter=wide)
        assert deep.peak_units > 20 * wide.peak_units

    def test_memory_constant_in_size_at_fixed_depth(self):
        e = parse_xpath("Child*[lab() = a]")
        peaks = []
        for spine in (10, 10, 10):
            for legs in (5, 50, 500):
                meter = MemoryMeter()
                t = caterpillar_tree(spine, legs)
                list(stream_select(e, tree_events(t), meter=meter))
                peaks.append(meter.peak_units)
        assert max(peaks) <= 3 * min(peaks)

    def test_meter_counts_events(self):
        t = random_tree(20, seed=1)
        meter = MemoryMeter()
        list(stream_select(parse_xpath("Child"), tree_events(t), meter=meter))
        assert meter.events_seen == 2 * t.n
