"""Tests for bottom-up tree automata on the binary encoding (§4)."""

from hypothesis import given, settings
import pytest

from repro.automata import (
    accepts,
    child_pattern_automaton,
    complement_automaton,
    label_count_mod_automaton,
    label_exists_automaton,
    product_automaton,
    run_automaton,
    selecting_run,
)
from repro.automata.bottomup import BOTTOM, BottomUpTreeAutomaton
from repro.trees import Tree, path_tree, random_tree

from conftest import trees


class TestExistsAutomaton:
    @given(trees(max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_matches_direct_check(self, t):
        for target in ("a", "b", "zz"):
            automaton = label_exists_automaton(target)
            expected = any(t.has_label(v, target) for v in t.nodes())
            assert accepts(automaton, t) == expected

    def test_single_node(self):
        t = Tree.from_tuple("a")
        assert accepts(label_exists_automaton("a"), t)
        assert not accepts(label_exists_automaton("b"), t)


class TestCountModAutomaton:
    @given(trees(max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_counts_mod_m(self, t):
        for m in (2, 3):
            automaton = label_count_mod_automaton("a", m)
            count = sum(1 for v in t.nodes() if t.has_label(v, "a"))
            assert accepts(automaton, t) == (count % m == 0)


class TestChildPattern:
    @given(trees(max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_selection(self, t):
        automaton = child_pattern_automaton("a", "b")
        expected = {
            v
            for v in t.nodes()
            if t.has_label(v, "a")
            and any(t.has_label(c, "b") for c in t.children[v])
        }
        assert selecting_run(automaton, t) == expected
        assert accepts(automaton, t) == bool(expected)

    def test_selection_requires_selecting(self):
        with pytest.raises(ValueError):
            selecting_run(label_exists_automaton("a"), random_tree(5))


class TestClosures:
    @given(trees(max_size=30))
    @settings(max_examples=30, deadline=None)
    def test_product_and_or(self, t):
        a = label_exists_automaton("a")
        b = label_count_mod_automaton("b", 2)
        assert accepts(product_automaton(a, b, "and"), t) == (
            accepts(a, t) and accepts(b, t)
        )
        assert accepts(product_automaton(a, b, "or"), t) == (
            accepts(a, t) or accepts(b, t)
        )

    @given(trees(max_size=30))
    @settings(max_examples=30, deadline=None)
    def test_complement(self, t):
        a = label_exists_automaton("c")
        assert accepts(complement_automaton(a), t) == (not accepts(a, t))

    def test_bad_mode(self):
        a = label_exists_automaton("a")
        with pytest.raises(ValueError):
            product_automaton(a, a, "xor")


class TestRuns:
    def test_run_assigns_all_states(self):
        t = random_tree(100, seed=1)
        states = run_automaton(label_exists_automaton("a"), t)
        assert len(states) == t.n
        assert all(s in ("yes", "no") for s in states)

    def test_run_on_deep_tree(self):
        t = path_tree(20_000)
        automaton = label_count_mod_automaton("a", 2)
        run_automaton(automaton, t)  # must not recurse

    def test_custom_automaton(self):
        """Height parity via the binary encoding: an ad-hoc automaton."""

        def delta(left, right, label):
            l_height = -1 if left == BOTTOM else left
            return l_height + 1  # height along FirstChild spine

        automaton = BottomUpTreeAutomaton(
            "fc-spine-height", delta, accepting=lambda q: q % 2 == 0
        )
        t = path_tree(5)
        states = run_automaton(automaton, t)
        assert states[0] == 4
