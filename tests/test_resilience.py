"""Overload protection and crash-safe lifecycle (docs/SERVICE.md).

Unit batteries for the resilience primitives — admission control,
deadline clocks, circuit breakers, graceful drain — with injected
clocks so no test sleeps to prove a timing property, plus the
live-server acceptance scenarios: concurrent drain with byte-identical
answers, the seeded overload storm (every response is a correct answer
or a typed refusal, never a wrong answer or an untyped 500), and the
kill-9-between-write-and-rename crash-safety check for the disk store.
"""

from __future__ import annotations

import http.client
import json
import os
import subprocess
import sys
import tempfile
import textwrap
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.errors import (
    EvaluationError,
    QueryError,
    StorageError,
    TransientError,
)
from repro.faults import FaultPlan
from repro.service import QueryService, make_server
from repro.service.protocol import ServiceError
from repro.service.resilience import (
    AdmissionController,
    BreakerBoard,
    CircuitBreaker,
    CircuitOpenError,
    DeadlineClock,
    DeadlineExceededError,
    DrainingError,
    OverloadedError,
    counts_against_breaker,
    parse_deadline_ms,
)

DOC = "<site><item><name/><keyword/></item><item><name/></item><b/></site>"
QUERY = {"kind": "xpath", "query": "Child*[lab() = item]/Child[lab() = name]"}


class FakeClock:
    def __init__(self, now: float = 100.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


# ---------------------------------------------------------------------------
# deadlines
# ---------------------------------------------------------------------------


class TestDeadlineClock:
    def test_remaining_counts_down(self):
        clock = FakeClock()
        deadline = DeadlineClock(2.0, clock=clock)
        assert deadline.remaining() == pytest.approx(2.0)
        clock.advance(1.5)
        assert deadline.remaining() == pytest.approx(0.5)
        assert not deadline.expired()
        clock.advance(0.6)
        assert deadline.expired()

    def test_none_means_unbounded(self):
        deadline = DeadlineClock(None)
        assert deadline.remaining() is None
        assert not deadline.expired()
        deadline.check("anywhere")  # never raises

    def test_check_raises_typed_504(self):
        clock = FakeClock()
        deadline = DeadlineClock(0.1, clock=clock)
        clock.advance(0.2)
        with pytest.raises(DeadlineExceededError) as err:
            deadline.check("before admission")
        assert err.value.status == 504
        assert err.value.code == "deadline-exceeded"
        assert "before admission" in str(err.value)

    def test_engine_deadline_takes_the_tighter_window(self):
        clock = FakeClock()
        deadline = DeadlineClock(1.0, clock=clock)
        # body asked for more than the header window has left
        assert deadline.engine_deadline(5.0) == pytest.approx(1.0)
        # body asked for less: honour it
        assert deadline.engine_deadline(0.25) == pytest.approx(0.25)
        # queue wait shrinks what the engine sees
        clock.advance(0.6)
        assert deadline.engine_deadline(None) == pytest.approx(0.4)
        assert DeadlineClock(None).engine_deadline(3.0) == 3.0

    def test_parse_deadline_ms(self):
        assert parse_deadline_ms(None) is None
        assert parse_deadline_ms("") is None
        assert parse_deadline_ms("250") == pytest.approx(0.25)
        assert parse_deadline_ms(1500) == pytest.approx(1.5)
        for bad in ("abc", "-5", "inf", "nan"):
            with pytest.raises(ServiceError) as err:
                parse_deadline_ms(bad)
            assert err.value.code == "bad-deadline"


# ---------------------------------------------------------------------------
# admission control
# ---------------------------------------------------------------------------


class TestAdmissionController:
    def test_unlimited_still_counts_in_flight(self):
        admission = AdmissionController(max_concurrency=None)
        assert admission.admit() == 0.0
        assert admission.admit() == 0.0
        assert admission.snapshot()["in_flight"] == 2
        admission.release()
        admission.release()
        assert admission.snapshot()["in_flight"] == 0

    def test_sheds_with_429_when_queue_full(self):
        admission = AdmissionController(max_concurrency=1, queue_limit=0)
        admission.admit()
        with pytest.raises(OverloadedError) as err:
            admission.admit()
        assert err.value.status == 429
        assert err.value.code == "overloaded"
        assert 1.0 <= err.value.retry_after <= 30.0
        admission.release()

    def test_queued_request_gets_the_freed_slot(self):
        admission = AdmissionController(max_concurrency=1, queue_limit=4)
        admission.admit()
        waited: list[float] = []

        def queued():
            waited.append(admission.admit())
            admission.release()

        thread = threading.Thread(target=queued)
        thread.start()
        time.sleep(0.05)
        assert admission.snapshot()["queued"] == 1
        admission.release()
        thread.join(timeout=5)
        assert not thread.is_alive()
        assert len(waited) == 1 and waited[0] > 0.0
        assert admission.snapshot()["in_flight"] == 0

    def test_deadline_expires_while_queued(self):
        admission = AdmissionController(max_concurrency=1, queue_limit=4)
        admission.admit()
        deadline = DeadlineClock(0.05)
        with pytest.raises(DeadlineExceededError):
            admission.admit(deadline)
        admission.release()

    def test_queue_timeout_sheds(self):
        admission = AdmissionController(
            max_concurrency=1, queue_limit=4, queue_timeout_s=0.05
        )
        admission.admit()
        with pytest.raises(OverloadedError):
            admission.admit()
        admission.release()

    def test_draining_refuses_with_typed_503(self):
        admission = AdmissionController(max_concurrency=4)
        assert admission.drain(drain_s=0.0) is True
        with pytest.raises(DrainingError) as err:
            admission.admit()
        assert err.value.status == 503
        assert err.value.code == "draining"
        admission.resume()
        admission.admit()
        admission.release()

    def test_drain_wakes_queued_waiters_to_refuse_them(self):
        admission = AdmissionController(max_concurrency=1, queue_limit=4)
        admission.admit()
        refused: list[BaseException] = []

        def queued():
            try:
                admission.admit()
            except BaseException as exc:  # noqa: BLE001
                refused.append(exc)

        thread = threading.Thread(target=queued)
        thread.start()
        time.sleep(0.05)
        clean = admission.drain(drain_s=0.2)
        thread.join(timeout=5)
        assert len(refused) == 1 and isinstance(refused[0], DrainingError)
        # the in-flight holder never released: drain reports dirty
        assert clean is False
        admission.release()

    def test_drain_waits_for_in_flight_then_reports_clean(self):
        admission = AdmissionController(max_concurrency=2)
        admission.admit()
        threading.Timer(0.05, admission.release).start()
        assert admission.drain(drain_s=5.0) is True

    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionController(max_concurrency=0)
        with pytest.raises(ValueError):
            AdmissionController(queue_limit=-1)


# ---------------------------------------------------------------------------
# circuit breakers
# ---------------------------------------------------------------------------


class TestCircuitBreaker:
    def make(self, clock, threshold=2, cooldown=10.0, seed=0):
        return CircuitBreaker(
            "docs", threshold=threshold, cooldown_s=cooldown, seed=seed,
            clock=clock,
        )

    def test_opens_after_threshold_consecutive_failures(self):
        clock = FakeClock()
        breaker = self.make(clock)
        breaker.record_failure()
        assert not breaker.is_open
        breaker.record_failure()
        assert breaker.is_open
        with pytest.raises(CircuitOpenError) as err:
            breaker.check()
        assert err.value.status == 503
        assert err.value.code == "circuit-open"
        assert err.value.retry_after > 0

    def test_success_resets_the_consecutive_count(self):
        clock = FakeClock()
        breaker = self.make(clock, threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert not breaker.is_open

    def test_half_open_single_probe_then_reclose(self):
        clock = FakeClock()
        breaker = self.make(clock)
        breaker.record_failure()
        breaker.record_failure()
        probe_in = breaker.state()["probe_in_s"]
        # jitter keeps the probe inside [cooldown, 1.5 * cooldown]
        assert 10.0 <= probe_in <= 15.0
        clock.advance(probe_in + 0.001)
        breaker.check()  # this caller carries the probe
        assert breaker.state()["state"] == "half-open"
        with pytest.raises(CircuitOpenError):
            breaker.check()  # everyone else still refused
        breaker.record_success()
        assert breaker.state()["state"] == "closed"
        breaker.check()

    def test_failed_probe_reopens_with_fresh_cooldown(self):
        clock = FakeClock()
        breaker = self.make(clock)
        breaker.record_failure()
        breaker.record_failure()
        clock.advance(breaker.state()["probe_in_s"] + 0.001)
        breaker.check()
        breaker.record_failure()
        assert breaker.is_open
        assert breaker.state()["probe_in_s"] > 0
        assert breaker.opened_total == 2

    def test_jitter_is_seed_deterministic(self):
        def schedule(seed):
            clock = FakeClock()
            breaker = self.make(clock, seed=seed)
            breaker.record_failure()
            breaker.record_failure()
            return breaker.state()["probe_in_s"]

        assert schedule(7) == schedule(7)
        assert schedule(7) != schedule(8)

    def test_board_storming_signal(self):
        board = BreakerBoard(threshold=1)
        assert not board.storming()  # no breakers at all
        board.lease("a").record_failure()
        assert board.storming()  # 1 of 1 open
        board.lease("b")
        board.lease("c")
        assert not board.storming()  # 1 of 3 open
        board.lease("b").record_failure()
        assert board.storming()  # 2 of 3
        board.reset("a")
        board.reset("b")
        assert not board.storming()

    def test_counts_against_breaker_classification(self):
        assert counts_against_breaker(TransientError("x"))
        assert counts_against_breaker(StorageError("x"))
        assert counts_against_breaker(EvaluationError("x"))
        assert not counts_against_breaker(ServiceError("bad request"))
        assert not counts_against_breaker(OverloadedError("full", 1.0))
        assert not counts_against_breaker(QueryError("bad query"))
        assert not counts_against_breaker(ValueError("foreign"))


# ---------------------------------------------------------------------------
# the service wiring (direct method calls, no sockets)
# ---------------------------------------------------------------------------


class TestServiceWiring:
    def test_expired_deadline_refused_up_front(self):
        svc = QueryService()
        svc.ingest("docs", DOC)
        with pytest.raises(DeadlineExceededError):
            svc.query("docs", dict(QUERY), deadline_s=0.0)

    def test_open_breaker_fails_fast_and_flips_readiness(self):
        svc = QueryService(breaker_threshold=1)
        svc.ingest("docs", DOC)
        svc.breakers.lease("docs").record_failure()
        with pytest.raises(CircuitOpenError):
            svc.query("docs", dict(QUERY))
        status, payload = svc.readiness()
        assert status == 503
        assert payload["breaker_storm"] and not payload["ready"]
        # liveness stays 200 and exposes the breaker state
        status, payload = svc.health()
        assert status == 200
        assert payload["breakers"]["docs"]["state"] == "open"

    def test_reingest_resets_the_breaker(self):
        svc = QueryService(breaker_threshold=1)
        svc.ingest("docs", DOC)
        svc.breakers.lease("docs").record_failure()
        svc.ingest("docs", DOC)
        status, payload = svc.query("docs", dict(QUERY))
        assert status == 200 and payload["answer"]

    def test_engine_failures_trip_the_breaker_client_errors_do_not(self):
        svc = QueryService(breaker_threshold=1)
        svc.ingest("docs", DOC)
        with pytest.raises(ServiceError):
            svc.query("docs", {"kind": "xpath", "query": "Child[", "x": 1})
        # a client error never indicts the store
        assert svc.breakers.lease("docs").state()["state"] == "closed"
        with FaultPlan(["strategy.*:transient@every=1"], seed=0):
            with pytest.raises(Exception):
                svc.query(
                    "docs", dict(QUERY, retries=0, on_error="raise")
                )
        assert svc.breakers.lease("docs").state()["state"] == "open"

    def test_shed_counts_as_refusal_not_error(self):
        from repro.obs.metrics import METRICS

        svc = QueryService(max_concurrency=1, queue_limit=0)
        svc.ingest("docs", DOC)
        svc.admission.admit()
        errors = METRICS.get("service.errors")
        sheds = METRICS.get("service.shed")
        refusals = METRICS.get("service.refusals")
        with pytest.raises(OverloadedError):
            with svc.observe("query"):
                svc.query("docs", dict(QUERY))
        svc.admission.release()
        assert METRICS.get("service.shed") == sheds + 1
        assert METRICS.get("service.refusals") == refusals + 1
        assert METRICS.get("service.errors") == errors

    def test_shutdown_drains_cleanly_when_idle(self):
        svc = QueryService()
        svc.ingest("docs", DOC)
        assert svc.shutdown(drain_s=0.5) is True
        with pytest.raises(DrainingError):
            svc.query("docs", dict(QUERY))


# ---------------------------------------------------------------------------
# live-server acceptance scenarios
# ---------------------------------------------------------------------------


def _request(port, method, path, body=None, headers=None):
    if isinstance(body, (dict, list)):
        body = json.dumps(body).encode()
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        conn.request(method, path, body=body, headers=headers or {})
        response = conn.getresponse()
        payload = response.read()
        retry_after = response.getheader("Retry-After")
    finally:
        conn.close()
    return response.status, (json.loads(payload) if payload else None), retry_after


@pytest.fixture()
def live_server():
    def boot(**kwargs):
        svc = QueryService(**kwargs)
        srv = make_server(svc)
        thread = threading.Thread(target=srv.serve_forever, daemon=True)
        thread.start()
        boots.append((srv, thread))
        return svc, srv, srv.server_address[1]

    boots: list = []
    yield boot
    for srv, thread in boots:
        srv.shutdown()
        srv.server_close()
        thread.join(timeout=10)


@pytest.mark.service
class TestDeadlineOverHTTP:
    def test_expired_header_deadline_is_504(self, live_server):
        _, _, port = live_server()
        status, _, _ = _request(port, "PUT", "/stores/docs", DOC.encode())
        assert status == 201
        status, payload, _ = _request(
            port, "POST", "/stores/docs/query", QUERY,
            headers={"X-Repro-Deadline-Ms": "0"},
        )
        assert status == 504
        assert payload["error"]["code"] == "deadline-exceeded"

    def test_generous_header_deadline_still_answers(self, live_server):
        _, _, port = live_server()
        _request(port, "PUT", "/stores/docs", DOC.encode())
        status, payload, _ = _request(
            port, "POST", "/stores/docs/query", QUERY,
            headers={"X-Repro-Deadline-Ms": "30000"},
        )
        assert status == 200 and payload["answer"]

    def test_malformed_header_is_typed_400(self, live_server):
        _, _, port = live_server()
        status, payload, _ = _request(
            port, "GET", "/healthz", headers={"X-Repro-Deadline-Ms": "soon"}
        )
        assert status == 400
        assert payload["error"]["code"] == "bad-deadline"


@pytest.mark.service
class TestGracefulDrainOverHTTP:
    """Satellite: N in-flight queries complete byte-identically through
    a drain; a straggler arriving mid-drain gets the typed 503."""

    N = 6

    def test_in_flight_complete_straggler_refused(self, live_server):
        svc, srv, port = live_server()
        status, _, _ = _request(port, "PUT", "/stores/docs", DOC.encode())
        assert status == 201
        _, clean, _ = _request(port, "POST", "/stores/docs/query", QUERY)
        results: list = []
        drained: list = []

        # slow every request down so the drain provably overlaps them
        with FaultPlan(["strategy.*:latency:0.4@every=1"], seed=0):
            with ThreadPoolExecutor(max_workers=self.N) as pool:
                futures = [
                    pool.submit(
                        _request, port, "POST", "/stores/docs/query", QUERY
                    )
                    for _ in range(self.N)
                ]
                time.sleep(0.15)  # all N are now mid-flight
                drainer = threading.Thread(
                    target=lambda: drained.append(
                        srv.shutdown_gracefully(drain_s=5.0)
                    )
                )
                drainer.start()
                time.sleep(0.05)
                straggler = _request(port, "POST", "/stores/docs/query", QUERY)
                results = [f.result() for f in futures]
                drainer.join(timeout=10)

        assert drained == [True], "drain must complete cleanly"
        for status, payload, _ in results:
            assert status == 200
            assert payload["answer"] == clean["answer"]
        status, payload, _ = straggler
        assert status == 503
        assert payload["error"]["code"] == "draining"

    def test_readyz_flips_during_drain_healthz_stays_up(self, live_server):
        svc, srv, port = live_server()
        status, payload, _ = _request(port, "GET", "/readyz")
        assert status == 200 and payload["ready"]
        assert svc.shutdown(drain_s=0.2) is True
        status, payload, _ = _request(port, "GET", "/readyz")
        assert status == 503
        assert payload["draining"] and not payload["ready"]
        status, payload, _ = _request(port, "GET", "/healthz")
        assert status == 200 and payload["ok"]


@pytest.mark.service
class TestOverloadStorm:
    """The acceptance scenario: concurrency 2, small queue, 16 hammering
    clients, seeded transient faults on the store's breaker path.  Every
    response is a correct answer or a typed refusal — zero wrong
    answers, zero untyped 500s — and the service drains cleanly after.
    """

    CLIENTS = 16
    PER_CLIENT = 5

    def test_storm_yields_only_typed_outcomes(self, live_server):
        svc, srv, port = live_server(
            max_concurrency=2, queue_limit=2, breaker_threshold=3,
            breaker_cooldown_s=0.2,
        )
        status, _, _ = _request(port, "PUT", "/stores/docs", DOC.encode())
        assert status == 201
        _, clean, _ = _request(port, "POST", "/stores/docs/query", QUERY)
        outcomes: list[tuple] = []
        lock = threading.Lock()

        def client(i):
            for _ in range(self.PER_CLIENT):
                result = _request(port, "POST", "/stores/docs/query", QUERY)
                with lock:
                    outcomes.append(result)

        with FaultPlan(["service.breaker:transient@every=4"], seed=42):
            with ThreadPoolExecutor(max_workers=self.CLIENTS) as pool:
                list(pool.map(client, range(self.CLIENTS)))

        assert len(outcomes) == self.CLIENTS * self.PER_CLIENT
        seen = set()
        for status, payload, retry_after in outcomes:
            if status == 200:
                assert payload["answer"] == clean["answer"], (
                    "wrong answer under overload"
                )
                seen.add("ok")
                continue
            error = payload.get("error") or {}
            code = error.get("code")
            assert code and error.get("type"), (
                f"untyped HTTP {status}: {payload!r}"
            )
            assert (status, code) in {
                (429, "overloaded"),
                (503, "circuit-open"),
                (503, "transient-failure"),
                (504, "deadline-exceeded"),
            }, (status, code)
            if status == 429:
                assert retry_after is not None and int(retry_after) >= 1
            seen.add(code)
        assert "ok" in seen, "nothing succeeded during the storm"
        assert "transient-failure" in seen or "circuit-open" in seen
        # after the storm: a clean drain
        assert svc.shutdown(drain_s=5.0) is True


# ---------------------------------------------------------------------------
# crash safety: kill -9 between write and rename
# ---------------------------------------------------------------------------


class TestKillNineCrashSafety:
    def test_previous_version_survives_a_kill_before_rename(self, tmp_path):
        """A subprocess dumps v1, then dies with SIGKILL at the exact
        write/rename boundary while dumping v2 — the store must still
        load as v1."""
        from repro.storage import load_tree

        path = tmp_path / "doc.rtre"
        script = textwrap.dedent(
            """
            import os, sys
            from repro.trees.xmlio import parse_xml
            from repro.storage import dump_tree

            path = sys.argv[1]
            dump_tree(parse_xml("<a><old/></a>"), path)
            # die at the boundary: bytes written + fsynced, rename not done
            def die(src, dst):
                os.kill(os.getpid(), 9)
            os.replace = die
            dump_tree(parse_xml("<a><b/><c/></a>"), path)
            """
        )
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        proc = subprocess.run(
            [sys.executable, "-c", script, str(path)],
            env=env, capture_output=True, timeout=60,
        )
        assert proc.returncode == -9, proc.stderr.decode()
        tree = load_tree(str(path))
        assert tree.label == ["a", "old"]
