"""Tests for monadic datalog: parsing, TMNF, grounding, evaluation (§3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datalog import (
    Atom,
    Program,
    Rule,
    evaluate,
    evaluate_naive,
    evaluate_program,
    ground,
    is_tmnf,
    parse_program,
    parse_rule,
    to_tmnf,
)
from repro.errors import ParseError, QueryError
from repro.hornsat import minoux
from repro.trees import Tree, TreeStructure, random_tree
from repro.trees.axes import Axis, axis_holds

from conftest import trees

EXAMPLE_3_1 = """
P0(x) :- Lab:L(x).
P0(x0) :- NextSibling(x0, x), P0(x).
P(x0) :- FirstChild(x0, x), P0(x).
P0(x) :- P(x).
% query: P
"""


class TestParser:
    def test_example_3_1_parses(self):
        prog = parse_program(EXAMPLE_3_1)
        assert len(prog.rules) == 4
        assert prog.query_pred == "P"

    def test_rule_str_round_trip(self):
        r = parse_rule("P(x) :- FirstChild(x, y), Lab:a(y)")
        assert str(r) == "P(x) :- FirstChild(x, y), Lab:a(y)."

    def test_constants(self):
        r = parse_rule("P(3)")
        assert r.head.args == (3,)

    def test_axis_aliases_canonicalized(self):
        prog = parse_program("Q(x) :- descendant(y, x). % query: Q")
        assert prog.rules[0].body[0].pred == "Child+"

    def test_bad_term(self):
        with pytest.raises(ParseError):
            parse_rule("P(X!)")

    def test_unsafe_rule_rejected(self):
        with pytest.raises(QueryError):
            parse_program("P(x) :- Lab:a(y).")

    def test_unknown_binary_rejected(self):
        with pytest.raises(QueryError):
            parse_program("P(x) :- Sideways(x, y), Dom(y).")

    def test_non_monadic_rejected(self):
        with pytest.raises(QueryError):
            parse_program("E(x, y) :- FirstChild(x, y).")

    def test_arity_mismatch_rejected(self):
        with pytest.raises(QueryError):
            parse_program("P(x) :- P(x, x).")

    def test_multiline_rule(self):
        prog = parse_program("P(x) :-\n  Lab:a(x),\n  Leaf(x).")
        assert len(prog.rules[0].body) == 2


class TestExample31:
    def test_semantics_on_figure_tree(self, paper_tree):
        # paper_tree has no L labels: empty result
        prog = parse_program(EXAMPLE_3_1)
        assert evaluate(prog, paper_tree) == set()

    def test_marks_ancestors_of_L(self):
        t = Tree.from_tuple(("a", [("b", [("L", ["c"])]), "d"]))
        prog = parse_program(EXAMPLE_3_1)
        # P computes nodes with a descendant labeled L (the program walks
        # from an L node to the first sibling and then to the parent)
        assert evaluate(prog, t) == {0, 1}

    def test_naive_agrees(self):
        t = Tree.from_tuple(("a", [("b", [("L", ["c"])]), "L"]))
        prog = parse_program(EXAMPLE_3_1)
        assert evaluate(prog, t) == evaluate_naive(prog, t)["P"]


class TestTMNF:
    def test_tmnf_shape(self):
        prog = parse_program(EXAMPLE_3_1)
        out = to_tmnf(prog)
        assert is_tmnf(out)
        # rules 1, 3 and 4 are TMNF already; rule 2 points its binary
        # atom out of the head variable, so it is re-oriented (constant
        # blow-up only)
        assert len(out.rules) <= len(prog.rules) + 2

    def test_axis_elimination_produces_tau_plus(self):
        prog = parse_program("Q(x) :- Following(y, x), Lab:a(y). % query: Q")
        out = to_tmnf(prog)
        assert is_tmnf(out)
        assert out.is_tau_plus()

    def test_output_size_linear(self):
        """TMNF translation is O(|P|): each derived-axis atom costs a
        bounded number of marking predicates."""
        base = "Q(x) :- Following(y, x), Lab:a(y). % query: Q"
        small = to_tmnf(parse_program(base))
        rules = "\n".join(
            f"Q{i}(x) :- Following(y, x), Lab:a(y)." for i in range(10)
        )
        big = to_tmnf(parse_program(rules + "% query: Q0"))
        assert len(big.rules) <= 10 * len(small.rules)

    def test_cyclic_body_rejected(self):
        prog = parse_program(
            "Q(x) :- Child(x, y), Child(y, z), Child+(x, z). % query: Q"
        )
        with pytest.raises(QueryError):
            to_tmnf(prog)

    def test_parallel_edges_rejected(self):
        prog = parse_program("Q(x) :- Child(x, y), Child+(x, y). % query: Q")
        with pytest.raises(QueryError):
            to_tmnf(prog)

    def test_irreflexive_self_loop_drops_rule(self):
        prog = parse_program("Q(x) :- Child(x, x). % query: Q")
        out = to_tmnf(prog)
        t = random_tree(10)
        assert evaluate(out, t, normalize=False) == set()

    def test_reflexive_self_loop_is_noop(self):
        prog = parse_program("Q(x) :- Child*(x, x), Lab:a(x). % query: Q")
        t = random_tree(20, seed=1)
        expected = set(t.nodes_with_label("a"))
        assert evaluate(prog, t) == expected

    def test_self_atom_merges_variables(self):
        prog = parse_program("Q(x) :- Self(x, y), Lab:a(y). % query: Q")
        t = random_tree(20, seed=2)
        assert evaluate(prog, t) == set(t.nodes_with_label("a"))

    def test_disconnected_body_broadcasts(self):
        # Q(x) holds at every a-node iff some b-node exists anywhere
        prog = parse_program("Q(x) :- Lab:a(x), Lab:b(y), Dom(y). % query: Q")
        t_with = Tree.from_tuple(("a", ["b"]))
        t_without = Tree.from_tuple(("a", ["c"]))
        assert evaluate(prog, t_with) == {0}
        assert evaluate(prog, t_without) == set()

    @pytest.mark.parametrize("axis", [a for a in Axis])
    def test_every_axis_eliminated_correctly(self, axis):
        prog = parse_program(f"Q(x) :- {axis.value}(y, x), Lab:a(y). % query: Q")
        for seed in range(3):
            t = random_tree(30, seed=seed, alphabet=("a", "b"))
            expected = {
                x
                for x in t.nodes()
                for y in t.nodes()
                if axis_holds(t, axis, y, x) and t.has_label(y, "a")
            }
            assert evaluate(prog, t) == expected, (axis, seed)


class TestGrounding:
    def test_ground_program_size_linear_in_domain(self):
        prog = to_tmnf(parse_program(EXAMPLE_3_1))
        sizes = []
        for n in (20, 40, 80):
            t = random_tree(n, seed=0)
            horn = ground(prog, TreeStructure(t))
            sizes.append(horn.size())
        # linear: doubling n roughly doubles the ground size
        assert sizes[1] < sizes[0] * 2.6
        assert sizes[2] < sizes[1] * 2.6

    def test_ground_matches_example_3_3_structure(self):
        """Grounding on a 3-node chain produces the r4/r5/r6 pattern of
        Example 3.3 (after folding extensional facts)."""
        t = Tree.from_tuple(("r", [("m", ["L"])]))
        # ids: 0=r, 1=m, 2=L; FirstChild(0,1), FirstChild(1,2)
        prog = parse_program(EXAMPLE_3_1)
        horn = ground(to_tmnf(prog), TreeStructure(t))
        model, sat = minoux(horn)
        assert sat
        assert ("P", 1) in model and ("P", 0) in model

    def test_non_tmnf_rule_rejected_by_grounder(self):
        prog = parse_program("Q(x) :- Child(y, x), Child(z, y). % query: Q")
        with pytest.raises(QueryError):
            ground(prog, TreeStructure(random_tree(5)))


class TestEvaluation:
    @given(trees(max_size=30), st.integers(min_value=0, max_value=5))
    @settings(max_examples=30, deadline=None)
    def test_pipeline_vs_naive(self, t, which):
        programs = [
            "Q(x) :- Child+(y, x), Lab:a(y). % query: Q",
            "Q(x) :- Lab:a(x). Q(x) :- NextSibling(x, y), Q(y). % query: Q",
            "Q(x) :- FirstChild(x, y), Lab:b(y). % query: Q",
            "Q(x) :- Following(x, y), Lab:c(y). % query: Q",
            "Q(x) :- Leaf(x), Child(y, x), Lab:a(y). % query: Q",
            EXAMPLE_3_1.replace("Lab:L", "Lab:a"),
        ]
        prog = parse_program(programs[which])
        assert evaluate(prog, t) == evaluate_naive(prog, t)[prog.query_pred]

    def test_recursion_transitive_closure(self):
        """Datalog recursion: all ancestors of a-labeled nodes, written
        with non-transitive axes only."""
        prog = parse_program(
            """
            Anc(x) :- Child(x, y), Lab:a(y).
            Anc(x) :- Child(x, y), Anc(y).
            % query: Anc
            """
        )
        t = random_tree(40, seed=5)
        expected = {
            x
            for x in t.nodes()
            for y in t.descendants(x)
            if t.has_label(y, "a")
        }
        assert evaluate(prog, t) == expected

    def test_constants_in_rules(self):
        prog = parse_program("Q(x) :- Child+(0, x). % query: Q")
        t = random_tree(15, seed=1)
        assert evaluate(prog, t) == set(range(1, 15))

    def test_ground_fact(self):
        prog = parse_program("Q(3). Q(x) :- Q(y), FirstChild(y, x). % query: Q")
        t = Tree.from_tuple(("a", [("b", ["c"]), "d"]))
        result = evaluate(prog, t)
        assert 3 in result

    def test_missing_query_pred(self):
        prog = parse_program("P(x) :- Dom(x).")
        with pytest.raises(QueryError):
            evaluate(prog, random_tree(5))

    def test_evaluate_program_returns_all_idb(self):
        prog = parse_program(EXAMPLE_3_1)
        result = evaluate_program(prog, random_tree(20, seed=3, alphabet=("L", "m")))
        assert set(result) >= {"P", "P0"}
