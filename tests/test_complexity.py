"""Tests for the scaling toolkit (repro.complexity): slope fitting,
growth-class bucketing, and the ratio test on synthetic sweeps with
known shapes.
"""

from __future__ import annotations

import pytest

from repro.complexity import (
    ScalingPoint,
    classify_growth,
    fit_loglog_slope,
    growth_class_from_slope,
    ratio_test,
)


def _sweep(shape) -> list[ScalingPoint]:
    return [ScalingPoint(n, shape(n)) for n in (100, 200, 400, 800)]


# ---------------------------------------------------------------------------
# fit_loglog_slope
# ---------------------------------------------------------------------------


def test_slope_requires_two_points():
    with pytest.raises(ValueError):
        fit_loglog_slope([])
    with pytest.raises(ValueError):
        fit_loglog_slope([ScalingPoint(10, 1.0)])


def test_slope_of_exact_shapes():
    assert fit_loglog_slope(_sweep(lambda n: 0.5)) == pytest.approx(0.0)
    assert fit_loglog_slope(_sweep(lambda n: n * 1e-6)) == pytest.approx(1.0)
    assert fit_loglog_slope(_sweep(lambda n: n * n * 1e-9)) == pytest.approx(2.0)


def test_slope_clamps_non_positive_times():
    # zero/negative samples are floored rather than crashing the log fit
    points = [ScalingPoint(10, 0.0), ScalingPoint(20, 0.0)]
    assert fit_loglog_slope(points) == pytest.approx(0.0)


# ---------------------------------------------------------------------------
# growth_class_from_slope / classify_growth
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "slope, label",
    [
        (-0.2, "constant-ish"),
        (0.0, "constant-ish"),
        (0.49, "constant-ish"),
        (0.5, "linear"),
        (1.0, "linear"),
        (1.49, "linear"),
        (1.5, "quadratic"),
        (2.49, "quadratic"),
        (2.5, "cubic"),
        (3.49, "cubic"),
        (3.5, "superpolynomial"),
        (10.0, "superpolynomial"),
    ],
)
def test_growth_class_boundaries(slope, label):
    assert growth_class_from_slope(slope) == label


def test_classify_growth_delegates_to_slope_fit():
    linear = _sweep(lambda n: n * 1e-6)
    assert classify_growth(linear) == growth_class_from_slope(
        fit_loglog_slope(linear)
    )
    assert classify_growth(linear) == "linear"
    assert classify_growth(_sweep(lambda n: n * n * 1e-9)) == "quadratic"


# ---------------------------------------------------------------------------
# ratio_test
# ---------------------------------------------------------------------------


def test_ratio_test_constant_series():
    ratios = ratio_test(_sweep(lambda n: 0.25))
    assert len(ratios) == 3
    assert all(r == pytest.approx(1.0) for r in ratios)


def test_ratio_test_linear_series_tracks_size_ratio():
    # sizes double each step, so a linear series doubles too
    ratios = ratio_test(_sweep(lambda n: n * 1e-6))
    assert all(r == pytest.approx(2.0) for r in ratios)


def test_ratio_test_quadratic_series():
    ratios = ratio_test(_sweep(lambda n: n * n * 1e-9))
    assert all(r == pytest.approx(4.0) for r in ratios)


def test_ratio_test_guards_division_by_zero():
    points = [ScalingPoint(10, 0.0), ScalingPoint(20, 1.0)]
    assert ratio_test(points) == [pytest.approx(1e9)]
