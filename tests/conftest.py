"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import pytest
from hypothesis import strategies as st

from repro.trees import Tree, balanced_tree, flat_tree, path_tree, random_tree

#: default wall-clock ceilings (seconds) applied when pytest-timeout is
#: installed — a hung server thread or a deadlocked lock should fail the
#: test, not the whole CI job.  Without the plugin these are a no-op, so
#: the suite needs no extra dependency locally.
SERVICE_TIMEOUT_S = 120
SLOW_TIMEOUT_S = 600


def pytest_collection_modifyitems(config, items):
    if not config.pluginmanager.hasplugin("timeout"):
        return
    for item in items:
        if item.get_closest_marker("timeout") is not None:
            continue  # explicit per-test timeouts win
        if item.get_closest_marker("slow") is not None:
            item.add_marker(pytest.mark.timeout(SLOW_TIMEOUT_S))
        elif item.get_closest_marker("service") is not None:
            item.add_marker(pytest.mark.timeout(SERVICE_TIMEOUT_S))


@pytest.fixture
def paper_tree() -> Tree:
    """The tree of Figure 2(a): 1:7:a(2:3:b(3:1:a, 4:2:c), 5:6:a(6:4:b, 7:5:d))."""
    return Tree.from_tuple(("a", [("b", ["a", "c"]), ("a", ["b", "d"])]))


@pytest.fixture
def small_trees() -> list[Tree]:
    """A varied bag of small trees for exhaustive-ish checks."""
    shapes = [
        Tree.from_tuple("a"),
        Tree.from_tuple(("a", ["b"])),
        Tree.from_tuple(("a", ["b", "c", "d"])),
        path_tree(6, seed=1),
        flat_tree(6, seed=2),
        balanced_tree(2, 2, seed=3),
    ]
    shapes += [random_tree(12, seed=s) for s in range(5)]
    return shapes


def trees(min_size: int = 1, max_size: int = 30):
    """Hypothesis strategy: a random tree with mixed shapes."""

    @st.composite
    def build(draw):
        n = draw(st.integers(min_value=min_size, max_value=max_size))
        seed = draw(st.integers(min_value=0, max_value=10_000))
        shape = draw(st.sampled_from(["uniform", "preferential", "binaryish"]))
        return random_tree(n, seed=seed, attachment=shape)

    return build()


def brute_axis_pairs(tree: Tree, axis) -> set[tuple[int, int]]:
    """Reference implementation of axis relations via first principles."""
    from repro.trees.axes import Axis, resolve_axis

    axis = resolve_axis(axis)
    pairs: set[tuple[int, int]] = set()
    for u in tree.nodes():
        for v in tree.nodes():
            if _axis_brute(tree, axis, u, v):
                pairs.add((u, v))
    return pairs


def _axis_brute(tree: Tree, axis, u: int, v: int) -> bool:
    from repro.trees.axes import Axis

    def ancestors(x):
        out = []
        while tree.parent[x] >= 0:
            x = tree.parent[x]
            out.append(x)
        return out

    def siblings_after(x):
        out = []
        y = tree.next_sibling[x]
        while y >= 0:
            out.append(y)
            y = tree.next_sibling[y]
        return out

    if axis is Axis.SELF:
        return u == v
    if axis is Axis.CHILD:
        return tree.parent[v] == u
    if axis is Axis.FIRST_CHILD:
        return bool(tree.children[u]) and tree.children[u][0] == v
    if axis is Axis.CHILD_PLUS:
        return u in ancestors(v)
    if axis is Axis.CHILD_STAR:
        return u == v or u in ancestors(v)
    if axis is Axis.NEXT_SIBLING:
        return tree.next_sibling[u] == v
    if axis is Axis.NEXT_SIBLING_PLUS:
        return v in siblings_after(u)
    if axis is Axis.NEXT_SIBLING_STAR:
        return u == v or v in siblings_after(u)
    if axis is Axis.FOLLOWING:
        # definition from §2 via NextSibling+ and Child*
        for x0 in [u] + ancestors(u):
            for y0 in siblings_after(x0):
                if v == y0 or y0 in ancestors(v):
                    return True
        return False
    from repro.trees.axes import inverse_axis

    return _axis_brute(tree, inverse_axis(axis), v, u)
