"""Tests for Section 6: arc-consistency, X-property, dichotomy, enumeration."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.consistency import (
    ORDERS,
    arc_consistency_hornsat,
    arc_consistency_worklist,
    classify_signature,
    check_tuple_xproperty,
    enumerate_satisfactions,
    evaluate_boolean_xproperty,
    is_arc_consistent,
    is_tree_shaped,
    minimum_valuation,
    solutions_with_pointers,
    tractable_order,
    axis_has_x_property,
    x_property_table,
)
from repro.consistency.abstract import ExplicitStructure
from repro.consistency.minval import is_consistent_valuation
from repro.consistency.xproperty import PROP_6_6
from repro.cq import ConjunctiveQuery, evaluate_backtracking, parse_cq
from repro.datalog.syntax import Atom
from repro.errors import IntractableSignatureError
from repro.trees import balanced_tree, random_tree
from repro.trees.axes import Axis
from repro.workloads import random_cq

from conftest import trees


class TestExample61:
    """The paper's Example 6.1, verbatim: an arc-consistent pre-valuation
    exists although the query is inconsistent."""

    def setup_method(self):
        self.query = ConjunctiveQuery(
            (), (Atom("R", ("x", "y")), Atom("S", ("x", "y")))
        )
        self.structure = ExplicitStructure(
            [1, 2, 3, 4],
            binary={"R": [(1, 2), (3, 4)], "S": [(3, 2), (1, 4)]},
        )

    def test_maximal_prevaluation(self):
        theta = arc_consistency_hornsat(self.query, None, self.structure)
        assert theta == {"x": {1, 3}, "y": {2, 4}}

    def test_worklist_agrees(self):
        theta = arc_consistency_worklist(self.query, None, self.structure)
        assert theta == {"x": {1, 3}, "y": {2, 4}}

    def test_query_nevertheless_inconsistent(self):
        # no (v, w) is in both R and S
        pairs_r = {(1, 2), (3, 4)}
        pairs_s = {(3, 2), (1, 4)}
        assert not (pairs_r & pairs_s)


class TestArcConsistency:
    @given(trees(max_size=25), st.integers(min_value=0, max_value=300))
    @settings(max_examples=50, deadline=None)
    def test_hornsat_equals_worklist(self, t, seed):
        q = random_cq(4, 3, seed=seed)
        th1 = arc_consistency_hornsat(q, t)
        th2 = arc_consistency_worklist(q, t)
        assert th1 == th2

    @given(trees(max_size=25), st.integers(min_value=0, max_value=200))
    @settings(max_examples=40, deadline=None)
    def test_result_is_arc_consistent(self, t, seed):
        q = random_cq(4, 3, seed=seed)
        theta = arc_consistency_worklist(q, t)
        if theta is not None:
            assert is_arc_consistent(q, t, theta)

    @given(trees(max_size=20), st.integers(min_value=0, max_value=200))
    @settings(max_examples=40, deadline=None)
    def test_subsumes_all_solutions(self, t, seed):
        """Θ is maximal: every solution value appears in Θ(x)."""
        q = random_cq(3, 2, seed=seed, head_arity=0)
        theta = arc_consistency_worklist(q, t)
        variables = q.variables()
        full = ConjunctiveQuery(tuple(variables), q.atoms)
        for solution in evaluate_backtracking(full, t):
            assert theta is not None
            for x, v in zip(variables, solution):
                assert v in theta[x]

    def test_none_when_unsatisfiable(self):
        t = random_tree(10, seed=1, alphabet=("a",))
        q = parse_cq("ans() :- Lab:zzz(x)")
        assert arc_consistency_worklist(q, t) is None
        assert arc_consistency_hornsat(q, t) is None

    def test_constants_handled(self):
        t = random_tree(10, seed=1)
        q = ConjunctiveQuery((), (Atom("Child+", (0, "x")),))
        theta = arc_consistency_worklist(q, t)
        assert theta is not None and theta["x"] == set(range(1, 10))


class TestXProperty:
    def test_proposition_6_6_positive_claims(self, small_trees):
        for order, axes in PROP_6_6.items():
            for axis in axes:
                for t in small_trees:
                    assert axis_has_x_property(t, axis, order), (axis, order)

    def test_proposition_6_6_is_exhaustive(self):
        """All other (axis, order) combinations FAIL on some tree —
        the paper's remark that 6.6 lists all the X-property cases."""
        witnesses = [random_tree(12, seed=s) for s in range(8)] + [
            balanced_tree(3, 2)
        ]
        table = x_property_table(witnesses)
        for (axis, order), holds in table.items():
            assert holds == (axis in PROP_6_6[order]), (axis, order)

    def test_self_trivially_x(self, small_trees):
        for t in small_trees:
            for order in ORDERS:
                assert axis_has_x_property(t, Axis.SELF, order)

    def test_unknown_order_rejected(self):
        with pytest.raises(ValueError):
            axis_has_x_property(random_tree(5), Axis.CHILD, "zorder")


class TestMinimumValuation:
    @given(trees(max_size=25), st.integers(min_value=0, max_value=300))
    @settings(max_examples=50, deadline=None)
    def test_lemma_6_4_tau1(self, t, seed):
        """On τ1 = {Child+, Child*} w.r.t. <pre, the minimum valuation of
        any arc-consistent pre-valuation is consistent."""
        q = random_cq(
            4, 3, axes=(Axis.CHILD_PLUS.value, Axis.CHILD_STAR.value), seed=seed
        )
        theta = arc_consistency_worklist(q, t)
        if theta is None:
            return
        val = minimum_valuation(theta, t, "pre")
        assert is_consistent_valuation(q, t, val)

    @given(trees(max_size=25), st.integers(min_value=0, max_value=300))
    @settings(max_examples=40, deadline=None)
    def test_lemma_6_4_tau3(self, t, seed):
        q = random_cq(
            4,
            3,
            axes=(
                Axis.CHILD.value,
                Axis.NEXT_SIBLING.value,
                Axis.NEXT_SIBLING_PLUS.value,
                Axis.NEXT_SIBLING_STAR.value,
            ),
            seed=seed,
        )
        theta = arc_consistency_worklist(q, t)
        if theta is None:
            return
        val = minimum_valuation(theta, t, "bflr")
        assert is_consistent_valuation(q, t, val)

    @given(trees(max_size=25), st.integers(min_value=0, max_value=200))
    @settings(max_examples=40, deadline=None)
    def test_theorem_6_5_boolean(self, t, seed):
        q = random_cq(
            4, 3, axes=(Axis.CHILD_PLUS.value, Axis.CHILD_STAR.value),
            seed=seed, head_arity=0,
        )
        expected = bool(evaluate_backtracking(q, t, first_only=True))
        assert evaluate_boolean_xproperty(q, t) == expected

    def test_witness_returned(self):
        t = random_tree(30, seed=2)
        q = parse_cq("ans() :- Child+(x, y), Lab:a(y)")
        ok, witness = evaluate_boolean_xproperty(q, t, return_witness=True)
        if ok:
            assert is_consistent_valuation(q, t, witness)

    def test_intractable_signature_raises(self):
        q = parse_cq("ans() :- Child+(x, y), Following(y, z)")
        with pytest.raises(IntractableSignatureError):
            evaluate_boolean_xproperty(q, random_tree(10))

    @given(trees(max_size=20), st.integers(min_value=0, max_value=100))
    @settings(max_examples=30, deadline=None)
    def test_tuple_membership_check(self, t, seed):
        q = random_cq(
            3, 2, axes=(Axis.CHILD_PLUS.value,), seed=seed, head_arity=1
        )
        answers = evaluate_backtracking(q, t)
        for v in range(min(t.n, 8)):
            assert check_tuple_xproperty(q, t, (v,)) == ((v,) in answers)


class TestDichotomy:
    def test_tau_classes_in_p(self):
        assert classify_signature({Axis.CHILD_PLUS, Axis.CHILD_STAR}) == ("P", "pre")
        assert classify_signature({Axis.FOLLOWING}) == ("P", "post")
        assert classify_signature(
            {
                Axis.CHILD,
                Axis.NEXT_SIBLING,
                Axis.NEXT_SIBLING_PLUS,
                Axis.NEXT_SIBLING_STAR,
            }
        ) == ("P", "bflr")

    def test_mixed_signatures_np_complete(self):
        assert classify_signature({Axis.CHILD, Axis.CHILD_PLUS})[0] == "NP-complete"
        assert classify_signature({Axis.CHILD_PLUS, Axis.FOLLOWING})[0] == (
            "NP-complete"
        )
        assert classify_signature(
            {Axis.NEXT_SIBLING, Axis.FOLLOWING}
        )[0] == "NP-complete"

    def test_inverse_axes_folded(self):
        assert classify_signature({Axis.ANCESTOR})[0] == "P"
        assert classify_signature({Axis.PARENT, Axis.PREV_SIBLING})[0] == "P"

    def test_self_is_harmless(self):
        assert classify_signature({Axis.SELF, Axis.CHILD_PLUS})[0] == "P"
        assert classify_signature({Axis.SELF})[0] == "P"

    def test_every_subset_of_rewrite_axes(self):
        """Theorem 6.8 over the lattice of the four Table-1 axes: the
        tractable subsets are exactly those inside τ1 or τ3."""
        four = [
            Axis.CHILD,
            Axis.CHILD_PLUS,
            Axis.NEXT_SIBLING,
            Axis.NEXT_SIBLING_PLUS,
        ]
        for r in range(len(four) + 1):
            for subset in itertools.combinations(four, r):
                verdict, _ = classify_signature(subset)
                inside_tau1 = set(subset) <= {Axis.CHILD_PLUS}
                inside_tau3 = set(subset) <= {
                    Axis.CHILD,
                    Axis.NEXT_SIBLING,
                    Axis.NEXT_SIBLING_PLUS,
                }
                expected = "P" if (inside_tau1 or inside_tau3) else "NP-complete"
                assert verdict == expected, subset

    def test_tractable_order_none_for_hard(self):
        assert tractable_order({Axis.CHILD_PLUS, Axis.CHILD}) is None


class TestEnumeration:
    @given(trees(max_size=20), st.integers(min_value=0, max_value=300))
    @settings(max_examples=50, deadline=None)
    def test_figure_6_vs_backtracking(self, t, seed):
        q = random_cq(4, 3, seed=seed, head_arity=1)
        if not is_tree_shaped(q):
            return
        variables = q.variables()
        full = ConjunctiveQuery(tuple(variables), q.atoms)
        expected = evaluate_backtracking(full, t)
        got = {
            tuple(val[x] for x in variables)
            for val in enumerate_satisfactions(q, t)
        }
        assert got == expected

    @given(trees(max_size=20), st.integers(min_value=0, max_value=300))
    @settings(max_examples=50, deadline=None)
    def test_pointer_version_agrees(self, t, seed):
        q = random_cq(4, 3, seed=seed, head_arity=2)
        if not is_tree_shaped(q):
            return
        assert solutions_with_pointers(q, t) == evaluate_backtracking(q, t)

    def test_proposition_6_9(self):
        """Every value in the maximal arc-consistent Θ of an acyclic query
        extends to a full solution."""
        for seed in range(15):
            t = random_tree(18, seed=seed)
            q = random_cq(3, 2, seed=seed, head_arity=0)
            if not is_tree_shaped(q):
                continue
            theta = arc_consistency_worklist(q, t)
            if theta is None:
                continue
            solutions = list(enumerate_satisfactions(q, t, theta=theta))
            for x, values in theta.items():
                covered = {s[x] for s in solutions}
                assert covered == values, (seed, x)

    def test_no_backtracking_property(self):
        """Enumeration touches exactly the solution prefixes: the number
        of recursion entries equals the number of distinct prefixes."""
        t = random_tree(25, seed=3)
        q = parse_cq("ans(x) :- Child+(x, y), Lab:a(y)")
        sols = solutions_with_pointers(q, t, project_to_head=False)
        assert all(is_consistent_valuation(q, t, v) for v in sols)

    def test_non_tree_shaped_rejected(self):
        q = parse_cq("ans() :- Child+(x, y), Child+(y, z), Child+(x, z)")
        assert not is_tree_shaped(q)
        from repro.errors import QueryError
        from repro.consistency.enumerate import query_tree

        with pytest.raises(QueryError):
            query_tree(q)
