"""The concurrency battery: shared-Database thread safety.

The service serves one :class:`~repro.engine.Database` to many request
threads, so PR 7 pins down three properties:

- **Differential**: N threads hammering mixed-language queries get
  byte-identical answers (canonical JSON encoding) to serial execution
  — with and without ``--columns``, on the fast path and the supervised
  path (whose Observation context is a ContextVar: one request's budget
  must never be charged by another thread).
- **PlanCache under contention**: the LRU's counters stay coherent when
  16 threads race lookups, stores and evictions.
- **Derived-column LRU under contention**: the ColumnStore's derived
  artifacts are built once and shared without corruption.
"""

from __future__ import annotations

import json
import random
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.engine import Database
from repro.service.protocol import encode_answer
from repro.workloads import xmark_like

N_THREADS = 8
REPS = 10  # x len(MIX) tasks >= 100 mixed-language executions

#: the mixed-language query list replayed by every differential test
MIX = [
    ("xpath", "Child*[lab() = item]"),
    ("xpath", "Child*[lab() = item]/Child[lab() = name]"),
    ("xpath", "Child+[lab() = person][Child[lab() = profile]]"),
    ("xpath", "Child*[lab() = parlist]/Child[lab() = listitem]"),
    ("xpath", "Child*[lab() = keyword]"),
    ("twig", "//item/name"),
    ("twig", "//item[payment]//keyword"),
    ("twig", "//person/profile"),
    ("cq", "ans(y) :- Child(x, y), Lab:item(x), Lab:name(y)"),
    ("cq", "ans(x, y) :- Child+(x, y), Lab:person(x), Lab:profile(y)"),
    ("datalog", "Q(x) :- Lab:keyword(x).\n% query: Q"),
    ("datalog", "Q(x) :- Lab:person(x).\n% query: Q"),
]


def canonical(answer) -> str:
    """The byte form compared across threads: canonical JSON."""
    return json.dumps(encode_answer(answer), sort_keys=True)


def doc():
    return xmark_like(40, seed=3)


@pytest.fixture(params=["off", "on"], ids=["columns-off", "columns-on"])
def shared_db(request):
    return Database(doc(), columns=request.param)


class TestThreadedDifferential:
    def test_concurrent_equals_serial(self, shared_db):
        """8 threads x 120 mixed queries == serial answers, byte for byte."""
        serial = {
            (kind, q): canonical(Database(doc()).run(kind, q).answer)
            for kind, q in MIX
        }
        tasks = [pair for pair in MIX for _ in range(REPS)]
        random.Random(7).shuffle(tasks)
        assert len(tasks) >= 100

        def work(pair):
            kind, q = pair
            return pair, canonical(shared_db.run(kind, q).answer)

        with ThreadPoolExecutor(max_workers=N_THREADS) as pool:
            for pair, encoded in pool.map(work, tasks):
                assert encoded == serial[pair], f"{pair} diverged under threads"
        assert len(shared_db.history) == len(tasks)

    def test_concurrent_supervised_equals_serial(self, shared_db):
        """The supervised path (per-thread Observation, budgets, retry
        bookkeeping) stays differential under contention."""
        serial = {
            (kind, q): canonical(Database(doc()).run(kind, q).answer)
            for kind, q in MIX
        }
        tasks = [pair for pair in MIX for _ in range(REPS)]
        random.Random(11).shuffle(tasks)

        def work(pair):
            kind, q = pair
            result = shared_db.run(
                kind, q, retries=1, on_error="fallback", deadline=60.0
            )
            assert not result.stats.degraded
            return pair, canonical(result.answer)

        with ThreadPoolExecutor(max_workers=N_THREADS) as pool:
            for pair, encoded in pool.map(work, tasks):
                assert encoded == serial[pair], f"{pair} diverged (supervised)"

    def test_racing_first_query_builds_one_index(self, shared_db):
        """Every thread racing the lazy index build sees the same object."""
        barrier = threading.Barrier(N_THREADS)
        seen = []

        def work():
            barrier.wait()
            seen.append(shared_db.index)

        threads = [threading.Thread(target=work) for _ in range(N_THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len({id(ix) for ix in seen}) == 1


class TestPlanCacheHammer:
    def test_16_threads_cache_invariants(self):
        """Database.execute from 16 threads: the plan cache's counters
        stay coherent (the satellite-1 regression test).

        With maxsize 8 and 12 distinct queries, threads race lookups,
        stores and evictions; the invariants below hold exactly because
        every fast-path execute does one cache lookup, and each store
        adds at most one resident entry while each eviction removes one.
        """
        db = Database(doc(), plan_cache=8)
        db.index  # keep the hammer about the cache, not the index build
        tasks = [pair for pair in MIX for _ in range(12)]
        random.Random(5).shuffle(tasks)

        def work(pair):
            kind, q = pair
            return canonical(db.run(kind, q).answer)

        with ThreadPoolExecutor(max_workers=16) as pool:
            list(pool.map(work, tasks))

        info = db.plan_cache.info()
        assert info["maxsize"] == 8
        assert info["size"] <= info["maxsize"]
        assert info["hits"] + info["misses"] == len(tasks)
        assert info["evictions"] <= info["misses"]
        assert info["size"] + info["evictions"] <= info["misses"]
        assert info["hits"] > 0  # contention did share compiled plans

    def test_hammered_cache_still_differential(self):
        """Eviction churn under threads never serves a wrong plan."""
        serial = {
            (kind, q): canonical(Database(doc()).run(kind, q).answer)
            for kind, q in MIX
        }
        db = Database(doc(), plan_cache=2)  # maximal eviction churn
        tasks = [pair for pair in MIX for _ in range(6)]
        random.Random(13).shuffle(tasks)

        def work(pair):
            kind, q = pair
            return pair, canonical(db.run(kind, q).answer)

        with ThreadPoolExecutor(max_workers=16) as pool:
            for pair, encoded in pool.map(work, tasks):
                assert encoded == serial[pair]


class TestColumnStoreHammer:
    def test_derived_artifacts_safe_under_threads(self):
        """16 threads forcing derived-column builds agree with serial."""
        queries = [
            ("xpath", "Child*[lab() = item]"),
            ("twig", "//item/name"),
            ("twig", "//person/profile"),
            ("xpath", "Child*[lab() = keyword]"),
        ]
        serial = {
            (kind, q): canonical(Database(doc(), columns="on").run(kind, q).answer)
            for kind, q in queries
        }
        db = Database(doc(), columns="on")
        tasks = [pair for pair in queries for _ in range(25)]
        random.Random(17).shuffle(tasks)

        def work(pair):
            kind, q = pair
            return pair, canonical(db.run(kind, q).answer)

        with ThreadPoolExecutor(max_workers=16) as pool:
            for pair, encoded in pool.map(work, tasks):
                assert encoded == serial[pair]
