"""Tests for the engine supervisor: retry policy, strategy blacklist
and fallback, degradation policies, and attempt accounting
(docs/ROBUSTNESS.md)."""

from __future__ import annotations

import pytest

from repro.engine import Database
from repro.errors import (
    AllStrategiesFailedError,
    InjectedFault,
    QueryError,
    TransientError,
)
from repro.faults import FaultPlan

DOC = "<a><b><c/></b><b/><d/></a>"
QUERY = "Child+[lab() = b]"


@pytest.fixture
def db() -> Database:
    return Database.from_xml(DOC)


def clean_answer() -> set:
    return Database.from_xml(DOC).xpath(QUERY).answer


class TestRetryPolicy:
    def test_transient_is_retried_and_succeeds(self, db):
        with FaultPlan(["strategy.*:transient@nth=1"]) as plan:
            result = db.xpath(QUERY, retries=1)
        assert result.answer == clean_answer()
        assert plan.trips
        outcomes = [a.outcome for a in result.stats.attempts]
        assert outcomes == ["transient", "ok"]
        # the retry re-ran the SAME strategy, not a fallback
        assert (
            result.stats.attempts[0].strategy == result.stats.attempts[1].strategy
        )
        assert result.stats.retry_count == 1
        assert not result.stats.fallback_from

    def test_transient_without_retries_raises(self, db):
        with FaultPlan(["strategy.*:transient@nth=1"]):
            with pytest.raises(TransientError):
                db.xpath(QUERY, trace=True)  # supervised path, retries=0

    def test_retries_bound_is_respected(self, db):
        # transient on every call: 2 retries -> 3 attempts, then raise
        with FaultPlan(["strategy.*:transient@every=1"]):
            with pytest.raises(TransientError):
                db.xpath(QUERY, retries=2)

    def test_setup_transients_are_retried_too(self, db):
        for site in ("query.parse", "index.build", "planner.plan"):
            fresh = Database.from_xml(DOC)
            with FaultPlan([f"{site}:transient@nth=1"]) as plan:
                result = fresh.xpath(QUERY, retries=1)
            assert result.answer == clean_answer(), site
            assert plan.tripped_sites() == [site]
            assert result.stats.attempts[0].strategy == "(setup)"
            assert result.stats.attempts[0].outcome == "transient"
            assert site in result.stats.faults

    def test_fast_path_does_not_retry(self, db):
        with FaultPlan(["strategy.*:transient@nth=1"]):
            with pytest.raises(TransientError):
                db.xpath(QUERY)  # no supervision kwargs: fast path


class TestFallbackPolicy:
    def test_failed_strategy_is_blacklisted_and_next_one_answers(self, db):
        chosen = db.plan("xpath", QUERY).strategy
        with FaultPlan([f"strategy.{chosen}:error@nth=1"]) as plan:
            result = db.xpath(QUERY, on_error="fallback")
        assert result.answer == clean_answer()
        assert plan.trips
        assert result.stats.strategy != chosen
        assert chosen in result.stats.fallback_from
        outcomes = [a.outcome for a in result.stats.attempts]
        assert outcomes == ["error", "ok"]
        assert f"strategy.{chosen}" in result.stats.faults

    def test_all_strategies_failed_carries_attempt_chain(self, db):
        with FaultPlan(["strategy.*:error@every=1"]):
            with pytest.raises(AllStrategiesFailedError) as exc_info:
                db.xpath(QUERY, on_error="fallback")
        err = exc_info.value
        assert err.kind == "xpath"
        assert err.query == QUERY
        assert len(err.attempts) >= 2  # several strategies were tried
        assert all(a.outcome == "error" for a in err.attempts)
        assert err.causes and all(
            isinstance(c, InjectedFault) for c in err.causes
        )
        # the chain is human-readable in the message
        assert "injected fault" in str(err)

    def test_explicit_strategy_with_fallback_has_no_alternatives(self, db):
        with FaultPlan(["strategy.linear:error@nth=1"]):
            with pytest.raises(AllStrategiesFailedError) as exc_info:
                db.xpath(QUERY, strategy="linear", on_error="fallback")
        assert len(exc_info.value.attempts) == 1

    def test_retries_compose_with_fallback(self, db):
        chosen = db.plan("xpath", QUERY).strategy
        # the chosen strategy is permanently transient; with fallback the
        # supervisor exhausts its retries there, blacklists it, moves on
        with FaultPlan([f"strategy.{chosen}:transient@every=1"]):
            result = db.xpath(QUERY, retries=1, on_error="fallback")
        assert result.answer == clean_answer()
        outcomes = [a.outcome for a in result.stats.attempts]
        assert outcomes == ["transient", "transient", "ok"]
        assert chosen in result.stats.fallback_from

    def test_error_in_raise_mode_propagates(self, db):
        chosen = db.plan("xpath", QUERY).strategy
        with FaultPlan([f"strategy.{chosen}:error@nth=1"]):
            with pytest.raises(InjectedFault):
                db.xpath(QUERY, trace=True)  # supervised, on_error="raise"


class TestPartialPolicy:
    def test_partial_degrades_to_empty_answer(self, db):
        with FaultPlan(["strategy.*:error@every=1"]) as plan:
            result = db.xpath(QUERY, on_error="partial")
        assert plan.trips
        assert result.answer == set()
        assert result.stats.degraded
        assert result.stats.strategy == "(degraded)"
        assert "DEGRADED" in result.stats.summary()

    def test_partial_setup_failure_degrades(self):
        db = Database.from_xml(DOC)
        with FaultPlan(["query.parse:error@every=1"]):
            result = db.xpath(QUERY, on_error="partial")
        assert result.answer == set()
        assert result.stats.degraded
        assert result.stats.attempts[0].strategy == "(setup)"

    def test_partial_without_faults_is_a_normal_answer(self, db):
        result = db.xpath(QUERY, on_error="partial")
        assert result.answer == clean_answer()
        assert not result.stats.degraded

    def test_user_errors_propagate_even_under_partial(self, db):
        with pytest.raises(QueryError):
            db.xpath("Child+[lab() = b]", strategy="no-such", on_error="partial")


class TestSupervisionArguments:
    def test_unknown_on_error_policy_rejected(self, db):
        with pytest.raises(QueryError):
            db.xpath(QUERY, on_error="retry-forever")

    def test_negative_retries_rejected(self, db):
        with pytest.raises(QueryError):
            db.xpath(QUERY, retries=-1)

    def test_every_entry_point_accepts_supervision_kwargs(self):
        db = Database.from_xml("<a><b/><c/></a>")
        assert db.xpath("Child[lab() = b]", retries=1, on_error="fallback")
        assert db.twig("//a/b", retries=1, on_error="fallback")
        db.cq("ans() :- Child(x, y), Lab:b(y)", retries=1, on_error="fallback")
        db.datalog(
            "Q(x) :- Lab:b(x).\n% query: Q", retries=1, on_error="fallback"
        )
        db.query("Child[lab() = b]", retries=1, on_error="fallback")
        results = db.cross_check(
            "xpath", "Child[lab() = b]", retries=1, on_error="fallback"
        )
        assert results

    def test_supervised_stats_preserve_index_accounting(self):
        db = Database.from_xml(DOC)
        first = db.xpath(QUERY, retries=1)
        again = db.xpath(QUERY, retries=1)
        assert first.stats.index_built
        assert not again.stats.index_built

    def test_successful_supervised_call_has_single_ok_attempt(self, db):
        result = db.xpath(QUERY, retries=3, on_error="fallback")
        assert [a.outcome for a in result.stats.attempts] == ["ok"]
        assert result.stats.attempts[0].elapsed_s >= 0
        assert result.stats.faults == ()

    def test_budget_fallback_semantics_unchanged_in_raise_mode(self, db):
        # max_visited=0 forces every strategy over budget: auto falls
        # back through the ranked list then raises the last budget error
        from repro.errors import ResourceBudgetExceeded

        with pytest.raises(ResourceBudgetExceeded):
            db.xpath(QUERY, max_visited=0)

    def test_budget_exhaustion_in_fallback_mode_wraps(self, db):
        with pytest.raises(AllStrategiesFailedError):
            db.xpath(QUERY, max_visited=0, on_error="fallback")

    def test_budget_exhaustion_in_partial_mode_degrades(self, db):
        result = db.xpath(QUERY, max_visited=0, on_error="partial")
        assert result.answer == set()
        assert result.stats.degraded
        assert all(a.outcome == "budget" for a in result.stats.attempts)


class TestFromFileHardening:
    def test_missing_file_is_storage_error_with_path(self, tmp_path):
        from repro.errors import StorageError

        missing = str(tmp_path / "nope.xml")
        with pytest.raises(StorageError, match="nope.xml"):
            Database.from_file(missing)

    def test_undecodable_file_is_parse_error_with_path(self, tmp_path):
        from repro.errors import ParseError

        bad = tmp_path / "bad.xml"
        bad.write_bytes(b"<a>\xff\xfe\x00\x80</a>")
        with pytest.raises(ParseError, match="bad.xml"):
            Database.from_file(str(bad))

    def test_recover_passthrough(self, tmp_path):
        doc = tmp_path / "broken.xml"
        doc.write_text("<a><b><c></b></a>")
        with pytest.raises(Exception):
            Database.from_file(str(doc))
        db = Database.from_file(str(doc), recover=True)
        assert db.tree.n >= 1

    def test_disk_read_fault_site_covers_xml_loads(self, tmp_path):
        from repro.errors import ReproError

        doc = tmp_path / "ok.xml"
        doc.write_text(DOC)
        with FaultPlan(["disk.read:transient@nth=1"]):
            with pytest.raises(ReproError):
                Database.from_file(str(doc))
        assert Database.from_file(str(doc)).tree.n == 5


class TestPlanCache:
    """The compiled-plan cache: hits on repeats, misses on mutation,
    bounded LRU eviction, and clean interaction with the supervisor's
    fallback blacklist."""

    def test_repeated_query_hits(self, db):
        first = db.xpath(QUERY)
        assert db.plan_cache.misses == 1
        assert db.plan_cache.hits == 0
        second = db.xpath(QUERY)
        assert db.plan_cache.hits == 1
        assert db.plan_cache.misses == 1
        assert second.answer == first.answer
        assert second.stats.strategy == first.stats.strategy
        assert second.stats.reason == first.stats.reason

    def test_distinct_queries_miss_separately(self, db):
        db.xpath(QUERY)
        db.xpath("Child[lab() = d]")
        assert db.plan_cache.misses == 2
        assert len(db.plan_cache) == 2

    def test_document_mutation_changes_fingerprint_and_misses(self, db):
        db.xpath(QUERY)
        fingerprint_before = db.index.fingerprint
        db.insert_leaf(db.tree.root, 0, "b")
        assert db.index.fingerprint != fingerprint_before
        result = db.xpath(QUERY)
        # same query text, new document: a miss, never a stale reuse
        assert db.plan_cache.hits == 0
        assert db.plan_cache.misses == 2
        assert len(result.answer) == len(clean_answer()) + 1

    def test_lru_eviction_is_bounded(self):
        from repro.engine import Planner

        db = Database(
            Database.from_xml(DOC).tree, planner=Planner(plan_cache_size=2)
        )
        queries = ["Child[lab() = b]", "Child[lab() = d]", "Child+[lab() = c]"]
        for q in queries:
            db.xpath(q)
        assert len(db.plan_cache) == 2
        assert db.plan_cache.evictions == 1
        # the evicted (oldest) entry misses again; the newest still hits
        db.xpath(queries[-1])
        assert db.plan_cache.hits == 1
        db.xpath(queries[0])
        assert db.plan_cache.misses == 4
        assert db.plan_cache.info()["size"] == 2

    def test_zero_capacity_disables_caching(self):
        db = Database.from_xml(DOC, plan_cache=0)
        db.xpath(QUERY)
        db.xpath(QUERY)
        assert db.plan_cache.hits == 0
        assert db.plan_cache.misses == 0
        assert len(db.plan_cache) == 0

    def test_cached_plan_respects_fallback_blacklist(self, db):
        # warm the cache with the planner's normal choice
        clean = db.xpath(QUERY)
        chosen = clean.stats.strategy
        # poison the chosen strategy: the supervisor must blacklist it
        # and fall back, even though the cache keeps serving its plan
        with FaultPlan([f"strategy.{chosen}:error@nth=1"]) as plan:
            result = db.xpath(QUERY, on_error="fallback")
        assert plan.trips
        assert result.answer == clean.answer
        assert result.stats.strategy != chosen
        assert chosen in result.stats.fallback_from
        # the blacklist was per-call: the next clean call returns to the
        # cached plan and the original strategy
        after = db.xpath(QUERY)
        assert after.stats.strategy == chosen
        assert after.answer == clean.answer
        assert db.plan_cache.hits >= 2

    def test_cache_counters_surface_in_observed_stats(self, db):
        db.xpath(QUERY)
        result = db.xpath(QUERY, trace=True)
        assert result.stats.counters.get("planner.cache_hits") == 1
