"""The load generator: scorecards, run files, and the baseline compare."""

from __future__ import annotations

import copy
import json

import pytest

from repro.service import (
    SCENARIOS,
    compare_report,
    format_scorecard,
    load_report,
    run_load,
    write_report,
)
from repro.service.loadgen import _percentile

pytestmark = pytest.mark.service


@pytest.fixture(scope="module")
def report():
    """One small FAST-mode run shared by the module's assertions."""
    return run_load(
        scenarios=["deep-tree"], fast=True, requests=16, concurrency=2,
        record=False,
    )


class TestRunLoad:
    def test_scorecard_shape(self, report):
        card = report["scenarios"]["deep-tree"]
        assert card["requests"] == 16
        assert card["errors"] == 0
        assert card["shed"] == 0
        assert card["deadline_exceeded"] == 0
        assert card["concurrency"] == 2
        assert card["rps"] > 0
        assert 0 < card["p50_ms"] <= card["p95_ms"] <= card["p99_ms"]

    def test_format_scorecard_renders(self, report):
        text = format_scorecard(report)
        assert "deep-tree" in text and "p99ms" in text and "FAST" in text

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            run_load(scenarios=["nope"], fast=True, record=False)

    def test_shipped_scenarios_cover_both_shapes(self):
        assert set(SCENARIOS) == {"deep-tree", "wide-tree"}
        for scenario in SCENARIOS.values():
            kinds = {body["kind"] for body in scenario.mix}
            assert kinds == {"xpath", "twig", "cq", "datalog"}
            assert scenario.fast_size < scenario.full_size


class TestReportFiles:
    def test_write_and_load_round_trip(self, report, tmp_path):
        path = write_report(report, root=str(tmp_path))
        assert path.endswith("LOADTEST_0001.json")
        loaded = load_report(path)
        assert loaded["schema"] == "repro.perf.load/1"
        assert loaded["scenarios"] == report["scenarios"]
        assert "environment" in loaded
        # the sequence auto-numbers
        assert write_report(report, root=str(tmp_path)).endswith(
            "LOADTEST_0002.json"
        )

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "LOADTEST_0001.json"
        path.write_text(json.dumps({"schema": "other/1"}))
        with pytest.raises(ValueError, match="schema"):
            load_report(str(path))


class TestCompareReport:
    def test_identical_reports_pass(self, report):
        failures, warnings = compare_report(report, report)
        assert failures == [] and warnings == []

    def test_missing_scenario_fails(self, report):
        current = copy.deepcopy(report)
        current["scenarios"] = {}
        failures, _ = compare_report(report, current)
        assert any("missing" in f for f in failures)

    def test_failed_requests_fail(self, report):
        current = copy.deepcopy(report)
        current["scenarios"]["deep-tree"]["errors"] = 3
        failures, _ = compare_report(report, current)
        assert any("failed request" in f for f in failures)

    def test_rps_drop_warns_not_fails(self, report):
        current = copy.deepcopy(report)
        current["scenarios"]["deep-tree"]["rps"] = (
            report["scenarios"]["deep-tree"]["rps"] / 10
        )
        failures, warnings = compare_report(report, current)
        assert failures == []
        assert any("RPS dropped" in w for w in warnings)

    def test_shed_rate_over_tolerance_fails(self, report):
        current = copy.deepcopy(report)
        current["scenarios"]["deep-tree"]["shed"] = 16  # 50% of attempts
        failures, _ = compare_report(report, current, shed_tolerance=0.25)
        assert any("shed" in f for f in failures)

    def test_shed_rate_within_tolerance_warns(self, report):
        current = copy.deepcopy(report)
        current["scenarios"]["deep-tree"]["shed"] = 1
        failures, warnings = compare_report(
            report, current, shed_tolerance=0.5
        )
        assert failures == []
        assert any("shed" in w for w in warnings)

    def test_zero_tolerance_fails_any_shed(self, report):
        current = copy.deepcopy(report)
        current["scenarios"]["deep-tree"]["deadline_exceeded"] = 1
        failures, _ = compare_report(report, current)
        assert any("shed" in f for f in failures)


class TestOverloadedRun:
    """run_load against a capacity-limited service: sheds are counted
    separately from errors, and the closed-loop workers retry 429s with
    backoff so every request eventually lands."""

    def test_constrained_run_sheds_without_errors(self):
        report = run_load(
            scenarios=["deep-tree"], fast=True, requests=24, concurrency=6,
            record=False, max_concurrency=1, queue_limit=0,
        )
        card = report["scenarios"]["deep-tree"]
        assert report["max_concurrency"] == 1
        assert report["queue_limit"] == 0
        assert card["errors"] == 0
        assert card["requests"] == 24  # retries landed every ticket
        text = format_scorecard(report)
        assert "shed" in text and "dl" in text

    def test_deadline_ms_threads_through(self):
        report = run_load(
            scenarios=["deep-tree"], fast=True, requests=8, concurrency=2,
            record=False, deadline_ms=30000,
        )
        card = report["scenarios"]["deep-tree"]
        assert report["deadline_ms"] == 30000
        assert card["errors"] == 0 and card["deadline_exceeded"] == 0


class TestPercentile:
    def test_exact_percentiles(self):
        values = [float(v) for v in range(1, 101)]
        assert _percentile(values, 0.50) == pytest.approx(50.5)
        assert _percentile(values, 0.99) == pytest.approx(99.01)
        assert _percentile(values, 0.0) == 1.0
        assert _percentile(values, 1.0) == 100.0
        assert _percentile([], 0.5) == 0.0
        assert _percentile([7.0], 0.99) == 7.0
