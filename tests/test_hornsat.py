"""Tests for Minoux' algorithm (Figure 3) and the naive baseline."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hornsat import HornClause, HornProgram, MinouxTrace, minoux, naive_fixpoint
from repro.workloads import random_horn_program


class TestProgramContainer:
    def test_builders(self):
        p = HornProgram().fact("a").rule("b", "a").constraint("b", "c")
        assert len(p) == 3
        assert p.clauses[0].is_fact()
        assert p.clauses[2].is_constraint()

    def test_atoms(self):
        p = HornProgram().rule("b", "a", "c")
        assert p.atoms() == {"a", "b", "c"}

    def test_size_counts_atom_occurrences(self):
        p = HornProgram().fact("a").rule("b", "a", "c").constraint("b")
        assert p.size() == 1 + 3 + 1

    def test_clause_str(self):
        assert str(HornClause("a", ("b", "c"))) == "'a' <- 'b', 'c'"
        assert str(HornClause("a")) == "'a' <-"


class TestMinoux:
    def test_example_3_3(self):
        """The worked example from the paper: rules r1..r6 over atoms 1..6."""
        p = HornProgram()
        p.fact(1).fact(2).fact(3)
        p.rule(4, 1)
        p.rule(5, 3, 4)
        p.rule(6, 2, 5)
        trace = MinouxTrace()
        model, sat = minoux(p, trace=trace)
        assert sat
        assert model == {1, 2, 3, 4, 5, 6}
        # the paper's first iteration pops 1, outputs it, then fires r4
        assert trace.derivation_order[:3] == [1, 2, 3]
        assert trace.derivation_order.index(4) < trace.derivation_order.index(5)
        assert trace.derivation_order.index(5) < trace.derivation_order.index(6)

    def test_empty_program(self):
        model, sat = minoux(HornProgram())
        assert model == set() and sat

    def test_non_derivable_head(self):
        p = HornProgram().rule("b", "a")
        model, sat = minoux(p)
        assert model == set() and sat

    def test_duplicate_body_atoms_do_not_fire_early(self):
        # b <- a, a must wait for a (once), not fire at count 2
        p = HornProgram()
        p.clauses.append(HornClause("b", ("a", "a")))
        model, sat = minoux(p)
        assert model == set()
        p.fact("a")
        model, sat = minoux(p)
        assert model == {"a", "b"}

    def test_constraint_violated(self):
        p = HornProgram().fact("a").constraint("a")
        _, sat = minoux(p)
        assert not sat

    def test_constraint_not_violated(self):
        p = HornProgram().fact("a").constraint("b")
        model, sat = minoux(p)
        assert sat and model == {"a"}

    def test_empty_constraint_unsat(self):
        p = HornProgram().constraint()
        _, sat = minoux(p)
        assert not sat

    def test_linear_work_bound(self):
        """Total size[] decrements are bounded by the program size."""
        p = random_horn_program(200, 500, seed=1)
        trace = MinouxTrace()
        minoux(p, trace=trace)
        assert trace.decrements <= p.size()

    def test_cyclic_rules_terminate(self):
        p = HornProgram().rule("a", "b").rule("b", "a")
        model, sat = minoux(p)
        assert model == set() and sat
        p.fact("a")
        model, sat = minoux(p)
        assert model == {"a", "b"}


class TestAgainstNaive:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=60, deadline=None)
    def test_random_programs_agree(self, seed):
        rng = random.Random(seed)
        p = HornProgram()
        n_atoms = rng.randint(1, 15)
        for _ in range(rng.randint(0, 40)):
            head = rng.randrange(n_atoms)
            body = [rng.randrange(n_atoms) for _ in range(rng.randint(0, 3))]
            p.rule(head, *body)
        m1, s1 = minoux(p)
        m2, s2 = naive_fixpoint(p)
        assert (m1, s1) == (m2, s2)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=40, deadline=None)
    def test_minimal_model_property(self, seed):
        """Every derived atom has a derivation; no underivable atom is in
        the model (checked via the naive oracle and via supports)."""
        p = random_horn_program(30, 60, seed=seed)
        model, _ = minoux(p)
        for atom in model:
            assert any(
                c.head == atom and all(b in model for b in c.body)
                for c in p.clauses
            )

    def test_chain_program(self):
        p = HornProgram().fact(0)
        for i in range(999):
            p.rule(i + 1, i)
        model, _ = minoux(p)
        assert len(model) == 1000
