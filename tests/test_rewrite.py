"""Tests for Table 1 and the Theorem 5.1 rewriting (Section 5)."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cq import evaluate_backtracking, is_acyclic, parse_cq, yannakakis
from repro.errors import QueryError
from repro.rewrite import (
    RewriteStats,
    TABLE_1,
    axis_pair_satisfiable,
    evaluate_via_rewriting,
    replacement_axis,
    rewrite_lazy,
    rewrite_to_acyclic_union,
)
from repro.rewrite.table1 import REWRITE_AXES
from repro.trees import Tree, random_tree
from repro.trees.axes import Axis, axis_holds
from repro.workloads import random_cq

from conftest import trees


def all_small_trees(max_nodes: int):
    """Every ordered tree shape with up to max_nodes nodes (unlabeled)."""

    def shapes(n: int):
        # trees with n nodes: root plus an ordered forest of n-1 nodes
        if n == 1:
            yield ("x", [])
            return
        for split in compositions(n - 1):
            for forest in forests(split):
                yield ("x", forest)

    def compositions(n: int):
        if n == 0:
            yield []
            return
        for first in range(1, n + 1):
            for rest in compositions(n - first):
                yield [first] + rest

    def forests(sizes: list[int]):
        if not sizes:
            yield []
            return
        for head in shapes(sizes[0]):
            for tail in forests(sizes[1:]):
                yield [head] + tail

    for n in range(1, max_nodes + 1):
        for shape in shapes(n):
            yield Tree.from_tuple(shape)


class TestTable1Exhaustive:
    """Experiment E8: certify every cell of Table 1 by exhaustive search
    over all ordered trees with at most 6 nodes."""

    TREES = None

    @classmethod
    def setup_class(cls):
        cls.TREES = list(all_small_trees(6))

    @pytest.mark.parametrize("r", REWRITE_AXES)
    @pytest.mark.parametrize("s", REWRITE_AXES)
    def test_cell(self, r, s):
        satisfiable = False
        for t in self.TREES:
            for z in t.nodes():
                for x in t.nodes():
                    if not axis_holds(t, r, x, z):
                        continue
                    for y in t.nodes():
                        if x < y and axis_holds(t, s, y, z):
                            satisfiable = True
                            break
                    if satisfiable:
                        break
            if satisfiable:
                break
        assert satisfiable == TABLE_1[(r, s)], (r, s)

    def test_replacement_rule_sound(self):
        """In every satisfiable configuration R(x,z) ∧ S(y,z) ∧ x<pre y,
        the replacement atom R(x, y) indeed holds."""
        for t in all_small_trees(6):
            for r in REWRITE_AXES:
                for s in REWRITE_AXES:
                    if not TABLE_1[(r, s)]:
                        continue
                    for z in t.nodes():
                        for x in t.nodes():
                            if not axis_holds(t, r, x, z):
                                continue
                            for y in t.nodes():
                                if x < y and axis_holds(t, s, y, z):
                                    assert axis_holds(
                                        t, replacement_axis(r, s), x, y
                                    ), (r, s, x, y, z)

    def test_unsat_pairs_raise_on_replacement(self):
        with pytest.raises(QueryError):
            replacement_axis(Axis.NEXT_SIBLING, Axis.NEXT_SIBLING)

    def test_table_rejects_foreign_axes(self):
        with pytest.raises(QueryError):
            axis_pair_satisfiable(Axis.FOLLOWING, Axis.CHILD)


class TestTheorem51:
    def test_disjuncts_are_acyclic(self):
        q = parse_cq("ans(z) :- Child+(x, z), Child+(y, z), Lab:a(x), Lab:b(y)")
        for disjunct in rewrite_to_acyclic_union(q):
            assert is_acyclic(disjunct)
        for disjunct in rewrite_lazy(q):
            assert is_acyclic(disjunct)

    def test_classic_branching_example(self):
        """Two Child+ atoms into the same variable: three disjuncts
        (x before y, y before x, x = y)."""
        q = parse_cq("ans(z) :- Child+(x, z), Child+(y, z)")
        assert len(rewrite_lazy(q)) == 3

    def test_eager_vs_lazy_disjunct_counts(self):
        """The lazy variant explores far fewer orders (ablation A2)."""
        q = parse_cq(
            "ans(z) :- Child+(x, z), Child+(y, z), Child+(w, y), Lab:a(w)"
        )
        eager_stats, lazy_stats = RewriteStats(), RewriteStats()
        rewrite_to_acyclic_union(q, eager_stats)
        rewrite_lazy(q, lazy_stats)
        assert lazy_stats.branches < eager_stats.orders_considered

    def test_eager_variable_cap(self):
        q = random_cq(9, 8, seed=1, connected=True)
        with pytest.raises(QueryError):
            rewrite_to_acyclic_union(q)

    def test_following_expansion(self):
        q = parse_cq("ans(x) :- Following(x, y), Lab:a(y)")
        for seed in range(4):
            t = random_tree(25, seed=seed)
            assert evaluate_via_rewriting(q, t) == evaluate_backtracking(q, t)

    def test_unsatisfiable_query_rewrites_to_empty_union(self):
        q = parse_cq("ans() :- Child(x, y), Child(y, x)")
        assert rewrite_lazy(q) == []

    def test_star_only_query(self):
        q = parse_cq("ans(x) :- Child*(x, y), Lab:a(y)")
        for seed in range(4):
            t = random_tree(25, seed=seed)
            assert evaluate_via_rewriting(q, t) == evaluate_backtracking(q, t)

    @given(trees(max_size=16), st.integers(min_value=0, max_value=400))
    @settings(max_examples=60, deadline=None)
    def test_lazy_equivalence_fuzz(self, t, seed):
        q = random_cq(4, 3, seed=seed, head_arity=1, connected=False)
        assert evaluate_via_rewriting(q, t, lazy=True) == evaluate_backtracking(
            q, t
        )

    @given(trees(max_size=14), st.integers(min_value=0, max_value=200))
    @settings(max_examples=30, deadline=None)
    def test_eager_equivalence_fuzz(self, t, seed):
        q = random_cq(4, 3, seed=seed, head_arity=1, connected=True)
        try:
            result = evaluate_via_rewriting(q, t, lazy=False)
        except QueryError:
            return  # over the eager variable cap (Following expansion)
        assert result == evaluate_backtracking(q, t)

    def test_boolean_rewriting(self):
        q = parse_cq("ans() :- Child+(x, z), Child+(y, z), Lab:a(x), Lab:b(y)")
        for seed in range(5):
            t = random_tree(20, seed=seed)
            expected = bool(evaluate_backtracking(q, t, first_only=True))
            assert bool(evaluate_via_rewriting(q, t)) == expected

    def test_disjunct_evaluation_matches_union(self):
        q = parse_cq("ans(z) :- Child+(x, z), NextSibling+(y, z), Lab:a(x)")
        t = random_tree(30, seed=9)
        union: set = set()
        for disjunct in rewrite_lazy(q):
            union |= yannakakis(disjunct, t)
        assert union == evaluate_backtracking(q, t)

    def test_stats_accounting(self):
        q = parse_cq("ans(z) :- Child+(x, z), Child+(y, z)")
        stats = RewriteStats()
        rewrite_to_acyclic_union(q, stats)
        assert stats.orders_considered == 13  # ordered Bell number B(3)
        assert stats.disjuncts_produced >= 3
        assert (
            stats.disjuncts_produced + stats.disjuncts_dropped
            <= stats.orders_considered
        )
