"""The corpus-layer battery: sharding, checkpoints, supervision, resume.

The contracts under test (docs/ROBUSTNESS.md, "Corpus supervision &
resume"):

- **Determinism** — serial (``workers=0``) and pool runs of any degree
  produce byte-identical output files.
- **Supervision** — a SIGKILLed or hung worker is detected, its shard
  retried on a fresh worker, and the run still converges on the serial
  answer; a poison shard exhausts its budget and is quarantined into a
  ``partial`` report, never silently dropped.
- **Resume** — after a mid-run kill, ``resume=True`` skips journaled
  shards (verified spills) and the completed output is byte-identical
  to an uninterrupted run.
- **Fork hygiene** — a forked child re-initializes ``METRICS``, any
  ``EventLogWriter``, and the armed fault plan's lock.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import subprocess
import sys
import textwrap
import zlib

import pytest

from repro.corpus import (
    CheckpointJournal,
    corpus_fingerprint,
    discover_corpus,
    run_corpus,
    spill_path,
    split_corpus,
    verify_output,
)
from repro.engine import evaluate_document
from repro.errors import CorpusError, StorageError
from repro.faults import FaultPlan
from repro.service.protocol import encode_answer
from repro.storage import read_blob, write_blob

QUERY = ("xpath", "Child+[lab() = b]")

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()
fork_only = pytest.mark.skipif(
    not HAS_FORK, reason="fork start method unavailable"
)


def make_corpus(root, n=10):
    os.makedirs(root, exist_ok=True)
    docs = []
    for i in range(n):
        name = f"doc{i:02d}.xml"
        body = "<b/>" * (i % 4) + "<c><b/></c>" * (i % 2)
        with open(os.path.join(root, name), "w", encoding="utf-8") as fh:
            fh.write(f"<a><b>{body}</b><d/></a>")
        docs.append(name)
    return docs


# ---------------------------------------------------------------------------
# sharding
# ---------------------------------------------------------------------------


class TestSharding:
    def test_discovery_sorted_and_recursive(self, tmp_path):
        root = tmp_path / "c"
        make_corpus(root, 3)
        (root / "sub").mkdir()
        (root / "sub" / "z.xml").write_text("<a/>")
        (root / ".hidden.xml").write_text("<a/>")
        (root / "notes.txt").write_text("skip me")
        docs = discover_corpus(str(root))
        assert docs == ["doc00.xml", "doc01.xml", "doc02.xml", "sub/z.xml"]

    def test_empty_corpus_is_typed_error(self, tmp_path):
        (tmp_path / "empty").mkdir()
        with pytest.raises(CorpusError):
            discover_corpus(str(tmp_path / "empty"))
        with pytest.raises(StorageError):
            discover_corpus(str(tmp_path / "missing"))

    def test_split_is_deterministic(self, tmp_path):
        root = tmp_path / "c"
        make_corpus(root, 7)
        a = split_corpus(str(root), shard_size=3)
        b = split_corpus(str(root), shard_size=3)
        assert a == b
        assert [s.shard_id for s in a.shards] == [0, 1, 2]
        assert [len(s.docs) for s in a.shards] == [3, 3, 1]
        assert a.fingerprint == corpus_fingerprint(str(root), a.docs)

    def test_fingerprint_tracks_content(self, tmp_path):
        root = tmp_path / "c"
        make_corpus(root, 3)
        before = split_corpus(str(root)).fingerprint
        (root / "doc00.xml").write_text("<a><b/><b/><b/><b/><b/></a>")
        assert split_corpus(str(root)).fingerprint != before

    def test_bad_shard_size(self, tmp_path):
        root = tmp_path / "c"
        make_corpus(root, 2)
        with pytest.raises(CorpusError):
            split_corpus(str(root), shard_size=0)


# ---------------------------------------------------------------------------
# blob helpers (shared with diskstore)
# ---------------------------------------------------------------------------


class TestBlobs:
    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "x.blob")
        write_blob(path, b"payload bytes")
        assert read_blob(path) == b"payload bytes"

    def test_corruption_is_typed(self, tmp_path):
        path = str(tmp_path / "x.blob")
        write_blob(path, b"payload bytes")
        with open(path, "r+b") as fh:
            fh.seek(3)
            fh.write(b"\xff")
        with pytest.raises(StorageError):
            read_blob(path)

    def test_missing_is_typed(self, tmp_path):
        with pytest.raises(StorageError):
            read_blob(str(tmp_path / "absent.blob"))


# ---------------------------------------------------------------------------
# the checkpoint journal
# ---------------------------------------------------------------------------


HEADER = {
    "fingerprint": "f" * 64, "kind": "xpath", "query": "q",
    "query_pred": None, "columns": None, "shard_size": 2,
    "n_docs": 4, "n_shards": 2,
}


class TestCheckpointJournal:
    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "manifest.jsonl")
        with CheckpointJournal.create(path, HEADER) as journal:
            journal.record_shard(0, ("a.xml", "b.xml"), spill_crc=7,
                                 elapsed_ms=1.5, trace_id="t0", attempts=1)
            journal.record_quarantine(1, ("c.xml",), "boom", attempts=2,
                                      trace_id="t1")
        state = CheckpointJournal.load(path)
        assert state.header["fingerprint"] == HEADER["fingerprint"]
        assert set(state.completed) == {0}
        assert state.completed[0]["docs"] == ["a.xml", "b.xml"]
        assert set(state.quarantined) == {1}
        assert state.skipped_lines == 0

    def test_completion_supersedes_quarantine(self, tmp_path):
        path = str(tmp_path / "manifest.jsonl")
        with CheckpointJournal.create(path, HEADER) as journal:
            journal.record_quarantine(0, ("a.xml",), "boom", 2, "t0")
            journal.record_shard(0, ("a.xml",), 7, 1.0, "t1", 1)
        state = CheckpointJournal.load(path)
        assert set(state.completed) == {0}
        assert not state.quarantined

    def test_torn_tail_is_skipped(self, tmp_path):
        path = str(tmp_path / "manifest.jsonl")
        with CheckpointJournal.create(path, HEADER) as journal:
            journal.record_shard(0, ("a.xml",), 7, 1.0, "t0", 1)
            journal.record_shard(1, ("b.xml",), 9, 1.0, "t1", 1)
        # SIGKILL mid-append: the last line is torn
        with open(path, "r+b") as fh:
            fh.seek(0, os.SEEK_END)
            fh.truncate(fh.tell() - 10)
        state = CheckpointJournal.load(path)
        assert set(state.completed) == {0}
        assert state.skipped_lines == 1

    def test_flipped_byte_is_skipped(self, tmp_path):
        path = str(tmp_path / "manifest.jsonl")
        with CheckpointJournal.create(path, HEADER) as journal:
            journal.record_shard(0, ("a.xml",), 7, 1.0, "t0", 1)
        lines = open(path, "r", encoding="utf-8").read().splitlines()
        # corrupt the shard line's docs but keep it valid JSON: only the
        # per-line CRC can catch this
        lines[1] = lines[1].replace("a.xml", "z.xml")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("\n".join(lines) + "\n")
        state = CheckpointJournal.load(path)
        assert not state.completed
        assert state.skipped_lines == 1

    def test_missing_header_is_typed(self, tmp_path):
        path = str(tmp_path / "manifest.jsonl")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("not json at all\n")
        with pytest.raises(CorpusError):
            CheckpointJournal.load(path)


# ---------------------------------------------------------------------------
# run determinism: serial oracle, pool, resume
# ---------------------------------------------------------------------------


class TestRunDeterminism:
    def test_serial_matches_per_document_oracle(self, tmp_path):
        root = tmp_path / "c"
        docs = make_corpus(root, 6)
        out = str(tmp_path / "out.json")
        kind, query = QUERY
        report = run_corpus(str(root), kind, query, out=out, workers=0,
                            shard_size=2)
        assert report.ok and report.shards_done == 3
        merged = verify_output(out)
        for rel in docs:
            oracle = evaluate_document(str(root / rel), kind, query)
            assert merged["results"][rel] == encode_answer(oracle.answer)

    @fork_only
    def test_pool_output_is_byte_identical_to_serial(self, tmp_path):
        root = tmp_path / "c"
        make_corpus(root, 10)
        kind, query = QUERY
        serial = str(tmp_path / "serial.json")
        run_corpus(str(root), kind, query, out=serial, workers=0,
                   shard_size=3)
        for workers in (1, 4):
            out = str(tmp_path / f"pool{workers}.json")
            report = run_corpus(str(root), kind, query, out=out,
                                workers=workers, shard_size=3)
            assert report.ok
            assert open(out, "rb").read() == open(serial, "rb").read()

    def test_resume_skips_completed_shards(self, tmp_path):
        root = tmp_path / "c"
        make_corpus(root, 6)
        out = str(tmp_path / "out.json")
        kind, query = QUERY
        first = run_corpus(str(root), kind, query, out=out, workers=0,
                           shard_size=2)
        assert first.shards_done == 3
        bytes_first = open(out, "rb").read()
        again = run_corpus(str(root), kind, query, out=out, workers=0,
                           shard_size=2, resume=True)
        assert again.ok
        assert again.shards_resumed == 3 and again.shards_done == 0
        assert open(out, "rb").read() == bytes_first

    def test_resume_with_no_manifest_is_typed(self, tmp_path):
        root = tmp_path / "c"
        make_corpus(root, 2)
        kind, query = QUERY
        with pytest.raises(CorpusError):
            run_corpus(str(root), kind, query,
                       out=str(tmp_path / "o.json"), workers=0, resume=True)

    def test_resume_rejects_different_query(self, tmp_path):
        root = tmp_path / "c"
        make_corpus(root, 4)
        out = str(tmp_path / "out.json")
        kind, query = QUERY
        run_corpus(str(root), kind, query, out=out, workers=0, shard_size=2)
        with pytest.raises(CorpusError):
            run_corpus(str(root), kind, "Child[lab() = d]", out=out,
                       workers=0, shard_size=2, resume=True)

    def test_resume_recomputes_corrupted_spill(self, tmp_path):
        root = tmp_path / "c"
        make_corpus(root, 4)
        out = str(tmp_path / "out.json")
        workdir = out + ".work"
        kind, query = QUERY
        run_corpus(str(root), kind, query, out=out, workers=0, shard_size=2)
        bytes_first = open(out, "rb").read()
        with open(spill_path(workdir, 1), "r+b") as fh:
            fh.seek(5)
            fh.write(b"\xff\xff")
        report = run_corpus(str(root), kind, query, out=out, workers=0,
                            shard_size=2, resume=True)
        assert report.shards_resumed == 1 and report.shards_done == 1
        assert open(out, "rb").read() == bytes_first

    def test_validation_errors(self, tmp_path):
        root = tmp_path / "c"
        make_corpus(root, 2)
        kind, query = QUERY
        out = str(tmp_path / "o.json")
        with pytest.raises(CorpusError):
            run_corpus(str(root), kind, query, out=out, workers=-1)
        with pytest.raises(CorpusError):
            run_corpus(str(root), kind, query, out=out, retries=-1)
        with pytest.raises(CorpusError):
            run_corpus(str(root), kind, query, out=out, task_timeout_s=0)

    def test_output_crc_detects_tampering(self, tmp_path):
        root = tmp_path / "c"
        make_corpus(root, 2)
        kind, query = QUERY
        out = str(tmp_path / "o.json")
        run_corpus(str(root), kind, query, out=out, workers=0)
        doc = json.loads(open(out).read())
        doc["results"] = {}
        open(out, "w").write(json.dumps(doc))
        with pytest.raises(CorpusError):
            verify_output(out)


# ---------------------------------------------------------------------------
# supervision: kills, hangs, poison shards
# ---------------------------------------------------------------------------


class TestSupervision:
    @fork_only
    def test_sigkilled_worker_is_retried_to_identical_output(self, tmp_path):
        root = tmp_path / "c"
        make_corpus(root, 8)
        kind, query = QUERY
        serial = str(tmp_path / "serial.json")
        run_corpus(str(root), kind, query, out=serial, workers=0,
                   shard_size=2)
        killed = []

        def kill_first(shard_id, pid):
            if not killed:
                killed.append(pid)
                os.kill(pid, signal.SIGKILL)

        out = str(tmp_path / "killed.json")
        report = run_corpus(str(root), kind, query, out=out, workers=2,
                            shard_size=2, retries=1,
                            on_worker_spawn=kill_first)
        assert killed
        assert report.ok
        assert report.worker_deaths >= 1 and report.retries >= 1
        assert open(out, "rb").read() == open(serial, "rb").read()

    @fork_only
    def test_hung_worker_times_out_into_quarantine(self, tmp_path):
        root = tmp_path / "c"
        make_corpus(root, 2)
        kind, query = QUERY
        out = str(tmp_path / "out.json")
        # the latency fault outlives the heartbeat budget in every fresh
        # fork (children inherit the armed plan snapshot), so both
        # attempts hang and the shard is quarantined
        with FaultPlan(["corpus.task:latency:30@nth=1"]) as plan:
            report = run_corpus(str(root), kind, query, out=out, workers=1,
                                shard_size=2, retries=1, task_timeout_s=0.5)
        assert not plan.trips  # the parent never trips it — children do
        assert report.status == "partial"
        assert report.timeouts >= 2  # both attempts timed out
        assert report.shards_quarantined == 1
        doc = verify_output(out)
        assert doc["status"] == "partial"
        assert doc["quarantined"][0]["shard"] == 0

    @fork_only
    def test_poison_shard_exhausts_budget_and_is_quarantined(self, tmp_path):
        root = tmp_path / "c"
        make_corpus(root, 4)
        kind, query = QUERY
        out = str(tmp_path / "out.json")
        # every=1 on the first doc of shard 0: every fresh worker that
        # picks the shard up fails — the definition of a poison shard
        with FaultPlan(["corpus.task:error@every=1"]):
            report = run_corpus(str(root), kind, query, out=out, workers=1,
                                shard_size=4, retries=2)
        assert report.status == "partial"
        quarantined = [s for s in report.shards if s.status == "quarantined"]
        assert len(quarantined) == 1
        assert quarantined[0].attempts == 3  # 1 + retries
        assert "InjectedFault" in quarantined[0].error
        doc = verify_output(out)
        assert doc["status"] == "partial" and doc["results"] == {}
        # the manifest records the quarantine too
        state = CheckpointJournal.load(
            os.path.join(out + ".work", "manifest.jsonl"))
        assert set(state.quarantined) == {0}

    @fork_only
    def test_worker_failure_report_is_typed_not_raised(self, tmp_path):
        root = tmp_path / "c"
        make_corpus(root, 2)
        # one bad document: a worker reports the failure and exits
        # cleanly; the shard quarantines without touching other shards
        (root / "doc00.xml").write_text("<a><unclosed>")
        kind, query = QUERY
        out = str(tmp_path / "out.json")
        report = run_corpus(str(root), kind, query, out=out, workers=1,
                            shard_size=1, retries=0)
        assert report.status == "partial"
        assert report.worker_deaths == 0  # a report, not a crash
        statuses = {s.shard_id: s.status for s in report.shards}
        assert statuses[0] == "quarantined" and statuses[1] == "done"

    @fork_only
    def test_per_shard_trace_ids_are_distinct(self, tmp_path):
        root = tmp_path / "c"
        make_corpus(root, 6)
        kind, query = QUERY
        out = str(tmp_path / "out.json")
        run_corpus(str(root), kind, query, out=out, workers=2, shard_size=2)
        state = CheckpointJournal.load(
            os.path.join(out + ".work", "manifest.jsonl"))
        trace_ids = [r["trace_id"] for r in state.completed.values()]
        assert len(trace_ids) == 3 and len(set(trace_ids)) == 3


# ---------------------------------------------------------------------------
# crash mid-run, then resume: the headline differential
# ---------------------------------------------------------------------------


class TestCrashResume:
    @pytest.mark.slow
    def test_sigkill_mid_run_then_resume_is_byte_identical(self, tmp_path):
        """A subprocess corpus run is SIGKILLed after two shard
        checkpoints; ``resume=True`` must skip the journaled shards and
        finish with output byte-identical to an uninterrupted serial
        run."""
        root = tmp_path / "c"
        make_corpus(root, 8)
        kind, query = QUERY
        serial = str(tmp_path / "serial.json")
        run_corpus(str(root), kind, query, out=serial, workers=0,
                   shard_size=2)

        out = str(tmp_path / "crashed.json")
        script = textwrap.dedent(
            """
            import os, signal, sys
            from repro.corpus import checkpoint, run_corpus

            root, out = sys.argv[1], sys.argv[2]
            appended = []
            original = checkpoint.CheckpointJournal.append
            def dying_append(self, record):
                original(self, record)
                if record.get("type") == "shard":
                    appended.append(record)
                    if len(appended) == 2:
                        os.kill(os.getpid(), signal.SIGKILL)
            checkpoint.CheckpointJournal.append = dying_append
            run_corpus(root, "xpath", "Child+[lab() = b]", out=out,
                       workers=0, shard_size=2)
            """
        )
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        proc = subprocess.run(
            [sys.executable, "-c", script, str(root), out],
            env=env, capture_output=True, timeout=120,
        )
        assert proc.returncode == -9, proc.stderr.decode()
        assert not os.path.exists(out)  # died before the merge

        report = run_corpus(str(root), kind, query, out=out, workers=0,
                            shard_size=2, resume=True)
        assert report.ok
        assert report.shards_resumed == 2  # the journaled ones
        assert report.shards_done == 2  # the rest
        assert open(out, "rb").read() == open(serial, "rb").read()


# ---------------------------------------------------------------------------
# fork hygiene (the satellite fix)
# ---------------------------------------------------------------------------


class TestForkGuards:
    @fork_only
    def test_forked_child_event_log_writer_works(self, tmp_path):
        from repro.obs.events import EventLogWriter

        ctx = multiprocessing.get_context("fork")
        path = str(tmp_path / "events.jsonl")
        writer = EventLogWriter(path, queue_size=8)
        try:
            writer.submit({"trace_id": "parent", "route": "/q"})
            assert writer.flush()

            def child_writes():
                # the inherited writer must have been re-initialized:
                # fresh queue, fresh lock, and a live drain thread
                ok = writer.submit({"trace_id": "child", "route": "/q"})
                flushed = writer.flush()
                os._exit(0 if (ok and flushed) else 13)

            proc = ctx.Process(target=child_writes)
            proc.start()
            proc.join(30)
            assert proc.exitcode == 0
        finally:
            writer.close()
        trace_ids = {
            json.loads(line)["trace_id"]
            for line in open(path, encoding="utf-8")
        }
        assert trace_ids == {"parent", "child"}

    @fork_only
    def test_forked_child_metrics_are_isolated(self):
        from repro.obs.metrics import METRICS

        ctx = multiprocessing.get_context("fork")
        METRICS.add("fork.test.parent", 41)

        def child_checks():
            # the child's registry must start empty (no inherited
            # totals) and must be usable (fresh lock)
            inherited = METRICS.get("fork.test.parent")
            METRICS.add("fork.test.child")
            os._exit(0 if inherited == 0 else 13)

        proc = ctx.Process(target=child_checks)
        proc.start()
        proc.join(30)
        assert proc.exitcode == 0
        # and the child's activity never leaks back into the parent
        assert METRICS.get("fork.test.child") == 0
        assert METRICS.get("fork.test.parent") == 41

    @fork_only
    def test_forked_child_fault_plan_lock_is_fresh(self):
        ctx = multiprocessing.get_context("fork")
        with FaultPlan(["corpus.task:error@nth=3"]) as plan:
            plan._lock.acquire()  # simulate mid-hit fork
            try:
                def child_hits():
                    from repro.faults import faultpoint
                    # would deadlock on the inherited held lock without
                    # the at-fork re-init
                    faultpoint("corpus.task", None)
                    os._exit(0)

                proc = ctx.Process(target=child_hits)
                proc.start()
                proc.join(30)
                assert proc.exitcode == 0
            finally:
                plan._lock.release()


# ---------------------------------------------------------------------------
# chaos integration
# ---------------------------------------------------------------------------


class TestCorpusChaos:
    @pytest.mark.slow
    def test_corpus_prefix_sweep_is_green_and_trips_all_sites(self):
        from repro.chaos import chaos_sweep

        report = chaos_sweep(seed=3, sites=["corpus"])
        assert report.ok, report.summary()
        assert report.tripped_sites() == {
            "corpus.split", "corpus.worker", "corpus.task",
            "corpus.merge", "corpus.checkpoint",
        }
        # the kill differential ran and recovered
        kills = [o for o in report.outcomes
                 if o.scenario.kind == "corpus-kill"]
        assert len(kills) == 1 and kills[0].status == "recovered"

    def test_prefix_must_match_something(self):
        from repro.chaos import generate_scenarios
        from repro.errors import QueryError

        with pytest.raises(QueryError):
            generate_scenarios(sites=["corpuz"])

    def test_glob_and_exact_still_work(self):
        from repro.chaos import generate_scenarios

        exact = generate_scenarios(sites=["corpus.merge"])
        assert {s.site for s in exact} == {"corpus.merge"}
        glob = generate_scenarios(sites=["corpus.*"])
        assert {s.site for s in glob} == {
            "corpus.split", "corpus.worker", "corpus.task",
            "corpus.merge", "corpus.checkpoint",
        }


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------


class TestCorpusCli:
    def run_cli(self, *argv):
        from repro.cli import main

        return main(list(argv))

    def test_run_status_verify_roundtrip(self, tmp_path, capsys):
        root = tmp_path / "c"
        make_corpus(root, 4)
        out = str(tmp_path / "out.json")
        code = self.run_cli(
            "corpus", "run", str(root), "--query", QUERY[1], "--out", out,
            "--workers", "0", "--shard-size", "2",
        )
        assert code == 0
        assert "corpus complete" in capsys.readouterr().out
        assert self.run_cli("corpus", "status", out + ".work") == 0
        assert "status: complete" in capsys.readouterr().out
        assert self.run_cli("corpus", "verify", out) == 0
        assert "FAIL" not in capsys.readouterr().out

    def test_partial_run_exits_one(self, tmp_path, capsys):
        root = tmp_path / "c"
        make_corpus(root, 2)
        (root / "doc00.xml").write_text("<a><unclosed>")
        out = str(tmp_path / "out.json")
        code = self.run_cli(
            "corpus", "run", str(root), "--query", QUERY[1], "--out", out,
            "--workers", "0", "--shard-size", "1", "--retries", "0",
        )
        assert code == 1
        assert "quarantined" in capsys.readouterr().out
        assert self.run_cli("corpus", "status", out + ".work") == 1

    def test_resume_without_manifest_exits_two(self, tmp_path, capsys):
        root = tmp_path / "c"
        make_corpus(root, 2)
        code = self.run_cli(
            "corpus", "run", str(root), "--query", QUERY[1],
            "--out", str(tmp_path / "o.json"), "--workers", "0", "--resume",
        )
        assert code == 2
        assert "nothing to resume" in capsys.readouterr().err

    def test_verify_flags_corrupted_spill(self, tmp_path, capsys):
        root = tmp_path / "c"
        make_corpus(root, 4)
        out = str(tmp_path / "out.json")
        assert self.run_cli(
            "corpus", "run", str(root), "--query", QUERY[1], "--out", out,
            "--workers", "0", "--shard-size", "2",
        ) == 0
        capsys.readouterr()
        with open(spill_path(out + ".work", 0), "r+b") as fh:
            fh.seek(4)
            fh.write(b"\xff")
        assert self.run_cli("corpus", "verify", out) == 1
        assert "FAIL" in capsys.readouterr().out


class TestStoreVerifyDirectory:
    def run_cli(self, *argv):
        from repro.cli import main

        return main(list(argv))

    def make_store(self, path, text="<a><b/></a>"):
        from repro.storage import dump_tree
        from repro.trees.xmlio import parse_xml

        dump_tree(parse_xml(text), str(path))

    def test_directory_expands_recursively(self, tmp_path, capsys):
        self.make_store(tmp_path / "one.rtre")
        (tmp_path / "sub").mkdir()
        self.make_store(tmp_path / "sub" / "two.rtre")
        assert self.run_cli("store", "verify", str(tmp_path)) == 0
        out = capsys.readouterr().out
        assert out.count("OK") == 2 and "two.rtre" in out

    def test_directory_names_each_failure(self, tmp_path, capsys):
        self.make_store(tmp_path / "good.rtre")
        self.make_store(tmp_path / "bad.rtre")
        with open(tmp_path / "bad.rtre", "r+b") as fh:
            fh.seek(8)
            fh.write(b"\xff\xff")
        assert self.run_cli("store", "verify", str(tmp_path)) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out and "bad.rtre" in out and "OK" in out

    def test_empty_directory_fails(self, tmp_path, capsys):
        (tmp_path / "empty").mkdir()
        assert self.run_cli("store", "verify", str(tmp_path / "empty")) == 1
        assert "no .rtre files" in capsys.readouterr().out
