"""Property: query results survive the wire format round trip.

For 50 seeded random tree/query pairs (cycling all four languages),
the canonical JSON encoding of an engine answer must round-trip
exactly: ``decode(json.loads(json.dumps(encode(answer)))) == answer``.
This is what makes the service's differential guarantees meaningful —
if serialization lost or reordered information, byte-comparison of
responses would prove nothing.
"""

from __future__ import annotations

import json

import pytest

from repro.engine import Database
from repro.service.protocol import ServiceError, decode_answer, encode_answer
from repro.trees import random_tree
from repro.workloads import random_cq, random_twig, random_xpath

N_PAIRS = 50


def _query_for(kind: str, seed: int):
    if kind == "xpath":
        return random_xpath(n_steps=2, seed=seed)
    if kind == "twig":
        return random_twig(n_nodes=3, seed=seed)
    if kind == "cq":
        return random_cq(n_vars=3, n_binary=2, seed=seed)
    return f"Q(x) :- Lab:{'abcd'[seed % 4]}(x).\n% query: Q"


def _normalize(answer):
    """Engine answers are sets of ints or tuples; empty comes back as
    the empty set of ints — normalize for comparison."""
    return set(answer)


KINDS = ("xpath", "twig", "cq", "datalog")


class TestAnswerRoundTrip:
    @pytest.mark.parametrize("seed", range(N_PAIRS))
    def test_random_pair_round_trips(self, seed):
        kind = KINDS[seed % len(KINDS)]
        tree = random_tree(10 + (seed * 7) % 40, seed=seed)
        db = Database(tree)
        answer = db.run(kind, _query_for(kind, seed)).answer
        wire = json.dumps(encode_answer(answer), sort_keys=True)
        decoded = decode_answer(json.loads(wire))
        assert _normalize(decoded) == _normalize(answer)
        # and the encoding is canonical: re-encoding the decoded answer
        # reproduces the exact same bytes
        assert json.dumps(encode_answer(decoded), sort_keys=True) == wire

    def test_empty_answer_round_trips(self):
        assert decode_answer(json.loads(json.dumps(encode_answer(set())))) == set()

    def test_tuple_answer_round_trips(self):
        answer = {(3, 1), (0, 2), (3, 0)}
        assert decode_answer(json.loads(json.dumps(encode_answer(answer)))) == answer

    def test_encoding_is_sorted(self):
        assert encode_answer({9, 1, 5}) == [1, 5, 9]
        assert encode_answer({(2, 1), (1, 9), (1, 2)}) == [[1, 2], [1, 9], [2, 1]]

    def test_mixed_payload_rejected(self):
        with pytest.raises(ServiceError):
            decode_answer([1, [2, 3]])

    def test_non_list_payload_rejected(self):
        with pytest.raises(ServiceError):
            decode_answer({"answer": [1]})
