"""Tests for the XML-subset parser/serializer."""

import pytest
from hypothesis import given, settings

from repro.errors import ParseError
from repro.trees import Tree, parse_xml, to_xml
from repro.trees.xmlio import iter_xml_events

from conftest import trees


class TestParsing:
    def test_simple_document(self):
        t = parse_xml("<r><a/><b><c/></b></r>")
        assert t.label == ["r", "a", "b", "c"]
        assert t.parent == [-1, 0, 0, 2]

    def test_whitespace_and_text_skipped(self):
        t = parse_xml("<r>\n  hello <a/> world\n</r>")
        assert t.label == ["r", "a"]

    def test_comments_and_pi_skipped(self):
        t = parse_xml("<?xml version='1.0'?><!-- hi --><r><!--x--><a/></r>")
        assert t.label == ["r", "a"]

    def test_doctype_skipped(self):
        t = parse_xml("<!DOCTYPE book><r/>")
        assert t.label == ["r"]

    def test_attributes_ignored_by_default(self):
        t = parse_xml('<r id="1"><a x="y z"/></r>')
        assert t.labels[0] == frozenset(["r"])

    def test_attributes_as_labels(self):
        t = parse_xml('<r id="7"/>', attributes_as_labels=True)
        assert t.has_label(0, "@id")
        assert t.has_label(0, "@id=7")

    def test_cdata_skipped(self):
        t = parse_xml("<r><![CDATA[<fake/>]]><a/></r>")
        assert t.label == ["r", "a"]


class TestErrors:
    def test_mismatched_close(self):
        with pytest.raises(ParseError):
            parse_xml("<a><b></a></b>")

    def test_unclosed(self):
        with pytest.raises(ParseError):
            parse_xml("<a><b/>")

    def test_extra_close(self):
        with pytest.raises(ParseError):
            parse_xml("<a/></b>")

    def test_multiple_roots(self):
        with pytest.raises(ParseError):
            parse_xml("<a/><b/>")

    def test_empty(self):
        with pytest.raises(ParseError):
            parse_xml("   ")


class TestRoundTrip:
    @given(trees(max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_tree_to_xml_to_tree(self, t):
        assert parse_xml(to_xml(t)) == t

    @given(trees(max_size=25))
    @settings(max_examples=30, deadline=None)
    def test_pretty_print_round_trips(self, t):
        assert parse_xml(to_xml(t, indent=2)) == t

    def test_serialization_shape(self):
        t = Tree.from_tuple(("r", ["a", ("b", ["c"])]))
        assert to_xml(t) == "<r><a/><b><c/></b></r>"


class TestEvents:
    def test_event_stream(self):
        events = list(iter_xml_events("<a><b x='1'/></a>"))
        assert events == [
            ("start", "a", {}),
            ("start", "b", {"x": "1"}),
            ("end", "b"),
            ("end", "a"),
        ]

    def test_deep_document_parses_iteratively(self):
        depth = 30_000
        text = "<a>" * depth + "</a>" * depth
        t = parse_xml(text)
        assert t.n == depth
        assert t.height() == depth - 1
