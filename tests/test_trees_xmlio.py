"""Tests for the XML-subset parser/serializer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParseError
from repro.trees import Tree, parse_xml, to_xml
from repro.trees.xmlio import iter_xml_events

from conftest import trees


class TestParsing:
    def test_simple_document(self):
        t = parse_xml("<r><a/><b><c/></b></r>")
        assert t.label == ["r", "a", "b", "c"]
        assert t.parent == [-1, 0, 0, 2]

    def test_whitespace_and_text_skipped(self):
        t = parse_xml("<r>\n  hello <a/> world\n</r>")
        assert t.label == ["r", "a"]

    def test_comments_and_pi_skipped(self):
        t = parse_xml("<?xml version='1.0'?><!-- hi --><r><!--x--><a/></r>")
        assert t.label == ["r", "a"]

    def test_doctype_skipped(self):
        t = parse_xml("<!DOCTYPE book><r/>")
        assert t.label == ["r"]

    def test_attributes_ignored_by_default(self):
        t = parse_xml('<r id="1"><a x="y z"/></r>')
        assert t.labels[0] == frozenset(["r"])

    def test_attributes_as_labels(self):
        t = parse_xml('<r id="7"/>', attributes_as_labels=True)
        assert t.has_label(0, "@id")
        assert t.has_label(0, "@id=7")

    def test_cdata_skipped(self):
        t = parse_xml("<r><![CDATA[<fake/>]]><a/></r>")
        assert t.label == ["r", "a"]


class TestErrors:
    def test_mismatched_close(self):
        with pytest.raises(ParseError):
            parse_xml("<a><b></a></b>")

    def test_unclosed(self):
        with pytest.raises(ParseError):
            parse_xml("<a><b/>")

    def test_extra_close(self):
        with pytest.raises(ParseError):
            parse_xml("<a/></b>")

    def test_multiple_roots(self):
        with pytest.raises(ParseError):
            parse_xml("<a/><b/>")

    def test_empty(self):
        with pytest.raises(ParseError):
            parse_xml("   ")


class TestRoundTrip:
    @given(trees(max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_tree_to_xml_to_tree(self, t):
        assert parse_xml(to_xml(t)) == t

    @given(trees(max_size=25))
    @settings(max_examples=30, deadline=None)
    def test_pretty_print_round_trips(self, t):
        assert parse_xml(to_xml(t, indent=2)) == t

    def test_serialization_shape(self):
        t = Tree.from_tuple(("r", ["a", ("b", ["c"])]))
        assert to_xml(t) == "<r><a/><b><c/></b></r>"


class TestEvents:
    def test_event_stream(self):
        events = list(iter_xml_events("<a><b x='1'/></a>"))
        assert events == [
            ("start", "a", {}),
            ("start", "b", {"x": "1"}),
            ("end", "b"),
            ("end", "a"),
        ]

    def test_deep_document_parses_iteratively(self):
        depth = 30_000
        text = "<a>" * depth + "</a>" * depth
        t = parse_xml(text)
        assert t.n == depth
        assert t.height() == depth - 1


class TestStrictErrorsCarryPositions:
    @pytest.mark.parametrize(
        "text, fragment",
        [
            ("<a><b></a>", "mismatched closing tag"),
            ("</a>", "unmatched closing tag"),
            ("<a></a><b></b>", "multiple root elements"),
            ("<a><b></b>", "unclosed element"),
            ("", "empty document"),
            ("<a>&&&<<", "malformed"),
        ],
    )
    def test_position_always_present(self, text, fragment):
        with pytest.raises(ParseError, match=fragment) as exc_info:
            parse_xml(text)
        assert exc_info.value.position is not None
        assert "position" in str(exc_info.value)

    def test_max_depth_ceiling_strict(self):
        text = "<a>" * 40 + "</a>" * 40
        assert parse_xml(text, max_depth=40).n == 40
        with pytest.raises(ParseError, match="max_depth") as exc_info:
            parse_xml(text, max_depth=39)
        assert exc_info.value.position is not None


class TestRecoveringParser:
    def _recover(self, text, **kw):
        warnings = []
        tree = parse_xml(text, recover=True, warnings=warnings, **kw)
        return tree, warnings

    def test_mismatched_close_auto_closes_to_ancestor(self):
        tree, warnings = self._recover("<a><b><c></b></a>")
        # </b> closes the open <c> (auto) and then <b> itself
        assert parse_xml("<a><b><c/></b></a>") == tree
        codes = {w.code for w in warnings}
        assert codes == {"mismatched-close", "unclosed"}

    def test_unmatched_close_is_dropped(self):
        tree, warnings = self._recover("</b><a/>")
        assert tree == parse_xml("<a/>")
        assert [w.code for w in warnings] == ["unmatched-close"]

    def test_stray_close_inside_open_element_is_dropped(self):
        # </b> matches nothing on the stack: reported, dropped
        tree, warnings = self._recover("<a></b></a>")
        assert tree == parse_xml("<a/>")
        assert [w.code for w in warnings] == ["mismatched-close"]

    def test_unclosed_elements_auto_close_at_eof(self):
        tree, warnings = self._recover("<a><b><c>")
        assert tree == parse_xml("<a><b><c/></b></a>")
        assert [w.code for w in warnings] == ["unclosed"] * 3

    def test_extra_roots_dropped_with_warning(self):
        tree, warnings = self._recover("<a><x/></a><b><y/></b>")
        assert tree == parse_xml("<a><x/></a>")
        assert [w.code for w in warnings] == ["multiple-roots"]

    def test_garbage_skipped_with_warning(self):
        tree, warnings = self._recover("<a>&&& ... <<<<<<b/></a>")
        assert tree == parse_xml("<a><b/></a>")
        assert "garbage" in {w.code for w in warnings}

    def test_empty_document_synthesizes_placeholder_root(self):
        tree, warnings = self._recover("just text, no elements at all")
        assert tree.n == 1
        assert tree.label[tree.root] == "#document"
        assert "empty" in {w.code for w in warnings}

    def test_too_deep_subtrees_dropped_with_warning(self):
        text = "<a>" + "<b>" * 5 + "</b>" * 5 + "<c/></a>"
        tree, warnings = self._recover(text, max_depth=3)
        assert tree == parse_xml("<a><b><b/></b><c/></a>")
        assert "max-depth" in {w.code for w in warnings}

    def test_warnings_carry_positions(self):
        _, warnings = self._recover("<a><b></a>")
        assert warnings and all(w.position is not None for w in warnings)

    def test_recovered_output_reparses_strictly(self):
        for text in (
            "<a><b><c></b></a>",
            "<a><b>",
            "</x><a/><b/>",
            "<a>&&&<b></a>",
        ):
            tree, _ = self._recover(text)
            if tree.label[tree.root] == "#document":
                continue  # placeholder root has no XML spelling
            assert parse_xml(to_xml(tree)) == tree


class TestMalformedFuzz:
    """Property fuzz: strict mode always raises ParseError with a
    position on malformed input; recover mode never raises and what it
    keeps round-trips through strict re-parsing."""

    fragments = st.lists(
        st.sampled_from(
            ["<a>", "</a>", "<b>", "</b>", "<c/>", "<", ">", "&", "&amp;",
             "</", "x", " ", "<a", "<!--", "-->", "<?pi?>", "=\"v\"", "'"]
        ),
        min_size=0,
        max_size=12,
    ).map("".join)

    @given(fragments)
    @settings(max_examples=200, deadline=None)
    def test_strict_parse_or_positioned_error(self, text):
        try:
            parse_xml(text)
        except ParseError as exc:
            assert exc.position is not None
            assert 0 <= exc.position <= len(text)

    @given(fragments)
    @settings(max_examples=200, deadline=None)
    def test_recover_never_raises_and_round_trips(self, text):
        warnings = []
        tree = parse_xml(text, recover=True, warnings=warnings)
        assert tree.n >= 1
        if tree.label[tree.root] != "#document":
            assert parse_xml(to_xml(tree)) == tree

    @given(trees(max_size=15), st.data())
    @settings(max_examples=100, deadline=None)
    def test_truncated_documents(self, t, data):
        full = to_xml(t)
        cut = data.draw(st.integers(min_value=1, max_value=len(full) - 1))
        prefix = full[:cut]
        with pytest.raises(ParseError) as exc_info:
            parse_xml(prefix)
        assert exc_info.value.position is not None
        warnings = []
        recovered = parse_xml(prefix, recover=True, warnings=warnings)
        assert recovered.n >= 1
        if recovered.label[recovered.root] != "#document":
            assert parse_xml(to_xml(recovered)) == recovered
