"""Tests for the benchmark telemetry stack (repro.perf): samples and
series, the recorder's table→series derivation, the BENCH_<n>.json
store, the noise-aware comparator, the OpenMetrics export, and the
subprocess runner end-to-end on a miniature bench suite.
"""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.perf import (
    BenchRecorder,
    SCHEMA,
    Sample,
    compare_runs,
    environment_fingerprint,
    latest_runs,
    list_runs,
    load_run,
    render_bench_openmetrics,
    run_benchmarks,
    validate_payload,
    write_run,
)
from repro.perf.record import NOISE_FLOOR_S, slugify

# ---------------------------------------------------------------------------
# Sample
# ---------------------------------------------------------------------------


def test_sample_is_a_float_carrying_spread():
    s = Sample(0.8, 1.0, 0.2, 5)
    assert s == 1.0  # the float value is the median
    assert s.min == 0.8 and s.iqr == pytest.approx(0.2) and s.repeats == 5
    assert s.median == 1.0
    assert s.rel_iqr == pytest.approx(0.2)
    # the idioms benchmark code relies on keep working
    assert f"{s:.5f}" == "1.00000"
    assert s * 2 == 2.0 and s < 1.5


def test_sample_from_times_uses_median_and_iqr():
    s = Sample.from_times([0.4, 0.1, 0.2])
    assert s.min == pytest.approx(0.1)
    assert s.median == pytest.approx(0.2)
    assert s.repeats == 3
    assert s.iqr > 0.0
    with pytest.raises(ValueError):
        Sample.from_times([])


def test_sample_from_value_has_no_spread():
    s = Sample.from_value(42)
    assert s == 42.0 and s.min == 42.0 and s.iqr == 0.0 and s.repeats == 1


def test_slugify():
    assert slugify("E3/Fig3: Horn-SAT (chain-heavy)") == "e3-fig3-horn-sat-chain-heavy"
    assert slugify("") == "metric"


# ---------------------------------------------------------------------------
# recorder: tables -> series
# ---------------------------------------------------------------------------


def _timing(size: int, seconds: float) -> Sample:
    return Sample(seconds * 0.9, seconds, seconds * 0.05, 3)


def test_record_table_derives_timing_and_count_series():
    rec = BenchRecorder()
    derived = rec.record_table(
        "sweep", ["n", "seconds", "peak"],
        [[n, _timing(n, n * 1e-5), n * 3] for n in (100, 200, 400)],
        module="m",
    )
    assert sorted(s.unit for s in derived) == ["n", "s"]
    payload = rec.as_dict()["m"]
    timing = payload["series"]["sweep/seconds"]
    counts = payload["series"]["sweep/peak"]
    assert timing["unit"] == "s" and counts["unit"] == "n"
    assert timing["slope"] == pytest.approx(1.0, abs=0.05)
    assert timing["growth"] == "linear"
    assert counts["growth"] == "linear" and counts["confident"] is True
    # the printed table and the JSON rows come from the same cells
    assert payload["tables"][0]["rows"][0] == [100, pytest.approx(1e-3), 300]


def test_record_table_skips_non_numeric_sweeps_and_mixed_columns():
    rec = BenchRecorder()
    assert rec.record_table(
        "named rows", ["metric", "value"],
        [["output size", 10], ["pushes", 20]], module="m",
    ) == []
    assert rec.record_table(
        "mixed column", ["n", "value"],
        [[100, 10], [200, "20x"]], module="m",
    ) == []
    assert rec.record_table(
        "single row", ["n", "seconds"], [[100, _timing(100, 0.1)]], module="m",
    ) == []


def test_record_table_deduplicates_series_names():
    rec = BenchRecorder()
    rows = [[n, n * 2] for n in (1, 2, 3)]
    rec.record_table("same title", ["n", "v"], rows, module="m")
    rec.record_table("same title", ["n", "v"], rows, module="m")
    names = set(rec.as_dict()["m"]["series"])
    assert names == {"same-title/v", "same-title/v-2"}


def test_series_confidence_gating():
    rec = BenchRecorder()
    # two points: never confident
    two = rec.record_series(
        "short", [(100, _timing(100, 0.1)), (200, _timing(200, 0.2))], module="m"
    )
    assert two.confident is False
    # three points but sub-noise-floor medians: not confident either
    noisy = rec.record_series(
        "noise", [(n, Sample.from_times([NOISE_FLOOR_S / 10])) for n in (1, 2, 3)],
        module="m",
    )
    assert noisy.confident is False
    # counts are deterministic: three points suffice
    counts = rec.record_series("counts", [(1, 5), (2, 10), (3, 20)], unit="n",
                               module="m")
    assert counts.confident is True


def test_record_series_accepts_scaling_points():
    from repro.complexity import ScalingPoint

    rec = BenchRecorder()
    series = rec.record_series(
        "sp", [ScalingPoint(100, 0.01), ScalingPoint(200, 0.02)], module="m"
    )
    assert [size for size, _ in series.points] == [100.0, 200.0]


def test_module_lifecycle_folds_metrics_delta():
    from repro.obs import METRICS

    rec = BenchRecorder()
    METRICS.reset()
    try:
        METRICS.merge({"warmup.noise": 7})
        rec.begin_module("m")
        METRICS.merge({"sj.pairs": 4})
        METRICS.observe_duration("query.xpath", 0.25)
        rec.end_module("m")
    finally:
        METRICS.reset()
    record = rec.as_dict()["m"]
    assert record["counters"] == {"sj.pairs": 4}  # delta, not the total
    assert record["durations"]["query.xpath"]["count"] == 1
    assert record["durations"]["query.xpath"]["sum"] == pytest.approx(0.25)


def test_mark_failed_sets_module_status():
    rec = BenchRecorder()
    rec.mark_failed("m", "bench_x.py::test_y")
    record = rec.as_dict()["m"]
    assert record["status"] == "failed"
    assert record["failures"] == ["bench_x.py::test_y"]


# ---------------------------------------------------------------------------
# store: BENCH_<n>.json
# ---------------------------------------------------------------------------


def _modules_payload(seconds_by_size, unit="s", confident=True):
    rec = BenchRecorder()
    points = [
        (size, _timing(size, s) if unit == "s" else int(s))
        for size, s in seconds_by_size
    ]
    rec.record_series("metric", points, unit=unit, module="bench_m")
    return rec.as_dict()


def test_write_load_roundtrip_and_numbering(tmp_path):
    root = str(tmp_path)
    modules = _modules_payload([(100, 0.01), (200, 0.02), (400, 0.04)])
    first = write_run(modules, root=root, fast_mode=True)
    second = write_run(modules, root=root)
    assert first.endswith("BENCH_0001.json")
    assert second.endswith("BENCH_0002.json")
    assert list_runs(root) == [first, second]
    assert latest_runs(root, 2) == [first, second]
    payload = load_run(first)
    assert payload["schema"] == SCHEMA
    assert payload["run"] == 1 and payload["fast_mode"] is True
    assert payload["environment"] == environment_fingerprint()
    assert "bench_m" in payload["modules"]


def test_load_run_rejects_malformed_files(tmp_path):
    bad = tmp_path / "BENCH_0001.json"
    bad.write_text(json.dumps({"schema": "nope", "modules": {}}))
    with pytest.raises(ValueError):
        load_run(str(bad))


def test_validate_payload_reports_structural_problems():
    assert validate_payload([]) == ["payload is not an object"]
    errors = validate_payload({"schema": SCHEMA, "run": 1, "environment": {},
                               "modules": {"m": {"series": {"s": {}}}}})
    assert any("missing 'status'" in e or "missing" in e for e in errors)
    assert any("has no points" in e for e in errors)


# ---------------------------------------------------------------------------
# comparator
# ---------------------------------------------------------------------------


def _run_payload(run, seconds_by_size, unit="s"):
    modules = _modules_payload(seconds_by_size, unit=unit)
    return {
        "schema": SCHEMA,
        "run": run,
        "fast_mode": False,
        "environment": environment_fingerprint(),
        "pytest_exit": 0,
        "modules": modules,
    }


LINEAR = [(100, 0.1), (200, 0.2), (400, 0.4)]
QUADRATIC = [(100, 0.1), (200, 0.4), (400, 1.6)]


def test_identical_runs_compare_clean():
    report = compare_runs(_run_payload(1, LINEAR), _run_payload(2, LINEAR))
    assert report.ok and report.exit_code == 0
    assert report.series_compared == 1
    assert "verdict: ok" in report.render()


def test_confident_growth_class_flip_fails():
    report = compare_runs(_run_payload(1, LINEAR), _run_payload(2, QUADRATIC))
    assert not report.ok and report.exit_code == 1
    (finding,) = report.failures
    assert "growth class changed" in finding.message
    assert "linear -> quadratic" in finding.message


def test_boundary_jitter_class_flip_only_warns():
    # slopes 1.47 vs 1.53 land in different buckets but are the same shape
    just_under = [(100, 0.1), (200, 0.1 * 2**1.47), (400, 0.1 * 4**1.47)]
    just_over = [(100, 0.1), (200, 0.1 * 2**1.53), (400, 0.1 * 4**1.53)]
    report = compare_runs(_run_payload(1, just_under), _run_payload(2, just_over))
    assert report.ok
    assert any("boundary jitter" in f.message for f in report.findings)


def test_low_confidence_class_flip_only_warns():
    # two-point sweeps are never confident, whatever the slopes say
    # (timings here stay inside the ratio band so only the class flips)
    report = compare_runs(
        _run_payload(1, LINEAR[:2]),
        _run_payload(2, [(100, 0.1), (200, 0.1 * 2**1.6)]),
    )
    assert report.ok
    assert any("low confidence" in f.message for f in report.findings)


def test_timing_band_breach_fails_and_warn_only_downgrades():
    slower = [(size, s * 5) for size, s in LINEAR]
    report = compare_runs(_run_payload(1, LINEAR), _run_payload(2, slower))
    assert not report.ok
    assert any("regressed x" in f.message for f in report.failures)
    relaxed = compare_runs(
        _run_payload(1, LINEAR), _run_payload(2, slower), timing_fail=False
    )
    assert relaxed.ok
    assert any("regressed x" in f.message for f in relaxed.findings)


def test_count_drift_fails_even_in_timing_warn_only_mode():
    counts = [(100, 100), (200, 200), (400, 400)]
    tripled = [(size, v * 3) for size, v in counts]
    report = compare_runs(
        _run_payload(1, counts, unit="n"),
        _run_payload(2, tripled, unit="n"),
        timing_fail=False,
    )
    assert not report.ok


def test_sub_noise_floor_timings_are_skipped():
    tiny = [(100, 1e-5), (200, 2e-5), (400, 1e-4)]
    jittery = [(size, s * 10) for size, s in tiny]  # still under the floor
    report = compare_runs(_run_payload(1, tiny), _run_payload(2, jittery))
    assert not any("regressed" in f.message for f in report.findings)


def test_missing_module_and_series_warn():
    old = _run_payload(1, LINEAR)
    new = _run_payload(2, LINEAR)
    new["modules"] = {}
    report = compare_runs(old, new)
    assert report.ok  # coverage loss is a warning, not a failure
    assert any("module missing" in f.message for f in report.findings)


def test_failed_module_fails_comparison():
    old = _run_payload(1, LINEAR)
    new = _run_payload(2, LINEAR)
    record = next(iter(new["modules"].values()))
    record["status"] = "failed"
    record["failures"] = ["bench_m.py::test_x"]
    report = compare_runs(old, new)
    assert not report.ok
    assert any("module failed" in f.message for f in report.failures)


def test_fast_mode_mismatch_warns():
    old, new = _run_payload(1, LINEAR), _run_payload(2, LINEAR)
    new["fast_mode"] = True
    report = compare_runs(old, new)
    assert any("fast_mode differs" in f.message for f in report.findings)


# ---------------------------------------------------------------------------
# OpenMetrics export
# ---------------------------------------------------------------------------


def test_render_bench_openmetrics():
    text = render_bench_openmetrics(_run_payload(3, LINEAR))
    assert text.endswith("# EOF\n")
    assert 'repro_bench_run_info{run="3"' in text
    assert 'repro_bench_median{module="bench_m",series="metric",unit="s",size="100"}' in text
    assert 'repro_bench_slope{module="bench_m",series="metric",unit="s"}' in text


# ---------------------------------------------------------------------------
# runner end-to-end on a miniature suite
# ---------------------------------------------------------------------------


def test_run_benchmarks_end_to_end(tmp_path):
    suite = tmp_path / "benchmarks"
    suite.mkdir()
    (suite / "pytest.ini").write_text("[pytest]\npython_files = bench_*.py\n")
    (suite / "conftest.py").write_text(
        "from repro.perf.hooks import (  # noqa: F401\n"
        "    _bench_telemetry_module,\n"
        "    pytest_runtest_logreport,\n"
        "    pytest_sessionfinish,\n"
        ")\n"
    )
    (suite / "bench_mini.py").write_text(textwrap.dedent(
        """
        from repro.perf import RECORDER, Sample

        def test_tiny_sweep():
            RECORDER.record_series(
                "mini", [(n, Sample.from_value(n * 1e-3)) for n in (1, 2, 4)]
            )
        """
    ))
    out = tmp_path / "out"
    out.mkdir()
    outcome = run_benchmarks(benchmarks_dir=str(suite), out_dir=str(out))
    assert outcome.pytest_exit == 0
    assert outcome.path is not None and outcome.path.endswith("BENCH_0001.json")
    payload = load_run(outcome.path)
    assert validate_payload(payload) == []
    assert payload["modules"]["bench_mini"]["status"] == "passed"
    assert "mini" in payload["modules"]["bench_mini"]["series"]
