"""Timing sweeps and growth classification.

``measure_scaling`` runs a callable over a size sweep (median of
repeats, garbage-collection disabled around samples);
``fit_loglog_slope`` least-squares-fits log(time) against log(size), so
slope ≈ 1 means linear, ≈ 2 quadratic; ``classify_growth`` buckets the
slope.  Exponential growth shows up as a slope that keeps climbing with
size — callers detect it by fitting on suffixes or by ratio tests.
"""

from __future__ import annotations

import gc
import math
import time
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

__all__ = [
    "ScalingPoint",
    "measure_scaling",
    "fit_loglog_slope",
    "classify_growth",
    "growth_class_from_slope",
    "format_table",
    "ratio_test",
]


@dataclass(frozen=True)
class ScalingPoint:
    size: int
    seconds: float
    extra: float = 0.0  # free slot: output size, memory units, ...


def measure_scaling(
    make_input: Callable[[int], object],
    run: Callable[[object], object],
    sizes: Iterable[int],
    repeats: int = 3,
) -> list[ScalingPoint]:
    """Median wall-clock time of ``run(make_input(n))`` per size."""
    points: list[ScalingPoint] = []
    for n in sizes:
        payload = make_input(n)
        samples: list[float] = []
        for _ in range(repeats):
            gc.disable()
            start = time.perf_counter()
            run(payload)
            samples.append(time.perf_counter() - start)
            gc.enable()
        samples.sort()
        points.append(ScalingPoint(n, samples[len(samples) // 2]))
    return points


def fit_loglog_slope(points: Sequence[ScalingPoint]) -> float:
    """Least-squares slope of log(seconds) vs log(size)."""
    xs = [math.log(p.size) for p in points]
    ys = [math.log(max(p.seconds, 1e-9)) for p in points]
    n = len(points)
    if n < 2:
        raise ValueError("need at least two points to fit a slope")
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    num = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    den = sum((x - mean_x) ** 2 for x in xs)
    return num / den


def growth_class_from_slope(slope: float) -> str:
    """Bucket a fitted log-log slope into a growth class."""
    if slope < 0.5:
        return "constant-ish"
    if slope < 1.5:
        return "linear"
    if slope < 2.5:
        return "quadratic"
    if slope < 3.5:
        return "cubic"
    return "superpolynomial"


def classify_growth(points: Sequence[ScalingPoint]) -> str:
    """Bucket the fitted slope of a sweep into a growth class."""
    return growth_class_from_slope(fit_loglog_slope(points))


def ratio_test(points: Sequence[ScalingPoint]) -> list[float]:
    """Successive time ratios — exponential growth keeps the ratio far
    above the size ratio."""
    return [
        points[i + 1].seconds / max(points[i].seconds, 1e-9)
        for i in range(len(points) - 1)
    ]


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """Fixed-width table rendering for benchmark reports."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines = ["  ".join(h.ljust(w) for h, w in zip(headers, widths))]
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
