"""Empirical scaling-law harness (methodology for Section 7 / Figure 7).

The paper's claims are asymptotic; the benchmarks validate *shapes*:
linear vs quadratic vs exponential growth, and who wins where.  This
package provides timing sweeps, log-log slope fits, and a growth-class
classifier shared by every ``benchmarks/bench_*.py``.
"""

from repro.complexity.scaling import (
    ScalingPoint,
    measure_scaling,
    fit_loglog_slope,
    classify_growth,
    growth_class_from_slope,
    format_table,
    ratio_test,
)

__all__ = [
    "ScalingPoint",
    "measure_scaling",
    "fit_loglog_slope",
    "classify_growth",
    "growth_class_from_slope",
    "format_table",
    "ratio_test",
]
