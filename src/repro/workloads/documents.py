"""Synthetic document generators.

The paper motivates with Web/XML data management; since the original
XMark/DBLP corpora are not shipped here, these generators produce
documents with the same *shape characteristics* (schema-like label
structure, heavy fan-out at collection elements, shallow depth with
recursive pockets) — see the substitution note in DESIGN.md.
"""

from __future__ import annotations

import random

from repro.trees.node import Node
from repro.trees.tree import Tree

__all__ = ["xmark_like", "dblp_like", "deep_sections", "deep_tree", "wide_tree"]


def xmark_like(n_items: int = 50, seed: int = 0) -> Tree:
    """An auction-site document in the style of XMark.

    ``site`` has ``regions`` (items with descriptions, sometimes nested
    parlists), ``people`` (persons with optional profiles), and
    ``closed_auctions`` referencing buyers and items.
    """
    rng = random.Random(seed)
    site = Node("site")
    regions = site.add(Node("regions"))
    for region_name in ("africa", "asia", "europe", "namerica"):
        region = regions.add(Node(region_name))
        for _ in range(max(1, n_items // 4)):
            item = region.add(Node("item"))
            item.add(Node("name"))
            desc = item.add(Node("description"))
            text = desc.add(Node("text"))
            # recursive parlist pockets (the deep part of XMark)
            depth = rng.randint(0, 3)
            cursor = text
            for _ in range(depth):
                parlist = cursor.add(Node("parlist"))
                listitem = parlist.add(Node("listitem"))
                cursor = listitem
            cursor.add(Node("keyword"))
            if rng.random() < 0.5:
                item.add(Node("payment"))
            if rng.random() < 0.3:
                item.add(Node("shipping"))
    people = site.add(Node("people"))
    for _ in range(n_items):
        person = people.add(Node("person"))
        person.add(Node("name"))
        if rng.random() < 0.6:
            person.add(Node("emailaddress"))
        if rng.random() < 0.4:
            profile = person.add(Node("profile"))
            profile.add(Node("interest"))
            if rng.random() < 0.5:
                profile.add(Node("education"))
    auctions = site.add(Node("closed_auctions"))
    for _ in range(n_items // 2):
        auction = auctions.add(Node("closed_auction"))
        auction.add(Node("buyer"))
        auction.add(Node("itemref"))
        auction.add(Node("price"))
        if rng.random() < 0.5:
            annotation = auction.add(Node("annotation"))
            annotation.add(Node("description"))
    return Tree.build(site)


def dblp_like(n_pubs: int = 100, seed: int = 0) -> Tree:
    """A bibliography document: flat, wide, and regular."""
    rng = random.Random(seed)
    dblp = Node("dblp")
    for _ in range(n_pubs):
        kind = rng.choice(("article", "inproceedings", "book"))
        pub = dblp.add(Node(kind))
        for _ in range(rng.randint(1, 4)):
            pub.add(Node("author"))
        pub.add(Node("title"))
        pub.add(Node("year"))
        if kind == "article":
            pub.add(Node("journal"))
        elif kind == "inproceedings":
            pub.add(Node("booktitle"))
    return Tree.build(dblp)


def deep_tree(depth: int, mark_every: int = 1000, seed: int = 0) -> Tree:
    """The deep-tree load scenario: a single spine ``depth`` levels tall.

    The spine alternates ``section``/``div`` labels; every
    ``mark_every`` levels the spine node gets a ``mark`` leaf child and
    the deepest node a single ``target`` leaf — so label-selective
    queries (the planner's structural-join route) touch a small, fixed
    fraction of an arbitrarily deep document.  Everything is built
    iteratively; no recursion limit applies at any ``depth``.
    """
    rng = random.Random(seed)
    root = Node("doc")
    cursor = root
    for level in range(depth):
        spine = Node("section" if level % 2 == 0 else "div")
        cursor.add(spine)
        if mark_every and level % mark_every == 0 and rng.random() < 0.9:
            spine.add(Node("mark"))
        cursor = spine
    cursor.add(Node("target"))
    return Tree.build(root)


def wide_tree(n_siblings: int, hit_every: int = 1000, seed: int = 0) -> Tree:
    """The wide-tree load scenario: one collection with ``n_siblings``
    direct children.

    Children cycle through ``item``/``entry``/``record`` labels; every
    ``hit_every``-th child is labeled ``hit`` instead, keeping a sparse
    target partition for selective queries over an arbitrarily wide
    sibling list.
    """
    rng = random.Random(seed)
    cycle = ("item", "entry", "record")
    root = Node("collection")
    for i in range(n_siblings):
        if hit_every and i % hit_every == hit_every - 1:
            root.add(Node("hit"))
        else:
            root.add(Node(cycle[rng.randrange(3)]))
    return Tree.build(root)


def deep_sections(depth: int, width: int = 2, seed: int = 0) -> Tree:
    """A document-structure tree of nested sections — the deep workload
    for the streaming-memory experiment E15."""
    rng = random.Random(seed)
    book = Node("book")
    cursor = book
    for level in range(depth):
        section = Node("section")
        cursor.add(section)
        section.add(Node("title"))
        for _ in range(width - 1):
            para = section.add(Node("para"))
            if rng.random() < 0.2:
                para.add(Node("emph"))
        cursor = section
    cursor.add(Node("para"))
    return Tree.build(book)
