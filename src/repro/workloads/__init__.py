"""Workload generators: documents and queries for tests and benchmarks."""

from repro.workloads.documents import (
    xmark_like,
    dblp_like,
    deep_sections,
    deep_tree,
    wide_tree,
)
from repro.workloads.queries import (
    random_cq,
    random_twig,
    random_xpath,
    random_horn_program,
    hard_instance_mixed_axes,
)

__all__ = [
    "xmark_like",
    "dblp_like",
    "deep_sections",
    "deep_tree",
    "wide_tree",
    "random_cq",
    "random_twig",
    "random_xpath",
    "random_horn_program",
    "hard_instance_mixed_axes",
]
