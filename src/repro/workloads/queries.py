"""Random query generators for fuzzing and benchmark sweeps."""

from __future__ import annotations

import random
from typing import Sequence

from repro.cq.query import ConjunctiveQuery
from repro.datalog.syntax import Atom
from repro.hornsat.program import HornProgram
from repro.trees.axes import Axis
from repro.trees.structure import lab
from repro.twigjoin.pattern import TwigPattern, parse_twig

__all__ = [
    "random_cq",
    "random_twig",
    "random_xpath",
    "random_horn_program",
    "hard_instance_mixed_axes",
]

DEFAULT_AXES: tuple[str, ...] = (
    Axis.CHILD.value,
    Axis.CHILD_PLUS.value,
    Axis.CHILD_STAR.value,
    Axis.NEXT_SIBLING.value,
    Axis.NEXT_SIBLING_PLUS.value,
    Axis.NEXT_SIBLING_STAR.value,
    Axis.FOLLOWING.value,
)


def random_cq(
    n_vars: int,
    n_binary: int,
    axes: Sequence[str] = DEFAULT_AXES,
    labels: Sequence[str] = ("a", "b", "c", "d"),
    label_prob: float = 0.5,
    head_arity: int = 1,
    seed: int = 0,
    connected: bool = True,
) -> ConjunctiveQuery:
    """A random CQ over the given axis signature.

    With ``connected``, every new binary atom touches an already-used
    variable, so the query graph is connected (the common case in the
    paper's examples and required by some evaluators)."""
    rng = random.Random(seed)
    variables = [f"v{i}" for i in range(n_vars)]
    atoms: list[Atom] = []
    used = [variables[0]]
    remaining = variables[1:]
    for _ in range(n_binary):
        axis = rng.choice(list(axes))
        if connected and remaining:
            x = rng.choice(used)
            y = remaining.pop(rng.randrange(len(remaining)))
            used.append(y)
        else:
            x, y = rng.sample(variables, 2)
            for v in (x, y):
                if v not in used:
                    used.append(v)
                    if v in remaining:
                        remaining.remove(v)
        if rng.random() < 0.5:
            x, y = y, x
        atoms.append(Atom(axis, (x, y)))
    for v in used:
        if rng.random() < label_prob:
            atoms.append(Atom(lab(rng.choice(list(labels))), (v,)))
    head = tuple(used[:head_arity])
    occurring = {t for a in atoms for t in a.variables()}
    for v in head:
        if v not in occurring:
            atoms.append(Atom("Dom", (v,)))
            occurring.add(v)
    if not atoms:
        atoms.append(Atom("Dom", (variables[0],)))
    return ConjunctiveQuery(head, tuple(atoms)).canonicalized().validate()


def random_twig(
    n_nodes: int,
    labels: Sequence[str] = ("a", "b", "c", "d"),
    desc_prob: float = 0.5,
    seed: int = 0,
) -> TwigPattern:
    """A random twig pattern with / and // edges."""
    rng = random.Random(seed)

    def render(remaining: list[int]) -> str:
        label = rng.choice(list(labels))
        out = label
        while remaining and rng.random() < 0.6:
            remaining.pop()
            edge = "//" if rng.random() < desc_prob else "/"
            sub = render(remaining)
            if remaining and rng.random() < 0.4:
                out += f"[{'.' + edge if edge == '//' else ''}{sub if edge == '//' else sub}]"
            else:
                out += edge + sub
                break
        return out

    budget = list(range(n_nodes - 1))
    text = ("//" if rng.random() < desc_prob else "/") + render(budget)
    return parse_twig(text)


def random_xpath(
    n_steps: int,
    labels: Sequence[str] = ("a", "b", "c", "d"),
    axes: Sequence[str] = ("Child", "Child+", "Child*"),
    qualifier_prob: float = 0.4,
    negation_prob: float = 0.15,
    seed: int = 0,
) -> str:
    """A random Core XPath expression (returned as concrete syntax)."""
    rng = random.Random(seed)

    def step(depth: int) -> str:
        axis = rng.choice(list(axes))
        out = axis
        if rng.random() < 0.7:
            out += f"[lab() = {rng.choice(list(labels))}]"
        if depth > 0 and rng.random() < qualifier_prob:
            inner = path(rng.randint(1, 2), depth - 1)
            if rng.random() < negation_prob:
                out += f"[not({inner})]"
            else:
                out += f"[{inner}]"
        return out

    def path(steps: int, depth: int) -> str:
        return "/".join(step(depth) for _ in range(steps))

    return path(n_steps, 2)


def random_horn_program(
    n_atoms: int,
    n_clauses: int,
    max_body: int = 3,
    chain_fraction: float = 0.5,
    seed: int = 0,
) -> HornProgram:
    """A random definite Horn program with a mix of long derivation
    chains (where naive fixpoint iteration degenerates) and random
    clauses — the E3 workload."""
    rng = random.Random(seed)
    program = HornProgram()
    program.fact(0)
    n_chain = int(n_clauses * chain_fraction)
    # The chain a_i <- a_{i-1} is listed HIGH-to-LOW so that a naive
    # in-order scan derives only one chain atom per pass (the worst case
    # Minoux' queue avoids).
    for i in range(n_chain, 0, -1):
        program.rule(i % n_atoms, (i - 1) % n_atoms)
    for _ in range(n_clauses - n_chain):
        head = rng.randrange(n_atoms)
        body = [rng.randrange(n_atoms) for _ in range(rng.randint(1, max_body))]
        program.rule(head, *body)
    return program


def hard_instance_mixed_axes(k: int) -> ConjunctiveQuery:
    """A CQ family over the NP-complete signature {Child+, Following}
    (Theorem 6.8's intractable side): a chain alternating both axes with
    k variables, on which backtracking explodes while no X-property
    order exists."""
    atoms: list[Atom] = []
    for i in range(k - 1):
        axis = Axis.CHILD_PLUS.value if i % 2 == 0 else Axis.FOLLOWING.value
        atoms.append(Atom(axis, (f"v{i}", f"v{i+1}")))
    for i in range(k):
        atoms.append(Atom(lab("a" if i % 2 == 0 else "b"), (f"v{i}",)))
    return ConjunctiveQuery((), tuple(atoms)).validate()
