"""repro — efficient query processing on tree-structured data.

A faithful, executable reproduction of Christoph Koch, *Processing
Queries on Tree-Structured Data Efficiently*, PODS 2006.  See DESIGN.md
for the full system inventory and EXPERIMENTS.md for the reproduction of
every figure and table.

Subpackages
-----------
- :mod:`repro.trees` — unranked ordered labeled trees, axes, orders (§2)
- :mod:`repro.storage` — XASR encoding and structural joins (§2)
- :mod:`repro.hornsat` — Minoux' linear-time Horn-SAT (§3, Fig. 3)
- :mod:`repro.datalog` — monadic datalog over τ⁺, TMNF (§3)
- :mod:`repro.logic` — first-order formulas and naive model checking (§3)
- :mod:`repro.cq` — conjunctive queries, tree-width, Yannakakis (§4)
- :mod:`repro.rewrite` — CQ → acyclic rewriting, Table 1, forward XPath (§5)
- :mod:`repro.xpath` — Core XPath parser, semantics, evaluators (§3–4)
- :mod:`repro.consistency` — arc-consistency, X-property, dichotomy (§6)
- :mod:`repro.twigjoin` — PathStack / TwigStack holistic joins (§6)
- :mod:`repro.streaming` — streaming XPath with O(depth) memory (§5, §7)
- :mod:`repro.automata` — bottom-up tree automata (§4)
- :mod:`repro.complexity` — empirical scaling-law harness (§7)
- :mod:`repro.workloads` — tree and query generators
- :mod:`repro.engine` — unified Database facade, cached DocumentIndex,
  strategy planner (ties the sections together; see docs/ENGINE.md)
"""

__version__ = "1.0.0"

from repro.errors import (
    AllStrategiesFailedError,
    CorpusError,
    EvaluationError,
    InjectedFault,
    IntractableSignatureError,
    NotAcyclicError,
    ParseError,
    QueryError,
    ReproError,
    ResourceBudgetExceeded,
    StorageError,
    TransientError,
    UnsupportedAxisError,
)

from repro.engine import Database
from repro.faults import FaultPlan, FaultRule, faultpoint, registered_sites

__all__ = [
    "__version__",
    "Database",
    "FaultPlan",
    "FaultRule",
    "faultpoint",
    "registered_sites",
    "ReproError",
    "ParseError",
    "QueryError",
    "NotAcyclicError",
    "UnsupportedAxisError",
    "EvaluationError",
    "IntractableSignatureError",
    "ResourceBudgetExceeded",
    "StorageError",
    "CorpusError",
    "TransientError",
    "InjectedFault",
    "AllStrategiesFailedError",
]
