"""Conjunctive queries over tree signatures.

A conjunctive query is ``ans(x1..xk) :- A1, ..., Am`` with atoms over
unary predicates (labels, Root, Leaf, ...) and binary axis relations.
Boolean queries have an empty head.  Atoms reuse
:class:`repro.datalog.syntax.Atom`; constants (node ids) are allowed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.datalog.parser import parse_rule
from repro.datalog.syntax import Atom, INVERSE_SUFFIX, is_variable
from repro.errors import QueryError
from repro.trees.axes import Axis, inverse_axis, resolve_axis

__all__ = ["ConjunctiveQuery", "parse_cq", "atom_axis"]


def atom_axis(atom: Atom) -> Axis:
    """The axis named by a binary atom's predicate (folding ``^-1``)."""
    pred = atom.pred
    if pred.endswith(INVERSE_SUFFIX):
        return inverse_axis(resolve_axis(pred[: -len(INVERSE_SUFFIX)]))
    return resolve_axis(pred)


@dataclass(frozen=True)
class ConjunctiveQuery:
    """``ans(head) :- atoms``; hashable and immutable."""

    head: tuple[str, ...]
    atoms: tuple[Atom, ...]

    def __post_init__(self):
        if not isinstance(self.head, tuple):
            object.__setattr__(self, "head", tuple(self.head))
        if not isinstance(self.atoms, tuple):
            object.__setattr__(self, "atoms", tuple(self.atoms))

    # -- structure ----------------------------------------------------------

    def variables(self) -> list[str]:
        """All variables, in first-occurrence order."""
        seen: dict[str, None] = dict.fromkeys(self.head)
        for atom in self.atoms:
            for t in atom.args:
                if is_variable(t):
                    seen.setdefault(t, None)
        return list(seen)

    def unary_atoms(self) -> list[Atom]:
        return [a for a in self.atoms if a.arity == 1]

    def binary_atoms(self) -> list[Atom]:
        return [a for a in self.atoms if a.arity == 2]

    def is_boolean(self) -> bool:
        return not self.head

    def size(self) -> int:
        """|Q| — number of atoms."""
        return len(self.atoms)

    def signature(self) -> frozenset[Axis]:
        """The set of axes used by the binary atoms (Section 6 cares
        which signature a query class draws from)."""
        return frozenset(atom_axis(a) for a in self.binary_atoms())

    def adjacency(self) -> dict[str, set[str]]:
        """The query graph (Section 4): variables as vertices, an edge
        per binary atom over two distinct variables."""
        adj: dict[str, set[str]] = {v: set() for v in self.variables()}
        for atom in self.binary_atoms():
            s, t = atom.args
            if is_variable(s) and is_variable(t) and s != t:
                adj[s].add(t)
                adj[t].add(s)
        return adj

    def is_connected(self) -> bool:
        adj = self.adjacency()
        if not adj:
            return True
        start = next(iter(adj))
        seen = {start}
        frontier = [start]
        while frontier:
            v = frontier.pop()
            for w in adj[v]:
                if w not in seen:
                    seen.add(w)
                    frontier.append(w)
        return len(seen) == len(adj)

    def validate(self) -> "ConjunctiveQuery":
        body_vars: set[str] = set()
        for atom in self.atoms:
            if atom.arity not in (1, 2):
                raise QueryError(f"atom {atom} has arity {atom.arity}")
            if atom.arity == 2:
                atom_axis(atom)  # raises on unknown axis
            body_vars.update(atom.variables())
        for v in self.head:
            if v not in body_vars:
                raise QueryError(f"head variable {v} not in body")
        return self

    def canonicalized(self) -> "ConjunctiveQuery":
        """Canonical axis names; inverse axes are flipped to forward
        atoms (``Parent(x, y)`` becomes ``Child(y, x)``), which
        simplifies every downstream algorithm."""
        new_atoms = []
        for atom in self.atoms:
            if atom.arity != 2:
                new_atoms.append(atom)
                continue
            axis = atom_axis(atom)
            forward = {
                Axis.PARENT: Axis.CHILD,
                Axis.ANCESTOR: Axis.CHILD_PLUS,
                Axis.ANCESTOR_OR_SELF: Axis.CHILD_STAR,
                Axis.PREV_SIBLING: Axis.NEXT_SIBLING,
                Axis.PRECEDING_SIBLING: Axis.NEXT_SIBLING_PLUS,
                Axis.PREV_SIBLING_STAR: Axis.NEXT_SIBLING_STAR,
                Axis.PRECEDING: Axis.FOLLOWING,
                Axis.FIRST_CHILD_INV: Axis.FIRST_CHILD,
            }
            if axis in forward:
                new_atoms.append(
                    Atom(forward[axis].value, (atom.args[1], atom.args[0]))
                )
            else:
                new_atoms.append(Atom(axis.value, atom.args))
        return ConjunctiveQuery(self.head, tuple(new_atoms))

    def with_head(self, head: Iterable[str]) -> "ConjunctiveQuery":
        return ConjunctiveQuery(tuple(head), self.atoms)

    def __str__(self) -> str:
        head = f"ans({', '.join(self.head)})"
        return f"{head} :- " + ", ".join(map(str, self.atoms)) + "."

    def __iter__(self) -> Iterator[Atom]:
        return iter(self.atoms)


def parse_cq(text: str) -> ConjunctiveQuery:
    """Parse ``ans(x, y) :- Child(x, y), Lab:a(y).`` (head pred name is
    arbitrary; ``ans() :- ...`` or ``ans :- ...`` gives a Boolean query)."""
    text = text.strip().rstrip(".")
    if ":-" in text:
        head_text, _sep, _body = text.partition(":-")
        if "(" not in head_text:
            text = head_text.strip() + "()" + text[len(head_text):]
    rule = parse_rule(text)
    head = tuple(t for t in rule.head.args if is_variable(t))
    if len(head) != len(rule.head.args):
        raise QueryError("head arguments must be variables")
    return ConjunctiveQuery(head, rule.body).canonicalized().validate()
