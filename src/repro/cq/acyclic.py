"""Acyclicity of conjunctive queries: GYO reduction and join trees.

A CQ is (α-)acyclic iff the GYO reduction — repeatedly removing *ears*
(hyperedges whose private part is covered by another edge) — empties its
hypergraph.  Recording which edge absorbs each ear yields a *join tree*:
a tree over the atoms such that for every variable, the atoms containing
it form a connected subtree.  Yannakakis' algorithm runs over this tree.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cq.query import ConjunctiveQuery
from repro.datalog.syntax import Atom, is_variable
from repro.errors import NotAcyclicError

__all__ = ["is_acyclic", "gyo_reduction", "build_join_tree", "JoinTree"]


def _edge_vars(atom: Atom) -> frozenset[str]:
    return frozenset(t for t in atom.args if is_variable(t))


def gyo_reduction(
    query: ConjunctiveQuery,
) -> tuple[bool, list[tuple[int, int]]]:
    """Run the GYO reduction.

    Returns ``(acyclic, absorptions)`` where ``absorptions`` is a list of
    ``(ear_index, witness_index)`` pairs in removal order (the witness of
    the very last surviving edge is itself).
    """
    edges: dict[int, frozenset[str]] = {
        i: _edge_vars(a) for i, a in enumerate(query.atoms)
    }
    absorptions: list[tuple[int, int]] = []
    changed = True
    while changed and len(edges) > 1:
        changed = False
        for i in list(edges):
            if len(edges) == 1:
                break
            vars_i = edges[i]
            # variables of i occurring in some other edge
            shared = {
                v
                for v in vars_i
                if any(j != i and v in edges[j] for j in edges)
            }
            witness = None
            if not shared:
                # isolated edge: absorbed by an arbitrary survivor
                witness = next(j for j in edges if j != i)
            else:
                for j in edges:
                    if j != i and shared <= edges[j]:
                        witness = j
                        break
            if witness is not None:
                absorptions.append((i, witness))
                del edges[i]
                changed = True
    return len(edges) <= 1, absorptions


def is_acyclic(query: ConjunctiveQuery) -> bool:
    """Is the query α-acyclic?  (Conjunctive Core XPath queries always
    are — Proposition 4.2 builds on that.)"""
    acyclic, _ = gyo_reduction(query)
    return acyclic


@dataclass
class JoinTree:
    """A rooted join tree over atom indices of a query."""

    query: ConjunctiveQuery
    root: int
    children: dict[int, list[int]] = field(default_factory=dict)
    parent: dict[int, int] = field(default_factory=dict)

    def postorder(self) -> list[int]:
        """Atom indices, children before parents."""
        order: list[int] = []
        stack = [self.root]
        while stack:
            v = stack.pop()
            order.append(v)
            stack.extend(self.children.get(v, ()))
        order.reverse()
        return order

    def preorder(self) -> list[int]:
        order: list[int] = []
        stack = [self.root]
        while stack:
            v = stack.pop()
            order.append(v)
            stack.extend(self.children.get(v, ()))
        return order


def build_join_tree(
    query: ConjunctiveQuery, root_var: str | None = None
) -> JoinTree:
    """Build a join tree, rooted — when ``root_var`` is given — at an atom
    containing that variable (Section 4: "for unary queries, the join
    tree has to be oriented so the output is a subset of a column of the
    relation at the root").

    Raises :class:`NotAcyclicError` for cyclic queries.
    """
    if not query.atoms:
        raise NotAcyclicError("empty query has no join tree")
    acyclic, absorptions = gyo_reduction(query)
    if not acyclic:
        raise NotAcyclicError(f"query is cyclic: {query}")
    # undirected join tree from the absorption edges
    neighbours: dict[int, list[int]] = {i: [] for i in range(len(query.atoms))}
    for ear, witness in absorptions:
        neighbours[ear].append(witness)
        neighbours[witness].append(ear)
    # pick the root
    root = 0
    if root_var is not None:
        for i, atom in enumerate(query.atoms):
            if root_var in atom.variables():
                root = i
                break
        else:
            raise NotAcyclicError(
                f"no atom contains the requested root variable {root_var!r}"
            )
    tree = JoinTree(query, root)
    seen = {root}
    stack = [root]
    while stack:
        v = stack.pop()
        for w in neighbours[v]:
            if w not in seen:
                seen.add(w)
                tree.parent[w] = v
                tree.children.setdefault(v, []).append(w)
                stack.append(w)
    if len(seen) != len(query.atoms):  # pragma: no cover - gyo guarantees this
        raise NotAcyclicError("join tree does not span all atoms")
    return tree
