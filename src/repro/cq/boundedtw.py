"""Bounded-tree-width CQ evaluation — Theorem 4.1 [Chekuri & Rajaraman].

Given a tree decomposition of the query graph of width k:

1. assign each atom to a bag containing all its variables,
2. for every bag, materialize the *bag relation*: all assignments of the
   bag's variables satisfying the atoms assigned to it — at most
   |A|^{k+1} rows, enumerated with pruning,
3. the bags, joined on their shared variables along the decomposition
   tree, form an acyclic query: finish with Yannakakis' full reducer and
   eager-projection joins.

Total: O((|A|^{k+1} + ||A||) · |Q|) — the bound Theorem 4.1 states, and
the route by which FO^{k+1} queries (tree-width ≤ k, [54]) are tractable.
"""

from __future__ import annotations

import networkx as nx

from repro.cq.query import ConjunctiveQuery, atom_axis
from repro.cq.treewidth import query_graph, tree_decomposition
from repro.cq.yannakakis import _Relation, materialize_atom
from repro.datalog.syntax import Atom, is_variable
from repro.errors import EvaluationError, QueryError
from repro.trees.structure import TreeStructure
from repro.trees.tree import Tree

__all__ = ["evaluate_bounded_treewidth"]


def _bag_relation(
    bag: tuple[str, ...],
    atoms: list[Atom],
    structure: TreeStructure,
) -> _Relation:
    """All assignments of ``bag`` satisfying ``atoms`` (depth-first with
    pruning; at most |A|^{|bag|} assignments are visited)."""
    rows: list[tuple[int, ...]] = []
    domain = list(structure.domain)

    # atoms checkable once their variables are all bound
    var_pos = {v: i for i, v in enumerate(bag)}

    def atom_ready(atom: Atom, bound: int) -> bool:
        return all(
            not is_variable(t) or var_pos[t] < bound for t in atom.args
        )

    checks_at: list[list[Atom]] = [[] for _ in range(len(bag) + 1)]
    for atom in atoms:
        level = 0
        for t in atom.args:
            if is_variable(t):
                level = max(level, var_pos[t] + 1)
        checks_at[level].append(atom)

    def satisfied(atom: Atom, assignment: list[int]) -> bool:
        def val(t):
            return assignment[var_pos[t]] if is_variable(t) else t

        if atom.arity == 1:
            return structure.holds_unary(atom.pred, val(atom.args[0]))
        axis = atom_axis(atom).value
        return structure.holds_binary(axis, val(atom.args[0]), val(atom.args[1]))

    assignment: list[int] = [0] * len(bag)

    def descend(level: int) -> None:
        if level == len(bag):
            rows.append(tuple(assignment))
            return
        for v in domain:
            assignment[level] = v
            if all(satisfied(a, assignment) for a in checks_at[level + 1]):
                descend(level + 1)

    # constant-only atoms gate the whole bag
    if all(satisfied(a, assignment) for a in checks_at[0]):
        descend(0)
    return _Relation(tuple(bag), rows)


def evaluate_bounded_treewidth(
    query: ConjunctiveQuery,
    tree: Tree,
    structure: TreeStructure | None = None,
    decomposition: "nx.Graph | None" = None,
) -> set[tuple[int, ...]]:
    """Evaluate any CQ via a tree decomposition of its query graph
    (Theorem 4.1).  Returns the set of head tuples (``{()}``/``set()``
    for Boolean queries)."""
    query = query.canonicalized().validate()
    structure = structure or TreeStructure(tree)
    if decomposition is None:
        _width, decomposition = tree_decomposition(query)
    bags = list(decomposition.nodes)
    if not bags:
        raise EvaluationError("empty tree decomposition")
    # head variables must live somewhere; add them to a bag if the query
    # graph misses them (e.g. variable occurring only in unary atoms)
    all_bag_vars = set().union(*bags)
    loose = [v for v in query.variables() if v not in all_bag_vars]
    if loose:
        enriched = frozenset(bags[0] | set(loose))
        decomposition = nx.relabel_nodes(decomposition, {bags[0]: enriched})
        bags = list(decomposition.nodes)

    # assign each atom to one covering bag
    assigned: dict[frozenset, list[Atom]] = {bag: [] for bag in bags}
    for atom in query.atoms:
        vs = set(atom.variables())
        for bag in bags:
            if vs <= bag:
                assigned[bag].append(atom)
                break
        else:
            raise QueryError(
                f"decomposition does not cover atom {atom} (invalid input)"
            )

    relations = {
        bag: _bag_relation(tuple(sorted(bag)), atoms, structure)
        for bag, atoms in assigned.items()
    }
    if any(not rel.rows for rel in relations.values()):
        return set()

    # Yannakakis over the (acyclic by construction) bag join tree.
    root = bags[0]
    order: list[frozenset] = []
    parent: dict[frozenset, frozenset] = {}
    stack = [root]
    seen = {root}
    while stack:
        bag = stack.pop()
        order.append(bag)
        for nb in decomposition.neighbors(bag):
            if nb not in seen:
                seen.add(nb)
                parent[nb] = bag
                stack.append(nb)
    # bottom-up semijoins
    for bag in reversed(order):
        if bag in parent:
            relations[parent[bag]] = relations[parent[bag]].semijoin(
                relations[bag]
            )
            if not relations[parent[bag]].rows:
                return set()
    if query.is_boolean():
        return {()}
    # top-down semijoins, then eager-projection joins toward the root
    for bag in order:
        if bag in parent:
            relations[bag] = relations[bag].semijoin(relations[parent[bag]])
    head = set(query.head)
    acc = {bag: relations[bag] for bag in order}
    for bag in reversed(order):
        if bag in parent:
            p = parent[bag]
            keep = head | set(acc[p].schema)
            acc[p] = acc[p].join_project(acc[bag], keep=keep)
    result = acc[root]
    idx = [result.schema.index(v) for v in query.head]
    return {tuple(r[i] for i in idx) for r in result.rows}
