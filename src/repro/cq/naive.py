"""Naive backtracking evaluation of conjunctive queries.

The exponential baseline: depth-first search over variable assignments,
one atom at a time, choosing the most-bound atom next.  Works for *any*
CQ (cyclic ones included) over any signature — this is the algorithm
whose worst case the tractability results of Sections 4–6 beat, and the
exact solver used on the NP-complete side of the Dichotomy Theorem 6.8.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cq.query import ConjunctiveQuery, atom_axis
from repro.datalog.syntax import Atom, is_variable
from repro.errors import EvaluationError
from repro.trees.structure import TreeStructure
from repro.trees.tree import Tree

__all__ = ["evaluate_backtracking", "BacktrackStats"]


@dataclass
class BacktrackStats:
    """Search-effort counters for the scaling benchmarks."""

    nodes_expanded: int = 0
    solutions: int = 0


def evaluate_backtracking(
    query: ConjunctiveQuery,
    tree: Tree,
    structure: TreeStructure | None = None,
    max_steps: int | None = None,
    stats: BacktrackStats | None = None,
    first_only: bool = False,
) -> set[tuple[int, ...]]:
    """All head tuples, by backtracking search.

    ``max_steps`` bounds the number of expanded search nodes; exceeding
    it raises :class:`EvaluationError` (used to cap the NP-hard side of
    benchmark runs).  ``first_only`` stops at the first solution (the
    Boolean-query mode).
    """
    query = query.canonicalized().validate()
    structure = structure or TreeStructure(tree)
    stats = stats if stats is not None else BacktrackStats()
    results: set[tuple[int, ...]] = set()
    atoms = list(query.atoms)
    head = query.head

    def value(binding: dict[str, int], t):
        return binding.get(t) if is_variable(t) else t

    def boundness(atom: Atom, binding: dict[str, int]) -> int:
        return sum(1 for t in atom.args if value(binding, t) is not None)

    class _Done(Exception):
        pass

    def extend(binding: dict[str, int], remaining: list[Atom]) -> None:
        stats.nodes_expanded += 1
        if max_steps is not None and stats.nodes_expanded > max_steps:
            raise EvaluationError(
                f"backtracking exceeded {max_steps} steps on {query}"
            )
        if not remaining:
            # free head variables not occurring in any atom are impossible
            # (validate() rejects them), so the binding is total on head
            results.add(tuple(binding[v] for v in head))
            stats.solutions += 1
            if first_only:
                raise _Done
            return
        remaining = sorted(
            remaining, key=lambda a: -boundness(a, binding)
        )
        atom, rest = remaining[0], remaining[1:]
        if atom.arity == 1:
            t = atom.args[0]
            v = value(binding, t)
            if v is not None:
                if structure.holds_unary(atom.pred, v):
                    extend(binding, rest)
            else:
                for v in structure.unary_members(atom.pred):
                    extend({**binding, t: v}, rest)
            return
        axis = atom_axis(atom).value
        s, t = atom.args
        sv, tv = value(binding, s), value(binding, t)
        if sv is not None and tv is not None:
            if structure.holds_binary(axis, sv, tv):
                extend(binding, rest)
        elif sv is not None:
            for w in structure.successors(axis, sv):
                if s == t and w != sv:
                    continue
                extend({**binding, t: w}, rest)
        elif tv is not None:
            for u in structure.predecessors(axis, tv):
                if s == t and u != tv:
                    continue
                extend({**binding, s: u}, rest)
        else:
            if s == t:
                for u in structure.domain:
                    if structure.holds_binary(axis, u, u):
                        extend({**binding, s: u}, rest)
            else:
                for u in structure.domain:
                    for w in structure.successors(axis, u):
                        extend({**binding, s: u, t: w}, rest)

    try:
        extend({}, atoms)
    except _Done:
        pass
    return results
