"""Containment of conjunctive queries over trees.

Background (§3 "containment" definition; [35] studies the problem for
trees): for *relational* CQs, Q ⊆ Q' iff there is a homomorphism from
Q' to Q (Chandra–Merlin).  Over trees the homomorphism criterion is
only *sufficient* — tree structures satisfy extra axioms (every node
has one parent, Child ⊆ Child+, ...), so containment can hold without a
homomorphism.

This module provides:

- :func:`homomorphism` / :func:`contained_by_homomorphism` — the sound
  Chandra–Merlin test, with axis *weakening* built in (an atom
  Child(x,y) of Q may map onto Child+(h x, h y)... more precisely the
  image atom may be any axis that *implies* the pattern's axis),
- :func:`refute_containment` — a complete refutation search over all
  small trees up to a node bound (containment over trees is decidable;
  for the fragments in this library counterexamples are small in
  practice, so the pair gives a practical decision procedure whose
  "unknown" band is explicit),
- :func:`decide_containment_sampled` — the combined check used by tests.
"""

from __future__ import annotations

from itertools import product

from repro.cq.query import ConjunctiveQuery, atom_axis
from repro.cq.naive import evaluate_backtracking
from repro.datalog.syntax import is_variable
from repro.trees.axes import Axis
from repro.trees.tree import Tree

__all__ = [
    "homomorphism",
    "contained_by_homomorphism",
    "refute_containment",
    "decide_containment_sampled",
]

#: IMPLIES[a] = the axes b such that b(u, v) implies a(u, v) on every tree.
IMPLIES: dict[Axis, frozenset[Axis]] = {
    Axis.CHILD: frozenset({Axis.CHILD, Axis.FIRST_CHILD}),
    Axis.CHILD_PLUS: frozenset({Axis.CHILD_PLUS, Axis.CHILD, Axis.FIRST_CHILD}),
    Axis.CHILD_STAR: frozenset(
        {Axis.CHILD_STAR, Axis.CHILD_PLUS, Axis.CHILD, Axis.FIRST_CHILD, Axis.SELF}
    ),
    Axis.NEXT_SIBLING: frozenset({Axis.NEXT_SIBLING}),
    Axis.NEXT_SIBLING_PLUS: frozenset(
        {Axis.NEXT_SIBLING_PLUS, Axis.NEXT_SIBLING}
    ),
    Axis.NEXT_SIBLING_STAR: frozenset(
        {Axis.NEXT_SIBLING_STAR, Axis.NEXT_SIBLING_PLUS, Axis.NEXT_SIBLING, Axis.SELF}
    ),
    Axis.FOLLOWING: frozenset({Axis.FOLLOWING}),
    Axis.SELF: frozenset({Axis.SELF}),
    Axis.FIRST_CHILD: frozenset({Axis.FIRST_CHILD}),
}


def homomorphism(
    pattern: ConjunctiveQuery, target: ConjunctiveQuery
) -> "dict[str, str] | None":
    """A mapping h from pattern variables to target terms such that every
    pattern atom is *implied* by some target atom (same unary predicates;
    binary atoms may strengthen per :data:`IMPLIES`), and the heads
    correspond positionally.  Returns the mapping or None."""
    pattern = pattern.canonicalized()
    target = target.canonicalized()
    if len(pattern.head) != len(target.head):
        return None
    variables = pattern.variables()
    target_terms = list(dict.fromkeys(
        t for atom in target.atoms for t in atom.args
    ))
    target_unary: dict[str, set[str]] = {}
    for atom in target.unary_atoms():
        target_unary.setdefault(atom.args[0], set()).add(atom.pred)
    target_binary: dict[tuple, set[Axis]] = {}
    for atom in target.binary_atoms():
        target_binary.setdefault(tuple(atom.args), set()).add(atom_axis(atom))

    fixed = dict(zip(pattern.head, target.head))

    def consistent(h: dict) -> bool:
        for atom in pattern.unary_atoms():
            v = h.get(atom.args[0])
            if v is None:
                continue
            if atom.pred not in target_unary.get(v, set()):
                return False
        for atom in pattern.binary_atoms():
            s, t = atom.args
            hs = h.get(s, s if not is_variable(s) else None)
            ht = h.get(t, t if not is_variable(t) else None)
            if hs is None or ht is None:
                continue
            axes_there = target_binary.get((hs, ht), set())
            want = IMPLIES[atom_axis(atom)]
            if not (axes_there & want):
                return False
        return True

    free = [v for v in variables if v not in fixed]

    def search(i: int, h: dict) -> "dict | None":
        if not consistent(h):
            return None
        if i == len(free):
            return dict(h)
        v = free[i]
        for term in target_terms:
            h[v] = term
            result = search(i + 1, h)
            if result is not None:
                return result
            del h[v]
        return None

    return search(0, dict(fixed))


def contained_by_homomorphism(
    q1: ConjunctiveQuery, q2: ConjunctiveQuery
) -> bool:
    """Sound test for Q1 ⊆ Q2: a homomorphism from Q2 *into* Q1.

    (Sound over trees because the axis-weakening table only uses
    implications valid on every tree; not complete — see module docs.)
    """
    return homomorphism(q2, q1) is not None


def refute_containment(
    q1: ConjunctiveQuery,
    q2: ConjunctiveQuery,
    max_nodes: int = 4,
    alphabet: tuple[str, ...] = ("a", "b"),
) -> "Tree | None":
    """Search all labeled ordered trees with ≤ max_nodes nodes for a
    counterexample to Q1 ⊆ Q2; returns one or None."""
    for tree in _all_labeled_trees(max_nodes, alphabet):
        r1 = evaluate_backtracking(q1, tree)
        if not r1:
            continue
        r2 = evaluate_backtracking(q2, tree)
        if not r1 <= r2:
            return tree
    return None


def decide_containment_sampled(
    q1: ConjunctiveQuery,
    q2: ConjunctiveQuery,
    max_nodes: int = 4,
) -> "tuple[bool, str]":
    """(verdict, evidence): True with "homomorphism" when the sound test
    fires; False with "counterexample" when refuted on small trees;
    otherwise (True, "no-small-counterexample") — a bounded verdict."""
    if contained_by_homomorphism(q1, q2):
        return True, "homomorphism"
    if refute_containment(q1, q2, max_nodes=max_nodes) is not None:
        return False, "counterexample"
    return True, "no-small-counterexample"


def _all_labeled_trees(max_nodes: int, alphabet: tuple[str, ...]):
    """Every ordered tree shape with ≤ max_nodes nodes, under every
    labeling over the alphabet (exponential; keep max_nodes tiny)."""

    def shapes(n: int):
        if n == 1:
            yield ("?", [])
            return
        for split in _compositions(n - 1):
            for forest in _forests(split):
                yield ("?", forest)

    def _compositions(n: int):
        if n == 0:
            yield []
            return
        for first in range(1, n + 1):
            for rest in _compositions(n - first):
                yield [first] + rest

    def _forests(sizes):
        if not sizes:
            yield []
            return
        for head in shapes(sizes[0]):
            for tail in _forests(sizes[1:]):
                yield [head] + tail

    def relabel(shape, labels, counter):
        label = labels[next(counter)]
        return (label, [relabel(c, labels, counter) for c in shape[1]])

    import itertools

    for n in range(1, max_nodes + 1):
        for shape in shapes(n):
            for labeling in product(alphabet, repeat=n):
                counter = itertools.count()
                yield Tree.from_tuple(relabel(shape, labeling, counter))
