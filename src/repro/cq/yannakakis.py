"""Yannakakis' algorithm for acyclic conjunctive queries [77] (§4).

Three phases over a join tree:

1. *materialize* the relation of each atom from the tree structure,
2. *full reducer*: semijoin children into parents bottom-up, then
   parents into children top-down — afterwards every remaining tuple
   participates in at least one answer,
3. *join with eager projection*: joining bottom-up while projecting away
   all columns not needed above keeps every intermediate result within
   O(||input|| + ||output||), which is where the O(||A|| · |Q|) bound for
   Boolean and unary queries (Proposition 4.2) comes from.
"""

from __future__ import annotations

from repro.cq.acyclic import JoinTree, build_join_tree
from repro.cq.query import ConjunctiveQuery, atom_axis
from repro.datalog.syntax import Atom, is_variable
from repro.errors import EvaluationError
from repro.trees.structure import TreeStructure
from repro.trees.tree import Tree

__all__ = [
    "materialize_atom",
    "yannakakis",
    "yannakakis_boolean",
    "yannakakis_unary",
]


def materialize_atom(
    atom: Atom, structure: TreeStructure
) -> tuple[tuple[str, ...], list[tuple[int, ...]]]:
    """The relation of one atom: (variable schema, rows).

    Constants are filtered out of the schema; a repeated variable
    (``R(x, x)``) produces a unary relation of the diagonal.
    """
    if atom.arity == 1:
        t = atom.args[0]
        if is_variable(t):
            return (t,), [(v,) for v in structure.unary_members(atom.pred)]
        ok = structure.holds_unary(atom.pred, t)
        return (), [()] if ok else []
    axis = atom_axis(atom)
    s, t = atom.args
    if is_variable(s) and is_variable(t):
        if s == t:
            rows = [
                (u,)
                for u in structure.domain
                if structure.holds_binary(axis.value, u, u)
            ]
            return (s,), rows
        pairs = [
            (u, v)
            for u in structure.domain
            for v in structure.successors(axis.value, u)
        ]
        return (s, t), pairs
    if is_variable(t):  # R(c, y)
        return (t,), [(v,) for v in structure.successors(axis.value, s)]
    if is_variable(s):  # R(x, c)
        return (s,), [(u,) for u in structure.predecessors(axis.value, t)]
    ok = structure.holds_binary(axis.value, s, t)
    return (), [()] if ok else []


class _Relation:
    """A variable-schema relation with semijoin/join/project primitives."""

    __slots__ = ("schema", "rows")

    def __init__(self, schema: tuple[str, ...], rows: list[tuple[int, ...]]):
        self.schema = schema
        self.rows = rows

    def key_index(self, shared: tuple[str, ...]) -> list[int]:
        return [self.schema.index(v) for v in shared]

    def semijoin(self, other: "_Relation") -> "_Relation":
        """Keep rows of self that join with some row of other."""
        shared = tuple(v for v in self.schema if v in other.schema)
        if not shared:
            return self if other.rows else _Relation(self.schema, [])
        mine = self.key_index(shared)
        theirs = other.key_index(shared)
        keys = {tuple(r[i] for i in theirs) for r in other.rows}
        rows = [r for r in self.rows if tuple(r[i] for i in mine) in keys]
        return _Relation(self.schema, rows)

    def join_project(
        self, other: "_Relation", keep: set[str]
    ) -> "_Relation":
        """Hash join followed by projection onto ``keep`` (dedup)."""
        shared = tuple(v for v in self.schema if v in other.schema)
        out_schema = tuple(
            v for v in self.schema + other.schema
            if v in keep
        )
        # deduplicate schema preserving order
        seen_vars: dict[str, None] = {}
        out_schema = tuple(
            seen_vars.setdefault(v, None) or v
            for v in out_schema
            if v not in seen_vars
        )
        mine = self.key_index(shared)
        theirs = other.key_index(shared)
        buckets: dict[tuple, list[tuple]] = {}
        for r in other.rows:
            buckets.setdefault(tuple(r[i] for i in theirs), []).append(r)
        self_pos = {v: i for i, v in enumerate(self.schema)}
        other_pos = {v: i for i, v in enumerate(other.schema)}
        out_rows: set[tuple[int, ...]] = set()
        for lrow in self.rows:
            key = tuple(lrow[i] for i in mine)
            for rrow in buckets.get(key, ()):
                out_rows.add(
                    tuple(
                        lrow[self_pos[v]] if v in self_pos else rrow[other_pos[v]]
                        for v in out_schema
                    )
                )
        return _Relation(out_schema, list(out_rows))

    def project(self, keep: list[str]) -> "_Relation":
        idx = [self.schema.index(v) for v in keep]
        rows = list({tuple(r[i] for i in idx) for r in self.rows})
        return _Relation(tuple(keep), rows)


def _full_reduce(
    tree: JoinTree, relations: list[_Relation]
) -> list[_Relation]:
    """Phases 1–2: the full reducer (both semijoin sweeps)."""
    order = tree.postorder()
    for i in order:  # bottom-up: parent ⋉ child
        parent = tree.parent.get(i)
        if parent is not None:
            relations[parent] = relations[parent].semijoin(relations[i])
    for i in reversed(order):  # top-down: child ⋉ parent
        parent = tree.parent.get(i)
        if parent is not None:
            relations[i] = relations[i].semijoin(relations[parent])
    return relations


def _needed_above(tree: JoinTree, query: ConjunctiveQuery) -> dict[int, set[str]]:
    """For each atom, the variables that its subtree must export: head
    variables plus variables shared with atoms outside the subtree."""
    atom_vars = [set(a.variables()) for a in query.atoms]
    subtree_vars: dict[int, set[str]] = {}
    for i in tree.postorder():
        vs = set(atom_vars[i])
        for c in tree.children.get(i, ()):
            vs |= subtree_vars[c]
        subtree_vars[i] = vs
    head = set(query.head)
    needed: dict[int, set[str]] = {}
    all_indices = set(range(len(query.atoms)))
    for i in all_indices:
        inside = {j for j in tree.postorder() if _in_subtree(tree, i, j)}
        outside_vars: set[str] = set()
        for j in all_indices - inside:
            outside_vars |= atom_vars[j]
        needed[i] = (subtree_vars[i] & outside_vars) | (head & subtree_vars[i])
    return needed


def _in_subtree(tree: JoinTree, root: int, node: int) -> bool:
    while node != root and node in tree.parent:
        node = tree.parent[node]
    return node == root


def yannakakis(
    query: ConjunctiveQuery,
    tree: Tree,
    structure: TreeStructure | None = None,
) -> set[tuple[int, ...]]:
    """Evaluate an acyclic CQ of any arity.  Boolean queries return
    ``{()}`` (true) or ``set()`` (false)."""
    query = query.canonicalized().validate()
    structure = structure or TreeStructure(tree)
    root_var = query.head[0] if len(query.head) == 1 else None
    jtree = build_join_tree(query, root_var=root_var)
    relations = [
        _Relation(*materialize_atom(atom, structure)) for atom in query.atoms
    ]
    if any(not r.rows for r in relations):
        return set()
    relations = _full_reduce(jtree, relations)
    if any(not r.rows for r in relations):
        return set()
    if query.is_boolean():
        return {()}
    needed = _needed_above(jtree, query)
    # join bottom-up with eager projection
    acc: dict[int, _Relation] = {}
    for i in jtree.postorder():
        rel = relations[i]
        for c in jtree.children.get(i, ()):
            rel = rel.join_project(
                acc[c], keep=needed[i] | set(rel.schema) | set(query.head)
            )
        keep = [v for v in rel.schema if v in needed[i]]
        acc[i] = rel.project(keep) if set(keep) != set(rel.schema) else rel
    result = acc[jtree.root]
    missing = [v for v in query.head if v not in result.schema]
    if missing:
        raise EvaluationError(
            f"head variables {missing} lost during join (internal error)"
        )
    idx = [result.schema.index(v) for v in query.head]
    return {tuple(r[i] for i in idx) for r in result.rows}


def yannakakis_boolean(
    query: ConjunctiveQuery, tree: Tree, structure: TreeStructure | None = None
) -> bool:
    """Boolean acyclic CQ in O(||A|| · |Q|): only the bottom-up semijoin
    sweep is needed."""
    query = query.with_head(()).canonicalized().validate()
    structure = structure or TreeStructure(tree)
    jtree = build_join_tree(query)
    relations = [
        _Relation(*materialize_atom(atom, structure)) for atom in query.atoms
    ]
    if any(not r.rows for r in relations):
        return False
    for i in jtree.postorder():
        parent = jtree.parent.get(i)
        if parent is not None:
            relations[parent] = relations[parent].semijoin(relations[i])
            if not relations[parent].rows:
                return False
    return bool(relations[jtree.root].rows)


def yannakakis_unary(
    query: ConjunctiveQuery,
    tree: Tree,
    structure: TreeStructure | None = None,
) -> set[int]:
    """Unary acyclic CQ in O(||A|| · |Q|) (Proposition 4.2): root the join
    tree at an atom containing the output variable and run the full
    reducer; the answer is a column of the reduced root relation."""
    if len(query.head) != 1:
        raise EvaluationError("yannakakis_unary needs exactly one head variable")
    query = query.canonicalized().validate()
    structure = structure or TreeStructure(tree)
    out_var = query.head[0]
    jtree = build_join_tree(query, root_var=out_var)
    relations = [
        _Relation(*materialize_atom(atom, structure)) for atom in query.atoms
    ]
    if any(not r.rows for r in relations):
        return set()
    relations = _full_reduce(jtree, relations)
    root_rel = relations[jtree.root]
    if any(not r.rows for r in relations):
        return set()
    col = root_rel.schema.index(out_var)
    return {r[col] for r in root_rel.rows}
