"""Tree-width of queries and tree decompositions (Section 4, Figure 4).

The tree-width of a CQ is the tree-width of its query graph.  We compute
it exactly for small graphs with the elimination-order subset DP, and
fall back to the min-fill-in heuristic (an upper bound) beyond that.
Decompositions come out as a tree over bags (frozensets of variables);
:func:`is_valid_decomposition` checks the three defining conditions,
which is how the test suite certifies e.g. that (Child, NextSibling)-
trees have tree-width two (Figure 4).
"""

from __future__ import annotations

from itertools import combinations

import networkx as nx

from repro.cq.query import ConjunctiveQuery
from repro.trees.tree import Tree

__all__ = [
    "query_graph",
    "query_treewidth",
    "tree_decomposition",
    "is_valid_decomposition",
    "treewidth_exact",
    "tree_structure_graph",
]

_EXACT_LIMIT = 13


def query_graph(query: ConjunctiveQuery) -> nx.Graph:
    """The query graph: variables as vertices, one edge per binary atom
    over two distinct variables (Section 4)."""
    graph = nx.Graph()
    graph.add_nodes_from(query.variables())
    for v, ws in query.adjacency().items():
        for w in ws:
            graph.add_edge(v, w)
    return graph


def tree_structure_graph(tree: Tree) -> nx.Graph:
    """The Gaifman graph of the (Child, NextSibling)-structure of a tree
    — the graph Figure 4 shows has tree-width two."""
    graph = nx.Graph()
    graph.add_nodes_from(tree.nodes())
    graph.add_edges_from(tree.child_pairs())
    graph.add_edges_from(tree.next_sibling_pairs())
    return graph


def treewidth_exact(graph: nx.Graph) -> int:
    """Exact tree-width via the elimination-order subset DP,
    O(2^n · n · m); restricted to ≤ 13 vertices."""
    nodes = list(graph.nodes)
    n = len(nodes)
    if n == 0:
        return 0
    if n > _EXACT_LIMIT:
        raise ValueError(f"exact tree-width limited to {_EXACT_LIMIT} vertices")
    index = {v: i for i, v in enumerate(nodes)}
    adj = [0] * n
    for u, v in graph.edges:
        adj[index[u]] |= 1 << index[v]
        adj[index[v]] |= 1 << index[u]

    full = (1 << n) - 1

    def q_value(eliminated: int, v: int) -> int:
        """Number of vertices outside ``eliminated`` (and != v) reachable
        from v along paths whose interior lies inside ``eliminated``."""
        seen = 1 << v
        stack = [v]
        reach = 0
        while stack:
            u = stack.pop()
            nbrs = adj[u] & ~seen
            seen |= nbrs
            reach |= nbrs & ~eliminated
            inside = nbrs & eliminated
            while inside:
                low = inside & -inside
                stack.append(low.bit_length() - 1)
                inside ^= low
        return (reach & ~(1 << v)).bit_count()

    best = {0: -1}
    for _size in range(n):
        nxt_best: dict[int, int] = {}
        for eliminated, width in best.items():
            rest = full & ~eliminated
            while rest:
                low = rest & -rest
                v = low.bit_length() - 1
                rest ^= low
                new_set = eliminated | low
                cost = max(width, q_value(eliminated, v))
                old = nxt_best.get(new_set)
                if old is None or cost < old:
                    nxt_best[new_set] = cost
        best = nxt_best
    return best[full]


def query_treewidth(query: ConjunctiveQuery, exact: bool | None = None) -> int:
    """Tree-width of a query's graph.

    ``exact=None`` (default) uses the exact DP when the query is small
    enough and the heuristic upper bound otherwise.
    """
    graph = query_graph(query)
    return graph_treewidth(graph, exact=exact)


def graph_treewidth(graph: nx.Graph, exact: bool | None = None) -> int:
    if graph.number_of_nodes() == 0:
        return 0
    use_exact = exact if exact is not None else (
        graph.number_of_nodes() <= _EXACT_LIMIT
    )
    if use_exact:
        return treewidth_exact(graph)
    width, _tree = nx.algorithms.approximation.treewidth_min_fill_in(graph)
    return width


def tree_decomposition(
    graph_or_query: "nx.Graph | ConjunctiveQuery",
) -> tuple[int, nx.Graph]:
    """A tree decomposition ``(width, tree-of-bags)`` (min-fill-in
    heuristic; bags are frozensets of vertices)."""
    graph = (
        query_graph(graph_or_query)
        if isinstance(graph_or_query, ConjunctiveQuery)
        else graph_or_query
    )
    if graph.number_of_nodes() == 0:
        tree = nx.Graph()
        tree.add_node(frozenset())
        return 0, tree
    width, tree = nx.algorithms.approximation.treewidth_min_fill_in(graph)
    return width, tree


def is_valid_decomposition(graph: nx.Graph, decomposition: nx.Graph) -> bool:
    """Check the three conditions of the definition in Section 4:
    every vertex is covered, every edge is covered, and each vertex's
    bags induce a connected subtree."""
    bags = list(decomposition.nodes)
    covered = set().union(*bags) if bags else set()
    if set(graph.nodes) - covered:
        return False
    for u, v in graph.edges:
        if not any(u in bag and v in bag for bag in bags):
            return False
    for v in graph.nodes:
        holding = [bag for bag in bags if v in bag]
        sub = decomposition.subgraph(holding)
        if holding and not nx.is_connected(sub):
            return False
    return True
