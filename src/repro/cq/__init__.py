"""Conjunctive queries over trees (Section 4 of the paper).

- :class:`~repro.cq.query.ConjunctiveQuery` — k-ary CQs over unary label
  predicates and binary axis relations,
- :mod:`~repro.cq.acyclic` — GYO reduction, acyclicity test, join trees,
- :mod:`~repro.cq.yannakakis` — Yannakakis' algorithm [77]: full reducer
  plus eager-projection joins, O(||A|| · |Q|) for Boolean/unary queries,
- :mod:`~repro.cq.treewidth` — query tree-width (exact for small queries,
  min-fill heuristic beyond) and tree decompositions,
- :mod:`~repro.cq.boundedtw` — the bounded-tree-width evaluation of
  Theorem 4.1: O((|A|^{k+1} + ||A||) · |Q|),
- :mod:`~repro.cq.naive` — exponential backtracking baseline.
"""

from repro.cq.query import ConjunctiveQuery, parse_cq
from repro.cq.acyclic import is_acyclic, gyo_reduction, build_join_tree, JoinTree
from repro.cq.yannakakis import yannakakis, yannakakis_boolean, yannakakis_unary
from repro.cq.treewidth import query_treewidth, tree_decomposition, is_valid_decomposition
from repro.cq.boundedtw import evaluate_bounded_treewidth
from repro.cq.naive import evaluate_backtracking
from repro.cq.containment import (
    contained_by_homomorphism,
    decide_containment_sampled,
    homomorphism,
    refute_containment,
)

__all__ = [
    "ConjunctiveQuery",
    "parse_cq",
    "is_acyclic",
    "gyo_reduction",
    "build_join_tree",
    "JoinTree",
    "yannakakis",
    "yannakakis_boolean",
    "yannakakis_unary",
    "query_treewidth",
    "tree_decomposition",
    "is_valid_decomposition",
    "evaluate_bounded_treewidth",
    "evaluate_backtracking",
    "contained_by_homomorphism",
    "decide_containment_sampled",
    "homomorphism",
    "refute_containment",
]
