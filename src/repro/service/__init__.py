"""The query service: the :class:`~repro.engine.database.Database`
facade served over HTTP (docs/SERVICE.md).

Three layers, stdlib only:

- :mod:`repro.service.protocol` — the JSON request/response schemas,
  canonical answer serialization (byte-stable: the concurrency
  differential tests compare *encoded* answers), and the error
  taxonomy mapping engine exceptions to typed HTTP statuses.
- :mod:`repro.service.app` — named document stores, the
  :class:`QueryService` application object with per-request
  observability middleware, and the threaded HTTP server.
- :mod:`repro.service.resilience` — overload protection and lifecycle:
  admission control (shed as 429 + ``Retry-After``), deadline
  propagation, per-store circuit breakers, and graceful drain
  (docs/SERVICE.md "Overload & lifecycle").
- :mod:`repro.service.loadgen` — the scenario-driven load generator
  (deep-tree / wide-tree mixes) emitting an RPS + P50/P95/P99 +
  shed/deadline scorecard recorded as a ``LOADTEST_<n>.json`` run file.
"""

from repro.service.app import QueryService, StoreRegistry, make_server, serve
from repro.service.resilience import (
    AdmissionController,
    BreakerBoard,
    CircuitBreaker,
    CircuitOpenError,
    DeadlineClock,
    DeadlineExceededError,
    DrainingError,
    OverloadedError,
)
from repro.service.protocol import (
    ServiceError,
    decode_answer,
    encode_answer,
    error_payload,
    stats_payload,
    validate_query_request,
)
from repro.service.loadgen import (
    SCENARIOS,
    LoadScenario,
    compare_report,
    format_scorecard,
    load_report,
    run_load,
    write_report,
)

__all__ = [
    "QueryService",
    "StoreRegistry",
    "make_server",
    "serve",
    "AdmissionController",
    "BreakerBoard",
    "CircuitBreaker",
    "CircuitOpenError",
    "DeadlineClock",
    "DeadlineExceededError",
    "DrainingError",
    "OverloadedError",
    "ServiceError",
    "decode_answer",
    "encode_answer",
    "error_payload",
    "stats_payload",
    "validate_query_request",
    "SCENARIOS",
    "LoadScenario",
    "compare_report",
    "format_scorecard",
    "load_report",
    "run_load",
    "write_report",
]
