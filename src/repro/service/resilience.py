"""Overload protection and lifecycle for the query service.

PR 6 made the engine a long-lived server; this module makes it a
*survivable* one.  Four mechanisms, each a named decision point with
its own fault-injection site (docs/ROBUSTNESS.md):

- :class:`AdmissionController` — a bounded in-flight gauge plus a
  bounded wait queue.  Work beyond ``max_concurrency`` queues; work
  beyond ``max_concurrency + queue_limit`` is **shed** immediately with
  a 429 ``overloaded`` and a computed ``Retry-After`` — the service
  degrades by refusing cheaply, never by falling over.  Site:
  ``service.admission``.
- **Deadline propagation** — :class:`DeadlineClock` carries one
  absolute deadline (from ``X-Repro-Deadline-Ms`` or a body
  ``deadline_ms``) through admission into the engine's
  :class:`~repro.obs.budget.ResourceBudget`.  Already-expired requests
  are refused up front (504 ``deadline-exceeded``), and queue-wait
  time is subtracted before the engine runs, so slow admission can
  never silently eat the evaluation budget.
- :class:`CircuitBreaker` — per-store consecutive-failure tracking
  with the classic closed → open → half-open state machine.  An open
  breaker answers 503 ``circuit-open`` in O(1) instead of burning
  retries against a store whose document or index reliably faults;
  after a seeded-jitter cooldown exactly one probe request is let
  through (half-open), and its outcome closes or re-opens the circuit.
  Site: ``service.breaker``.
- **Graceful drain** — :meth:`AdmissionController.drain` flips the
  controller into draining (new work refused as 503 ``draining``),
  then waits for in-flight requests up to a drain deadline.  Site:
  ``service.drain``; a fault there degrades to an immediate close,
  never a hang.

Every refusal is *typed* (a :class:`~repro.service.protocol.ServiceError`
subclass carrying ``retry_after``) and counted under its own metric —
``service.shed`` / ``service.deadline_exceeded`` /
``service.breaker_open`` / ``service.drain_refused`` — separately from
``service.errors``, so overload is visible as overload, not as failure.
"""

from __future__ import annotations

import math
import random
import threading
import time
import zlib

from repro.errors import (
    AllStrategiesFailedError,
    EvaluationError,
    ReproError,
    StorageError,
    TransientError,
)
from repro.faults import faultpoint, register_site
from repro.obs.metrics import METRICS
from repro.service.protocol import ServiceError

__all__ = [
    "AdmissionController",
    "BreakerBoard",
    "CircuitBreaker",
    "CircuitOpenError",
    "DeadlineClock",
    "DeadlineExceededError",
    "DrainingError",
    "OverloadedError",
    "counts_against_breaker",
    "parse_deadline_ms",
]

register_site("service.admission", "admission-control decision (admit/queue/shed)")
register_site("service.breaker", "circuit-breaker state check before store work")
register_site("service.drain", "graceful-drain wait on shutdown")


# ---------------------------------------------------------------------------
# the typed refusals
# ---------------------------------------------------------------------------


class OverloadedError(ServiceError):
    """The in-flight gauge and the wait queue are both full: shed."""

    def __init__(self, message: str, retry_after: float):
        super().__init__(
            message, status=429, code="overloaded", retry_after=retry_after
        )


class DeadlineExceededError(ServiceError):
    """The request's deadline passed before the engine could run it."""

    def __init__(self, message: str):
        super().__init__(message, status=504, code="deadline-exceeded")


class CircuitOpenError(ServiceError):
    """The store's circuit breaker is open: fail fast, retry later."""

    def __init__(self, store: str, retry_after: float, failures: int):
        super().__init__(
            f"store {store!r} circuit is open after {failures} consecutive "
            f"failures; probe in ~{retry_after:.2f}s",
            status=503,
            code="circuit-open",
            retry_after=retry_after,
        )


class DrainingError(ServiceError):
    """The service is draining for shutdown: refuse new work cleanly."""

    def __init__(self, retry_after: float = 1.0):
        super().__init__(
            "service is draining; no new work accepted",
            status=503,
            code="draining",
            retry_after=retry_after,
        )


# ---------------------------------------------------------------------------
# deadlines
# ---------------------------------------------------------------------------


class DeadlineClock:
    """One absolute deadline carried across admission into the engine.

    Built once when the request arrives, so queue wait, breaker checks
    and per-item batch execution all charge against the *same* window —
    ``remaining()`` shrinks monotonically and the engine receives only
    what is left.
    """

    __slots__ = ("deadline_at", "_clock")

    def __init__(self, deadline_s: "float | None", clock=time.monotonic):
        self._clock = clock
        self.deadline_at = None if deadline_s is None else clock() + deadline_s

    def remaining(self) -> "float | None":
        """Seconds left, or None for an unbounded request."""
        if self.deadline_at is None:
            return None
        return self.deadline_at - self._clock()

    def expired(self) -> bool:
        remaining = self.remaining()
        return remaining is not None and remaining <= 0

    def check(self, where: str) -> None:
        """Refuse (504) when the window is already spent."""
        remaining = self.remaining()
        if remaining is not None and remaining <= 0:
            METRICS.add("service.deadline_exceeded")
            raise DeadlineExceededError(
                f"deadline exceeded {where} ({-remaining:.3f}s past)"
            )

    def engine_deadline(self, body_deadline_s: "float | None") -> "float | None":
        """The per-call engine budget: the tighter of what the request
        body asked for and what the service-level window has left."""
        remaining = self.remaining()
        if remaining is None:
            return body_deadline_s
        remaining = max(remaining, 0.0)
        if body_deadline_s is None:
            return remaining
        return min(body_deadline_s, remaining)


def parse_deadline_ms(value: "str | float | None") -> "float | None":
    """``X-Repro-Deadline-Ms`` header value -> seconds (None if absent)."""
    if value is None or value == "":
        return None
    try:
        ms = float(value)
    except (TypeError, ValueError):
        raise ServiceError(
            f"X-Repro-Deadline-Ms must be a non-negative number, got {value!r}",
            code="bad-deadline",
        ) from None
    if ms < 0 or not math.isfinite(ms):
        raise ServiceError(
            f"X-Repro-Deadline-Ms must be a non-negative number, got {value!r}",
            code="bad-deadline",
        )
    return ms / 1000.0


# ---------------------------------------------------------------------------
# admission control
# ---------------------------------------------------------------------------


class AdmissionController:
    """A bounded in-flight gauge plus a bounded wait queue.

    ``max_concurrency=None`` admits everything (the PR 6 behaviour) but
    still counts in-flight work — the gauge is what graceful drain
    waits on.  With a limit set, a request either takes a slot
    immediately, waits in the queue (bounded by ``queue_limit`` and by
    its own deadline), or is shed with :class:`OverloadedError`.

    ``retry_after_s()`` estimates how long a shed client should back
    off: queue depth × observed mean request latency ÷ concurrency,
    clamped to [1, 30] seconds — a crude but monotone signal that grows
    with the backlog.
    """

    def __init__(
        self,
        max_concurrency: "int | None" = None,
        queue_limit: int = 16,
        queue_timeout_s: float = 30.0,
        clock=time.monotonic,
    ):
        if max_concurrency is not None and max_concurrency < 1:
            raise ValueError("max_concurrency must be >= 1 (or None)")
        if queue_limit < 0:
            raise ValueError("queue_limit must be >= 0")
        self.max_concurrency = max_concurrency
        self.queue_limit = queue_limit
        self.queue_timeout_s = queue_timeout_s
        self._clock = clock
        self._lock = threading.Lock()
        self._slot_free = threading.Condition(self._lock)
        self._idle = threading.Condition(self._lock)
        self.in_flight = 0
        self.queued = 0
        self.draining = False

    # -- the admit/release pair -------------------------------------------

    def admit(self, deadline: "DeadlineClock | None" = None) -> float:
        """Take an execution slot; returns seconds spent queued.

        Raises :class:`DrainingError` while draining,
        :class:`OverloadedError` when the queue is full (or the queue
        wait times out), and :class:`DeadlineExceededError` when the
        request's own deadline expires while queued.
        """
        faultpoint("service.admission")
        start = self._clock()
        with self._lock:
            if self.draining:
                METRICS.add("service.drain_refused")
                raise DrainingError()
            if self.max_concurrency is None or self.in_flight < self.max_concurrency:
                self.in_flight += 1
                METRICS.add("service.admitted")
                return 0.0
            if self.queued >= self.queue_limit:
                METRICS.add("service.shed")
                raise OverloadedError(
                    f"at capacity: {self.in_flight} in flight, "
                    f"{self.queued} queued (limits {self.max_concurrency}"
                    f"+{self.queue_limit})",
                    retry_after=self._retry_after_locked(),
                )
            self.queued += 1
            try:
                while True:
                    budget = self.queue_timeout_s - (self._clock() - start)
                    remaining = deadline.remaining() if deadline is not None else None
                    if remaining is not None:
                        budget = min(budget, remaining)
                    if budget <= 0:
                        if remaining is not None and remaining <= 0:
                            METRICS.add("service.deadline_exceeded")
                            raise DeadlineExceededError(
                                "deadline exceeded while queued for admission "
                                f"({self._clock() - start:.3f}s waited)"
                            )
                        METRICS.add("service.shed")
                        raise OverloadedError(
                            f"queue wait exceeded {self.queue_timeout_s}s",
                            retry_after=self._retry_after_locked(),
                        )
                    self._slot_free.wait(timeout=budget)
                    if self.draining:
                        METRICS.add("service.drain_refused")
                        raise DrainingError()
                    if (
                        self.max_concurrency is None
                        or self.in_flight < self.max_concurrency
                    ):
                        self.in_flight += 1
                        METRICS.add("service.admitted")
                        waited = self._clock() - start
                        METRICS.observe_duration("service.queue_wait", waited)
                        return waited
            finally:
                self.queued -= 1

    def release(self) -> None:
        with self._lock:
            self.in_flight -= 1
            self._slot_free.notify()
            if self.in_flight == 0:
                self._idle.notify_all()

    # -- load signals ------------------------------------------------------

    def _retry_after_locked(self) -> float:
        hist = METRICS.duration("service.request")
        mean = hist.mean if hist is not None and hist.count else 0.1
        width = self.max_concurrency or 1
        estimate = (self.queued + 1) * mean / width
        return min(max(estimate, 1.0), 30.0)

    def retry_after_s(self) -> float:
        with self._lock:
            return self._retry_after_locked()

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "max_concurrency": self.max_concurrency,
                "queue_limit": self.queue_limit,
                "in_flight": self.in_flight,
                "queued": self.queued,
                "draining": self.draining,
            }

    # -- graceful drain ----------------------------------------------------

    def drain(self, drain_s: float = 5.0) -> bool:
        """Stop admitting, wait for in-flight work, return cleanliness.

        Returns True when every in-flight request finished inside the
        drain window; False when stragglers were abandoned at the
        deadline (the caller closes the server either way — drain
        bounds shutdown latency, it never blocks it).  The wait is the
        ``service.drain`` fault site: an injected fault there degrades
        to an immediate (dirty) close instead of a hang.
        """
        with self._lock:
            already = self.draining
            self.draining = True
            self._slot_free.notify_all()  # wake queued waiters to refuse them
        if not already:
            METRICS.add("service.drains")
        try:
            faultpoint("service.drain")
        except ReproError:
            METRICS.add("service.drain_faults")
            return False
        deadline_at = self._clock() + max(drain_s, 0.0)
        with self._lock:
            while self.in_flight > 0:
                budget = deadline_at - self._clock()
                if budget <= 0:
                    METRICS.add("service.drain_stragglers", self.in_flight)
                    return False
                self._idle.wait(timeout=budget)
            return True

    def resume(self) -> None:
        """Leave draining mode (tests and probe tooling)."""
        with self._lock:
            self.draining = False


# ---------------------------------------------------------------------------
# circuit breakers
# ---------------------------------------------------------------------------


def counts_against_breaker(exc: BaseException) -> bool:
    """Whether a failure indicts the *store* (and should trip its
    breaker) rather than the client.

    Server-side faults — transient or injected failures, storage and
    evaluation errors, an exhausted fallback chain — count.  Client
    errors (bad queries, validation refusals) and budget exhaustion
    (the client chose the budget) never do.
    """
    if isinstance(exc, ServiceError):
        return False
    return isinstance(
        exc,
        (
            TransientError,
            StorageError,
            EvaluationError,  # includes InjectedFault
            AllStrategiesFailedError,
        ),
    )


class CircuitBreaker:
    """Consecutive-failure circuit breaker for one store.

    State machine::

        closed --[threshold consecutive failures]--> open
        open   --[cooldown + seeded jitter elapses]--> half-open (one probe)
        half-open --[probe succeeds]--> closed
        half-open --[probe fails]----> open (fresh jittered cooldown)

    The jitter (up to +50% of the cooldown) comes from a seeded RNG, so
    a board of breakers re-probes staggered rather than in lockstep —
    and deterministically so under test.  Transitions are counted
    (``breaker.opened`` / ``breaker.reclosed`` / ``breaker.probes``)
    and exposed via :meth:`state` on ``/healthz`` and ``/readyz``.
    """

    def __init__(
        self,
        name: str,
        threshold: int = 5,
        cooldown_s: float = 5.0,
        seed: int = 0,
        clock=time.monotonic,
    ):
        if threshold < 1:
            raise ValueError("breaker threshold must be >= 1")
        self.name = name
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self._clock = clock
        # crc32, not hash(): string hashing is salted per process and
        # the jitter schedule must be reproducible for a given seed
        self._rng = random.Random(zlib.crc32(name.encode("utf-8")) ^ (seed or 0))
        self._lock = threading.Lock()
        self._state = "closed"
        self._failures = 0
        self._probe_at = 0.0
        self._probing = False
        self.opened_total = 0

    # -- the request path --------------------------------------------------

    def check(self) -> None:
        """Gate one unit of store work; raises :class:`CircuitOpenError`.

        In the open state the first caller past the probe time becomes
        *the* probe (state moves to half-open); every other caller is
        refused until the probe reports back.
        """
        faultpoint("service.breaker")
        with self._lock:
            if self._state == "closed":
                return
            now = self._clock()
            if self._state == "open" and now >= self._probe_at and not self._probing:
                self._state = "half-open"
                self._probing = True
                METRICS.add("breaker.probes")
                return  # this caller carries the probe
            retry_after = max(self._probe_at - now, 0.05)
            METRICS.add("service.breaker_open")
            raise CircuitOpenError(self.name, retry_after, self._failures)

    def record_success(self) -> None:
        with self._lock:
            if self._state != "closed":
                METRICS.add("breaker.reclosed")
            self._state = "closed"
            self._failures = 0
            self._probing = False

    def record_failure(self) -> None:
        with self._lock:
            self._failures += 1
            was = self._state
            if was == "half-open" or (
                was == "closed" and self._failures >= self.threshold
            ):
                self._open_locked()
            self._probing = False

    def _open_locked(self) -> None:
        self._state = "open"
        self.opened_total += 1
        jitter = 1.0 + self._rng.random() * 0.5
        self._probe_at = self._clock() + self.cooldown_s * jitter
        METRICS.add("breaker.opened")

    # -- introspection -----------------------------------------------------

    def state(self) -> dict:
        with self._lock:
            payload = {
                "state": self._state,
                "consecutive_failures": self._failures,
                "threshold": self.threshold,
                "opened_total": self.opened_total,
            }
            if self._state == "open":
                payload["probe_in_s"] = round(
                    max(self._probe_at - self._clock(), 0.0), 3
                )
            return payload

    @property
    def is_open(self) -> bool:
        with self._lock:
            return self._state == "open"


class BreakerBoard:
    """Per-store breakers behind one lock, sharing threshold/cooldown.

    A store PUT resets its breaker (a replaced document deserves a
    fresh circuit); a DELETE drops it.  ``storming()`` is the readiness
    signal: at least one breaker exists and at least half of them are
    open — the service is alive (``/healthz``) but should not receive
    new traffic (``/readyz``).
    """

    def __init__(self, threshold: int = 5, cooldown_s: float = 5.0, seed: int = 0):
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self.seed = seed
        self._lock = threading.Lock()
        self._breakers: dict[str, CircuitBreaker] = {}

    def lease(self, name: str) -> CircuitBreaker:
        with self._lock:
            breaker = self._breakers.get(name)
            if breaker is None:
                breaker = self._breakers[name] = CircuitBreaker(
                    name,
                    threshold=self.threshold,
                    cooldown_s=self.cooldown_s,
                    seed=self.seed,
                )
            return breaker

    def reset(self, name: str) -> None:
        with self._lock:
            self._breakers.pop(name, None)

    def states(self) -> dict[str, dict]:
        with self._lock:
            breakers = dict(self._breakers)
        return {name: breaker.state() for name, breaker in sorted(breakers.items())}

    def storming(self) -> bool:
        with self._lock:
            breakers = list(self._breakers.values())
        if not breakers:
            return False
        open_count = sum(1 for b in breakers if b.is_open)
        return open_count * 2 >= len(breakers) and open_count > 0
