"""The scenario-driven load generator (``repro load``).

A :class:`LoadScenario` is a document family plus a query mix.  The two
shipped scenarios stress the two degenerate tree shapes from the
workload module:

- ``deep-tree`` — one 50k-level spine (:func:`repro.workloads.deep_tree`):
  every descendant-axis query walks an extreme path length.
- ``wide-tree`` — one node with 500k children
  (:func:`repro.workloads.wide_tree`): sibling axes and label partitions
  at extreme fan-out.

``FAST`` mode (CI smoke) shrinks the fixtures ~25× so the whole run
fits in seconds; full mode is the committed-baseline configuration.

:func:`run_load` boots an in-process threaded server on an ephemeral
port (or targets an already-running one via ``url``), installs the
fixture stores, replays the mix from ``concurrency`` closed-loop worker
threads over real HTTP connections, and emits a scorecard per scenario:
requests, errors, RPS, and exact P50/P95/P99 latencies.  Scorecards are
recorded through :data:`repro.perf.RECORDER` and written as
``LOADTEST_<n>.json`` run files (schema ``repro.perf.load/1``) —
a sibling sequence to the ``BENCH_<n>.json`` files, compared by
:func:`compare_report` in the ``service-smoke`` CI job.
"""

from __future__ import annotations

import datetime as _dt
import http.client
import json
import os
import re
import threading
import time
from typing import Any, Callable, Sequence

from repro.engine import Database
from repro.service.app import QueryService, make_server
from repro.workloads import deep_tree, wide_tree

__all__ = [
    "LOAD_SCHEMA",
    "SCENARIOS",
    "LoadScenario",
    "compare_report",
    "format_scorecard",
    "list_reports",
    "load_report",
    "run_load",
    "write_report",
]

LOAD_SCHEMA = "repro.perf.load/1"

_LOAD_RE = re.compile(r"^LOADTEST_(\d+)\.json$")


class LoadScenario:
    """One load configuration: a document family plus a query mix.

    ``build(fast)`` constructs the fixture tree (full or FAST size);
    ``mix`` is the request-body cycle the workers replay — every entry
    is a complete ``/query`` JSON body, so the generator exercises the
    exact wire protocol clients use.
    """

    __slots__ = ("name", "description", "factory", "full_size", "fast_size", "mix")

    def __init__(
        self,
        name: str,
        description: str,
        factory: Callable[[int], Any],
        full_size: int,
        fast_size: int,
        mix: Sequence[dict],
    ):
        self.name = name
        self.description = description
        self.factory = factory
        self.full_size = full_size
        self.fast_size = fast_size
        self.mix = tuple(mix)

    def build(self, fast: bool = False):
        return self.factory(self.fast_size if fast else self.full_size)

    def size(self, fast: bool = False) -> int:
        return self.fast_size if fast else self.full_size


#: the shipped scenarios: the two degenerate shapes, all four languages
SCENARIOS: dict[str, LoadScenario] = {
    scenario.name: scenario
    for scenario in (
        LoadScenario(
            "deep-tree",
            "a single 50k-level spine; descendant axes at extreme depth",
            deep_tree,
            full_size=50_000,
            fast_size=2_000,
            mix=(
                {"kind": "xpath", "query": "Child*[lab() = mark]"},
                {"kind": "xpath", "query": "Child*[lab() = target]"},
                {"kind": "twig", "query": "//section/mark"},
                {"kind": "cq", "query": "ans(y) :- Child(x, y), Lab:mark(y)"},
                {
                    "kind": "datalog",
                    "query": "Q(x) :- Lab:target(x).",
                    "query_pred": "Q",
                },
            ),
        ),
        LoadScenario(
            "wide-tree",
            "one node with 500k children; sibling axes at extreme fan-out",
            wide_tree,
            full_size=500_000,
            fast_size=20_000,
            mix=(
                {"kind": "xpath", "query": "Child[lab() = hit]"},
                {"kind": "twig", "query": "/collection/hit"},
                {"kind": "cq", "query": "ans(y) :- Child(x, y), Lab:hit(y)"},
                {
                    "kind": "datalog",
                    "query": "Q(x) :- Lab:hit(x).",
                    "query_pred": "Q",
                },
            ),
        ),
    )
}


# ---------------------------------------------------------------------------
# the closed-loop worker pool
# ---------------------------------------------------------------------------


class _Counter:
    """A shared take-a-ticket counter for closed-loop workers."""

    __slots__ = ("_lock", "_next", "limit")

    def __init__(self, limit: int):
        self._lock = threading.Lock()
        self._next = 0
        self.limit = limit

    def take(self) -> int:
        """The next ticket, or -1 when the run is exhausted."""
        with self._lock:
            if self._next >= self.limit:
                return -1
            ticket = self._next
            self._next += 1
            return ticket


#: per-attempt client backoff schedule for 429 retries
_RETRY_LIMIT = 5
_RETRY_SLEEP_CAP_S = 0.5


def _retry_delay_s(response_payload: bytes, attempt: int) -> float:
    """How long a shed client sleeps before retrying: the server's
    ``retry_after`` hint (JSON body, finer-grained than the integer
    ``Retry-After`` header) scaled by exponential backoff, capped so
    load runs stay bounded."""
    hint = 0.05
    try:
        body = json.loads(response_payload.decode("utf-8"))
        hint = float(body["error"]["retry_after"])
    except Exception:
        pass
    return min(max(hint, 0.01) * (2 ** attempt), _RETRY_SLEEP_CAP_S)


def _worker(
    host: str,
    port: int,
    path: str,
    bodies: Sequence[bytes],
    tickets: _Counter,
    latencies: list,
    failures: list,
    sheds: list,
    deadline_exceeded: list,
    headers: "dict[str, str] | None" = None,
    traced: "list | None" = None,
) -> None:
    """One closed-loop client: take a ticket, send, time, repeat.

    The client speaks the resilience protocol: a 429 ``overloaded``
    response is *not* a failure — it counts as a shed and the ticket is
    retried with exponential backoff honoring the server's Retry-After
    hint (up to ``_RETRY_LIMIT`` attempts); a 504 ``deadline-exceeded``
    counts in its own bucket.  Only untyped/unexpected responses land
    in ``failures``.
    """
    base_headers = {"Content-Type": "application/json", **(headers or {})}
    conn = http.client.HTTPConnection(host, port, timeout=120)
    try:
        while True:
            ticket = tickets.take()
            if ticket < 0:
                return
            body = bodies[ticket % len(bodies)]
            attempt = 0
            while True:
                start = time.perf_counter()
                try:
                    conn.request("POST", path, body=body, headers=base_headers)
                    response = conn.getresponse()
                    payload = response.read()
                    elapsed = time.perf_counter() - start
                except Exception as exc:
                    failures.append((0, f"{type(exc).__name__}: {exc}".encode()))
                    conn.close()  # reconnect on the next ticket
                    break
                if response.status == 200:
                    latencies.append(elapsed)
                    if traced is not None:
                        # the response body echoes the request's trace
                        # id; parsed after the clock stopped, so the
                        # latency sample is untouched
                        try:
                            trace_id = json.loads(
                                payload.decode("utf-8")
                            ).get("trace_id")
                        except Exception:
                            trace_id = None
                        if trace_id:
                            traced.append((elapsed, trace_id))
                    break
                if response.status == 429:
                    sheds.append(ticket)
                    if attempt < _RETRY_LIMIT:
                        time.sleep(_retry_delay_s(payload, attempt))
                        attempt += 1
                        continue
                    break  # shed for good; counted, not a failure
                if response.status == 504:
                    deadline_exceeded.append(ticket)
                    break
                failures.append((response.status, payload[:200]))
                break
    finally:
        conn.close()


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    """Exact (nearest-rank, linear-interpolated) percentile."""
    if not sorted_values:
        return 0.0
    pos = (len(sorted_values) - 1) * q
    lo = int(pos)
    hi = min(lo + 1, len(sorted_values) - 1)
    frac = pos - lo
    return sorted_values[lo] * (1 - frac) + sorted_values[hi] * frac


def _run_scenario(
    scenario: LoadScenario,
    host: str,
    port: int,
    requests: int,
    concurrency: int,
    fast: bool,
    deadline_ms: "float | None" = None,
) -> dict[str, Any]:
    bodies = [
        json.dumps(body, sort_keys=True).encode("utf-8") for body in scenario.mix
    ]
    path = f"/stores/{scenario.name}/query"
    tickets = _Counter(requests)
    latencies: list[float] = []  # list.append is atomic: no lock needed
    failures: list = []
    sheds: list = []
    deadline_exceeded: list = []
    traced: list = []  # (elapsed, trace_id) per 200, for the slowest-of
    headers = (
        {"X-Repro-Deadline-Ms": str(deadline_ms)}
        if deadline_ms is not None
        else None
    )
    threads = [
        threading.Thread(
            target=_worker,
            args=(host, port, path, bodies, tickets, latencies, failures,
                  sheds, deadline_exceeded, headers, traced),
            daemon=True,
        )
        for _ in range(concurrency)
    ]
    start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    duration = time.perf_counter() - start
    ordered = sorted(latencies)
    # tuples sort by elapsed first, so max() is the slowest observed
    # request — its trace id points straight at /debug/traces/<id>
    slowest = max(traced, default=None)
    return {
        "slowest_ms": round(slowest[0] * 1e3, 3) if slowest else None,
        "slowest_trace_id": slowest[1] if slowest else None,
        "scenario": scenario.name,
        "nodes": scenario.size(fast) + 1,  # +1: the root above the spine/fan
        "requests": len(latencies),
        "errors": len(failures),
        "shed": len(sheds),
        "deadline_exceeded": len(deadline_exceeded),
        "error_samples": [
            [status, body.decode("utf-8", "replace")]
            for status, body in failures[:5]
        ],
        "concurrency": concurrency,
        "duration_s": round(duration, 4),
        "rps": round(len(latencies) / duration, 2) if duration > 0 else 0.0,
        "p50_ms": round(_percentile(ordered, 0.50) * 1e3, 3),
        "p95_ms": round(_percentile(ordered, 0.95) * 1e3, 3),
        "p99_ms": round(_percentile(ordered, 0.99) * 1e3, 3),
    }


def run_load(
    scenarios: "Sequence[str] | None" = None,
    fast: bool = False,
    requests: int = 200,
    concurrency: int = 8,
    columns: "str | None" = None,
    host: str = "127.0.0.1",
    record: bool = True,
    max_concurrency: "int | None" = None,
    queue_limit: int = 16,
    deadline_ms: "float | None" = None,
    service: "QueryService | None" = None,
) -> dict[str, Any]:
    """Run the load harness; returns the full report payload (unwritten).

    Boots an in-process threaded server on an ephemeral port, installs
    each scenario's fixture as a store (index pre-built, so latencies
    measure query service, not first-touch indexing), replays the mix
    from ``concurrency`` worker threads, and tears the server down.

    ``max_concurrency``/``queue_limit`` configure the server's
    admission control (for overload testing — sheds land in the
    ``shed`` column, not ``errors``); ``deadline_ms`` stamps every
    request with an ``X-Repro-Deadline-Ms`` header, so expirations land
    in ``deadline_exceeded``.  ``service`` substitutes a pre-configured
    :class:`QueryService` (e.g. one with an event log or a custom
    sampler — the tracing-under-load tests drive a tiny-queue writer
    this way); when given, the admission/column kwargs are ignored.

    Each scorecard reports ``slowest_ms``/``slowest_trace_id``: the
    slowest observed request's latency and the trace id its response
    echoed, ready to feed ``repro trace show`` or ``/debug/traces/<id>``.
    """
    names = list(scenarios) if scenarios else sorted(SCENARIOS)
    unknown = [n for n in names if n not in SCENARIOS]
    if unknown:
        raise ValueError(
            f"unknown scenario(s): {', '.join(unknown)}; "
            f"options: {', '.join(sorted(SCENARIOS))}"
        )
    if service is None:
        service = QueryService(
            columns=columns,
            max_concurrency=max_concurrency,
            queue_limit=queue_limit,
        )
    server = make_server(service, host=host, port=0)
    port = server.server_address[1]
    runner = threading.Thread(target=server.serve_forever, daemon=True)
    runner.start()
    scorecards = []
    try:
        for name in names:
            scenario = SCENARIOS[name]
            db = Database(scenario.build(fast), columns=columns)
            db.index  # warm: pay indexing at ingest, not under load
            service.stores.put(name, db, source="loadgen")
            scorecards.append(
                _run_scenario(
                    scenario, host, port, requests, concurrency, fast,
                    deadline_ms=deadline_ms,
                )
            )
            service.stores.delete(name)
    finally:
        server.shutdown()
        server.server_close()
        runner.join(timeout=10)
    report = {
        "fast_mode": bool(fast),
        "requests_per_scenario": requests,
        "concurrency": concurrency,
        "columns": columns or "off",
        "max_concurrency": max_concurrency,
        "queue_limit": queue_limit,
        "deadline_ms": deadline_ms,
        "scenarios": {card["scenario"]: card for card in scorecards},
    }
    if record:
        _record(report)
    return report


def _record(report: dict[str, Any]) -> None:
    """Fold the scorecards into the perf telemetry recorder."""
    from repro.perf import RECORDER

    RECORDER.record_table(
        "service load scorecard",
        ["scenario", "nodes", "requests", "errors", "shed",
         "deadline_exceeded", "rps", "p50_ms", "p95_ms", "p99_ms",
         "slowest_trace_id"],
        [
            [c["scenario"], c["nodes"], c["requests"], c["errors"],
             c.get("shed", 0), c.get("deadline_exceeded", 0),
             c["rps"], c["p50_ms"], c["p95_ms"], c["p99_ms"],
             c.get("slowest_trace_id") or "-"]
            for c in report["scenarios"].values()
        ],
        module="service-loadgen",
    )


# ---------------------------------------------------------------------------
# LOADTEST_<n>.json run files
# ---------------------------------------------------------------------------


def list_reports(root: str = ".") -> list[str]:
    """All ``LOADTEST_<n>.json`` files under ``root``, in run order."""
    entries = []
    for name in os.listdir(root or "."):
        match = _LOAD_RE.match(name)
        if match:
            entries.append((int(match.group(1)), os.path.join(root, name)))
    return [path for _, path in sorted(entries)]


def write_report(report: dict[str, Any], root: str = ".") -> str:
    """Write the next ``LOADTEST_<n>.json`` in sequence; returns its path."""
    from repro.perf import environment_fingerprint

    numbers = [
        int(_LOAD_RE.match(name).group(1))
        for name in os.listdir(root or ".")
        if _LOAD_RE.match(name)
    ]
    run = max(numbers, default=0) + 1
    payload = {
        "schema": LOAD_SCHEMA,
        "run": run,
        "created": _dt.datetime.now(_dt.timezone.utc).isoformat(timespec="seconds"),
        "environment": environment_fingerprint(),
        **report,
    }
    path = os.path.join(root or ".", f"LOADTEST_{run:04d}.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    return path


def load_report(path: str) -> dict[str, Any]:
    with open(path, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    if payload.get("schema") != LOAD_SCHEMA:
        raise ValueError(
            f"{path}: schema is {payload.get('schema')!r}, expected {LOAD_SCHEMA!r}"
        )
    if not isinstance(payload.get("scenarios"), dict):
        raise ValueError(f"{path}: missing 'scenarios' mapping")
    return payload


def compare_report(
    baseline: dict[str, Any],
    current: dict[str, Any],
    rps_drop_warn: float = 0.5,
    shed_tolerance: float = 0.0,
) -> "tuple[list[str], list[str]]":
    """Compare a fresh report against a committed baseline.

    Returns ``(failures, warnings)``.  Failures are structural — a
    baseline scenario missing from the current run, or any failed
    requests: the service must never drop queries under this load.
    Typed refusals (429 sheds, 504 deadline expirations) are tallied
    *separately* from errors and fail only past ``shed_tolerance``
    (fraction of all attempts, default zero) — so overload experiments
    can declare their expected shed rate instead of tripping the error
    gate.  Raw-throughput changes only *warn* (and only past
    ``rps_drop_warn``, a halving by default), mirroring the bench
    comparator's stance that wall-clock across environments is advisory
    (docs/OBSERVABILITY.md).
    """
    failures: list[str] = []
    warnings: list[str] = []
    old = baseline.get("scenarios", {})
    new = current.get("scenarios", {})
    for name in sorted(old):
        if name not in new:
            failures.append(f"scenario {name!r} missing from the current run")
    for name, card in sorted(new.items()):
        if card.get("errors"):
            failures.append(
                f"{name}: {card['errors']} failed request(s) "
                f"(e.g. {(card.get('error_samples') or [['?', '?']])[0]})"
            )
        shed = card.get("shed", 0) + card.get("deadline_exceeded", 0)
        attempts = card.get("requests", 0) + card.get("errors", 0) + shed
        if shed and attempts:
            rate = shed / attempts
            if rate > shed_tolerance:
                failures.append(
                    f"{name}: shed rate {rate:.1%} "
                    f"({card.get('shed', 0)} shed + "
                    f"{card.get('deadline_exceeded', 0)} deadline-exceeded of "
                    f"{attempts}) exceeds the {shed_tolerance:.1%} tolerance"
                )
            else:
                warnings.append(
                    f"{name}: shed rate {rate:.1%} within the "
                    f"{shed_tolerance:.1%} tolerance"
                )
        base = old.get(name)
        if not base:
            continue
        old_rps, new_rps = base.get("rps", 0), card.get("rps", 0)
        if old_rps and new_rps and new_rps < old_rps * rps_drop_warn:
            warnings.append(
                f"{name}: RPS dropped {old_rps} -> {new_rps} "
                f"(past the {rps_drop_warn:.0%} warn threshold)"
            )
    return failures, warnings


def format_scorecard(report: dict[str, Any]) -> str:
    """The human-readable scorecard (the ``repro load`` output)."""
    lines = [
        "service load scorecard"
        + (" (FAST mode)" if report.get("fast_mode") else ""),
        f"  concurrency={report['concurrency']} "
        f"requests/scenario={report['requests_per_scenario']} "
        f"columns={report.get('columns', 'off')}",
        f"  {'scenario':<12} {'nodes':>8} {'req':>6} {'err':>4} "
        f"{'shed':>5} {'dl':>4} "
        f"{'rps':>9} {'p50ms':>9} {'p95ms':>9} {'p99ms':>9}",
    ]
    for name, card in sorted(report["scenarios"].items()):
        lines.append(
            f"  {name:<12} {card['nodes']:>8} {card['requests']:>6} "
            f"{card['errors']:>4} {card.get('shed', 0):>5} "
            f"{card.get('deadline_exceeded', 0):>4} "
            f"{card['rps']:>9.2f} {card['p50_ms']:>9.3f} "
            f"{card['p95_ms']:>9.3f} {card['p99_ms']:>9.3f}"
        )
        if card.get("slowest_trace_id"):
            lines.append(
                f"    slowest: {card['slowest_ms']:.3f} ms "
                f"trace={card['slowest_trace_id']}"
            )
    return "\n".join(lines)
