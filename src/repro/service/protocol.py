"""JSON request/response schemas and the service error taxonomy.

Everything the HTTP layer says on the wire is defined here, so the
tests (and the load generator) can speak the protocol without going
through a socket.

**Answers are canonical**: :func:`encode_answer` renders a result set
as a *sorted* list (of ints for node answers, of lists for tuple
answers), so two equal answers always serialize to identical bytes —
the concurrency differential battery compares those bytes directly.
:func:`decode_answer` is its exact inverse; the round-trip property
test (``tests/test_service_properties.py``) pins
``decode(json(encode(a))) == a`` over random tree/query pairs.

**Errors are typed**: every engine exception maps to one (HTTP status,
machine-readable code) pair via :func:`error_status` — the HTTP twin
of the CLI's exit-code contract:

=============================  ======  =======================
exception                      status  code
=============================  ======  =======================
ServiceError (validation)      400*    as raised
ParseError                     400     ``parse-error``
QueryError (and subclasses)    400     ``bad-query``
ResourceBudgetExceeded         429     ``budget-exhausted``
AllStrategiesFailedError       503     ``all-strategies-failed``
TransientError                 503     ``transient-failure``
InjectedFault                  500     ``injected-fault``
StorageError                   500     ``storage-error``
other EvaluationError          500     ``evaluation-failed``
other ReproError               500     ``internal-error``
=============================  ======  =======================

(*) a ServiceError carries its own status; 400 is the default.  The
resilience layer (:mod:`repro.service.resilience`) adds its own typed
refusals on top — 429 ``overloaded``, 504 ``deadline-exceeded``, 503
``circuit-open`` and 503 ``draining`` — which may carry a
``retry_after`` hint rendered as both a JSON field and the HTTP
``Retry-After`` header.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.errors import (
    AllStrategiesFailedError,
    EvaluationError,
    InjectedFault,
    ParseError,
    QueryError,
    ReproError,
    ResourceBudgetExceeded,
    StorageError,
    TransientError,
)

__all__ = [
    "KINDS",
    "ServiceError",
    "decode_answer",
    "encode_answer",
    "error_payload",
    "error_status",
    "stats_payload",
    "validate_query_request",
]

#: the query languages the service exposes
KINDS = ("xpath", "twig", "cq", "datalog")

#: degradation policies accepted on the wire (mirrors Database.ON_ERROR_POLICIES)
_POLICIES = ("raise", "fallback", "partial")


class ServiceError(ReproError):
    """A request the service refuses: carries the HTTP status and a
    machine-readable code alongside the human message.

    ``retry_after`` (seconds, optional) marks refusals the client
    should simply retry later — overload sheds, open circuits, drains.
    The HTTP layer renders it as a ``Retry-After`` header and the
    load generator's backoff honors it.
    """

    def __init__(
        self,
        message: str,
        status: int = 400,
        code: str = "bad-request",
        retry_after: "float | None" = None,
    ):
        super().__init__(message)
        self.status = int(status)
        self.code = code
        self.retry_after = retry_after


# ---------------------------------------------------------------------------
# answers
# ---------------------------------------------------------------------------


def encode_answer(answer: Any) -> list:
    """A canonical JSON rendering of an engine answer set.

    Node answers (sets of ints) become a sorted int list; tuple answers
    (twig/cq matches) a sorted list of int lists.  Sorting makes the
    encoding a pure function of the answer *set*, so equal answers are
    byte-identical once JSON-serialized with sorted keys.
    """
    items = list(answer)
    if not items:
        return []
    if isinstance(items[0], tuple):
        return [list(map(int, row)) for row in sorted(items)]
    return sorted(int(v) for v in items)


def decode_answer(payload: Any) -> Any:
    """The inverse of :func:`encode_answer`: a set of ints or tuples."""
    if not isinstance(payload, list):
        raise ServiceError(
            f"answer payload must be a list, got {type(payload).__name__}"
        )
    out_nodes: set[int] = set()
    out_rows: set[tuple[int, ...]] = set()
    for item in payload:
        if isinstance(item, list):
            out_rows.add(tuple(int(v) for v in item))
        else:
            out_nodes.add(int(item))
    if out_rows and out_nodes:
        raise ServiceError("answer payload mixes node and tuple rows")
    return out_rows if out_rows else out_nodes


# ---------------------------------------------------------------------------
# stats
# ---------------------------------------------------------------------------


def stats_payload(stats: Any) -> dict:
    """The wire form of an :class:`~repro.engine.stats.ExecutionStats`."""
    payload = {
        "kind": stats.kind,
        "strategy": stats.strategy,
        "reason": stats.reason,
        "elapsed_ms": round(stats.elapsed_ms, 3),
        "answer_size": stats.answer_size,
        "index_built": stats.index_built,
        "index_hits": stats.index_hits,
        "degraded": stats.degraded,
    }
    if getattr(stats, "trace_id", None) is not None:
        payload["trace_id"] = stats.trace_id
    if stats.fallback_from:
        payload["fallback_from"] = list(stats.fallback_from)
    if stats.faults:
        payload["faults"] = list(stats.faults)
    if len(stats.attempts) > 1:
        payload["attempts"] = [
            {
                "strategy": a.strategy,
                "outcome": a.outcome,
                "error": a.error,
                "elapsed_ms": round(a.elapsed_s * 1e3, 3),
                "trace_id": a.trace_id,
            }
            for a in stats.attempts
        ]
    return payload


# ---------------------------------------------------------------------------
# requests
# ---------------------------------------------------------------------------


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ServiceError(message)


def validate_query_request(obj: Any) -> dict:
    """Check one query-request object; returns normalized Database kwargs.

    The returned dict has ``kind``, ``query``, ``strategy`` plus the
    supervision keywords (``deadline`` in seconds, ``max_visited``,
    ``retries``, ``on_error``) and ``query_pred`` — exactly the shape
    :meth:`QueryService.query` passes to the engine.  Violations raise
    :class:`ServiceError` (HTTP 400) naming the offending field.
    """
    _require(isinstance(obj, Mapping), "query request must be a JSON object")
    unknown = set(obj) - {
        "kind", "query", "strategy", "deadline_ms", "max_visited",
        "retries", "on_error", "query_pred",
    }
    _require(not unknown, f"unknown request fields: {', '.join(sorted(unknown))}")
    kind = obj.get("kind")
    _require(kind in KINDS, f"'kind' must be one of {', '.join(KINDS)}; got {kind!r}")
    query = obj.get("query")
    _require(
        isinstance(query, str) and bool(query.strip()),
        "'query' must be a non-empty string",
    )
    strategy = obj.get("strategy", "auto")
    _require(
        isinstance(strategy, str) and bool(strategy),
        "'strategy' must be a strategy name, 'auto' or omitted",
    )
    deadline_ms = obj.get("deadline_ms")
    if deadline_ms is not None:
        _require(
            isinstance(deadline_ms, (int, float)) and not isinstance(deadline_ms, bool)
            and deadline_ms >= 0,
            "'deadline_ms' must be a non-negative number",
        )
    max_visited = obj.get("max_visited")
    if max_visited is not None:
        _require(
            isinstance(max_visited, int) and not isinstance(max_visited, bool)
            and max_visited > 0,
            "'max_visited' must be a positive integer",
        )
    retries = obj.get("retries", 0)
    _require(
        isinstance(retries, int) and not isinstance(retries, bool) and retries >= 0,
        "'retries' must be a non-negative integer",
    )
    on_error = obj.get("on_error", "raise")
    _require(
        on_error in _POLICIES,
        f"'on_error' must be one of {', '.join(_POLICIES)}; got {on_error!r}",
    )
    query_pred = obj.get("query_pred")
    if query_pred is not None:
        _require(
            isinstance(query_pred, str) and kind == "datalog",
            "'query_pred' must be a string and applies to datalog only",
        )
    return {
        "kind": kind,
        "query": query,
        "strategy": strategy,
        "deadline": deadline_ms / 1000.0 if deadline_ms is not None else None,
        "max_visited": max_visited,
        "retries": retries,
        "on_error": on_error,
        "query_pred": query_pred,
    }


# ---------------------------------------------------------------------------
# the error taxonomy
# ---------------------------------------------------------------------------


def error_status(exc: BaseException) -> "tuple[int, str]":
    """The (HTTP status, machine code) of an exception, per the module
    table.  Subclass checks run most-specific-first, so e.g.
    :class:`InjectedFault` (an EvaluationError) keeps its own code."""
    if isinstance(exc, ServiceError):
        return exc.status, exc.code
    if isinstance(exc, ResourceBudgetExceeded):
        return 429, "budget-exhausted"
    if isinstance(exc, AllStrategiesFailedError):
        return 503, "all-strategies-failed"
    if isinstance(exc, TransientError):
        return 503, "transient-failure"
    if isinstance(exc, InjectedFault):
        return 500, "injected-fault"
    if isinstance(exc, ParseError):
        return 400, "parse-error"
    if isinstance(exc, QueryError):
        return 400, "bad-query"
    if isinstance(exc, StorageError):
        return 500, "storage-error"
    if isinstance(exc, EvaluationError):
        return 500, "evaluation-failed"
    return 500, "internal-error"


def error_payload(
    exc: BaseException, trace_id: "str | None" = None
) -> "tuple[int, dict]":
    """The full (status, JSON body) of an error response.

    ``trace_id`` (the request's id, when the HTTP layer knows it) rides
    inside the error object so a failing client can quote exactly which
    trace to pull from ``/debug/traces/<id>`` or ``repro trace show``.
    """
    status, code = error_status(exc)
    error: dict = {
        "code": code,
        "type": type(exc).__name__,
        "message": str(exc),
    }
    if trace_id is not None:
        error["trace_id"] = trace_id
    retry_after = getattr(exc, "retry_after", None)
    if retry_after is not None:
        error["retry_after"] = round(float(retry_after), 3)
    return status, {"error": error}
