"""The query service application and its threaded HTTP server.

The service is three nested pieces:

- :class:`StoreRegistry` — named document stores (name → loaded
  :class:`~repro.engine.database.Database` + metadata) behind a lock,
  so PUT/DELETE from one connection never corrupts a query running on
  another.
- :class:`QueryService` — the transport-independent application:
  every operation is a plain method returning ``(status, payload)``,
  wrapped by the per-request observability middleware
  (:meth:`QueryService.observe`) that opens a ``repro.obs`` span
  context, folds request latency into the process duration histograms
  (``service.request`` plus ``service.<route>``) and counts
  requests/errors — so ``GET /metrics`` exposes live tail latencies
  per route in OpenMetrics form.
- :class:`make_server` / :func:`serve` — a stdlib
  ``ThreadingHTTPServer`` speaking the JSON protocol of
  :mod:`repro.service.protocol`.  One thread per connection; the
  engine underneath is safe for concurrent *queries* on a shared
  Database (PR 7's concurrency battery pins this), while store
  replacement swaps whole Database objects atomically.

Two failure boundaries are fault-injection sites
(docs/ROBUSTNESS.md): ``service.decode`` corrupts/fails the request
body read, ``service.handler`` trips request dispatch — chaos rules
like ``service.*:error`` prove the server answers *degraded, typed*
errors rather than wrong answers.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from contextlib import contextmanager
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any
from urllib.parse import parse_qs, urlsplit

from repro.engine import Database
from repro.errors import ReproError
from repro.faults import faultpoint, register_site
from repro.obs.context import Observation, current, observed
from repro.obs.events import EVENT_SCHEMA, EventLogWriter, TraceBuffer
from repro.obs.export import trace_to_dict
from repro.obs.metrics import METRICS
from repro.obs.sampling import TraceSampler, new_trace_id
from repro.obs.tracer import Tracer
from repro.service.protocol import (
    ServiceError,
    encode_answer,
    error_payload,
    error_status,
    stats_payload,
    validate_query_request,
)
from repro.service.resilience import (
    AdmissionController,
    BreakerBoard,
    CircuitOpenError,
    DeadlineClock,
    DeadlineExceededError,
    DrainingError,
    OverloadedError,
    counts_against_breaker,
    parse_deadline_ms,
)

__all__ = ["QueryService", "StoreRegistry", "make_server", "serve"]

#: typed refusals the middleware counts as load-shedding, not failures
_REFUSALS = (OverloadedError, DeadlineExceededError, CircuitOpenError, DrainingError)

register_site("service.decode", "HTTP request body read/decode")
register_site("service.handler", "HTTP request dispatch")

#: refuse request bodies larger than this (a 256 MiB document is far
#: beyond what the in-memory engine should be fed over one request)
MAX_BODY_BYTES = 256 * 1024 * 1024

#: upper bound on queries per batch request
MAX_BATCH = 1024

_NAME_OK = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._-"
)

#: characters a client-supplied ``X-Repro-Trace`` id may use; anything
#: else (or an unreasonable length) is ignored and a fresh id issued —
#: the id is echoed in response headers, so it must never carry CR/LF
#: or other header-splitting material
_TRACE_ID_OK = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789-_"
)


def _clean_trace_id(raw: "str | None") -> "str | None":
    """A client trace id, or None when absent/unusable."""
    if not raw:
        return None
    raw = raw.strip()
    if not 8 <= len(raw) <= 128 or not set(raw) <= _TRACE_ID_OK:
        return None
    return raw


def _check_store_name(name: str) -> str:
    if not name or len(name) > 64 or not set(name) <= _NAME_OK:
        raise ServiceError(
            f"store name {name!r} must be 1-64 chars from [A-Za-z0-9._-]",
            status=400,
            code="bad-store-name",
        )
    return name


def _chop_bytes(payload: bytes, rng) -> bytes:
    """Corruption mutator for the ``service.decode`` site."""
    if not isinstance(payload, (bytes, bytearray)) or len(payload) < 2:
        return b""
    return bytes(payload[: rng.randrange(1, len(payload))])


class StoreRegistry:
    """Named document stores: name → (Database, metadata)."""

    def __init__(self):
        self._stores: dict[str, dict[str, Any]] = {}
        self._lock = threading.RLock()

    def put(self, name: str, db: Database, source: str = "inline") -> dict:
        """Install (or replace) a store; returns its metadata record."""
        _check_store_name(name)
        entry = {
            "name": name,
            "nodes": db.tree.n,
            "source": source,
            "columns": getattr(db.index, "columns_mode", "off")
            if db.has_index
            else (db._columns or "default"),
            "created_at": time.time(),
            "db": db,
        }
        with self._lock:
            replaced = name in self._stores
            self._stores[name] = entry
        entry = dict(entry)
        entry["replaced"] = replaced
        return entry

    def get(self, name: str) -> Database:
        with self._lock:
            entry = self._stores.get(name)
        if entry is None:
            raise ServiceError(
                f"no store named {name!r}", status=404, code="store-not-found"
            )
        return entry["db"]

    def info(self, name: str) -> dict:
        with self._lock:
            entry = self._stores.get(name)
        if entry is None:
            raise ServiceError(
                f"no store named {name!r}", status=404, code="store-not-found"
            )
        db: Database = entry["db"]
        return {
            "name": entry["name"],
            "nodes": entry["nodes"],
            "source": entry["source"],
            "created_at": entry["created_at"],
            "indexed": db.has_index,
            "queries_served": len(db.history),
            "plan_cache": db.plan_cache.info(),
        }

    def delete(self, name: str) -> None:
        with self._lock:
            if name not in self._stores:
                raise ServiceError(
                    f"no store named {name!r}", status=404, code="store-not-found"
                )
            del self._stores[name]

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._stores)

    def __len__(self) -> int:
        with self._lock:
            return len(self._stores)


class QueryService:
    """The transport-independent application behind the HTTP handler.

    Every public operation returns ``(status, payload)`` and raises
    nothing the protocol cannot map — the HTTP layer (and the tests,
    which call these methods directly) wrap each call in
    :meth:`observe` and :func:`repro.service.protocol.error_payload`.
    """

    def __init__(
        self,
        stores: "StoreRegistry | None" = None,
        columns: "str | None" = None,
        plan_cache: "int | None" = None,
        max_concurrency: "int | None" = None,
        queue_limit: int = 16,
        breaker_threshold: int = 5,
        breaker_cooldown_s: float = 5.0,
        breaker_seed: int = 0,
        sampler: "TraceSampler | None" = None,
        event_log: "EventLogWriter | None" = None,
        slow_ms: "float | None" = None,
        trace_capacity: int = 256,
    ):
        self.stores = stores if stores is not None else StoreRegistry()
        self.default_columns = columns
        self.default_plan_cache = plan_cache
        self.started_at = time.time()
        self.admission = AdmissionController(
            max_concurrency=max_concurrency, queue_limit=queue_limit
        )
        self.breakers = BreakerBoard(
            threshold=breaker_threshold,
            cooldown_s=breaker_cooldown_s,
            seed=breaker_seed,
        )
        #: retention policy for request traces (head/tail/error sampling)
        self.sampler = sampler if sampler is not None else TraceSampler()
        #: most recent retained traces, behind GET /debug/traces
        self.traces = TraceBuffer(trace_capacity)
        #: optional JSONL event log (one record per request)
        self.event_log = event_log
        #: log requests at least this slow to stderr (None disables)
        self.slow_ms = slow_ms

    # -- middleware --------------------------------------------------------

    @contextmanager
    def observe(self, route: str, trace_id: "str | None" = None):
        """Per-request observability: a fresh Observation context for
        the request thread, latency folded into ``service.request`` and
        ``service.<route>`` histograms, request/error counters.

        This is also the tracing middleware: the request gets a trace
        id (the client's via ``X-Repro-Trace``, or a fresh one) and —
        when the sampler says to record — a :class:`Tracer` whose open
        ``request:<route>`` root the engine's supervised path nests its
        spans under.  On exit the sampler makes the final retention
        call; retained traces land in the in-memory ring
        (``/debug/traces``) and every request emits one summary record
        to the event log when one is configured.  Telemetry failures
        (including injected ``obs.sample`` faults) degrade to counted
        drops, never to request failures.
        """
        if trace_id is None:
            trace_id = new_trace_id()
        tracer = None
        try:
            # the sampling fault boundary: an injected fault here must
            # cost at most the trace (degrade to "not recorded")
            faultpoint("obs.sample", trace_id)
            if self.sampler.record(trace_id):
                tracer = Tracer()
        except Exception:
            METRICS.add("obs.sample_dropped")
        obs = Observation(tracer=tracer, trace_id=trace_id)
        start = time.perf_counter()
        outcome = "error"
        try:
            with observed(obs):
                with obs.span("request:" + route):
                    yield obs
            outcome = "ok"
        except _REFUSALS:
            # a typed refusal (shed / deadline / open circuit / drain)
            # is the service *working as designed* under pressure, not
            # a failure — it gets its own counter, never service.errors
            outcome = "refused"
            raise
        except Exception as exc:
            # the same machine-readable code the error payload carries,
            # so event-log records join cleanly against client reports
            obs.annotate(
                error=type(exc).__name__, error_code=error_status(exc)[1]
            )
            raise
        finally:
            elapsed = time.perf_counter() - start
            for name, value in obs.counters.items():
                METRICS.add(name, value)
            METRICS.observe_duration("service.request", elapsed)
            METRICS.observe_duration("service." + route, elapsed)
            METRICS.add("service.requests")
            if outcome == "error":
                METRICS.add("service.errors")
            elif outcome == "refused":
                METRICS.add("service.refusals")
            try:
                self._finish_request(trace_id, route, outcome, elapsed, obs)
            except Exception:  # telemetry must never fail a request
                METRICS.add("obs.telemetry_dropped")

    def _finish_request(
        self,
        trace_id: str,
        route: str,
        outcome: str,
        elapsed: float,
        obs: Observation,
    ) -> None:
        """Retention decision + event record for one finished request."""
        retained_by = None
        try:
            faultpoint("obs.sample", trace_id)
            retained_by = self.sampler.retain(
                trace_id, elapsed, failed=outcome == "error"
            )
        except Exception:
            METRICS.add("obs.sample_dropped")
        record: dict[str, Any] = {
            "schema": EVENT_SCHEMA,
            "trace_id": trace_id,
            "route": route,
            "outcome": outcome,
            "duration_ms": round(elapsed * 1e3, 3),
            "sampled": retained_by is not None,
        }
        if retained_by is not None:
            record["retained_by"] = retained_by
        if obs.meta:
            record.update(obs.meta)
        tracer = obs.tracer
        if retained_by is not None and tracer is not None and tracer.root is not None:
            record["spans"] = trace_to_dict(tracer.root)
        if retained_by is not None:
            self.traces.add(record)
        if self.event_log is not None:
            self.event_log.submit(record)
        if self.slow_ms is not None and elapsed * 1e3 >= self.slow_ms:
            METRICS.add("service.slow_requests")
            print(
                f"[repro.service] slow request trace={trace_id} "
                f"route={route} {elapsed * 1e3:.1f} ms "
                f"(threshold {self.slow_ms:g} ms)",
                file=sys.stderr,
            )

    @contextmanager
    def _admitted(self, deadline: "DeadlineClock | None"):
        """Admission + deadline gate around one unit of store work.

        Refuses before any engine work happens: 503 while draining,
        504 when the request's deadline is already spent (or expires
        while queued — the queue wait is charged against the same
        clock), 429 when both the in-flight gauge and the queue are
        full.  On admit, yields after subtracting queue-wait so the
        caller sees only the budget that is actually left.
        """
        if deadline is not None:
            deadline.check("before admission")
        self.admission.admit(deadline)
        try:
            if deadline is not None:
                deadline.check("after queue wait")
            yield
        finally:
            self.admission.release()

    def _breaker_run(self, name: str, work):
        """Run store work behind the store's circuit breaker."""
        breaker = self.breakers.lease(name)
        breaker.check()
        try:
            result = work()
        except BaseException as exc:
            if counts_against_breaker(exc):
                breaker.record_failure()
            else:
                breaker.record_success()
            raise
        breaker.record_success()
        return result

    # -- operations --------------------------------------------------------

    def health(self) -> "tuple[int, dict]":
        """Liveness: always 200 while the process can answer at all."""
        return 200, {
            "ok": True,
            "stores": len(self.stores),
            "uptime_s": round(time.time() - self.started_at, 3),
            "admission": self.admission.snapshot(),
            "breakers": self.breakers.states(),
        }

    def readiness(self) -> "tuple[int, dict]":
        """Readiness: 503 while draining or under a breaker storm.

        Liveness (``/healthz``) says "don't restart me"; readiness
        says "don't send me traffic".  A draining service and one whose
        breaker board is mostly open are both alive but not ready.
        """
        snapshot = self.admission.snapshot()
        storming = self.breakers.storming()
        ready = not snapshot["draining"] and not storming
        payload = {
            "ready": ready,
            "draining": snapshot["draining"],
            "breaker_storm": storming,
            "in_flight": snapshot["in_flight"],
        }
        return (200 if ready else 503), payload

    # -- lifecycle ---------------------------------------------------------

    def shutdown(self, drain_s: float = 5.0) -> bool:
        """Graceful drain: stop admitting, wait for in-flight work.

        Returns True when the drain finished cleanly inside the window.
        Idempotent; the HTTP server calls this before closing sockets
        (:meth:`ReproServer.shutdown_gracefully`).
        """
        return self.admission.drain(drain_s)

    def metrics_text(self) -> "tuple[int, str]":
        from repro.obs import render_openmetrics

        return 200, render_openmetrics(METRICS)

    def traces_list(self, limit: int = 50) -> "tuple[int, dict]":
        """GET /debug/traces — recent retained traces, newest first."""
        payload = {
            "traces": self.traces.list(limit),
            "sampler": self.sampler.describe(),
        }
        if self.event_log is not None:
            payload["event_log"] = self.event_log.stats()
        return 200, payload

    def trace_get(self, trace_id: str) -> "tuple[int, dict]":
        """GET /debug/traces/{id} — one retained trace, span tree and all."""
        record = self.traces.get(trace_id)
        if record is None:
            raise ServiceError(
                f"no retained trace {trace_id!r} (expired from the ring "
                "buffer, or never sampled)",
                status=404,
                code="trace-not-found",
            )
        return 200, {"trace": record}

    def list_stores(self) -> "tuple[int, dict]":
        return 200, {"stores": [self.stores.info(n) for n in self.stores.names()]}

    def ingest(
        self,
        name: str,
        text: str,
        columns: "str | None" = None,
        plan_cache: "int | None" = None,
        recover: bool = False,
        warm: bool = False,
        source: str = "inline",
        deadline_s: "float | None" = None,
    ) -> "tuple[int, dict]":
        """PUT a document: parse, install, optionally pre-build the index."""
        deadline = DeadlineClock(deadline_s) if deadline_s is not None else None
        with self._admitted(deadline):
            db = Database.from_xml(
                text,
                recover=recover,
                columns=columns if columns is not None else self.default_columns,
                plan_cache=plan_cache if plan_cache is not None
                else self.default_plan_cache,
            )
            if warm:
                db.index  # build eagerly: pay the index once at ingest time
            entry = self.stores.put(name, db, source=source)
            self.breakers.reset(name)  # a fresh document deserves a fresh circuit
        entry.pop("db", None)
        return 201, {"store": entry}

    def store_info(self, name: str) -> "tuple[int, dict]":
        return 200, {"store": self.stores.info(name)}

    def delete_store(self, name: str) -> "tuple[int, dict]":
        self.stores.delete(name)
        self.breakers.reset(name)
        return 200, {"deleted": name}

    def query(
        self, name: str, request_obj: Any, deadline_s: "float | None" = None
    ) -> "tuple[int, dict]":
        """POST /stores/{name}/query — one engine call.

        ``deadline_s`` (from ``X-Repro-Deadline-Ms``) and the body's
        ``deadline_ms`` share one clock: the engine receives the
        tighter of the two, minus whatever admission queueing already
        spent.
        """
        spec = validate_query_request(request_obj)
        deadline = (
            DeadlineClock(deadline_s)
            if deadline_s is not None
            else (DeadlineClock(spec["deadline"]) if spec["deadline"] is not None
                  else None)
        )
        with self._admitted(deadline):
            db = self.stores.get(name)
            if deadline is not None:
                spec = dict(spec, deadline=deadline.engine_deadline(spec["deadline"]))
            result = self._breaker_run(name, lambda: self._run(db, spec))
        ctx = current()
        if ctx is not None:  # event-log fields for the request record
            ctx.annotate(
                store=name,
                kind=spec["kind"],
                strategy=result.stats.strategy,
                attempts=len(result.stats.attempts),
            )
        return 200, {
            "kind": spec["kind"],
            "answer": encode_answer(result.answer),
            "stats": stats_payload(result.stats),
        }

    def batch(
        self, name: str, request_obj: Any, deadline_s: "float | None" = None
    ) -> "tuple[int, dict]":
        """POST /stores/{name}/batch — many queries, per-item outcomes.

        The batch itself always answers 200; each item carries either
        its answer or its own typed error, so one bad query (or one
        budget exhaustion) degrades that item only.
        """
        if not isinstance(request_obj, dict) or not isinstance(
            request_obj.get("queries"), list
        ):
            raise ServiceError("batch request must be {'queries': [...]}")
        queries = request_obj["queries"]
        if len(queries) > MAX_BATCH:
            raise ServiceError(
                f"batch of {len(queries)} exceeds the {MAX_BATCH}-query cap",
                status=400,
                code="batch-too-large",
            )
        deadline = DeadlineClock(deadline_s) if deadline_s is not None else None
        results = []
        failed = 0
        with self._admitted(deadline):
            db = self.stores.get(name)
            for item in queries:
                try:
                    # the whole batch shares one admission slot and one
                    # deadline clock; each item re-checks both the clock
                    # and the store's breaker so a batch cannot outlive
                    # its window or hammer an open circuit
                    if deadline is not None:
                        deadline.check("between batch items")
                    spec = validate_query_request(item)
                    if deadline is not None:
                        spec = dict(
                            spec, deadline=deadline.engine_deadline(spec["deadline"])
                        )
                    result = self._breaker_run(name, lambda: self._run(db, spec))
                    results.append(
                        {
                            "ok": True,
                            "kind": spec["kind"],
                            "answer": encode_answer(result.answer),
                            "stats": stats_payload(result.stats),
                        }
                    )
                except Exception as exc:  # each item degrades independently
                    status, payload = error_payload(exc)
                    failed += 1
                    results.append({"ok": False, "status": status, **payload})
        return 200, {"results": results, "total": len(results), "failed": failed}

    @staticmethod
    def _run(db: Database, spec: dict):
        supervision = {
            "deadline": spec["deadline"],
            "max_visited": spec["max_visited"],
            "retries": spec["retries"],
            "on_error": spec["on_error"],
        }
        if spec["kind"] == "datalog":
            return db.datalog(
                spec["query"], spec["strategy"], spec["query_pred"], **supervision
            )
        return db.run(spec["kind"], spec["query"], spec["strategy"], **supervision)


# ---------------------------------------------------------------------------
# the HTTP layer
# ---------------------------------------------------------------------------


class _Handler(BaseHTTPRequestHandler):
    """Routes the JSON protocol onto a :class:`QueryService`.

    ==================================  =========================================
    route                               operation
    ==================================  =========================================
    ``GET  /healthz``                   liveness + admission/breaker state
    ``GET  /readyz``                    readiness (503 while draining or
                                        under a breaker storm)
    ``GET  /metrics``                   OpenMetrics exposition of ``METRICS``
    ``GET  /debug/traces``              recent retained traces (``?limit=``)
    ``GET  /debug/traces/{id}``         one retained trace with its span tree
    ``GET  /stores``                    list stores with metadata
    ``PUT  /stores/{name}``             ingest XML body (``?columns=&plan_cache=
                                        &recover=&warm=``)
    ``GET  /stores/{name}``             store info (index state, plan cache)
    ``DELETE /stores/{name}``           drop a store
    ``POST /stores/{name}/query``       one query (JSON body)
    ``POST /stores/{name}/batch``       many queries, per-item outcomes
    ==================================  =========================================
    """

    server_version = "repro-service/1.0"
    protocol_version = "HTTP/1.1"

    # -- plumbing ----------------------------------------------------------

    def log_message(self, format: str, *args: Any) -> None:
        if getattr(self.server, "verbose", False):  # pragma: no cover
            super().log_message(format, *args)

    @property
    def service(self) -> QueryService:
        return self.server.service  # type: ignore[attr-defined]

    def _read_body(self) -> bytes:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise ServiceError(
                f"request body of {length} bytes exceeds the "
                f"{MAX_BODY_BYTES}-byte cap",
                status=413,
                code="body-too-large",
            )
        body = self.rfile.read(length) if length else b""
        return faultpoint("service.decode", body, mutator=_chop_bytes)

    def _json_body(self) -> Any:
        body = self._read_body()
        try:
            return json.loads(body.decode("utf-8")) if body else {}
        except (UnicodeDecodeError, ValueError) as exc:
            raise ServiceError(
                f"request body is not valid JSON: {exc}", code="bad-json"
            ) from exc

    def _send_json(
        self, status: int, payload: Any, retry_after: "float | None" = None
    ) -> None:
        body = json.dumps(
            payload, sort_keys=True, separators=(",", ":")
        ).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        trace_id = getattr(self, "_trace_id", None)
        if trace_id:
            self.send_header("X-Repro-Trace", trace_id)
        if retry_after is not None:
            # RFC 9110 wants an integer number of seconds; round up so
            # "come back in 0.3s" never becomes "come back immediately"
            self.send_header("Retry-After", str(max(1, int(-(-retry_after // 1)))))
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, text: str, content_type: str) -> None:
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    # -- dispatch ----------------------------------------------------------

    def _route(self, method: str) -> None:
        split = urlsplit(self.path)
        parts = [p for p in split.path.split("/") if p]
        params = {k: v[-1] for k, v in parse_qs(split.query).items()}
        route = "unknown"
        # reset per request (handler instances persist across keep-alive
        # requests); set before anything can raise so the error path
        # always has this request's id, not the previous one's
        self._trace_id = _clean_trace_id(self.headers.get("X-Repro-Trace"))
        try:
            self._deadline_s = parse_deadline_ms(
                self.headers.get("X-Repro-Deadline-Ms")
            )
            route, handler = self._match(method, parts)
            with self.service.observe(route, trace_id=self._trace_id) as obs:
                self._trace_id = obs.trace_id
                faultpoint("service.handler")
                status, payload = handler(params)
            if isinstance(payload, str):
                content_type = (
                    "application/openmetrics-text" if route == "metrics"
                    else "text/plain"
                )
                self._send_text(status, payload, content_type)
            else:
                if isinstance(payload, dict) and "trace_id" not in payload:
                    payload["trace_id"] = self._trace_id
                self._send_json(status, payload)
        except Exception as exc:
            status, payload = error_payload(
                exc, trace_id=getattr(self, "_trace_id", None)
            )
            if not isinstance(exc, (ServiceError, ReproError)):
                METRICS.add("service.unexpected_errors")
            try:
                self._send_json(
                    status, payload, retry_after=getattr(exc, "retry_after", None)
                )
            except Exception:  # pragma: no cover - client went away
                pass

    def _match(self, method: str, parts: "list[str]"):
        svc = self.service
        if method == "GET" and parts == ["healthz"]:
            return "healthz", lambda params: svc.health()
        if method == "GET" and parts == ["readyz"]:
            return "readyz", lambda params: svc.readiness()
        if method == "GET" and parts == ["metrics"]:
            return "metrics", lambda params: svc.metrics_text()
        if method == "GET" and parts == ["debug", "traces"]:
            def traces(params):
                try:
                    limit = int(params.get("limit", "50"))
                except ValueError:
                    raise ServiceError(
                        f"limit must be an integer, got {params['limit']!r}",
                        code="bad-limit",
                    )
                return svc.traces_list(limit)
            return "debug.traces", traces
        if (
            method == "GET"
            and len(parts) == 3
            and parts[0] == "debug"
            and parts[1] == "traces"
        ):
            trace_id = parts[2]
            return "debug.trace", lambda params: svc.trace_get(trace_id)
        if method == "GET" and parts == ["stores"]:
            return "stores.list", lambda params: svc.list_stores()
        if len(parts) == 2 and parts[0] == "stores":
            name = parts[1]
            if method == "PUT":
                def put(params):
                    text = self._read_body().decode("utf-8", errors="strict")
                    return svc.ingest(
                        name,
                        text,
                        columns=params.get("columns"),
                        plan_cache=int(params["plan_cache"])
                        if "plan_cache" in params else None,
                        recover=params.get("recover", "0") in ("1", "true"),
                        warm=params.get("warm", "0") in ("1", "true"),
                        source="http-put",
                        deadline_s=self._deadline_s,
                    )
                return "stores.put", put
            if method == "GET":
                return "stores.get", lambda params: svc.store_info(name)
            if method == "DELETE":
                return "stores.delete", lambda params: svc.delete_store(name)
        if len(parts) == 3 and parts[0] == "stores" and method == "POST":
            name, op = parts[1], parts[2]
            if op == "query":
                return "query", lambda params: svc.query(
                    name, self._json_body(), deadline_s=self._deadline_s
                )
            if op == "batch":
                return "batch", lambda params: svc.batch(
                    name, self._json_body(), deadline_s=self._deadline_s
                )
        raise ServiceError(
            f"no route for {method} {'/' + '/'.join(parts)}",
            status=404,
            code="no-such-route",
        )

    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        self._route("GET")

    def do_PUT(self) -> None:  # noqa: N802
        self._route("PUT")

    def do_POST(self) -> None:  # noqa: N802
        self._route("POST")

    def do_DELETE(self) -> None:  # noqa: N802
        self._route("DELETE")


class ReproServer(ThreadingHTTPServer):
    """One thread per connection; workers die with the process."""

    daemon_threads = True
    allow_reuse_address = True
    # overload must surface as a typed 429 from admission control, not
    # as kernel RSTs — the stdlib default accept backlog of 5 drops
    # connection bursts before the service ever sees them
    request_queue_size = 128

    def __init__(self, address, service: QueryService, verbose: bool = False):
        super().__init__(address, _Handler)
        self.service = service
        self.verbose = verbose

    def shutdown_gracefully(self, drain_s: float = 5.0) -> bool:
        """Drain in-flight requests, then stop the accept loop.

        New work is refused (503 ``draining``) the moment the drain
        starts while health/readiness probes keep answering, so a
        balancer sees ``/readyz`` flip before the socket closes.  Must
        be called off the ``serve_forever`` thread (as
        ``ThreadingHTTPServer.shutdown`` must).  Returns True when all
        in-flight requests finished inside the drain window.
        """
        clean = self.service.shutdown(drain_s)
        self.shutdown()
        return clean


def make_server(
    service: "QueryService | None" = None,
    host: str = "127.0.0.1",
    port: int = 0,
    verbose: bool = False,
) -> ReproServer:
    """A bound (not yet serving) server; ``port=0`` picks a free port.

    The caller drives it: ``server.serve_forever()`` inline, or on a
    thread for tests and the load generator::

        server = make_server(service)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        ...
        server.shutdown()
    """
    return ReproServer((host, port), service or QueryService(), verbose=verbose)


def serve(
    service: "QueryService | None" = None,
    host: str = "127.0.0.1",
    port: int = 8008,
    verbose: bool = True,
    drain_s: float = 5.0,
) -> None:
    """Run the server until interrupted (the ``repro serve`` command).

    SIGTERM triggers a graceful drain: stop admitting, finish in-flight
    requests up to ``drain_s`` seconds, then close.  The drain runs on
    a helper thread because ``shutdown()`` deadlocks when called from
    the ``serve_forever`` thread itself.
    """
    import signal

    server = make_server(service, host, port, verbose=verbose)

    def _drain_and_stop(signum, frame):  # pragma: no cover - signal path
        threading.Thread(
            target=server.shutdown_gracefully, args=(drain_s,), daemon=True
        ).start()

    try:
        previous = signal.signal(signal.SIGTERM, _drain_and_stop)
    except ValueError:  # pragma: no cover - not on the main thread
        previous = None
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        server.service.shutdown(drain_s)
    finally:
        if previous is not None:  # pragma: no branch
            try:
                signal.signal(signal.SIGTERM, previous)
            except ValueError:  # pragma: no cover
                pass
        server.server_close()
