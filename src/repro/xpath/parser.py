"""Concrete syntax for Core XPath.

Grammar (axis names as in the paper or their XPath aliases; ``^-1``
marks an inverse axis)::

    path      := union
    union     := sequence ( ("union" | "|") sequence )*
    sequence  := step ( "/" step )*
    step      := axisname [ "::" label ] ( "[" qual "]" )*
    axisname  := e.g. Child, Descendant, child, following-sibling,
                 Parent, Child^-1, Self, ...
    qual      := or_q
    or_q      := and_q ( "or" and_q )*
    and_q     := not_q ( "and" not_q )*
    not_q     := "not" "(" qual ")" | "(" qual ")" | "lab()" "=" label
               | path

``axis::L`` is sugar for ``axis[lab() = L]``.  Examples::

    Child/Descendant[lab() = a]
    descendant::section[child::title and not(following-sibling::section)]
"""

from __future__ import annotations

import re

from repro.errors import ParseError, UnsupportedAxisError
from repro.trees.axes import inverse_axis, resolve_axis
from repro.xpath.ast import (
    AndQual,
    AxisStep,
    LabelTest,
    NotQual,
    OrQual,
    Path,
    PathQualifier,
    PositionTest,
    UnionExpr,
    XPathExpr,
    Qualifier,
)

__all__ = ["parse_xpath"]

_TOKEN = re.compile(
    r"\s*(?:"
    r"(?P<dslash>//)"
    r"|(?P<punct>::|!=|<=|>=|[\[\]()/|=<>])"
    # '=' inside a name supports attribute labels like @class=product;
    # the '=' after lab() still lexes as punctuation because the punct
    # alternative is tried first at its position
    r"|(?P<name>[\w@.\-^+*][\w@.\-^+*=]*(?:\(\))?)"
    r")"
)

_KEYWORDS = {"and", "or", "not", "union", "lab()"}


class _Tokens:
    def __init__(self, text: str):
        self.text = text
        self.items: list[tuple[str, int]] = []
        pos = 0
        while pos < len(text):
            match = _TOKEN.match(text, pos)
            if match is None or match.end() == pos:
                if text[pos:].strip():
                    raise ParseError(f"bad token in XPath", position=pos)
                break
            token = match.group("dslash") or match.group("punct") or match.group(
                "name"
            )
            self.items.append((token, match.start()))
            pos = match.end()
        self.i = 0

    def peek(self) -> str | None:
        return self.items[self.i][0] if self.i < len(self.items) else None

    def next(self) -> str:
        if self.i >= len(self.items):
            raise ParseError("unexpected end of XPath expression")
        token, _ = self.items[self.i]
        self.i += 1
        return token

    def expect(self, token: str) -> None:
        got = self.next()
        if got != token:
            raise ParseError(f"expected {token!r}, got {got!r}")


def parse_xpath(text: str) -> XPathExpr:
    """Parse a Core XPath expression."""
    tokens = _Tokens(text)
    expr = _parse_union(tokens)
    if tokens.peek() is not None:
        raise ParseError(f"trailing input after XPath: {tokens.peek()!r}")
    return expr


def _parse_union(tokens: _Tokens) -> XPathExpr:
    left = _parse_sequence(tokens)
    while tokens.peek() in ("union", "|"):
        tokens.next()
        right = _parse_sequence(tokens)
        left = UnionExpr(left, right)
    return left


def _parse_sequence(tokens: _Tokens) -> XPathExpr:
    # allow a leading '(' grouping a union
    left = _parse_step_or_group(tokens)
    while tokens.peek() in ("/", "//"):
        sep = tokens.next()
        if sep == "//":
            left = Path(left, AxisStep("Child*"))
        right = _parse_step_or_group(tokens)
        left = Path(left, right)
    return left


def _parse_step_or_group(tokens: _Tokens) -> XPathExpr:
    if tokens.peek() == "(":
        tokens.next()
        inner = _parse_union(tokens)
        tokens.expect(")")
        # (p)[q] filters the result nodes of p by q: push the qualifier
        # onto the last step(s), distributing over unions
        while tokens.peek() == "[":
            tokens.next()
            q = _parse_qualifier(tokens)
            tokens.expect("]")
            inner = _attach_qualifier(inner, q)
        return inner
    return _parse_step(tokens)


def _attach_qualifier(expr: XPathExpr, q: Qualifier) -> XPathExpr:
    """Filter the result nodes of ``expr`` by ``q``: attach to the final
    step, distributing over unions."""
    if isinstance(expr, AxisStep):
        return expr.with_qualifier(q)
    if isinstance(expr, Path):
        return Path(expr.left, _attach_qualifier(expr.right, q))
    return UnionExpr(
        _attach_qualifier(expr.left, q), _attach_qualifier(expr.right, q)
    )


def _parse_step(tokens: _Tokens) -> AxisStep:
    name = tokens.next()
    axis = _axis_of(name)
    step = AxisStep(axis)
    if tokens.peek() == "::":
        tokens.next()
        label = tokens.next()
        step = step.with_qualifier(LabelTest(label))
    while tokens.peek() == "[":
        tokens.next()
        q = _parse_qualifier(tokens)
        tokens.expect("]")
        step = step.with_qualifier(q)
    return step


def _axis_of(name: str):
    base = name
    inverted = False
    if name.endswith("^-1"):
        base, inverted = name[:-3], True
    try:
        axis = resolve_axis(base)
    except UnsupportedAxisError:
        raise ParseError(f"unknown axis {name!r}") from None
    return inverse_axis(axis) if inverted else axis


def _parse_qualifier(tokens: _Tokens) -> Qualifier:
    return _parse_or(tokens)


def _parse_or(tokens: _Tokens) -> Qualifier:
    left = _parse_and(tokens)
    while tokens.peek() == "or":
        tokens.next()
        left = OrQual(left, _parse_and(tokens))
    return left


def _parse_and(tokens: _Tokens) -> Qualifier:
    left = _parse_not(tokens)
    while tokens.peek() == "and":
        tokens.next()
        left = AndQual(left, _parse_not(tokens))
    return left


def _parse_not(tokens: _Tokens) -> Qualifier:
    token = tokens.peek()
    if token == "not":
        tokens.next()
        tokens.expect("(")
        inner = _parse_qualifier(tokens)
        tokens.expect(")")
        return NotQual(inner)
    if token == "(":
        tokens.next()
        inner = _parse_qualifier(tokens)
        tokens.expect(")")
        return inner
    if token == "lab()":
        tokens.next()
        tokens.expect("=")
        label = tokens.next()
        return LabelTest(label)
    if token == "position()":
        tokens.next()
        op = tokens.next()
        if op not in ("=", "!=", "<", "<=", ">", ">="):
            raise ParseError(f"bad comparison operator {op!r} after position()")
        return PositionTest(op, _parse_position_value(tokens.next()))
    if token == "last()":
        tokens.next()
        return PositionTest("=", "last")
    if token is not None and token.isdigit():
        tokens.next()
        return PositionTest("=", int(token))  # the [k] shorthand
    # otherwise: a path qualifier
    path = _parse_union(tokens)
    return PathQualifier(path)


def _parse_position_value(token: str) -> "int | str":
    if token == "last()":
        return "last"
    if token.isdigit():
        return int(token)
    raise ParseError(f"expected an integer or last() after position(), got {token!r}")
