"""Abstract syntax of Core XPath — the grammar of Section 3, verbatim::

    p    ::= step  |  p/p  |  p ∪ p
    step ::= axis  |  step[q]
    axis ::= arel  |  arel⁻¹  |  Self
    arel ::= Child | Descendant | Descendant-or-self
           | Following-Sibling | Following
    q    ::= p  |  lab() = L  |  q ∧ q  |  q ∨ q  |  ¬q

Expressions are immutable dataclasses.  ``AxisStep`` carries its own
qualifier list, so ``step[q1][q2]`` is one node.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Union

from repro.trees.axes import Axis, resolve_axis

__all__ = [
    "XPathExpr",
    "Qualifier",
    "AxisStep",
    "Path",
    "UnionExpr",
    "LabelTest",
    "PathQualifier",
    "AndQual",
    "OrQual",
    "NotQual",
    "PositionTest",
    "walk_expr",
    "expr_size",
]


@dataclass(frozen=True)
class LabelTest:
    """``lab() = L`` (Q1)."""

    label: str

    def __str__(self) -> str:
        return f"lab() = {self.label}"


@dataclass(frozen=True)
class PathQualifier:
    """A path used as a qualifier: true iff its node set is nonempty (Q2)."""

    path: "XPathExpr"

    def __str__(self) -> str:
        return str(self.path)


@dataclass(frozen=True)
class AndQual:
    left: "Qualifier"
    right: "Qualifier"

    def __str__(self) -> str:
        return f"({self.left} and {self.right})"


@dataclass(frozen=True)
class OrQual:
    left: "Qualifier"
    right: "Qualifier"

    def __str__(self) -> str:
        return f"({self.left} or {self.right})"


@dataclass(frozen=True)
class PositionTest:
    """A positional predicate on a step: ``position() <op> value`` where
    value is an int or "last" (Full-XPath flavor, [33]; the linear
    set-at-a-time evaluator cannot handle these — only the memoized
    denotational one does, which is exactly the [33] situation)."""

    op: str  # "=", "!=", "<", "<=", ">", ">="
    value: "int | str"  # an integer or the string "last"

    def __str__(self) -> str:
        value = "last()" if self.value == "last" else str(self.value)
        return f"position() {self.op} {value}"


@dataclass(frozen=True)
class NotQual:
    operand: "Qualifier"

    def __str__(self) -> str:
        return f"not({self.operand})"


Qualifier = Union[LabelTest, PathQualifier, AndQual, OrQual, NotQual, PositionTest]


@dataclass(frozen=True)
class AxisStep:
    """``axis[q1][q2]...`` — one location step."""

    axis: Axis
    qualifiers: tuple[Qualifier, ...] = ()

    def __post_init__(self):
        object.__setattr__(self, "axis", resolve_axis(self.axis))
        if not isinstance(self.qualifiers, tuple):
            object.__setattr__(self, "qualifiers", tuple(self.qualifiers))

    def with_qualifier(self, q: Qualifier) -> "AxisStep":
        return AxisStep(self.axis, self.qualifiers + (q,))

    def __str__(self) -> str:
        return str(self.axis) + "".join(f"[{q}]" for q in self.qualifiers)


@dataclass(frozen=True)
class Path:
    """``p1/p2`` (P3)."""

    left: "XPathExpr"
    right: "XPathExpr"

    def __str__(self) -> str:
        return f"{self.left}/{self.right}"


@dataclass(frozen=True)
class UnionExpr:
    """``p1 ∪ p2`` (P4)."""

    left: "XPathExpr"
    right: "XPathExpr"

    def __str__(self) -> str:
        return f"({self.left} union {self.right})"


XPathExpr = Union[AxisStep, Path, UnionExpr]


def walk_expr(expr: "XPathExpr | Qualifier") -> Iterator:
    """All AST nodes (paths and qualifiers), pre-order."""
    yield expr
    if isinstance(expr, AxisStep):
        for q in expr.qualifiers:
            yield from walk_expr(q)
    elif isinstance(expr, (Path, UnionExpr)):
        yield from walk_expr(expr.left)
        yield from walk_expr(expr.right)
    elif isinstance(expr, PathQualifier):
        yield from walk_expr(expr.path)
    elif isinstance(expr, (AndQual, OrQual)):
        yield from walk_expr(expr.left)
        yield from walk_expr(expr.right)
    elif isinstance(expr, NotQual):
        yield from walk_expr(expr.operand)


def expr_size(expr: "XPathExpr | Qualifier") -> int:
    """|Q| — the number of AST nodes."""
    return sum(1 for _ in walk_expr(expr))


def steps_of(expr: XPathExpr) -> list[AxisStep]:
    """The top-level step sequence of a union-free path."""
    if isinstance(expr, AxisStep):
        return [expr]
    if isinstance(expr, Path):
        return steps_of(expr.left) + steps_of(expr.right)
    raise ValueError("steps_of is only defined for union-free paths")
