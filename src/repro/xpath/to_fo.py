"""Core XPath → two-variable first-order logic (FO²).

Section 4 of the paper: "Core XPath queries can be translated
efficiently, in linear time, into equivalent FO² queries [57, 9]", which
puts Boolean Core XPath in O(||A||² · |Q|) via the generic FOᵏ bound.

The key to staying inside two variable *names* is that Core XPath's
unary queries and qualifiers denote node *sets*: every intermediate
formula here has exactly one free variable, and composition alternates
the names ``x`` and ``y`` by bijective renaming (``_swap``)::

    S_{i+1}(y)  =  ∃x ( S_i[x] ∧ axis_i(x, y) ∧ quals_i(y) )

where ``S_i[x]`` is S_i with the names x and y exchanged.  Axis
relations stay atoms of the tree signature (each is FO-definable from
Child/NextSibling, cf. §2).  ``variable_width`` of every output is ≤ 2;
the test suite asserts the width and semantic agreement.
"""

from __future__ import annotations

from repro.logic.fo import And, Eq, Exists, FO, Forall, Not, Or, RelAtom
from repro.xpath.ast import (
    AndQual,
    AxisStep,
    LabelTest,
    NotQual,
    OrQual,
    Path,
    PathQualifier,
    Qualifier,
    UnionExpr,
    XPathExpr,
)

__all__ = ["xpath_to_fo2", "selection_formula", "exists_formula"]

X, Y = "x", "y"
_FLIP = {X: Y, Y: X}


def _swap(formula: FO) -> FO:
    """Exchange the names x and y everywhere (a bijective renaming, so
    semantics are preserved with roles flipped)."""
    if isinstance(formula, RelAtom):
        return RelAtom(
            formula.pred, tuple(_FLIP.get(t, t) for t in formula.args)
        )
    if isinstance(formula, Eq):
        return Eq(_FLIP.get(formula.left, formula.left), _FLIP.get(formula.right, formula.right))
    if isinstance(formula, And):
        return And(_swap(formula.left), _swap(formula.right))
    if isinstance(formula, Or):
        return Or(_swap(formula.left), _swap(formula.right))
    if isinstance(formula, Not):
        return Not(_swap(formula.operand))
    if isinstance(formula, Exists):
        return Exists(_FLIP.get(formula.var, formula.var), _swap(formula.body))
    if isinstance(formula, Forall):
        return Forall(_FLIP.get(formula.var, formula.var), _swap(formula.body))
    raise TypeError(f"not an FO formula: {formula!r}")  # pragma: no cover


def _qualifier_at_y(q: Qualifier) -> FO:
    """ψ_q(y): the qualifier holds at the node named y (one free var)."""
    if isinstance(q, LabelTest):
        return RelAtom(f"Lab:{q.label}", (Y,))
    if isinstance(q, AndQual):
        return And(_qualifier_at_y(q.left), _qualifier_at_y(q.right))
    if isinstance(q, OrQual):
        return Or(_qualifier_at_y(q.left), _qualifier_at_y(q.right))
    if isinstance(q, NotQual):
        return Not(_qualifier_at_y(q.operand))
    if isinstance(q, PathQualifier):
        return exists_formula(q.path)
    raise TypeError(f"not a qualifier: {q!r}")  # pragma: no cover


def exists_formula(expr: XPathExpr) -> FO:
    """E[p](y): [[p]](y) ≠ ∅, with one free variable y."""
    return _exists_via(expr, RelAtom("Dom", (Y,)))


def _exists_via(expr: XPathExpr, target: FO) -> FO:
    """Formula (free var y) for: some node reachable from y via ``expr``
    satisfies ``target`` (free var y)."""
    if isinstance(expr, AxisStep):
        at_target = And(target, _true_conj([_qualifier_at_y(q) for q in expr.qualifiers]))
        # ∃x ( axis(y, x) ∧ at_target[x] )
        return Exists(X, And(RelAtom(expr.axis.value, (Y, X)), _swap(at_target)))
    if isinstance(expr, Path):
        return _exists_via(expr.left, _exists_via(expr.right, target))
    if isinstance(expr, UnionExpr):
        return Or(_exists_via(expr.left, target), _exists_via(expr.right, target))
    raise TypeError(f"not an XPath expression: {expr!r}")  # pragma: no cover


def _true_conj(parts: list[FO]) -> FO:
    if not parts:
        return RelAtom("Dom", (Y,))
    out = parts[0]
    for p in parts[1:]:
        out = And(out, p)
    return out


def selection_formula(expr: XPathExpr, context: FO) -> FO:
    """S(y): y ∈ ⋃_{c ⊨ context} [[expr]](c), one free variable y.

    ``context`` must have free variable y (it is swapped to x inside).
    """
    if isinstance(expr, AxisStep):
        quals = _true_conj([_qualifier_at_y(q) for q in expr.qualifiers])
        return Exists(
            X,
            And(
                _swap(context),
                And(RelAtom(expr.axis.value, (X, Y)), quals),
            ),
        )
    if isinstance(expr, Path):
        return selection_formula(expr.right, selection_formula(expr.left, context))
    if isinstance(expr, UnionExpr):
        return Or(
            selection_formula(expr.left, context),
            selection_formula(expr.right, context),
        )
    raise TypeError(f"not an XPath expression: {expr!r}")  # pragma: no cover


def xpath_to_fo2(expr: XPathExpr) -> FO:
    """The unary Core XPath query [[p]](root) as an FO² formula with free
    variable ``y``."""
    return selection_formula(expr, RelAtom("Root", (Y,)))
