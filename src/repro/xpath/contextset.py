"""The linear-time Core XPath evaluator ("context sets at once").

The key idea behind the O(|Q| · ||A||) combined complexity of Core XPath
([Gottlob, Koch & Pichler]; §4 of the paper reaches the same bound via
FO² and via TMNF): never evaluate a step per context node.  Instead:

- every qualifier denotes a context-independent *satisfaction set*,
  computed bottom-up with set operations (negation is complementation —
  the feature datalog lacks but sets give for free),
- a path qualifier ``p`` is satisfied by the nodes from which ``p``
  reaches at least one node: the *reverse image* of the full domain,
  computed by applying inverted axes to whole sets,
- the top-level query pushes {root} *forward* through the steps.

:func:`apply_axis_to_set` applies one axis to an entire node set in
O(|A|) time (amortized, using the pre/post interval arithmetic of §2) —
that single primitive is what makes the whole evaluator linear.
"""

from __future__ import annotations

from repro.obs.context import current as _obs_current
from repro.trees.axes import Axis, inverse_axis, resolve_axis
from repro.trees.tree import Tree
from repro.errors import QueryError
from repro.xpath.ast import (
    AndQual,
    AxisStep,
    LabelTest,
    NotQual,
    OrQual,
    Path,
    PathQualifier,
    PositionTest,
    Qualifier,
    UnionExpr,
    XPathExpr,
)

__all__ = ["apply_axis_to_set", "evaluate_query_linear", "reverse_image"]


def apply_axis_to_set(tree: Tree, axis: "str | Axis", nodes: set[int]) -> set[int]:
    """{ v : ∃u ∈ nodes, axis(u, v) } in O(||A||) amortized time."""
    ctx = _obs_current()
    if ctx is None:
        return _apply_axis_to_set(tree, axis, nodes)
    # the axis application is the evaluator's unit of work: charge the
    # input frontier before the scan, the produced set after it
    ctx.count("linear.axis_applications")
    ctx.tick(len(nodes))
    result = _apply_axis_to_set(tree, axis, nodes)
    ctx.tick(len(result))
    return result


def _apply_axis_to_set(
    tree: Tree, axis: "str | Axis", nodes: set[int]
) -> set[int]:
    axis = resolve_axis(axis)
    n = tree.n
    result: set[int] = set()
    if axis is Axis.SELF:
        return set(nodes)
    if axis is Axis.CHILD:
        for u in nodes:
            result.update(tree.children[u])
        return result
    if axis is Axis.FIRST_CHILD:
        for u in nodes:
            if tree.children[u]:
                result.add(tree.children[u][0])
        return result
    if axis in (Axis.CHILD_PLUS, Axis.CHILD_STAR):
        include_self = axis is Axis.CHILD_STAR
        last_end = -1
        for u in sorted(nodes):
            start = u if include_self else u + 1
            end = tree.subtree_end[u]
            # skip the part already covered by an earlier subtree
            start = max(start, last_end)
            if start < end:
                result.update(range(start, end))
                last_end = end
            elif include_self and u >= last_end:
                result.add(u)
        return result
    if axis is Axis.NEXT_SIBLING:
        for u in nodes:
            v = tree.next_sibling[u]
            if v >= 0:
                result.add(v)
        return result
    if axis in (Axis.NEXT_SIBLING_PLUS, Axis.NEXT_SIBLING_STAR):
        for u in nodes:
            if axis is Axis.NEXT_SIBLING_STAR:
                result.add(u)
            v = tree.next_sibling[u]
            while v >= 0 and v not in result:
                result.add(v)
                v = tree.next_sibling[v]
        return result
    if axis is Axis.FOLLOWING:
        # v in result iff some u in nodes has u < v and post[u] < post[v]:
        # prefix-minimum of post over the context set in pre order.
        best = n + 1  # min post among context nodes seen so far
        ordered = sorted(nodes)
        j = 0
        for v in range(n):
            while j < len(ordered) and ordered[j] < v:
                best = min(best, tree.post[ordered[j]])
                j += 1
            if tree.post[v] > best:
                result.add(v)
        return result
    if axis is Axis.PARENT:
        for u in nodes:
            if tree.parent[u] >= 0:
                result.add(tree.parent[u])
        return result
    if axis is Axis.FIRST_CHILD_INV:
        for u in nodes:
            p = tree.parent[u]
            if p >= 0 and tree.sibling_index[u] == 0:
                result.add(p)
        return result
    if axis in (Axis.ANCESTOR, Axis.ANCESTOR_OR_SELF):
        for u in nodes:
            if axis is Axis.ANCESTOR_OR_SELF:
                result.add(u)
            v = tree.parent[u]
            while v >= 0 and v not in result:
                result.add(v)
                v = tree.parent[v]
        return result
    if axis is Axis.PREV_SIBLING:
        for u in nodes:
            v = tree.prev_sibling[u]
            if v >= 0:
                result.add(v)
        return result
    if axis in (Axis.PRECEDING_SIBLING, Axis.PREV_SIBLING_STAR):
        for u in nodes:
            if axis is Axis.PREV_SIBLING_STAR:
                result.add(u)
            v = tree.prev_sibling[u]
            while v >= 0 and v not in result:
                result.add(v)
                v = tree.prev_sibling[v]
        return result
    if axis is Axis.PRECEDING:
        # v in result iff some u in nodes has v < u and post[v] < post[u]:
        # suffix-maximum of post over the context set in pre order.
        best = -1
        ordered = sorted(nodes, reverse=True)
        j = 0
        for v in range(n - 1, -1, -1):
            while j < len(ordered) and ordered[j] > v:
                best = max(best, tree.post[ordered[j]])
                j += 1
            if tree.post[v] < best:
                result.add(v)
        return result
    raise AssertionError(f"unhandled axis {axis}")  # pragma: no cover


class _LinearEvaluator:
    """Bottom-up evaluation with per-AST-node memoized qualifier sets."""

    def __init__(self, tree: Tree):
        self.tree = tree
        self.domain: set[int] = set(range(tree.n))
        self._qual_sets: dict[int, set[int]] = {}

    # -- qualifiers: context-independent satisfaction sets --------------------

    def qualifier_set(self, q: Qualifier) -> set[int]:
        key = id(q)
        cached = self._qual_sets.get(key)
        if cached is not None:
            return cached
        if isinstance(q, LabelTest):
            result = set(self.tree.nodes_with_label(q.label))
        elif isinstance(q, PathQualifier):
            result = self.reverse_image(q.path, self.domain)
        elif isinstance(q, AndQual):
            result = self.qualifier_set(q.left) & self.qualifier_set(q.right)
        elif isinstance(q, OrQual):
            result = self.qualifier_set(q.left) | self.qualifier_set(q.right)
        elif isinstance(q, NotQual):
            result = self.domain - self.qualifier_set(q.operand)
        elif isinstance(q, PositionTest):
            raise QueryError(
                "the linear context-set evaluator covers Core XPath only; "
                "position() needs the denotational evaluator ([33])"
            )
        else:  # pragma: no cover - exhaustive
            raise TypeError(f"not a qualifier: {q!r}")
        self._qual_sets[key] = result
        return result

    # -- paths -----------------------------------------------------------------

    def _filtered_step_targets(self, step: AxisStep, sources: set[int]) -> set[int]:
        targets = apply_axis_to_set(self.tree, step.axis, sources)
        for q in step.qualifiers:
            targets &= self.qualifier_set(q)
        return targets

    def forward(self, expr: XPathExpr, sources: set[int]) -> set[int]:
        """{ v : ∃u ∈ sources, v ∈ [[expr]](u) }."""
        if isinstance(expr, AxisStep):
            return self._filtered_step_targets(expr, sources)
        if isinstance(expr, Path):
            return self.forward(expr.right, self.forward(expr.left, sources))
        if isinstance(expr, UnionExpr):
            return self.forward(expr.left, sources) | self.forward(
                expr.right, sources
            )
        raise TypeError(f"not an XPath expression: {expr!r}")  # pragma: no cover

    def reverse_image(self, expr: XPathExpr, targets: set[int]) -> set[int]:
        """{ u : [[expr]](u) ∩ targets ≠ ∅ } — axes applied inverted."""
        if isinstance(expr, AxisStep):
            filtered = set(targets)
            for q in expr.qualifiers:
                filtered &= self.qualifier_set(q)
            return apply_axis_to_set(
                self.tree, inverse_axis(expr.axis), filtered
            )
        if isinstance(expr, Path):
            return self.reverse_image(
                expr.left, self.reverse_image(expr.right, targets)
            )
        if isinstance(expr, UnionExpr):
            return self.reverse_image(expr.left, targets) | self.reverse_image(
                expr.right, targets
            )
        raise TypeError(f"not an XPath expression: {expr!r}")  # pragma: no cover


def evaluate_query_linear(expr: XPathExpr, tree: Tree) -> set[int]:
    """[[p]]_NodeSet(root) in O(|Q| · ||A||) — experiment E7/E17's fast
    evaluator (ablation A3 against the memoized denotational one)."""
    return _LinearEvaluator(tree).forward(expr, {tree.root})


def reverse_image(expr: XPathExpr, tree: Tree, targets: set[int]) -> set[int]:
    """Public wrapper over the reverse evaluation primitive."""
    return _LinearEvaluator(tree).reverse_image(expr, targets)
