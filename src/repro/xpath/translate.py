"""Translations out of Core XPath (Section 3 of the paper).

- :func:`xpath_to_datalog` — Core XPath → monadic datalog over the tree
  signature, linear in |Q| ([29]).  Negated qualifiers — which datalog
  cannot express — are compiled to ``Not:P`` references and resolved by
  *stratified* evaluation (:func:`evaluate_datalog_translation`): strata
  are evaluated in dependency order and each ``Not:P`` becomes the
  complement of the already-computed ``P``, which is exactly the
  set-complement trick that makes the translation of [29] work despite
  "no analogous language feature existing in datalog".
- :func:`xpath_to_cq` — the conjunctive fragment (no union/or/not) into
  a :class:`ConjunctiveQuery` ("conjunctive Core XPath queries are
  acyclic", Proposition 4.2).
"""

from __future__ import annotations

import itertools

from repro.cq.query import ConjunctiveQuery
from repro.datalog.evaluate import evaluate_program
from repro.datalog.syntax import Atom, Program, Rule
from repro.errors import QueryError
from repro.trees.structure import lab
from repro.trees.tree import Tree
from repro.xpath.ast import (
    AndQual,
    AxisStep,
    LabelTest,
    NotQual,
    OrQual,
    Path,
    PathQualifier,
    Qualifier,
    UnionExpr,
    XPathExpr,
)

__all__ = [
    "is_conjunctive",
    "xpath_to_cq",
    "xpath_to_datalog",
    "evaluate_datalog_translation",
]

_NOT_PREFIX = "Not:"


def is_conjunctive(expr: "XPathExpr | Qualifier") -> bool:
    """No union, disjunction, negation, or positional predicate (the
    fragment of Prop. 4.2)."""
    from repro.xpath.ast import PositionTest

    if isinstance(expr, (UnionExpr, OrQual, NotQual, PositionTest)):
        return False
    if isinstance(expr, AxisStep):
        return all(is_conjunctive(q) for q in expr.qualifiers)
    if isinstance(expr, Path):
        return is_conjunctive(expr.left) and is_conjunctive(expr.right)
    if isinstance(expr, PathQualifier):
        return is_conjunctive(expr.path)
    if isinstance(expr, AndQual):
        return is_conjunctive(expr.left) and is_conjunctive(expr.right)
    return True  # LabelTest


# ---------------------------------------------------------------------------
# conjunctive fragment -> CQ
# ---------------------------------------------------------------------------


def xpath_to_cq(expr: XPathExpr, context_is_root: bool = True) -> ConjunctiveQuery:
    """Translate a conjunctive Core XPath expression into a unary CQ
    whose head variable is the result node.  The context node becomes a
    variable constrained by ``Root`` (the paper's unary query form
    [[p]](root))."""
    if not is_conjunctive(expr):
        raise QueryError("xpath_to_cq needs the conjunctive fragment")
    counter = itertools.count()
    atoms: list[Atom] = []

    def fresh() -> str:
        return f"x{next(counter)}"

    def compile_path(p: XPathExpr, source: str) -> str:
        if isinstance(p, AxisStep):
            target = fresh()
            atoms.append(Atom(p.axis.value, (source, target)))
            for q in p.qualifiers:
                compile_qualifier(q, target)
            return target
        if isinstance(p, Path):
            mid = compile_path(p.left, source)
            return compile_path(p.right, mid)
        raise QueryError("union inside conjunctive translation")

    def compile_qualifier(q: Qualifier, at: str) -> None:
        if isinstance(q, LabelTest):
            atoms.append(Atom(lab(q.label), (at,)))
        elif isinstance(q, AndQual):
            compile_qualifier(q.left, at)
            compile_qualifier(q.right, at)
        elif isinstance(q, PathQualifier):
            compile_path(q.path, at)
        else:  # pragma: no cover - guarded by is_conjunctive
            raise QueryError(f"non-conjunctive qualifier {q}")

    root_var = fresh()
    if context_is_root:
        atoms.append(Atom("Root", (root_var,)))
    result_var = compile_path(expr, root_var)
    return ConjunctiveQuery((result_var,), tuple(atoms)).validate()


# ---------------------------------------------------------------------------
# full Core XPath -> (stratified) monadic datalog
# ---------------------------------------------------------------------------


class _DatalogCompiler:
    def __init__(self):
        self.rules: list[Rule] = []
        self._counter = itertools.count()

    def fresh(self, hint: str) -> str:
        return f"_{hint}{next(self._counter)}"

    def add(self, head_pred: str, x: str, body: list[Atom]) -> None:
        self.rules.append(Rule(Atom(head_pred, (x,)), tuple(body)))

    # qualifier q -> unary pred true at satisfying nodes
    def compile_qualifier(self, q: Qualifier) -> str:
        if isinstance(q, LabelTest):
            return lab(q.label)
        if isinstance(q, AndQual):
            p = self.fresh("and")
            left = self.compile_qualifier(q.left)
            right = self.compile_qualifier(q.right)
            self.add(p, "x", [Atom(left, ("x",)), Atom(right, ("x",))])
            return p
        if isinstance(q, OrQual):
            p = self.fresh("or")
            self.add(p, "x", [Atom(self.compile_qualifier(q.left), ("x",))])
            self.add(p, "x", [Atom(self.compile_qualifier(q.right), ("x",))])
            return p
        if isinstance(q, NotQual):
            inner = self.compile_qualifier(q.operand)
            if not inner[0] == "_":
                # extensional predicate: wrap so the stratifier sees an IDB
                wrapped = self.fresh("w")
                self.add(wrapped, "x", [Atom(inner, ("x",))])
                inner = wrapped
            p = self.fresh("not")
            self.add(p, "x", [Atom(_NOT_PREFIX + inner, ("x",))])
            return p
        if isinstance(q, PathQualifier):
            return self.compile_reach(q.path)
        from repro.xpath.ast import PositionTest

        if isinstance(q, PositionTest):
            raise QueryError(
                "position() predicates have no monadic datalog translation "
                "here; use the denotational evaluator"
            )
        raise TypeError(f"not a qualifier: {q!r}")  # pragma: no cover

    # pred true at nodes from which `path` reaches some node
    def compile_reach(self, path: XPathExpr) -> str:
        if isinstance(path, AxisStep):
            p = self.fresh("reach")
            target_preds = [self.compile_qualifier(q) for q in path.qualifiers]
            body = [Atom(path.axis.value, ("x", "y"))]
            body += [Atom(tp, ("y",)) for tp in target_preds]
            self.add(p, "x", body)
            return p
        if isinstance(path, Path):
            right = self.compile_reach(path.right)
            # reach(left/right) = nodes reaching (via left) a node in right
            p = self.fresh("reach")
            left_reaching = self._compile_forwardable(path.left, right)
            self.add(p, "x", [Atom(left_reaching, ("x",))])
            return p
        if isinstance(path, UnionExpr):
            p = self.fresh("reach")
            self.add(p, "x", [Atom(self.compile_reach(path.left), ("x",))])
            self.add(p, "x", [Atom(self.compile_reach(path.right), ("x",))])
            return p
        raise TypeError(f"not a path: {path!r}")  # pragma: no cover

    def _compile_forwardable(self, path: XPathExpr, target_pred: str) -> str:
        """pred true at x iff [[path]](x) contains a node satisfying
        target_pred."""
        if isinstance(path, AxisStep):
            p = self.fresh("via")
            body = [Atom(path.axis.value, ("x", "y")), Atom(target_pred, ("y",))]
            body += [
                Atom(self.compile_qualifier(q), ("y",)) for q in path.qualifiers
            ]
            self.add(p, "x", body)
            return p
        if isinstance(path, Path):
            mid = self._compile_forwardable(path.right, target_pred)
            return self._compile_forwardable(path.left, mid)
        if isinstance(path, UnionExpr):
            p = self.fresh("via")
            self.add(
                p, "x",
                [Atom(self._compile_forwardable(path.left, target_pred), ("x",))],
            )
            self.add(
                p, "x",
                [Atom(self._compile_forwardable(path.right, target_pred), ("x",))],
            )
            return p
        raise TypeError(f"not a path: {path!r}")  # pragma: no cover

    # result pred: forward image of a context pred through the path
    def compile_forward(self, path: XPathExpr, ctx_pred: str) -> str:
        if isinstance(path, AxisStep):
            p = self.fresh("sel")
            body = [Atom(ctx_pred, ("x0",)), Atom(path.axis.value, ("x0", "x"))]
            body += [
                Atom(self.compile_qualifier(q), ("x",)) for q in path.qualifiers
            ]
            self.rules.append(Rule(Atom(p, ("x",)), tuple(body)))
            return p
        if isinstance(path, Path):
            mid = self.compile_forward(path.left, ctx_pred)
            return self.compile_forward(path.right, mid)
        if isinstance(path, UnionExpr):
            p = self.fresh("sel")
            self.add(p, "x", [Atom(self.compile_forward(path.left, ctx_pred), ("x",))])
            self.add(p, "x", [Atom(self.compile_forward(path.right, ctx_pred), ("x",))])
            return p
        raise TypeError(f"not a path: {path!r}")  # pragma: no cover


def xpath_to_datalog(expr: XPathExpr) -> Program:
    """Core XPath query [[p]](root) → a monadic datalog program whose
    query predicate selects the answer nodes.  Negation appears as
    ``Not:P`` body atoms; evaluate with
    :func:`evaluate_datalog_translation` (stratified)."""
    compiler = _DatalogCompiler()
    compiler.add("_root", "x", [Atom("Root", ("x",))])
    result = compiler.compile_forward(expr, "_root")
    program = Program(compiler.rules, query_pred=result)
    return program


def _strata(program: Program) -> list[list[Rule]]:
    """Split rules into strata such that every ``Not:P`` body atom refers
    to a predicate fully computed in an earlier stratum."""
    idb = program.intensional_preds()
    level: dict[str, int] = {p: 0 for p in idb}
    changed = True
    rounds = 0
    while changed:
        changed = False
        rounds += 1
        if rounds > len(idb) + 2:
            raise QueryError("negation cycle: program is not stratifiable")
        for rule in program.rules:
            h = rule.head.pred
            for atom in rule.body:
                pred = atom.pred
                if pred.startswith(_NOT_PREFIX):
                    base = pred[len(_NOT_PREFIX):]
                    need = level.get(base, 0) + 1
                elif pred in idb:
                    need = level[pred]
                else:
                    continue
                if level[h] < need:
                    level[h] = need
                    changed = True
    max_level = max(level.values(), default=0)
    strata: list[list[Rule]] = [[] for _ in range(max_level + 1)]
    for rule in program.rules:
        strata[level[rule.head.pred]].append(rule)
    return strata


def evaluate_datalog_translation(program: Program, tree: Tree) -> set[int]:
    """Stratified evaluation: run each stratum through the TMNF→Horn-SAT
    pipeline, materializing ``Not:P`` as complement facts in between."""
    strata = _strata(program)
    domain = set(range(tree.n))
    known: dict[str, set[int]] = {}
    for stratum in strata:
        rules = list(stratum)
        # inject already-computed predicates (and needed complements) as facts
        used: set[str] = set()
        for rule in rules:
            for atom in rule.body:
                used.add(atom.pred)
        for pred in used:
            if pred.startswith(_NOT_PREFIX):
                base = pred[len(_NOT_PREFIX):]
                extension = domain - known.get(base, set())
            elif pred in known:
                extension = known[pred]
            else:
                continue
            for v in sorted(extension):
                rules.append(Rule(Atom(pred, (v,)), ()))
            if not extension:
                # keep the predicate intensional (empty) rather than
                # letting the grounder mistake it for a structure relation
                rules.append(Rule(Atom(pred, ("x",)), (Atom(pred, ("x",)),)))
        sub = Program(rules)
        results = evaluate_program(sub, tree)
        known.update(
            {p: vs for p, vs in results.items() if not p.startswith(_NOT_PREFIX)}
        )
    if program.query_pred is None:
        raise QueryError("translated program lost its query predicate")
    return known.get(program.query_pred, set())
