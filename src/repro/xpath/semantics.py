"""Denotational semantics of Core XPath (rules P1–P4, Q1–Q5 of §3).

:func:`evaluate_nodeset` implements the semantic functions directly,
with memoization on (sub-expression, context node) — which turns the
naive exponential recursion into the polynomial dynamic-programming
algorithm of [Gottlob, Koch & Pichler, TODS 2005].  It is the executable
specification the fast evaluators are tested against.
"""

from __future__ import annotations

from repro.trees.axes import Axis, axis_targets
from repro.trees.tree import Tree
from repro.xpath.ast import (
    AndQual,
    AxisStep,
    LabelTest,
    NotQual,
    OrQual,
    Path,
    PathQualifier,
    PositionTest,
    Qualifier,
    UnionExpr,
    XPathExpr,
)

__all__ = ["evaluate_nodeset", "evaluate_query", "qualifier_holds"]


def _axis_sequence(tree: Tree, axis: Axis, context: int) -> list[int]:
    """Axis targets in XPath *axis order*: document order for forward
    axes, reverse document order (proximity order) for reverse axes."""
    targets = list(axis_targets(tree, axis, context))
    if axis is Axis.PRECEDING:
        targets.reverse()  # the other reverse axes already yield nearest-first
    return targets


def _position_ok(test: PositionTest, position: int, size: int) -> bool:
    value = size if test.value == "last" else test.value
    if test.op == "=":
        return position == value
    if test.op == "!=":
        return position != value
    if test.op == "<":
        return position < value
    if test.op == "<=":
        return position <= value
    if test.op == ">":
        return position > value
    return position >= value  # ">="


class _Memo:
    """Per-evaluation memo tables keyed by AST node identity."""

    def __init__(self):
        self.nodeset: dict[tuple[int, int], frozenset[int]] = {}
        self.qual: dict[tuple[int, int], bool] = {}


def evaluate_nodeset(
    expr: XPathExpr, tree: Tree, context: int, _memo: _Memo | None = None
) -> frozenset[int]:
    """[[p]]_NodeSet(context) — rules P1–P4."""
    memo = _memo or _Memo()
    key = (id(expr), context)
    cached = memo.nodeset.get(key)
    if cached is not None:
        return cached
    if isinstance(expr, AxisStep):
        # (P1) axis application, then (P2) qualifier filtering.  The
        # qualifiers run left to right over the *sequence* in axis order
        # so positional predicates (the full-XPath flavor of [33]) see
        # the correct positions; Core XPath qualifiers are insensitive
        # to the ordering, so this coincides with the paper's P2.
        targets = _axis_sequence(tree, expr.axis, context)
        for q in expr.qualifiers:
            if isinstance(q, PositionTest):
                size = len(targets)
                targets = [
                    v
                    for i, v in enumerate(targets, 1)
                    if _position_ok(q, i, size)
                ]
            else:
                targets = [
                    v for v in targets if qualifier_holds(q, tree, v, memo)
                ]
        result = frozenset(targets)
    elif isinstance(expr, Path):
        # (P3) composition
        result = frozenset(
            v
            for w in evaluate_nodeset(expr.left, tree, context, memo)
            for v in evaluate_nodeset(expr.right, tree, w, memo)
        )
    elif isinstance(expr, UnionExpr):
        # (P4) union
        result = evaluate_nodeset(
            expr.left, tree, context, memo
        ) | evaluate_nodeset(expr.right, tree, context, memo)
    else:  # pragma: no cover - exhaustive
        raise TypeError(f"not an XPath expression: {expr!r}")
    memo.nodeset[key] = result
    return result


def qualifier_holds(
    q: Qualifier, tree: Tree, node: int, _memo: _Memo | None = None
) -> bool:
    """[[q]]_Boolean(node) — rules Q1–Q5."""
    memo = _memo or _Memo()
    key = (id(q), node)
    cached = memo.qual.get(key)
    if cached is not None:
        return cached
    if isinstance(q, LabelTest):  # (Q1)
        result = tree.has_label(node, q.label)
    elif isinstance(q, PathQualifier):  # (Q2)
        result = bool(evaluate_nodeset(q.path, tree, node, memo))
    elif isinstance(q, AndQual):  # (Q3)
        result = qualifier_holds(q.left, tree, node, memo) and qualifier_holds(
            q.right, tree, node, memo
        )
    elif isinstance(q, OrQual):  # (Q4)
        result = qualifier_holds(q.left, tree, node, memo) or qualifier_holds(
            q.right, tree, node, memo
        )
    elif isinstance(q, NotQual):  # (Q5)
        result = not qualifier_holds(q.operand, tree, node, memo)
    else:  # pragma: no cover - exhaustive
        raise TypeError(f"not a qualifier: {q!r}")
    memo.qual[key] = result
    return result


def evaluate_query(expr: XPathExpr, tree: Tree) -> set[int]:
    """The unary Core XPath query [[p]]_NodeSet(root) (Section 3)."""
    return set(evaluate_nodeset(expr, tree, tree.root))
