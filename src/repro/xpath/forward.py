"""Forward XPath (Section 5: "Evaluating Positive Queries using XPath").

A *forward* query uses only Child, Child+, Child*, NextSibling,
NextSibling+, NextSibling*, Following (and Self) — no Parent/Ancestor/
Preceding.  Streaming algorithms (Section 5, [61, 65, 50]) need forward
queries; the paper notes that the Theorem 5.1 rewriting produces acyclic
queries that are forest-shaped in a strong sense, so every acyclic
positive query can be rewritten into an equivalent *forward* Core XPath
query [62].

:func:`to_forward` implements exactly that route for the conjunctive
fragment: XPath → CQ → lazy Theorem 5.1 rewriting → each acyclic
forest disjunct rendered back as a forward path with path qualifiers →
union of the disjuncts.
"""

from __future__ import annotations

from repro.cq.query import ConjunctiveQuery, atom_axis
from repro.errors import QueryError
from repro.rewrite.theorem51 import rewrite_lazy
from repro.trees.axes import Axis, FORWARD_AXES
from repro.xpath.ast import (
    AxisStep,
    LabelTest,
    NotQual,
    Path,
    PathQualifier,
    Qualifier,
    UnionExpr,
    XPathExpr,
    walk_expr,
)
from repro.xpath.translate import is_conjunctive, xpath_to_cq

__all__ = ["is_forward", "to_forward", "disjunct_to_forward_xpath", "EMPTY_QUERY"]


class UnsatisfiableDisjunct(QueryError):
    """The disjunct can never match (e.g. something strictly above the
    document root); it contributes nothing to the union."""

#: A canonical always-empty forward query: Self[not(Self)].
EMPTY_QUERY: XPathExpr = AxisStep(Axis.SELF, (NotQual(PathQualifier(AxisStep(Axis.SELF))),))


def is_forward(expr: "XPathExpr | Qualifier") -> bool:
    """Does the expression use forward axes only?"""
    return all(
        node.axis in FORWARD_AXES
        for node in walk_expr(expr)
        if isinstance(node, AxisStep)
    )


def _chain(path_steps: list[XPathExpr]) -> XPathExpr:
    expr = path_steps[0]
    for step in path_steps[1:]:
        expr = Path(expr, step)
    return expr


def disjunct_to_forward_xpath(disjunct: ConjunctiveQuery) -> XPathExpr:
    """Render one acyclic forest disjunct (as produced by the Theorem 5.1
    rewriting: forward atoms only, every variable with at most one
    incoming atom) as a forward Core XPath expression selecting the head
    variable."""
    if len(disjunct.head) != 1:
        raise QueryError("forward rendering needs a unary disjunct")
    head_var = disjunct.head[0]

    children: dict[str, list[tuple[Axis, str]]] = {}
    incoming: dict[str, tuple[Axis, str]] = {}
    unary: dict[str, list[str]] = {}
    variables: set[str] = set(disjunct.variables())
    for atom in disjunct.atoms:
        if atom.arity == 1:
            unary.setdefault(atom.args[0], []).append(atom.pred)
            continue
        axis = atom_axis(atom)
        if axis not in FORWARD_AXES:
            raise QueryError(f"non-forward atom {atom} in disjunct")
        x, y = atom.args
        if y in incoming:
            raise QueryError(f"variable {y} has two incoming atoms")
        incoming[y] = (axis, x)
        children.setdefault(x, []).append((axis, y))

    def var_qualifiers(v: str, skip_child: str | None = None) -> list[Qualifier]:
        quals: list[Qualifier] = []
        for pred in unary.get(v, ()):
            if pred.startswith("Lab:"):
                quals.append(LabelTest(pred[4:]))
            elif pred in ("Dom", "Root"):
                continue  # Root is positional, handled by the caller
            elif pred == "FirstSibling":
                raise QueryError(
                    "FirstSibling survived un-fused; cannot render forward"
                )
            else:
                raise QueryError(f"cannot render unary predicate {pred} in XPath")
        for axis, c in children.get(v, ()):
            if c == skip_child:
                continue
            quals.append(PathQualifier(_branch(axis, c)))
        return quals

    def step_for(axis: Axis, v: str, skip_child: str | None) -> AxisStep:
        # fuse Child + FirstSibling(target) into FirstChild
        preds = unary.get(v, ())
        if "FirstSibling" in preds and axis is Axis.CHILD:
            axis = Axis.FIRST_CHILD
            unary[v] = [p for p in preds if p != "FirstSibling"]
        return AxisStep(axis, tuple(var_qualifiers(v, skip_child)))

    def _branch(axis: Axis, v: str) -> XPathExpr:
        return step_for(axis, v, skip_child=None)

    def component_root(v: str) -> str:
        seen = {v}
        while v in incoming:
            v = incoming[v][1]
            if v in seen:
                raise QueryError("cycle in disjunct")
            seen.add(v)
        return v

    def path_down(src: str, dst: str) -> list[tuple[Axis, str]]:
        """The chain of (axis, var) edges from src down to dst."""
        chain: list[tuple[Axis, str]] = []
        v = dst
        while v != src:
            axis, p = incoming[v]
            chain.append((axis, v))
            v = p
        chain.reverse()
        return chain

    root_of_head = component_root(head_var)
    has_root_pred = {v for v in variables if "Root" in unary.get(v, ())}
    for v in has_root_pred:
        if v in incoming:
            # every incoming atom asserts a node strictly before v exists
            # on a vertical/horizontal axis — impossible for the document
            # root, so the whole disjunct is dead (star atoms would have
            # allowed equality, but the rewriting leaves stars only on
            # edges it never needed to orient; treat conservatively)
            axis, src = incoming[v]
            if axis in (Axis.CHILD_STAR, Axis.NEXT_SIBLING_STAR):
                # the root has no proper ancestor and no left sibling, so
                # a star edge into it forces equality: merge and re-render
                from repro.datalog.syntax import Atom as _Atom

                new_atoms = []
                for atom in disjunct.atoms:
                    if atom.arity == 2 and atom.args == (src, v) and atom_axis(
                        atom
                    ) is axis:
                        continue
                    new_atoms.append(
                        _Atom(
                            atom.pred,
                            tuple(v if t == src else t for t in atom.args),
                        )
                    )
                merged = ConjunctiveQuery(
                    tuple(v if h == src else h for h in disjunct.head),
                    tuple(new_atoms),
                )
                return disjunct_to_forward_xpath(merged)
            raise UnsatisfiableDisjunct(str(disjunct))

    # the spine: document root -> component root -> head variable
    spine = path_down(root_of_head, head_var)
    spine_vars = {v for _ax, v in spine} | {root_of_head}

    steps: list[XPathExpr] = []
    if root_of_head in has_root_pred:
        # the component starts at the document root: a Self step carries
        # the root variable's qualifiers
        first_skip = spine[0][1] if spine else None
        steps.append(AxisStep(Axis.SELF, tuple(var_qualifiers(root_of_head, first_skip))))
    else:
        first_skip = spine[0][1] if spine else None
        steps.append(
            AxisStep(
                Axis.CHILD_STAR, tuple(var_qualifiers(root_of_head, first_skip))
            )
        )
    for i, (axis, v) in enumerate(spine):
        next_skip = spine[i + 1][1] if i + 1 < len(spine) else None
        steps.append(step_for(axis, v, next_skip))

    # other components become guards on the very first step
    guards: list[Qualifier] = []
    other_roots = {
        component_root(v) for v in variables
    } - {root_of_head}
    for r in sorted(other_roots):
        if r in has_root_pred:
            guard_path: XPathExpr = AxisStep(
                Axis.SELF, tuple(var_qualifiers(r))
            )
        else:
            guard_path = AxisStep(Axis.CHILD_STAR, tuple(var_qualifiers(r)))
        guards.append(PathQualifier(guard_path))
    if guards:
        first = steps[0]
        assert isinstance(first, AxisStep)
        steps[0] = AxisStep(first.axis, first.qualifiers + tuple(guards))
    return _chain(steps)


def to_forward(expr: XPathExpr) -> XPathExpr:
    """Rewrite a conjunctive Core XPath query (reverse axes allowed) into
    an equivalent *forward* Core XPath query, via Theorem 5.1.

    The result can be exponentially larger (a union of forest disjuncts)
    — the lower bound of [35] says this is unavoidable in general.
    """
    if is_forward(expr):
        return expr
    if not is_conjunctive(expr):
        raise QueryError(
            "to_forward handles the conjunctive fragment (no union/or/not)"
        )
    cq = xpath_to_cq(expr)
    disjuncts = rewrite_lazy(cq)
    paths = []
    for d in disjuncts:
        try:
            paths.append(disjunct_to_forward_xpath(d))
        except UnsatisfiableDisjunct:
            continue
    if not paths:
        return EMPTY_QUERY
    result = paths[0]
    for p in paths[1:]:
        result = UnionExpr(result, p)
    return result
