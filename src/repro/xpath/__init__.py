"""Core XPath (the navigational fragment, Section 3 of the paper).

- :mod:`~repro.xpath.ast` — the expression grammar exactly as printed
  (paths, steps, axes and inverses, qualifiers with ∧/∨/¬),
- :mod:`~repro.xpath.parser` — concrete syntax,
- :mod:`~repro.xpath.semantics` — the denotational semantics P1–P4 /
  Q1–Q5, memoized (the dynamic-programming algorithm of [33]),
- :mod:`~repro.xpath.contextset` — the linear-time bottom-up evaluator:
  whole context *sets* are pushed through each step in O(|A|) per
  axis application, giving O(|Q| · ||A||) combined complexity,
- :mod:`~repro.xpath.translate` — Core XPath → monadic datalog (TMNF,
  [29]; negation handled by stratified complement marking) and the
  conjunctive-fragment → CQ bridge,
- :mod:`~repro.xpath.forward` — reverse-axis elimination ("XPath:
  Looking Forward" [62]) and forward-fragment detection for streaming.
"""

from repro.xpath.ast import (
    AxisStep,
    Path,
    UnionExpr,
    LabelTest,
    PathQualifier,
    AndQual,
    OrQual,
    NotQual,
    XPathExpr,
    Qualifier,
)
from repro.xpath.parser import parse_xpath
from repro.xpath.semantics import evaluate_nodeset, evaluate_query, qualifier_holds
from repro.xpath.contextset import evaluate_query_linear, apply_axis_to_set
from repro.xpath.translate import xpath_to_cq, xpath_to_datalog, is_conjunctive
from repro.xpath.forward import is_forward, to_forward
from repro.xpath.to_fo import xpath_to_fo2

__all__ = [
    "AxisStep",
    "Path",
    "UnionExpr",
    "LabelTest",
    "PathQualifier",
    "AndQual",
    "OrQual",
    "NotQual",
    "XPathExpr",
    "Qualifier",
    "parse_xpath",
    "evaluate_nodeset",
    "evaluate_query",
    "qualifier_holds",
    "evaluate_query_linear",
    "apply_axis_to_set",
    "xpath_to_cq",
    "xpath_to_datalog",
    "is_conjunctive",
    "is_forward",
    "to_forward",
    "xpath_to_fo2",
]
