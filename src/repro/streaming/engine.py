"""One-pass streaming evaluators with O(depth · |Q|) memory (Section 5).

:func:`stream_select` handles *downward* forward path queries — steps
over Child / Child+ / Child* / Self with label-test qualifiers — by
maintaining, per open element, two position sets of the step automaton
(the transducer-network idea of [61, 65] with the automata kept apart,
not multiplied out).  Selection is decided at the start tag, so results
stream out with no buffering.

:func:`stream_match_twig` decides Boolean twig matching (``/`` and ``//``
edges) bottom-up: each open element carries two pattern-node sets —
"matched at some child" and "matched at some strict descendant" — and a
pattern node is recognized when its element closes.  This is the shape
of the O(depth) streaming recognizers for MSO-definable tree languages
implicit in [60, 70].
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.errors import QueryError
from repro.obs.context import current as _obs_current
from repro.streaming.events import Event
from repro.streaming.memory import MemoryMeter
from repro.trees.axes import Axis
from repro.twigjoin.pattern import TwigPattern
from repro.xpath.ast import AxisStep, LabelTest, Path, XPathExpr

__all__ = ["stream_select", "stream_match_twig", "compile_path_nfa"]

_DOWNWARD = {Axis.CHILD, Axis.CHILD_PLUS, Axis.CHILD_STAR, Axis.SELF}


def compile_path_nfa(expr: XPathExpr) -> list[tuple[Axis, frozenset[str]]]:
    """Flatten a downward path query into (axis, required-labels) steps.

    Raises :class:`QueryError` on anything but Child/Child+/Child*/Self
    steps with label-test qualifiers (the streamable fragment of
    :func:`stream_select`).
    """
    steps: list[tuple[Axis, frozenset[str]]] = []

    def visit(e: XPathExpr) -> None:
        if isinstance(e, Path):
            visit(e.left)
            visit(e.right)
            return
        if not isinstance(e, AxisStep):
            raise QueryError("stream_select needs a union-free path query")
        if e.axis not in _DOWNWARD:
            raise QueryError(
                f"stream_select supports downward axes only, got {e.axis}"
            )
        labels = []
        for q in e.qualifiers:
            if not isinstance(q, LabelTest):
                raise QueryError(
                    "stream_select supports label-test qualifiers only"
                )
            labels.append(q.label)
        steps.append((e.axis, frozenset(labels)))

    visit(expr)
    return steps


def stream_select(
    expr: XPathExpr,
    events: Iterable[Event],
    meter: MemoryMeter | None = None,
) -> Iterator[int]:
    """Yield the ids of selected nodes, in document order.

    Each open element carries two automaton position sets (position i =
    "the first i steps are consumed"):

    - ``S`` — positions realizable standing exactly at this element,
    - ``C`` — positions realizable at some ancestor-or-self (the carry
      that lets Child+/Child* steps fire arbitrarily deep).

    Both sets have at most |Q|+1 members, so memory is O(depth · |Q|).
    An element is selected iff the final position k lands in its ``S``.
    """
    steps = compile_path_nfa(expr)
    k = len(steps)
    ctx = _obs_current()
    events_seen = 0
    selected = 0

    def labels_ok(required: frozenset[str], label: str) -> bool:
        return all(r == label for r in required)

    # stack of (S, C) per open element
    stack: list[tuple[set[int], set[int]]] = []
    for event in events:
        if ctx is not None:
            ctx.tick()
            events_seen += 1
        if meter is not None:
            meter.tick()
        kind, node_id, label = event[0], event[1], event[2]
        if kind == "end":
            s, c = stack.pop()
            if meter is not None:
                meter.pop(2 + len(s) + len(c))
            continue
        if stack:
            parent_s, parent_c = stack[-1]
            s: set[int] = set()
        else:
            parent_s, parent_c = set(), set()
            s = {0}  # the context node: zero steps consumed at the root
        for i in range(k):
            axis, required = steps[i]
            ok = labels_ok(required, label)
            if not ok:
                continue
            if axis is Axis.CHILD:
                if i in parent_s:
                    s.add(i + 1)
            elif axis is Axis.CHILD_PLUS:
                if i in parent_c:
                    s.add(i + 1)
            elif axis is Axis.CHILD_STAR:
                if i in parent_c or i in s:
                    s.add(i + 1)
            else:  # Self
                if i in s:
                    s.add(i + 1)
        c = parent_c | s
        stack.append((s, c))
        if meter is not None:
            meter.push(2 + len(s) + len(c))
        if k in s:
            selected += 1
            yield node_id
    if ctx is not None:
        ctx.count("stream.events", events_seen)
        ctx.count("stream.selected", selected)


def stream_match_twig(
    pattern: TwigPattern,
    events: Iterable[Event],
    meter: MemoryMeter | None = None,
) -> bool:
    """Decide whether the document matches the Boolean twig query."""
    nodes = pattern.nodes
    by_label: dict[str, list[int]] = {}
    wildcard: list[int] = []
    for q in nodes:
        if q.label == "*":
            wildcard.append(q.index)
        else:
            by_label.setdefault(q.label, []).append(q.index)

    # stack frames: (matched_at_child, matched_at_strict_descendant)
    ctx = _obs_current()
    events_seen = 0
    stack: list[tuple[set[int], set[int]]] = []
    root_edge = pattern.root.edge
    root_idx = pattern.root.index
    found = False
    for event in events:
        if ctx is not None:
            ctx.tick()
            events_seen += 1
        if meter is not None:
            meter.tick()
        kind, _node_id, label = event[0], event[1], event[2]
        if kind == "start":
            stack.append((set(), set()))
            if meter is not None:
                meter.push(2)
            continue
        child_set, desc_set = stack.pop()
        if meter is not None:
            meter.pop(2 + len(child_set) + len(desc_set))
        matched_here: set[int] = set()
        for q_idx in by_label.get(label, []) + wildcard:
            q = nodes[q_idx]
            ok = True
            for child in q.children:
                if child.edge == "/":
                    if child.index not in child_set:
                        ok = False
                        break
                elif (
                    child.index not in child_set
                    and child.index not in desc_set
                ):
                    ok = False
                    break
            if ok:
                matched_here.add(q_idx)
        if root_idx in matched_here and (root_edge == "//" or not stack):
            found = True
        if stack:
            p_child, p_desc = stack[-1]
            before = len(p_child) + len(p_desc)
            p_child |= matched_here
            p_desc |= child_set | desc_set | matched_here
            if meter is not None:
                meter.push(len(p_child) + len(p_desc) - before)
    if ctx is not None:
        ctx.count("stream.events", events_seen)
    return found
