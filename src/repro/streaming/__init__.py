"""Streaming query evaluation (Section 5 "streaming algorithms" and the
memory lower bound discussed in Section 7).

- :mod:`~repro.streaming.events` — SAX-style (start, end) event streams
  from trees or XML text; the tree is never materialized,
- :mod:`~repro.streaming.engine` — two one-pass evaluators whose memory
  is O(depth · |Q|), matching the [40]-tight bound:

  * :func:`~repro.streaming.engine.stream_select` — node selection for
    downward forward path queries (Child/Child+/Child* steps with label
    tests), in the style of the transducer networks of [61, 65],
  * :func:`~repro.streaming.engine.stream_match_twig` — Boolean matching
    of forward twigs by bottom-up set propagation (the O(depth)
    streaming recognizer implicit in [60, 70]),

- :class:`~repro.streaming.memory.MemoryMeter` — peak live-state
  instrumentation used by experiment E15.
"""

from repro.streaming.events import tree_events, xml_events, Event
from repro.streaming.engine import stream_select, stream_match_twig
from repro.streaming.memory import MemoryMeter
from repro.streaming.buffered import stream_select_lookahead, split_lookahead

__all__ = [
    "Event",
    "tree_events",
    "xml_events",
    "stream_select",
    "stream_match_twig",
    "MemoryMeter",
    "stream_select_lookahead",
    "split_lookahead",
]
