"""SAX-style event streams.

An event is ``("start", node_id, label)`` or ``("end", node_id, label)``
where node ids are assigned in document order (pre-order) — exactly what
a SAX parser provides, and all the streaming evaluators may look at.
"""

from __future__ import annotations

from typing import Iterator

from repro.trees.tree import Tree
from repro.trees.xmlio import iter_xml_events

__all__ = ["Event", "tree_events", "xml_events"]

Event = tuple[str, int, str]


def tree_events(tree: Tree) -> Iterator[Event]:
    """Stream a materialized tree (used by tests and benchmarks; the
    evaluators never touch the tree object itself)."""
    # iterative pre-order with explicit close events
    stack: list[tuple[int, bool]] = [(tree.root, False)]
    while stack:
        v, closing = stack.pop()
        if closing:
            yield ("end", v, tree.label[v])
            continue
        yield ("start", v, tree.label[v])
        stack.append((v, True))
        for child in reversed(tree.children[v]):
            stack.append((child, False))


def xml_events(text: str) -> Iterator[Event]:
    """Stream an XML document without building the tree."""
    counter = 0
    open_ids: list[int] = []
    for event in iter_xml_events(text):
        if event[0] == "start":
            yield ("start", counter, event[1])
            open_ids.append(counter)
            counter += 1
        else:
            yield ("end", open_ids.pop(), event[1])
