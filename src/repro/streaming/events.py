"""SAX-style event streams.

An event is ``("start", node_id, label)`` or ``("end", node_id, label)``
where node ids are assigned in document order (pre-order) — exactly what
a SAX parser provides, and all the streaming evaluators may look at.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import InjectedFault
from repro.faults import faultpoint, register_site
from repro.trees.tree import Tree
from repro.trees.xmlio import iter_xml_events

__all__ = ["Event", "tree_events", "xml_events"]

Event = tuple[str, int, str]

register_site("stream.events", "SAX-style event stream handed to evaluators")


def _truncate_events(events: Iterator[Event], rng) -> Iterator[Event]:
    """Corruption mutator for ``stream.events``: cut the stream after a
    seeded number of events.  The cut *raises* rather than silently
    ending, so consumers see a typed failure instead of computing an
    answer over a partial document."""
    keep = rng.randrange(0, 32)

    def cut() -> Iterator[Event]:
        for i, event in enumerate(events):
            if i >= keep:
                raise InjectedFault(
                    "stream.events",
                    f"injected fault at 'stream.events': stream truncated "
                    f"after {keep} events",
                )
            yield event

    return cut()


def tree_events(tree: Tree) -> Iterator[Event]:
    """Stream a materialized tree (used by tests and benchmarks; the
    evaluators never touch the tree object itself)."""
    return faultpoint("stream.events", _tree_events(tree), mutator=_truncate_events)


def _tree_events(tree: Tree) -> Iterator[Event]:
    # iterative pre-order with explicit close events
    stack: list[tuple[int, bool]] = [(tree.root, False)]
    while stack:
        v, closing = stack.pop()
        if closing:
            yield ("end", v, tree.label[v])
            continue
        yield ("start", v, tree.label[v])
        stack.append((v, True))
        for child in reversed(tree.children[v]):
            stack.append((child, False))


def xml_events(text: str) -> Iterator[Event]:
    """Stream an XML document without building the tree."""
    return faultpoint("stream.events", _xml_events(text), mutator=_truncate_events)


def _xml_events(text: str) -> Iterator[Event]:
    counter = 0
    open_ids: list[int] = []
    for event in iter_xml_events(text):
        if event[0] == "start":
            yield ("start", counter, event[1])
            open_ids.append(counter)
            counter += 1
        else:
            yield ("end", open_ids.pop(), event[1])
