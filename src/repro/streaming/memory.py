"""Memory instrumentation for the streaming evaluators.

The paper (§7, citing [40]): any streaming algorithm for Boolean Core
XPath needs memory at least linear in the tree depth, and O(depth) is
achievable for MSO-definable (hence Core XPath) properties.  The meters
here count *live state units* — stack frames weighted by their state
size — so experiment E15 can plot peak memory against depth and size.
"""

from __future__ import annotations

__all__ = ["MemoryMeter"]


class MemoryMeter:
    """Tracks current and peak live state of a streaming run."""

    def __init__(self):
        self.current_units = 0
        self.peak_units = 0
        self.events_seen = 0

    def push(self, units: int = 1) -> None:
        self.current_units += units
        if self.current_units > self.peak_units:
            self.peak_units = self.current_units

    def pop(self, units: int = 1) -> None:
        self.current_units -= units

    def tick(self) -> None:
        self.events_seen += 1

    def __repr__(self) -> str:  # pragma: no cover
        return f"MemoryMeter(peak={self.peak_units}, events={self.events_seen})"
