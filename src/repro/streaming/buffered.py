"""Buffered streaming: lookahead qualifiers and the concurrency bound.

§7 of the paper discusses memory *lower bounds* for streaming XPath:
[40] proves Ω(depth), and [Bar-Yossef et al., PODS'04] show memory must
also grow with the number of *concurrently alive candidate answers*.
The pure O(depth) evaluators of :mod:`repro.streaming.engine` only
support qualifiers decidable at the start tag; this module adds the
simplest qualifier that *forces* buffering:

    ...final-step[ NextSibling+[lab() = L] ]

A node matching the final step cannot be emitted until a later sibling
labeled L arrives (or its parent closes, discarding it).  All pending
candidates under an open parent must be buffered — so on flat documents
the peak memory is Θ(#concurrent candidates), not Θ(depth), which the
extended experiment E15 measures.

:func:`stream_select_lookahead` evaluates a downward path query (the
:func:`~repro.streaming.engine.stream_select` fragment) whose *final*
step may additionally carry following-sibling-existence qualifiers.
Results are emitted as soon as confirmed (possibly out of document
order).
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.errors import QueryError
from repro.streaming.engine import compile_path_nfa
from repro.streaming.events import Event
from repro.streaming.memory import MemoryMeter
from repro.trees.axes import Axis
from repro.xpath.ast import (
    AxisStep,
    LabelTest,
    Path,
    PathQualifier,
    XPathExpr,
)

__all__ = ["stream_select_lookahead", "split_lookahead"]


def split_lookahead(expr: XPathExpr) -> tuple[XPathExpr, frozenset[str]]:
    """Separate following-sibling lookahead qualifiers off the final step.

    Returns (downward core query, labels that must each occur on some
    later sibling of a result node).  Raises :class:`QueryError` if a
    lookahead qualifier appears on a non-final step or has an
    unsupported shape.
    """
    def last_step(e: XPathExpr) -> AxisStep:
        if isinstance(e, AxisStep):
            return e
        if isinstance(e, Path):
            return last_step(e.right)
        raise QueryError("lookahead streaming needs a union-free path")

    def rebuild(e: XPathExpr, new_last: AxisStep) -> XPathExpr:
        if isinstance(e, AxisStep):
            return new_last
        assert isinstance(e, Path)
        return Path(e.left, rebuild(e.right, new_last))

    final = last_step(expr)
    lookahead: set[str] = set()
    kept = []
    for q in final.qualifiers:
        if (
            isinstance(q, PathQualifier)
            and isinstance(q.path, AxisStep)
            and q.path.axis is Axis.NEXT_SIBLING_PLUS
            and len(q.path.qualifiers) == 1
            and isinstance(q.path.qualifiers[0], LabelTest)
        ):
            lookahead.add(q.path.qualifiers[0].label)
        else:
            kept.append(q)
    core = rebuild(expr, AxisStep(final.axis, tuple(kept)))
    return core, frozenset(lookahead)


def stream_select_lookahead(
    expr: XPathExpr,
    events: Iterable[Event],
    meter: MemoryMeter | None = None,
) -> Iterator[int]:
    """Yield the ids of nodes selected by a downward path query whose
    final step may carry ``[NextSibling+[lab() = L]]`` qualifiers.

    Candidates are buffered inside their parent's frame until a later
    sibling carries every required label; unresolved candidates die when
    the parent closes.  Peak buffered state is Θ(concurrent candidates).
    """
    core, lookahead = split_lookahead(expr)
    steps = compile_path_nfa(core)
    k = len(steps)
    if not lookahead:
        from repro.streaming.engine import stream_select

        yield from stream_select(core, events, meter=meter)
        return

    def labels_ok(required: frozenset[str], label: str) -> bool:
        return all(r == label for r in required)

    # frames: (S, C, pending, missing) — pending[node_id] = set of labels
    # still awaited among later siblings of node_id
    stack: list[tuple[set[int], set[int], dict[int, set[str]]]] = []
    for event in events:
        if meter is not None:
            meter.tick()
        kind, node_id, label = event[0], event[1], event[2]
        if kind == "end":
            s, c, pending = stack.pop()
            if meter is not None:
                meter.pop(2 + len(s) + len(c) + sum(len(m) for m in pending.values()) + len(pending))
            continue
        if stack:
            parent_s, parent_c, pending = stack[-1]
            # this start tag is a new sibling: it may discharge waiting
            # candidates in the parent's buffer
            resolved = []
            for cand, missing in pending.items():
                if label in missing:
                    missing.discard(label)
                    if meter is not None:
                        meter.pop(1)
                    if not missing:
                        resolved.append(cand)
            for cand in resolved:
                del pending[cand]
                if meter is not None:
                    meter.pop(1)
                yield cand
            s: set[int] = set()
        else:
            parent_s, parent_c = set(), set()
            s = {0}
        for i in range(k):
            axis, required = steps[i]
            if not labels_ok(required, label):
                continue
            if axis is Axis.CHILD:
                if i in parent_s:
                    s.add(i + 1)
            elif axis is Axis.CHILD_PLUS:
                if i in parent_c:
                    s.add(i + 1)
            elif axis is Axis.CHILD_STAR:
                if i in parent_c or i in s:
                    s.add(i + 1)
            else:  # Self
                if i in s:
                    s.add(i + 1)
        c = parent_c | s
        if k in s:
            if stack:
                # buffer in the parent frame until the lookahead resolves
                stack[-1][2][node_id] = set(lookahead)
                if meter is not None:
                    meter.push(1 + len(lookahead))
            # a root-level candidate has no later siblings: it dies
        stack.append((s, c, {}))
        if meter is not None:
            meter.push(2 + len(s) + len(c))
