"""Two-pass unary queries on tree automata (completing Theorem 4.4).

A deterministic bottom-up automaton computes one state per node — enough
for *subtree-definable* unary queries, but not for context-dependent
ones ("has an ancestor labeled a").  The classical fix is a second,
top-down pass computing each node's **context function**

    c_v : Q → {accept, reject}
    c_v(q) = "would the automaton accept the whole tree if v's state
              were forcibly replaced by q?"

On the (FirstChild, NextSibling) encoding every non-root node v has a
unique *referrer* r — the node whose delta consumed v's state (its
parent if v is a first child, else its previous sibling) — and

    c_v(q) = c_r( delta(..., q in v's slot, ...) ),

so one increasing-id sweep computes all contexts in O(||A|| · |Q|) for a
declared finite state universe.  A unary MSO query is then any predicate
on the pair (state(v), c_v) — see
:func:`has_marked_ancestor_query` for the canonical example.
"""

from __future__ import annotations

from typing import Callable, Hashable, Sequence

from repro.automata.bottomup import BOTTOM, BottomUpTreeAutomaton, run_automaton
from repro.trees.tree import Tree

__all__ = ["context_run", "select_two_pass", "has_marked_ancestor_query"]

State = Hashable


def context_run(
    automaton: BottomUpTreeAutomaton,
    tree: Tree,
    state_universe: Sequence[State],
) -> tuple[list[State], list[frozenset[State]]]:
    """(states, contexts): per node, its bottom-up state and the set of
    hypothetical states q for which the tree would be accepted.

    ``state_universe`` must contain every state reachable on this tree
    (it is validated against the actual run).
    """
    states = run_automaton(automaton, tree)
    universe = list(state_universe)
    universe_set = set(universe)
    missing = {s for s in states if s not in universe_set}
    if missing:
        raise ValueError(f"states outside the declared universe: {missing}")

    delta = automaton.delta
    n = tree.n
    contexts: list[frozenset[State]] = [frozenset()] * n
    contexts[tree.root] = frozenset(
        q for q in universe if automaton.accepting(q)
    )
    # every non-root node's referrer has a smaller id (parent if first
    # child, previous sibling otherwise), so one forward sweep suffices
    for v in range(n):
        if v == tree.root:
            continue
        parent = tree.parent[v]
        if tree.sibling_index[v] == 0:
            referrer = parent
            v_is_left = True
        else:
            referrer = tree.prev_sibling[v]
            v_is_left = False
        r_first_child = tree.children[referrer][0] if tree.children[referrer] else -1
        r_next_sibling = tree.next_sibling[referrer]
        other_left = states[r_first_child] if r_first_child >= 0 else BOTTOM
        other_right = states[r_next_sibling] if r_next_sibling >= 0 else BOTTOM
        label = tree.label[referrer]
        ctx_r = contexts[referrer]
        good = []
        for q in universe:
            if v_is_left:
                outcome = delta(q, other_right, label)
            else:
                outcome = delta(other_left, q, label)
            if outcome in ctx_r:
                good.append(q)
        contexts[v] = frozenset(good)
    return states, contexts


def select_two_pass(
    automaton: BottomUpTreeAutomaton,
    tree: Tree,
    state_universe: Sequence[State],
    select: Callable[[State, frozenset], bool],
) -> set[int]:
    """The unary query {v : select(state(v), context(v))}."""
    states, contexts = context_run(automaton, tree, state_universe)
    return {v for v in tree.nodes() if select(states[v], contexts[v])}


def has_marked_ancestor_query(mark: str):
    """The canonical context-dependent unary query: nodes with a proper
    ancestor labeled ``mark`` — not subtree-definable, but expressible
    with a probe automaton plus the context function.

    States are pairs (probe, hit):

    - ``probe`` — this encoded subtree contains the probe,
    - ``hit``  — some ``mark``-labeled node's first-child chain contains
      the probe (i.e. the probe sits strictly below a mark node).

    In the *actual* run no probe exists, so every state is (0, 0).  Node
    v has a mark-ancestor iff *injecting* the probe at v would make the
    automaton accept: select(state, ctx) = (1, state[1]) ∈ ctx.

    Returns (automaton, state_universe, select).
    """

    def unpack(q):
        return (0, 0) if q == BOTTOM else q

    def delta(left, right, label):
        l_probe, l_hit = unpack(left)
        r_probe, r_hit = unpack(right)
        probe = l_probe or r_probe
        hit = l_hit or r_hit or (label == mark and l_probe)
        return (probe, hit)

    automaton = BottomUpTreeAutomaton(
        name=f"ancestor[{mark}]-probe",
        delta=delta,
        accepting=lambda q: unpack(q)[1] == 1,
    )
    universe = [(0, 0), (0, 1), (1, 0), (1, 1)]

    def select(state, ctx) -> bool:
        _probe, hit = unpack(state)
        return (1, hit) in ctx

    return automaton, universe, select
