"""Deterministic bottom-up automata on the binary (FirstChild,
NextSibling) encoding of unranked trees.

A :class:`BottomUpTreeAutomaton` has a transition *function*
``delta(left_state, right_state, label) -> state`` where ``left_state``
is the state of the node's first child (⊥ if a leaf) and ``right_state``
the state of its next sibling (⊥ if last sibling).  Because node ids are
pre-order positions, both the first child (id v+1) and the next sibling
have larger ids than v, so a single reverse pass computes all states —
the linear-time run of [71, 24] that Theorem 4.4 builds on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable

from repro.trees.tree import Tree

__all__ = [
    "BOTTOM",
    "BottomUpTreeAutomaton",
    "run_automaton",
    "accepts",
    "selecting_run",
]

#: The pseudo-state of an absent first child / next sibling.
BOTTOM = "_BOT_"

State = Hashable


@dataclass(frozen=True)
class BottomUpTreeAutomaton:
    """A deterministic bottom-up automaton.

    ``delta`` may be a dict keyed by (left, right, label) — missing keys
    fall back to ``default_state`` — or any callable.
    ``accepting`` decides acceptance from the root state.
    ``selecting`` (optional) marks states whose nodes a unary query
    selects (the subtree-definable unary queries; see
    :func:`selecting_run`).
    """

    name: str
    delta: "Callable[[State, State, str], State]"
    accepting: "Callable[[State], bool]"
    selecting: "Callable[[State], bool] | None" = None


def run_automaton(
    automaton: BottomUpTreeAutomaton, tree: Tree
) -> list[State]:
    """The state of every node, computed in one reverse pre-order pass."""
    n = tree.n
    states: list[State] = [BOTTOM] * n
    delta = automaton.delta
    first_child = [tree.children[v][0] if tree.children[v] else -1 for v in range(n)]
    next_sibling = tree.next_sibling
    label = tree.label
    for v in range(n - 1, -1, -1):
        fc = first_child[v]
        ns = next_sibling[v]
        states[v] = delta(
            states[fc] if fc >= 0 else BOTTOM,
            states[ns] if ns >= 0 else BOTTOM,
            label[v],
        )
    return states


def accepts(automaton: BottomUpTreeAutomaton, tree: Tree) -> bool:
    """Boolean MSO-style query: does the automaton accept the tree?"""
    states = run_automaton(automaton, tree)
    return automaton.accepting(states[tree.root])


def selecting_run(automaton: BottomUpTreeAutomaton, tree: Tree) -> set[int]:
    """The nodes whose state is selected (requires ``selecting``)."""
    if automaton.selecting is None:
        raise ValueError(f"automaton {automaton.name} has no selection set")
    states = run_automaton(automaton, tree)
    return {v for v in tree.nodes() if automaton.selecting(states[v])}
