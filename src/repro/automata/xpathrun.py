"""Downward Core XPath evaluated as a tree-automaton run (§4, Thm 4.4).

For the *downward* fragment — spine and qualifier paths built from the
axes Self, Child, Child+ and Child* — every qualifier denotes a
subtree-definable unary predicate, so the whole query can be answered by

1. one **bottom-up pass** (children before parents, i.e. reverse
   pre-order) computing, per node, a bit-vector of predicate states:
   for every qualifier path with steps ``t_i .. t_k`` the bits

   - ``OK_i(v)`` — v passes t_i's own tests and the rest of the path
     matches from v,
   - ``S_i(v)``  — some node in v's subtree (including v) has ``OK_i``,
   - ``R_i(v)``  — steps ``t_i .. t_k`` match starting *from* v,

   which is exactly a deterministic bottom-up automaton over the
   unranked tree whose state set is the product of these booleans, and

2. one **top-down pass** (the context pass of
   :mod:`repro.automata.twopass`) threading reachability from the root
   through the spine steps: ``F_j(v)`` — v is a step-j target of
   ``[[s_1/…/s_j]](root)`` — plus the ancestor accumulator ``A_j``
   for the transitive axes.

Neither pass materializes node sets; both are O(n · |Q|) array sweeps.
This is the "compile the query into an automaton and run it once"
evaluation route of Theorem 4.4, specialised to downward Core XPath
(negation and disjunction inside qualifiers are free — they are boolean
operations on states — while ``position()`` and reverse/sibling axes
fall outside the fragment).
"""

from __future__ import annotations

from typing import Callable

from repro.errors import QueryError
from repro.trees.axes import Axis
from repro.trees.tree import Tree
from repro.xpath.ast import (
    AndQual,
    AxisStep,
    LabelTest,
    NotQual,
    OrQual,
    Path,
    PathQualifier,
    Qualifier,
    XPathExpr,
    steps_of,
)

__all__ = ["is_downward", "evaluate_xpath_automaton"]

#: The axes of the downward (subtree-definable) fragment.
DOWNWARD_AXES = frozenset(
    {Axis.SELF, Axis.CHILD, Axis.CHILD_PLUS, Axis.CHILD_STAR}
)


def is_downward(expr: "XPathExpr | Qualifier") -> bool:
    """Is ``expr`` a union-free path over Self/Child/Child+/Child* whose
    qualifiers (recursively) stay inside the same fragment?"""
    if isinstance(expr, (AxisStep, Path)):
        try:
            steps = steps_of(expr)
        except ValueError:
            return False
        return all(
            step.axis in DOWNWARD_AXES
            and all(_qual_downward(q) for q in step.qualifiers)
            for step in steps
        )
    return False


def _qual_downward(q: Qualifier) -> bool:
    if isinstance(q, LabelTest):
        return True
    if isinstance(q, (AndQual, OrQual)):
        return _qual_downward(q.left) and _qual_downward(q.right)
    if isinstance(q, NotQual):
        return _qual_downward(q.operand)
    if isinstance(q, PathQualifier):
        return is_downward(q.path)
    return False  # PositionTest


class _DownPath:
    """Per-node automaton state for one qualifier path (steps 0..k-1)."""

    __slots__ = ("steps", "quals", "OK", "S", "R")

    def __init__(self, expr: XPathExpr, tree: Tree, registry: "list[_DownPath]"):
        self.steps = steps_of(expr)
        # compiling the qualifiers first appends nested paths to the
        # registry before this one, so the sweep updates inner before outer
        self.quals = [
            [_compile_qual(q, tree, registry) for q in s.qualifiers]
            for s in self.steps
        ]
        n = tree.n
        k = len(self.steps)
        self.OK = [[False] * n for _ in range(k)]
        self.S = [[False] * n for _ in range(k)]
        self.R = [[False] * n for _ in range(k)]

    def update(self, v: int, tree: Tree) -> None:
        """Transition at ``v`` — every child's state is already computed."""
        children = tree.children[v]
        k = len(self.steps)
        for i in range(k - 1, -1, -1):
            ok = all(q(v) for q in self.quals[i]) and (
                self.R[i + 1][v] if i + 1 < k else True
            )
            self.OK[i][v] = ok
            s = ok or any(self.S[i][c] for c in children)
            self.S[i][v] = s
            axis = self.steps[i].axis
            if axis is Axis.CHILD:
                r = any(self.OK[i][c] for c in children)
            elif axis is Axis.CHILD_PLUS:
                r = any(self.S[i][c] for c in children)
            elif axis is Axis.CHILD_STAR:
                r = s
            else:  # Self
                r = ok
            self.R[i][v] = r


def _compile_qual(
    q: Qualifier, tree: Tree, registry: "list[_DownPath]"
) -> Callable[[int], bool]:
    """A per-node boolean view of one qualifier over the state arrays."""
    if isinstance(q, LabelTest):
        label = q.label
        return lambda v: tree.has_label(v, label)
    if isinstance(q, AndQual):
        left = _compile_qual(q.left, tree, registry)
        right = _compile_qual(q.right, tree, registry)
        return lambda v: left(v) and right(v)
    if isinstance(q, OrQual):
        left = _compile_qual(q.left, tree, registry)
        right = _compile_qual(q.right, tree, registry)
        return lambda v: left(v) or right(v)
    if isinstance(q, NotQual):
        inner = _compile_qual(q.operand, tree, registry)
        return lambda v: not inner(v)
    if isinstance(q, PathQualifier):
        down = _DownPath(q.path, tree, registry)
        registry.append(down)
        reach = down.R[0]
        return lambda v: reach[v]
    raise QueryError(
        "position() predicates are outside the downward automaton fragment"
    )


def evaluate_xpath_automaton(expr: XPathExpr, tree: Tree) -> set[int]:
    """[[expr]](root) for downward Core XPath via the two automaton passes."""
    if not is_downward(expr):
        raise QueryError(
            "the automaton evaluator covers the downward fragment only "
            "(axes Self/Child/Child+/Child*, no position())"
        )
    from repro.obs.context import current as _obs_current

    ctx = _obs_current()
    n = tree.n
    registry: list[_DownPath] = []
    spine = steps_of(expr)
    spine_quals = [
        [_compile_qual(q, tree, registry) for q in s.qualifiers] for s in spine
    ]

    # pass 1: bottom-up automaton run (children have larger pre ids)
    for v in range(n - 1, -1, -1):
        for down in registry:
            down.update(v, tree)

    if ctx is not None:
        # both passes touch every node once per automaton/spine level
        ctx.count("automaton.passes", 2)
        ctx.tick(n * max(len(registry), 1))
        ctx.tick(n)

    # pass 2: top-down context pass through the spine
    m = len(spine)
    F = [[False] * n for _ in range(m + 1)]
    A = [[False] * n for _ in range(m + 1)]
    parent = tree.parent
    answer: set[int] = set()
    for v in range(n):
        p = parent[v]
        F[0][v] = v == tree.root
        for j in range(1, m + 1):
            axis = spine[j - 1].axis
            anc = p >= 0 and (F[j - 1][p] or A[j][p])
            A[j][v] = anc
            qual_ok = all(q(v) for q in spine_quals[j - 1])
            if axis is Axis.CHILD:
                f = p >= 0 and F[j - 1][p] and qual_ok
            elif axis is Axis.CHILD_PLUS:
                f = anc and qual_ok
            elif axis is Axis.CHILD_STAR:
                f = (F[j - 1][v] or anc) and qual_ok
            else:  # Self
                f = F[j - 1][v] and qual_ok
            F[j][v] = f
        if F[m][v]:
            answer.add(v)
    return answer
