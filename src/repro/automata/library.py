"""A small library of concrete tree automata and closure operations.

These give executable content to the §4 claims: fixed MSO properties
run in linear time (Theorem 4.4 / Courcelle), and the class is closed
under boolean combinations (product / complement of deterministic
automata).
"""

from __future__ import annotations

from repro.automata.bottomup import BOTTOM, BottomUpTreeAutomaton

__all__ = [
    "label_exists_automaton",
    "label_count_mod_automaton",
    "child_pattern_automaton",
    "product_automaton",
    "complement_automaton",
]


def label_exists_automaton(target: str) -> BottomUpTreeAutomaton:
    """Accepts trees containing a node labeled ``target`` — the automaton
    equivalent of the Boolean MSO query ∃x Lab_target(x)."""

    def delta(left, right, label):
        found = label == target or left == "yes" or right == "yes"
        return "yes" if found else "no"

    return BottomUpTreeAutomaton(
        name=f"exists[{target}]",
        delta=delta,
        accepting=lambda q: q == "yes",
        selecting=None,
    )


def label_count_mod_automaton(target: str, modulus: int) -> BottomUpTreeAutomaton:
    """Accepts trees whose number of ``target`` nodes is ≡ 0 (mod m) —
    an MSO-but-not-FO property, to make the point that the automaton
    route covers all of MSO."""

    def delta(left, right, label):
        total = (left if left != BOTTOM else 0) + (right if right != BOTTOM else 0)
        if label == target:
            total += 1
        return total % modulus

    return BottomUpTreeAutomaton(
        name=f"count[{target}] mod {modulus}",
        delta=delta,
        accepting=lambda q: q == 0,
    )


def child_pattern_automaton(parent: str, child: str) -> BottomUpTreeAutomaton:
    """Accepts trees with some ``parent``-labeled node that has a
    ``child``-labeled child; also *selects* those parent nodes.

    State: (subtree_found, sibling_or_self_has_child_label, selected).
    The binary encoding makes "some child labeled c" equal to "some node
    in the first child's NextSibling* chain labeled c".
    """

    def unpack(q):
        if q == BOTTOM:
            return (False, False, False)
        return q

    def delta(left, right, label):
        l_found, l_chain, _l_sel = unpack(left)
        r_found, r_chain, _r_sel = unpack(right)
        chain = label == child or r_chain  # me-or-right-siblings labeled `child`
        selected = label == parent and l_chain
        found = selected or l_found or r_found
        return (found, chain, selected)

    return BottomUpTreeAutomaton(
        name=f"pattern[{parent}/{child}]",
        delta=delta,
        accepting=lambda q: unpack(q)[0],
        selecting=lambda q: unpack(q)[2],
    )


def product_automaton(
    a: BottomUpTreeAutomaton,
    b: BottomUpTreeAutomaton,
    mode: str = "and",
) -> BottomUpTreeAutomaton:
    """The product construction; accepts the conjunction (or disjunction)
    of the two languages."""
    if mode not in ("and", "or"):
        raise ValueError("mode must be 'and' or 'or'")

    def split(q):
        return (BOTTOM, BOTTOM) if q == BOTTOM else q

    def delta(left, right, label):
        la, lb = split(left)
        ra, rb = split(right)
        return (a.delta(la, ra, label), b.delta(lb, rb, label))

    def accepting(q):
        qa, qb = q
        if mode == "and":
            return a.accepting(qa) and b.accepting(qb)
        return a.accepting(qa) or b.accepting(qb)

    return BottomUpTreeAutomaton(
        name=f"({a.name} {mode} {b.name})", delta=delta, accepting=accepting
    )


def complement_automaton(a: BottomUpTreeAutomaton) -> BottomUpTreeAutomaton:
    """Complement — trivial for deterministic automata: flip acceptance."""
    return BottomUpTreeAutomaton(
        name=f"not({a.name})",
        delta=a.delta,
        accepting=lambda q: not a.accepting(q),
        selecting=a.selecting,
    )
