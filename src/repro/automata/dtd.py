"""DTD validation — in memory and streaming ([Segoufin & Vianu,
PODS'02], reference [70] of the paper).

A DTD maps each element label to a *content model*: a regular expression
over child-label sequences.  Validation checks every node's child
sequence against its label's model.  The streaming validator keeps one
automaton state per open element — memory O(depth · |DTD|), the [70]
upper bound the paper quotes for streaming recognizers of MSO-definable
tree languages (DTDs are a special case).

Content-model syntax::

    "a, b?, c*"        sequence with optional / starred items
    "(a | b)+"         alternation, one or more
    "EMPTY"            no children allowed
    "ANY"              anything allowed

Content models compile to Glushkov position automata (epsilon-free NFAs
with one state per label occurrence), simulated with state sets.
"""

from __future__ import annotations

import re
from typing import Iterable

from repro.errors import ParseError
from repro.streaming.events import Event
from repro.streaming.memory import MemoryMeter
from repro.trees.tree import Tree

__all__ = ["DTD", "ContentModel"]

_TOKEN = re.compile(r"\s*([\w.\-]+|[(),|?*+])")
_START = -1  # the pre-first-symbol NFA state


class _Node:
    """Regex AST node carrying its Glushkov attributes."""

    __slots__ = ("kind", "label", "children", "nullable", "first", "last")

    def __init__(self, kind: str, label=None, children=()):
        self.kind = kind  # "sym" | "seq" | "alt" | "star" | "plus" | "opt"
        self.label = label
        self.children = list(children)
        self.nullable = False
        self.first: set[int] = set()
        self.last: set[int] = set()


def _parse_regex(text: str) -> _Node:
    tokens = _TOKEN.findall(text)
    pos = 0

    def peek():
        return tokens[pos] if pos < len(tokens) else None

    def take(expected=None):
        nonlocal pos
        if pos >= len(tokens):
            raise ParseError(f"content model ended early: {text!r}")
        token = tokens[pos]
        if expected is not None and token != expected:
            raise ParseError(f"expected {expected!r} in content model {text!r}")
        pos += 1
        return token

    def parse_alt() -> _Node:
        node = parse_seq()
        while peek() == "|":
            take("|")
            node = _Node("alt", children=[node, parse_seq()])
        return node

    def parse_seq() -> _Node:
        node = parse_postfix()
        while peek() == ",":
            take(",")
            node = _Node("seq", children=[node, parse_postfix()])
        return node

    def parse_postfix() -> _Node:
        node = parse_atom()
        while peek() in ("*", "+", "?"):
            kind = {"*": "star", "+": "plus", "?": "opt"}[take()]
            node = _Node(kind, children=[node])
        return node

    def parse_atom() -> _Node:
        token = peek()
        if token == "(":
            take("(")
            node = parse_alt()
            take(")")
            return node
        if token is None or token in ("|", ",", ")", "*", "+", "?"):
            raise ParseError(f"bad content model {text!r}")
        return _Node("sym", label=take())

    node = parse_alt()
    if pos != len(tokens):
        raise ParseError(f"trailing input in content model {text!r}")
    return node


class ContentModel:
    """A compiled content model (Glushkov position automaton)."""

    def __init__(self, text: str):
        self.text = text.strip()
        self.is_any = self.text == "ANY"
        self.positions: list[str] = []
        self.follow: list[set[int]] = []
        self.first: set[int] = set()
        self.last: set[int] = set()
        self.nullable = True
        if self.is_any or self.text in ("EMPTY", ""):
            return
        ast = _parse_regex(self.text)
        self._glushkov(ast)
        self.first = ast.first
        self.last = ast.last
        self.nullable = ast.nullable

    def _glushkov(self, node: _Node) -> None:
        if node.kind == "sym":
            index = len(self.positions)
            self.positions.append(node.label)
            self.follow.append(set())
            node.first = {index}
            node.last = {index}
            node.nullable = False
            return
        for child in node.children:
            self._glushkov(child)
        if node.kind == "seq":
            left, right = node.children
            node.nullable = left.nullable and right.nullable
            node.first = set(left.first) | (right.first if left.nullable else set())
            node.last = set(right.last) | (left.last if right.nullable else set())
            for p in left.last:
                self.follow[p] |= right.first
        elif node.kind == "alt":
            left, right = node.children
            node.nullable = left.nullable or right.nullable
            node.first = left.first | right.first
            node.last = left.last | right.last
        elif node.kind in ("star", "plus"):
            (child,) = node.children
            node.nullable = child.nullable or node.kind == "star"
            node.first = set(child.first)
            node.last = set(child.last)
            for p in child.last:
                self.follow[p] |= child.first
        elif node.kind == "opt":
            (child,) = node.children
            node.nullable = True
            node.first = set(child.first)
            node.last = set(child.last)
        else:  # pragma: no cover
            raise AssertionError(node.kind)

    # -- NFA simulation (state = last matched position, or _START) -------------

    def start_states(self) -> set[int]:
        return {_START}

    def step(self, states: set[int], label: str) -> set[int]:
        """One child label; empty result means mismatch."""
        nxt: set[int] = set()
        for s in states:
            candidates = self.first if s == _START else self.follow[s]
            for p in candidates:
                if self.positions[p] == label:
                    nxt.add(p)
        return nxt

    def accepts_states(self, states: set[int]) -> bool:
        if _START in states and self.nullable:
            return True
        return bool(states & self.last)

    def matches(self, labels: Iterable[str]) -> bool:
        if self.is_any:
            return True
        states = self.start_states()
        for label in labels:
            states = self.step(states, label)
            if not states:
                return False
        return self.accepts_states(states)


class DTD:
    """A document type definition: label → content model, plus an
    optional required root label."""

    def __init__(self, rules: dict[str, str], root: "str | None" = None):
        self.models = {label: ContentModel(text) for label, text in rules.items()}
        self.root = root

    # -- in-memory validation -------------------------------------------------

    def validate(self, tree: Tree) -> "str | None":
        """None if valid, else a human-readable violation message."""
        if self.root is not None and tree.label[tree.root] != self.root:
            return f"root is <{tree.label[tree.root]}>, expected <{self.root}>"
        for v in tree.nodes():
            label = tree.label[v]
            model = self.models.get(label)
            if model is None:
                return f"undeclared element <{label}> (node {v})"
            child_labels = [tree.label[c] for c in tree.children[v]]
            if not model.matches(child_labels):
                return (
                    f"children of <{label}> (node {v}) violate "
                    f"{model.text!r}: {child_labels}"
                )
        return None

    def is_valid(self, tree: Tree) -> bool:
        return self.validate(tree) is None

    # -- streaming validation ([70]) -------------------------------------------

    def stream_validate(
        self, events: Iterable[Event], meter: MemoryMeter | None = None
    ) -> bool:
        """One-pass validation: one NFA state-set per open element."""
        # frame: (model, states) — states is None for ANY
        stack: list[tuple[ContentModel, "set[int] | None"]] = []
        for event in events:
            if meter is not None:
                meter.tick()
            kind, _node, label = event[0], event[1], event[2]
            if kind == "start":
                if not stack and self.root is not None and label != self.root:
                    return False
                model = self.models.get(label)
                if model is None:
                    return False
                if stack:
                    parent_model, parent_states = stack[-1]
                    if parent_states is not None:
                        advanced = parent_model.step(parent_states, label)
                        if not advanced:
                            return False
                        parent_states.clear()
                        parent_states.update(advanced)
                states = None if model.is_any else model.start_states()
                stack.append((model, states))
                if meter is not None:
                    meter.push(1 + (len(states) if states else 0))
            else:
                model, states = stack.pop()
                if meter is not None:
                    meter.pop(1 + (len(states) if states else 0))
                if states is not None and not model.accepts_states(states):
                    return False
        return True
