"""Tree automata over the (FirstChild, NextSibling) binary encoding
(§4 "Tree Data": Boolean MSO queries on trees = tree automata, with
linear-time data complexity [71, 24]; Theorem 4.4).

The encoding is Figure 1(b) of the paper: every node's left pointer is
its first child, its right pointer its next sibling.  A deterministic
bottom-up automaton assigns each node a state from the states of its
encoded left/right children; acceptance looks at the root state.  Runs
are a single reverse-document-order array pass — O(||A||) with a tiny
constant, which experiment E16 measures.
"""

from repro.automata.bottomup import (
    BottomUpTreeAutomaton,
    run_automaton,
    accepts,
    selecting_run,
)
from repro.automata.dtd import DTD, ContentModel
from repro.automata.twopass import (
    context_run,
    select_two_pass,
    has_marked_ancestor_query,
)
from repro.automata.library import (
    label_exists_automaton,
    label_count_mod_automaton,
    child_pattern_automaton,
    product_automaton,
    complement_automaton,
)

__all__ = [
    "BottomUpTreeAutomaton",
    "run_automaton",
    "accepts",
    "selecting_run",
    "label_exists_automaton",
    "label_count_mod_automaton",
    "child_pattern_automaton",
    "product_automaton",
    "complement_automaton",
    "DTD",
    "ContentModel",
    "context_run",
    "select_two_pass",
    "has_marked_ancestor_query",
]
