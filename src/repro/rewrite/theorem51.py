"""Theorem 5.1: every conjunctive query over trees has an equivalent
union of acyclic positive queries, computable in exponential time.

Two implementations of the proof's rewriting:

- :func:`rewrite_to_acyclic_union` — the *eager* algorithm exactly as in
  the proof: enumerate every weak order ψ of the query variables (the
  consistent disjuncts of the CNF over {=, <pre, >pre}), specialize Q by
  ψ, and run the Table-1 replacement loop on each Qψ;
- :func:`rewrite_lazy` — the improvement discussed after the proof
  ([35]): only branch on the order of x and y when a pair of atoms
  R(x, z), S(y, z) actually needs it, and only expand a Child*/
  NextSibling* atom when it participates in such a pair.

Both return a list of acyclic :class:`ConjunctiveQuery` disjuncts whose
union is equivalent to the input.  :func:`evaluate_via_rewriting`
finishes the job with Yannakakis' algorithm (Corollary 5.2).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.cq.acyclic import is_acyclic
from repro.cq.query import ConjunctiveQuery, atom_axis
from repro.cq.yannakakis import yannakakis
from repro.datalog.syntax import Atom, is_variable
from repro.errors import QueryError
from repro.rewrite.table1 import TABLE_1, REWRITE_AXES
from repro.trees.axes import Axis
from repro.trees.tree import Tree

__all__ = [
    "rewrite_to_acyclic_union",
    "rewrite_lazy",
    "evaluate_via_rewriting",
    "RewriteStats",
    "MAX_EAGER_VARIABLES",
]

MAX_EAGER_VARIABLES = 7

_STAR_OF = {Axis.CHILD_STAR: Axis.CHILD_PLUS, Axis.NEXT_SIBLING_STAR: Axis.NEXT_SIBLING_PLUS}
_VERTICAL = {Axis.CHILD, Axis.CHILD_PLUS}
_HORIZONTAL = {Axis.NEXT_SIBLING, Axis.NEXT_SIBLING_PLUS}


@dataclass
class RewriteStats:
    """Work counters for experiment E9 (eager vs lazy, ablation A2)."""

    orders_considered: int = 0
    branches: int = 0
    replacements: int = 0
    disjuncts_dropped: int = 0
    disjuncts_produced: int = 0


# ---------------------------------------------------------------------------
# preprocessing shared by both variants
# ---------------------------------------------------------------------------


def _preprocess(
    query: ConjunctiveQuery,
) -> tuple[tuple[str, ...], list[tuple[str, str]], list[tuple[Axis, str, str]], dict[str, str]]:
    """Canonicalize; expand Following and FirstChild; merge Self atoms;
    turn constants into Const: unary guards.

    Returns (head, unary list [(pred, var)], binary list [(axis, x, y)],
    initial representative map from Self-merging).
    """
    query = query.canonicalized().validate()
    counter = itertools.count()
    unary: list[tuple[str, str]] = []
    binary: list[tuple[Axis, str, str]] = []
    merges: list[tuple[str, str]] = []

    def freshen(t) -> str:
        if is_variable(t):
            return t
        v = f"_k{next(counter)}"
        unary.append((f"Const:{t}", v))
        return v

    for atom in query.atoms:
        if atom.arity == 1:
            unary.append((atom.pred, freshen(atom.args[0])))
            continue
        axis = atom_axis(atom)
        x, y = (freshen(t) for t in atom.args)
        if axis is Axis.SELF:
            merges.append((x, y))
        elif axis is Axis.FIRST_CHILD:
            binary.append((Axis.CHILD, x, y))
            unary.append(("FirstSibling", y))
        elif axis is Axis.FOLLOWING:
            x0 = f"_f{next(counter)}"
            y0 = f"_f{next(counter)}"
            binary.append((Axis.NEXT_SIBLING_PLUS, x0, y0))
            binary.append((Axis.CHILD_STAR, x0, x))
            binary.append((Axis.CHILD_STAR, y0, y))
        else:
            binary.append((axis, x, y))

    # union-find for the Self merges
    rep: dict[str, str] = {}

    def find(v: str) -> str:
        while rep.get(v, v) != v:
            rep[v] = rep.get(rep[v], rep[v])
            v = rep[v]
        return v

    for a, b in merges:
        ra, rb = find(a), find(b)
        if ra != rb:
            rep[ra] = rb
    unary = [(p, find(v)) for p, v in unary]
    binary = [(ax, find(x), find(y)) for ax, x, y in binary]
    rep_full = {}
    for v in set(query.head) | {v for _p, v in unary} | {
        v for _ax, x, y in binary for v in (x, y)
    }:
        rep_full[v] = find(v)
    return query.head, unary, binary, rep_full


# ---------------------------------------------------------------------------
# a disjunct under a fixed strict total order
# ---------------------------------------------------------------------------


class _Unsat(Exception):
    """The disjunct turned out unsatisfiable."""


def _specialize(
    unary: list[tuple[str, str]],
    binary: list[tuple[Axis, str, str]],
    block_of: dict[str, int],
    rep_of_block: dict[int, str],
) -> tuple[set[tuple[str, str]], set[tuple[Axis, str, str]]]:
    """Specialize the atoms under a weak order: merge same-block
    variables, expand star axes, check order-consistency.
    Raises :class:`_Unsat` if the disjunct dies."""

    def rep(v: str) -> str:
        return rep_of_block[block_of[v]]

    new_unary = {(p, rep(v)) for p, v in unary}
    new_binary: set[tuple[Axis, str, str]] = set()
    for axis, x, y in binary:
        rx, ry = rep(x), rep(y)
        if axis in _STAR_OF:
            if rx == ry:
                continue  # R*(x, x) is always true
            axis = _STAR_OF[axis]
        if rx == ry:
            raise _Unsat  # irreflexive axis on one node
        if block_of[x] > block_of[y]:
            raise _Unsat  # forward axis against the chosen <pre order
        new_binary.add((axis, rx, ry))
    return new_unary, new_binary


def _absorb_and_check(
    binary: set[tuple[Axis, str, str]],
) -> set[tuple[Axis, str, str]]:
    """Drop R+(x, y) when R(x, y) is present; fail on a vertical and a
    horizontal atom over the same ordered pair; resolve self-loops
    (reflexive star loops vanish, irreflexive ones are unsatisfiable)."""
    by_pair: dict[tuple[str, str], set[Axis]] = {}
    for axis, x, y in binary:
        if x == y:
            if axis in _STAR_OF:
                continue
            raise _Unsat
        by_pair.setdefault((x, y), set()).add(axis)
    result: set[tuple[Axis, str, str]] = set()
    for (x, y), axes in by_pair.items():
        if axes & _VERTICAL and axes & _HORIZONTAL:
            raise _Unsat
        if Axis.CHILD in axes:
            axes.discard(Axis.CHILD_PLUS)
        if Axis.NEXT_SIBLING in axes:
            axes.discard(Axis.NEXT_SIBLING_PLUS)
        for axis in axes:
            result.add((axis, x, y))
    return result


def _replacement_loop(
    binary: set[tuple[Axis, str, str]],
    pos: dict[str, int],
    stats: RewriteStats,
) -> set[tuple[Axis, str, str]]:
    """The core loop of the Theorem 5.1 proof: while some z has two
    incoming atoms, pick z maximal and x minimal, consult Table 1, and
    either drop the disjunct or replace R(x, z) by R(x, y)."""
    binary = _absorb_and_check(binary)
    while True:
        incoming: dict[str, list[tuple[Axis, str]]] = {}
        for axis, x, z in binary:
            incoming.setdefault(z, []).append((axis, x))
        candidates = [
            z for z, atoms in incoming.items() if len(atoms) >= 2
        ]
        if not candidates:
            return binary
        z = max(candidates, key=lambda v: pos[v])
        atoms = sorted(incoming[z], key=lambda ax: pos[ax[1]])
        (r_axis, x), (s_axis, y) = atoms[0], atoms[1]
        if pos[x] == pos[y]:  # two atoms from the same source variable
            # same (x, z) pair with different axes — absorb/conflict rules
            # already ran, so this is Child+ and NextSibling+ etc. conflict
            raise _Unsat
        if not TABLE_1[(r_axis, s_axis)]:
            raise _Unsat
        stats.replacements += 1
        binary.discard((r_axis, x, z))
        binary.add((r_axis, x, y))
        binary = _absorb_and_check(binary)


def _to_query(
    head: tuple[str, ...],
    rep: dict[str, str],
    unary: set[tuple[str, str]],
    binary: set[tuple[Axis, str, str]],
) -> ConjunctiveQuery:
    atoms: list[Atom] = [Atom(p, (v,)) for p, v in sorted(unary)]
    atoms.extend(
        Atom(axis.value, (x, y)) for axis, x, y in sorted(binary, key=str)
    )
    mapped_head = tuple(rep.get(v, v) for v in head)
    body_vars = {t for a in atoms for t in a.variables()}
    for v in mapped_head:
        if v not in body_vars:
            atoms.append(Atom("Dom", (v,)))
            body_vars.add(v)
    return ConjunctiveQuery(mapped_head, tuple(atoms))


# ---------------------------------------------------------------------------
# eager enumeration of weak orders (the proof's Ψ)
# ---------------------------------------------------------------------------


def _weak_orders(variables: list[str]):
    """All weak orders (ordered set partitions) of the variables."""

    def partitions(items: list[str]):
        if not items:
            yield []
            return
        first, rest = items[0], items[1:]
        for part in partitions(rest):
            for i, block in enumerate(part):
                yield part[:i] + [block + [first]] + part[i + 1:]
            yield [[first]] + part

    for part in partitions(variables):
        for ordering in itertools.permutations(part):
            yield ordering


def rewrite_to_acyclic_union(
    query: ConjunctiveQuery, stats: RewriteStats | None = None
) -> list[ConjunctiveQuery]:
    """The eager Theorem 5.1 rewriting.  Exponential: one candidate
    disjunct per weak order of the variables (capped at
    :data:`MAX_EAGER_VARIABLES` variables)."""
    stats = stats if stats is not None else RewriteStats()
    head, unary, binary, rep0 = _preprocess(query)
    variables = sorted(
        {rep0.get(v, v) for v in rep0.values()}
        | {v for _p, v in unary}
        | {v for _ax, x, y in binary for v in (x, y)}
        | {rep0.get(v, v) for v in head}
    )
    if len(variables) > MAX_EAGER_VARIABLES:
        raise QueryError(
            f"eager rewriting is capped at {MAX_EAGER_VARIABLES} variables "
            f"({len(variables)} present); use rewrite_lazy"
        )
    out: list[ConjunctiveQuery] = []
    seen: set = set()
    for ordering in _weak_orders(variables):
        stats.orders_considered += 1
        block_of = {
            v: i for i, block in enumerate(ordering) for v in block
        }
        rep_of_block = {i: min(block) for i, block in enumerate(ordering)}
        pos = {rep_of_block[i]: i for i in rep_of_block}
        try:
            u, b = _specialize(unary, binary, block_of, rep_of_block)
            b = _replacement_loop(b, pos, stats)
        except _Unsat:
            stats.disjuncts_dropped += 1
            continue
        rep = {v: rep_of_block[block_of[v]] for v in block_of}
        rep.update({v: rep.get(rep0.get(v, v), rep0.get(v, v)) for v in head})
        result = _to_query(head, rep, u, b)
        key = (result.head, frozenset(result.atoms))
        if key not in seen:
            seen.add(key)
            out.append(result)
            stats.disjuncts_produced += 1
    for disjunct in out:
        assert is_acyclic(disjunct), f"non-acyclic disjunct: {disjunct}"
    return out


# ---------------------------------------------------------------------------
# lazy branching variant ([35])
# ---------------------------------------------------------------------------


@dataclass
class _LazyState:
    unary: frozenset
    binary: frozenset  # (axis, x, y), possibly star axes
    order: frozenset   # known strict constraints (a, b) meaning a <pre b
    rep: tuple         # merged-variable map as sorted tuple of pairs

    def rep_map(self) -> dict[str, str]:
        return dict(self.rep)


def _lazy_reachable(order: frozenset, a: str, b: str) -> bool:
    """Is a <pre b entailed (transitively) by the recorded constraints?"""
    frontier = [a]
    seen = {a}
    succ: dict[str, list[str]] = {}
    for u, v in order:
        succ.setdefault(u, []).append(v)
    while frontier:
        u = frontier.pop()
        for v in succ.get(u, ()):
            if v == b:
                return True
            if v not in seen:
                seen.add(v)
                frontier.append(v)
    return False


def _star_on_cycle(
    binary: set[tuple[Axis, str, str]]
) -> tuple[Axis, str, str] | None:
    """A star atom lying on an undirected cycle of the atom graph, or
    None if the graph is a forest (or only concrete atoms form cycles,
    which cannot happen for order-consistent states)."""

    def connected_without(skip, a, b) -> bool:
        adj: dict[str, list[str]] = {}
        for atom in binary:
            if atom == skip:
                continue
            _ax, x, y = atom
            adj.setdefault(x, []).append(y)
            adj.setdefault(y, []).append(x)
        frontier, seen = [a], {a}
        while frontier:
            u = frontier.pop()
            if u == b:
                return True
            for v in adj.get(u, ()):
                if v not in seen:
                    seen.add(v)
                    frontier.append(v)
        return False

    for atom in binary:
        axis, x, y = atom
        if axis in _STAR_OF and connected_without(atom, x, y):
            return atom
    return None


def rewrite_lazy(
    query: ConjunctiveQuery, stats: RewriteStats | None = None
) -> list[ConjunctiveQuery]:
    """The lazy variant: branch on the relative order of two variables
    only when a pair R(x, z), S(y, z) requires it, and expand a star
    atom only when it participates in such a pair.  Produces (often far)
    fewer disjuncts than the eager algorithm — experiment E9/A2."""
    stats = stats if stats is not None else RewriteStats()
    head, unary0, binary0, rep0 = _preprocess(query)
    out: list[ConjunctiveQuery] = []
    seen: set = set()

    def merge(state_unary, state_binary, order, rep, a, b):
        """Merge variables a and b (b becomes representative)."""
        if a == b:
            raise _Unsat  # nothing to merge: the caller's branch is void
        if _lazy_reachable(order, a, b) or _lazy_reachable(order, b, a):
            raise _Unsat
        def m(v):
            return b if v == a else v
        new_unary = frozenset((p, m(v)) for p, v in state_unary)
        new_binary = set()
        for axis, x, y in state_binary:
            x, y = m(x), m(y)
            if x == y:
                if axis in _STAR_OF:
                    continue
                raise _Unsat
            new_binary.add((axis, x, y))
        new_order = frozenset((m(u), m(v)) for u, v in order)
        new_rep = {k: m(v) for k, v in rep.items()}
        new_rep[a] = b
        return new_unary, frozenset(new_binary), new_order, new_rep

    def recurse(state_unary, state_binary, order, rep):
        stats.branches += 1
        try:
            binary = _absorb_and_check(set(state_binary))
        except _Unsat:
            stats.disjuncts_dropped += 1
            return
        # find a target with two incoming atoms
        incoming: dict[str, list[tuple[Axis, str]]] = {}
        for axis, x, z in binary:
            incoming.setdefault(z, []).append((axis, x))
        conflict = None
        for z, atoms in incoming.items():
            if len(atoms) >= 2:
                conflict = (z, atoms)
                break
        if conflict is None:
            # No shared targets — but a star atom may still close an
            # undirected cycle in the atom graph (concrete atoms cannot:
            # a concrete cycle is a directed <pre cycle, pruned earlier).
            cyclic_star = _star_on_cycle(binary)
            if cyclic_star is not None:
                axis, src, dst = cyclic_star
                try:
                    nu, nb, no, nr = merge(
                        state_unary, frozenset(binary), order, rep, src, dst
                    )
                    recurse(nu, nb, no, nr)
                except _Unsat:
                    stats.disjuncts_dropped += 1
                if _lazy_reachable(order, dst, src):
                    stats.disjuncts_dropped += 1
                    return
                nb = (frozenset(binary) - {cyclic_star}) | {
                    (_STAR_OF[axis], src, dst)
                }
                recurse(state_unary, nb, order | {(src, dst)}, rep)
                return
            rep_final = dict(rep)
            result = _to_query(head, rep_final, set(state_unary), binary)
            key = (result.head, frozenset(result.atoms))
            if key not in seen:
                seen.add(key)
                out.append(result)
                stats.disjuncts_produced += 1
            return
        z, atoms = conflict
        (a_axis, x), (b_axis, y) = atoms[0], atoms[1]
        # expand stars first
        for axis, src in ((a_axis, x), (b_axis, y)):
            if axis in _STAR_OF:
                # branch 1: src = z
                try:
                    nu, nb, no, nr = merge(
                        state_unary, frozenset(binary), order, rep, src, z
                    )
                    recurse(nu, nb, no, nr)
                except _Unsat:
                    stats.disjuncts_dropped += 1
                # branch 2: proper R+ (and src <pre z becomes known)
                if _lazy_reachable(order, z, src):
                    stats.disjuncts_dropped += 1
                    return
                nb = (frozenset(binary) - {(axis, src, z)}) | {
                    (_STAR_OF[axis], src, z)
                }
                recurse(state_unary, nb, order | {(src, z)}, rep)
                return
        # both atoms concrete: order x vs y
        if x == y:
            stats.disjuncts_dropped += 1  # absorb left a true conflict
            return
        if _lazy_reachable(order, x, y):
            lo, hi, lo_axis = x, y, a_axis
        elif _lazy_reachable(order, y, x):
            lo, hi, lo_axis = y, x, b_axis
        else:
            # branch on the three order relations
            try:
                nu, nb, no, nr = merge(
                    state_unary, frozenset(binary), order, rep, x, y
                )
                recurse(nu, nb, no, nr)
            except _Unsat:
                stats.disjuncts_dropped += 1
            recurse(state_unary, frozenset(binary), order | {(x, y)}, rep)
            recurse(state_unary, frozenset(binary), order | {(y, x)}, rep)
            return
        other_axis = b_axis if lo == x else a_axis
        if not TABLE_1[(lo_axis, other_axis)]:
            stats.disjuncts_dropped += 1
            return
        stats.replacements += 1
        nb = (frozenset(binary) - {(lo_axis, lo, z)}) | {(lo_axis, lo, hi)}
        recurse(state_unary, nb, order | {(lo, hi)}, rep)

    # seed order constraints: every concrete forward atom implies x <pre y
    order0 = frozenset(
        (x, y) for axis, x, y in binary0 if axis not in _STAR_OF
    )
    if any(_lazy_reachable(order0, v, u) for u, v in order0):
        return []  # the seeded constraints are already cyclic: unsatisfiable
    rep_init = {v: rep0.get(v, v) for v in set(head) | set(rep0)}
    recurse(frozenset(unary0), frozenset(binary0), order0, rep_init)
    for disjunct in out:
        assert is_acyclic(disjunct), f"non-acyclic disjunct: {disjunct}"
    return out


# ---------------------------------------------------------------------------
# Corollary 5.2
# ---------------------------------------------------------------------------


def evaluate_via_rewriting(
    query: ConjunctiveQuery,
    tree: Tree,
    lazy: bool = True,
    stats: RewriteStats | None = None,
) -> set[tuple[int, ...]]:
    """Evaluate a CQ by rewriting to a union of acyclic queries and
    running Yannakakis on each disjunct (Corollary 5.2: linear data
    complexity for fixed positive queries)."""
    disjuncts = (
        rewrite_lazy(query, stats) if lazy else rewrite_to_acyclic_union(query, stats)
    )
    result: set[tuple[int, ...]] = set()
    for disjunct in disjuncts:
        result |= yannakakis(disjunct, tree)
    return result
