"""Table 1 of the paper: satisfiability of R(x, z) ∧ S(y, z) ∧ x <pre y.

Rows are the axis R of the x-atom (x the <pre-smaller source), columns
the axis S of the y-atom; both atoms share the target z::

    R \\ S          Child   Child+  NextSibling  NextSibling+
    Child          unsat   unsat   sat          sat
    Child+         sat     sat     sat          sat
    NextSibling    unsat   unsat   unsat        unsat
    NextSibling+   unsat   unsat   sat          sat

In every satisfiable case, R(x, z) may be replaced by R(x, y) — an
equivalent rewriting (see the case analysis in the proof of Theorem
5.1).  Experiment E8 certifies the whole matrix by exhaustive search
over all small ordered trees.
"""

from __future__ import annotations

from repro.errors import QueryError
from repro.trees.axes import Axis

__all__ = ["TABLE_1", "axis_pair_satisfiable", "replacement_axis", "REWRITE_AXES"]

#: The four axes Table 1 (and the Theorem 5.1 core loop) ranges over.
REWRITE_AXES: tuple[Axis, ...] = (
    Axis.CHILD,
    Axis.CHILD_PLUS,
    Axis.NEXT_SIBLING,
    Axis.NEXT_SIBLING_PLUS,
)

#: TABLE_1[(R, S)] — is R(x, z) ∧ S(y, z) ∧ x <pre y satisfiable?
TABLE_1: dict[tuple[Axis, Axis], bool] = {
    (Axis.CHILD, Axis.CHILD): False,
    (Axis.CHILD, Axis.CHILD_PLUS): False,
    (Axis.CHILD, Axis.NEXT_SIBLING): True,
    (Axis.CHILD, Axis.NEXT_SIBLING_PLUS): True,
    (Axis.CHILD_PLUS, Axis.CHILD): True,
    (Axis.CHILD_PLUS, Axis.CHILD_PLUS): True,
    (Axis.CHILD_PLUS, Axis.NEXT_SIBLING): True,
    (Axis.CHILD_PLUS, Axis.NEXT_SIBLING_PLUS): True,
    (Axis.NEXT_SIBLING, Axis.CHILD): False,
    (Axis.NEXT_SIBLING, Axis.CHILD_PLUS): False,
    (Axis.NEXT_SIBLING, Axis.NEXT_SIBLING): False,
    (Axis.NEXT_SIBLING, Axis.NEXT_SIBLING_PLUS): False,
    (Axis.NEXT_SIBLING_PLUS, Axis.CHILD): False,
    (Axis.NEXT_SIBLING_PLUS, Axis.CHILD_PLUS): False,
    (Axis.NEXT_SIBLING_PLUS, Axis.NEXT_SIBLING): True,
    (Axis.NEXT_SIBLING_PLUS, Axis.NEXT_SIBLING_PLUS): True,
}


def axis_pair_satisfiable(r: Axis, s: Axis) -> bool:
    """Look up Table 1."""
    try:
        return TABLE_1[(r, s)]
    except KeyError:
        raise QueryError(
            f"Table 1 is only defined for {', '.join(a.value for a in REWRITE_AXES)}"
        ) from None


def replacement_axis(r: Axis, s: Axis) -> Axis:
    """In the satisfiable cases, R(x, z) is replaced by R(x, y): the new
    atom keeps the axis R (proof of Theorem 5.1, case analysis)."""
    if not axis_pair_satisfiable(r, s):
        raise QueryError(f"pair ({r}, {s}) is unsatisfiable — nothing to replace")
    return r
