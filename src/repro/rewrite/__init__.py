"""Query rewriting (Section 5): conjunctive queries over trees into
unions of acyclic positive queries.

- :mod:`~repro.rewrite.table1` — the satisfiability matrix of Table 1
  for atom pairs R(x, z) ∧ S(y, z) ∧ x <pre y, plus the replacement rule,
- :mod:`~repro.rewrite.theorem51` — the rewriting algorithm of the proof
  of Theorem 5.1 (eager over all weak orders of the variables) and the
  lazy branching variant of [Gottlob, Koch & Schulz, JACM 2006],
- :func:`~repro.rewrite.theorem51.evaluate_via_rewriting` — Corollary
  5.2: evaluate positive queries by rewriting + Yannakakis.
"""

from repro.rewrite.table1 import TABLE_1, axis_pair_satisfiable, replacement_axis
from repro.rewrite.theorem51 import (
    rewrite_to_acyclic_union,
    rewrite_lazy,
    evaluate_via_rewriting,
    RewriteStats,
)

__all__ = [
    "TABLE_1",
    "axis_pair_satisfiable",
    "replacement_axis",
    "rewrite_to_acyclic_union",
    "rewrite_lazy",
    "evaluate_via_rewriting",
    "RewriteStats",
]
