"""Monadic datalog over trees (Section 3 of the paper).

Pipeline reproduced here::

    program over τ⁺ (+ arbitrary axes)
        --to_tmnf-->   TMNF program over τ⁺      (Definition 3.4, [31])
        --ground-->    propositional Horn program (Theorem 3.2)
        --minoux-->    minimal model              (Figure 3)

giving O(|P| · |Dom|) combined complexity.  A naive rule-matching
evaluator (:func:`evaluate_naive`) serves as the baseline for E4/E5.
"""

from repro.datalog.syntax import Atom, Rule, Program, var, is_variable
from repro.datalog.parser import parse_program, parse_rule
from repro.datalog.tmnf import to_tmnf, is_tmnf, is_tmnf_rule
from repro.datalog.ground import ground
from repro.datalog.evaluate import evaluate, evaluate_naive, evaluate_program

__all__ = [
    "Atom",
    "Rule",
    "Program",
    "var",
    "is_variable",
    "parse_program",
    "parse_rule",
    "to_tmnf",
    "is_tmnf",
    "is_tmnf_rule",
    "ground",
    "evaluate",
    "evaluate_naive",
    "evaluate_program",
]
