"""A small concrete syntax for datalog programs.

Grammar (one rule per ``.``; ``%`` starts a line comment)::

    P(x) :- FirstChild(x, y), P0(y).
    P0(x) :- Lab:a(x).
    Q(x).                         % a ground fact needs int constants
    % query: P

Variables are lowercase identifiers, constants are integers, predicate
names are anything else (including ``Lab:a`` label predicates and axis
names with an optional ``^-1`` suffix).  The final ``% query: P`` comment
sets the program's query predicate.
"""

from __future__ import annotations

import re

from repro.datalog.syntax import Atom, Program, Rule
from repro.errors import ParseError

__all__ = ["parse_program", "parse_rule"]

_ATOM = re.compile(r"\s*([\w:+*\-^@=]+)\s*\(\s*([^()]*)\s*\)\s*")


def _parse_term(text: str) -> "str | int":
    text = text.strip()
    if not text:
        raise ParseError("empty term")
    if re.fullmatch(r"-?\d+", text):
        return int(text)
    if not re.fullmatch(r"[a-z_]\w*", text):
        raise ParseError(f"bad term {text!r} (variables are lowercase identifiers)")
    return text


def _parse_atom(text: str, offset: int = 0) -> tuple[Atom, int]:
    match = _ATOM.match(text, offset)
    if match is None:
        raise ParseError(f"expected atom in {text[offset:offset + 40]!r}", offset)
    pred = match.group(1)
    args_text = match.group(2).strip()
    args: tuple[str | int, ...] = ()
    if args_text:
        args = tuple(_parse_term(part) for part in args_text.split(","))
    return Atom(pred, args), match.end()


def parse_rule(text: str) -> Rule:
    """Parse a single rule (without the trailing ``.``)."""
    if ":-" in text:
        head_text, body_text = text.split(":-", 1)
    else:
        head_text, body_text = text, ""
    head, end = _parse_atom(head_text)
    if head_text[end:].strip():
        raise ParseError(f"trailing junk after head in {text!r}")
    body: list[Atom] = []
    pos = 0
    body_text = body_text.strip()
    while pos < len(body_text):
        atom, pos = _parse_atom(body_text, pos)
        body.append(atom)
        rest = body_text[pos:].lstrip()
        if rest.startswith(","):
            pos = len(body_text) - len(rest) + 1
        elif rest:
            raise ParseError(f"expected ',' in rule body of {text!r}")
        else:
            break
    return Rule(head, tuple(body))


def parse_program(text: str, query_pred: str | None = None) -> Program:
    """Parse a whole program; ``% query: P`` comments set the query
    predicate (an explicit ``query_pred`` argument wins)."""
    program = Program()
    stripped_lines: list[str] = []
    for raw_line in text.splitlines():
        comment = raw_line.find("%")
        if comment >= 0:
            comment_text = raw_line[comment + 1:].strip()
            if comment_text.lower().startswith("query:"):
                program.query_pred = comment_text.split(":", 1)[1].strip()
            raw_line = raw_line[:comment]
        stripped_lines.append(raw_line)
    for part in " ".join(stripped_lines).split("."):
        if part.strip():
            program.rules.append(parse_rule(part.strip()))
    if query_pred is not None:
        program.query_pred = query_pred
    return program.canonicalized().validate()
