"""Abstract syntax for (monadic) datalog programs over tree structures.

Terms are either *variables* (Python strings) or *constants* (Python
ints — node identifiers).  Predicates are referred to by name:

- extensional unary predicates are those of the tree signature
  (``Dom``, ``Root``, ``Leaf``, ``FirstSibling``, ``LastSibling`` and the
  label predicates ``Lab:a``; build the latter with
  :func:`repro.trees.structure.lab`),
- extensional binary predicates are axis names (``FirstChild``,
  ``NextSibling``, ``Child``, ``Child+``, ...), optionally suffixed with
  ``^-1`` for the inverse,
- every predicate that appears in some rule head is intensional and —
  for *monadic* datalog — must be unary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.errors import QueryError
from repro.trees.axes import Axis, resolve_axis
from repro.trees.structure import TAU_PLUS_BINARY, TAU_PLUS_UNARY

__all__ = ["Atom", "Rule", "Program", "var", "is_variable", "INVERSE_SUFFIX"]

Term = "str | int"
INVERSE_SUFFIX = "^-1"


def var(name: str) -> str:
    """Identity helper that documents intent: ``var("x")`` is a variable."""
    return name


def is_variable(term: "str | int") -> bool:
    """Variables are strings; constants are ints (node ids)."""
    return isinstance(term, str)


@dataclass(frozen=True)
class Atom:
    """A datalog atom ``pred(t1, ..., tk)``."""

    pred: str
    args: tuple["str | int", ...]

    def __post_init__(self):
        if not isinstance(self.args, tuple):
            object.__setattr__(self, "args", tuple(self.args))

    @property
    def arity(self) -> int:
        return len(self.args)

    def variables(self) -> Iterator[str]:
        return (t for t in self.args if is_variable(t))

    def substitute(self, binding: dict) -> "Atom":
        return Atom(
            self.pred,
            tuple(binding.get(t, t) if is_variable(t) else t for t in self.args),
        )

    def __str__(self) -> str:
        return f"{self.pred}({', '.join(map(str, self.args))})"


@dataclass(frozen=True)
class Rule:
    """A rule ``head <- body``; a fact is a rule with an empty body."""

    head: Atom
    body: tuple[Atom, ...] = ()

    def __post_init__(self):
        if not isinstance(self.body, tuple):
            object.__setattr__(self, "body", tuple(self.body))

    def variables(self) -> set[str]:
        result = set(self.head.variables())
        for atom in self.body:
            result.update(atom.variables())
        return result

    def is_safe(self) -> bool:
        """Every head variable must occur in the body."""
        body_vars: set[str] = set()
        for atom in self.body:
            body_vars.update(atom.variables())
        return all(v in body_vars for v in self.head.variables())

    def __str__(self) -> str:
        if not self.body:
            return f"{self.head}."
        return f"{self.head} :- " + ", ".join(map(str, self.body)) + "."


def _axis_pred_name(name: str) -> str | None:
    """Resolve ``name`` (possibly with an ``^-1`` suffix) to a canonical
    axis-relation predicate name, or None if it is not an axis."""
    inverted = name.endswith(INVERSE_SUFFIX)
    base = name[: -len(INVERSE_SUFFIX)] if inverted else name
    try:
        axis = resolve_axis(base)
    except QueryError:
        return None
    return axis.value + (INVERSE_SUFFIX if inverted else "")


@dataclass
class Program:
    """A datalog program with a distinguished query predicate.

    ``validate()`` enforces safety and (by default) monadicity of the
    intensional predicates, and canonicalizes axis predicate names.
    """

    rules: list[Rule] = field(default_factory=list)
    query_pred: str | None = None

    def rule(self, head: Atom, *body: Atom) -> "Program":
        self.rules.append(Rule(head, tuple(body)))
        return self

    def intensional_preds(self) -> set[str]:
        return {r.head.pred for r in self.rules}

    def predicates(self) -> set[str]:
        result = self.intensional_preds()
        for r in self.rules:
            result.update(a.pred for a in r.body)
        return result

    def size(self) -> int:
        """|P| — total number of atoms in the program."""
        return sum(1 + len(r.body) for r in self.rules)

    def canonicalized(self) -> "Program":
        """Return a copy with axis predicate names canonicalized
        (``descendant`` → ``Child+``, ``parent`` → ``Child^-1`` stays as
        the canonical ``Parent``-resolved form, ...)."""
        idb = self.intensional_preds()

        def fix(atom: Atom) -> Atom:
            if atom.pred in idb or atom.arity != 2:
                return atom
            canonical = _axis_pred_name(atom.pred)
            return atom if canonical is None else Atom(canonical, atom.args)

        new_rules = [
            Rule(r.head, tuple(fix(a) for a in r.body)) for r in self.rules
        ]
        return Program(new_rules, self.query_pred)

    def validate(self, monadic: bool = True) -> "Program":
        """Check safety, arities, and (optionally) monadicity.

        Returns self for chaining; raises :class:`QueryError` on problems.
        """
        idb = self.intensional_preds()
        arity: dict[str, int] = {}
        for r in self.rules:
            if not r.is_safe():
                raise QueryError(f"unsafe rule: {r}")
            for atom in (r.head, *r.body):
                if atom.pred in arity and arity[atom.pred] != atom.arity:
                    raise QueryError(
                        f"predicate {atom.pred} used with inconsistent arities"
                    )
                arity[atom.pred] = atom.arity
                if atom.pred in idb:
                    if monadic and atom.arity != 1:
                        raise QueryError(
                            f"intensional predicate {atom.pred} is not unary "
                            f"(monadic datalog requires unary IDB predicates)"
                        )
                elif atom.arity == 2:
                    if _axis_pred_name(atom.pred) is None:
                        raise QueryError(f"unknown binary relation {atom.pred!r}")
                elif atom.arity != 1:
                    raise QueryError(
                        f"extensional predicate {atom.pred} has arity {atom.arity}"
                    )
        if self.query_pred is not None and self.query_pred not in idb:
            raise QueryError(
                f"query predicate {self.query_pred!r} is never defined"
            )
        return self

    def is_tau_plus(self) -> bool:
        """Does the program only use the τ⁺ signature (Definition of §3)?"""
        idb = self.intensional_preds()
        for r in self.rules:
            for atom in r.body:
                if atom.pred in idb:
                    continue
                if atom.arity == 1:
                    ok = atom.pred in TAU_PLUS_UNARY or atom.pred in (
                        "Dom",
                    ) or atom.pred.startswith("Lab:")
                    if not ok:
                        return False
                else:
                    base = atom.pred.removesuffix(INVERSE_SUFFIX)
                    if base not in TAU_PLUS_BINARY:
                        return False
        return True

    def __iter__(self) -> Iterator[Rule]:
        return iter(self.rules)

    def __len__(self) -> int:
        return len(self.rules)

    def __str__(self) -> str:
        lines = [str(r) for r in self.rules]
        if self.query_pred is not None:
            lines.append(f"% query: {self.query_pred}")
        return "\n".join(lines)
