"""Tree-Marking Normal Form (Definition 3.4) and the normalization of
monadic datalog programs into it.

A TMNF rule has one of the three shapes::

    (1) p(x) <- p0(x).
    (2) p(x) <- p0(x0), B(x0, x).
    (3) p(x) <- p0(x), p1(x).

with p0, p1 intensional or unary predicates of τ⁺ and B one of
FirstChild, NextSibling or their inverses.

:func:`to_tmnf` rewrites an arbitrary monadic datalog program over the
tree signature — including rules that use the *derived* axes Child,
Child+, Child*, NextSibling+, NextSibling*, Following and all their
inverses — into an equivalent TMNF program over τ⁺ only.  This is the
[Gottlob & Koch, JACM 2004] translation the paper invokes in Section 3:
each derived axis is eliminated with a constant number of recursive
marking predicates (sibling-closure, subtree-closure, ancestor-closure,
broadcast), so the output size is O(|P|).

Restrictions (documented in DESIGN.md): each rule body, viewed as a
graph on its variables, must be acyclic (a forest).  Disconnected
components not containing the head variable are supported and compiled
into broadcast guards ("some node satisfies the component").
"""

from __future__ import annotations

import itertools

from repro.datalog.syntax import Atom, INVERSE_SUFFIX, Program, Rule, is_variable
from repro.errors import QueryError
from repro.trees.axes import Axis, inverse_axis, resolve_axis
from repro.trees.structure import TAU_PLUS_UNARY

__all__ = ["to_tmnf", "is_tmnf", "is_tmnf_rule", "const_pred"]

_TAU_PLUS_B: frozenset[str] = frozenset(
    {
        Axis.FIRST_CHILD.value,
        Axis.NEXT_SIBLING.value,
        Axis.FIRST_CHILD.value + INVERSE_SUFFIX,
        Axis.NEXT_SIBLING.value + INVERSE_SUFFIX,
        Axis.FIRST_CHILD_INV.value,
        Axis.PREV_SIBLING.value,
    }
)

#: Axes R with R(x, x) for every x (a self-loop atom over them is a no-op).
_REFLEXIVE_AXES: frozenset[Axis] = frozenset(
    {Axis.SELF, Axis.CHILD_STAR, Axis.NEXT_SIBLING_STAR,
     Axis.ANCESTOR_OR_SELF, Axis.PREV_SIBLING_STAR}
)


def const_pred(c: int) -> str:
    """The singleton unary predicate ``{c}`` used to compile constants."""
    return f"Const:{c}"


def _is_unary_ok(pred: str, idb: set[str]) -> bool:
    return (
        pred in idb
        or pred in TAU_PLUS_UNARY
        or pred == "Dom"
        or pred.startswith("Lab:")
        or pred.startswith("Const:")
    )


def is_tmnf_rule(rule: Rule, idb: set[str]) -> bool:
    """Is ``rule`` one of the three TMNF shapes (over τ⁺)?"""
    head = rule.head
    if head.arity != 1 or not is_variable(head.args[0]):
        return False
    x = head.args[0]
    body = rule.body
    if len(body) == 1:
        atom = body[0]
        if atom.arity == 1:  # form (1)
            return atom.args == (x,) and _is_unary_ok(atom.pred, idb)
        return False
    if len(body) == 2:
        unary = [a for a in body if a.arity == 1]
        binary = [a for a in body if a.arity == 2]
        if len(unary) == 2:  # form (3)
            return all(
                a.args == (x,) and _is_unary_ok(a.pred, idb) for a in unary
            )
        if len(unary) == 1 and len(binary) == 1:  # form (2)
            p0, b = unary[0], binary[0]
            if b.pred not in _TAU_PLUS_B:
                return False
            x0 = p0.args[0]
            return (
                is_variable(x0)
                and x0 != x
                and b.args == (x0, x)
                and _is_unary_ok(p0.pred, idb)
            )
    return False


def is_tmnf(program: Program) -> bool:
    idb = program.intensional_preds()
    return all(is_tmnf_rule(r, idb) for r in program.rules if r.body)


def _split_axis(pred: str) -> tuple[Axis, bool]:
    """Predicate name -> (axis, inverted?) with the ``^-1`` suffix folded
    into the axis itself (``NextSibling^-1`` == PrevSibling)."""
    if pred.endswith(INVERSE_SUFFIX):
        return inverse_axis(resolve_axis(pred[: -len(INVERSE_SUFFIX)])), False
    return resolve_axis(pred), False


class _TmnfBuilder:
    """Emits TMNF rules and provides the recursive marking combinators."""

    def __init__(self, out: Program):
        self.out = out
        self._counter = itertools.count()
        # Memoize combinator applications so repeated eliminations of the
        # same axis over the same predicate share marking predicates.
        self._memo: dict[tuple, str] = {}

    def fresh(self, hint: str) -> str:
        return f"_{hint}_{next(self._counter)}"

    # -- raw rule emission (always one of the three TMNF shapes) -------------

    def form1(self, p: str, p0: str) -> None:
        self.out.rules.append(Rule(Atom(p, ("x",)), (Atom(p0, ("x",)),)))

    def form2(self, p: str, p0: str, b: str) -> None:
        self.out.rules.append(
            Rule(Atom(p, ("x",)), (Atom(p0, ("x0",)), Atom(b, ("x0", "x"))))
        )

    def form3(self, p: str, p0: str, p1: str) -> None:
        self.out.rules.append(
            Rule(Atom(p, ("x",)), (Atom(p0, ("x",)), Atom(p1, ("x",))))
        )

    # -- combinators -----------------------------------------------------------

    def conj(self, preds: list[str]) -> str:
        """A predicate equivalent to the conjunction of unary ``preds``."""
        if not preds:
            return "Dom"
        if len(preds) == 1:
            return preds[0]
        acc = preds[0]
        for nxt in preds[1:]:
            combined = self.fresh("and")
            self.form3(combined, acc, nxt)
            acc = combined
        return acc

    def _memoized(self, key: tuple, build) -> str:
        if key not in self._memo:
            self._memo[key] = build()
        return self._memo[key]

    def right_sibling_closure(self, q: str) -> str:
        """R with R(x) iff some x' in NextSibling*(x, x') satisfies q."""

        def build() -> str:
            r = self.fresh("rsib")
            self.form1(r, q)
            self.form2(r, r, Axis.NEXT_SIBLING.value + INVERSE_SUFFIX)
            return r

        return self._memoized(("rsib", q), build)

    def left_sibling_closure(self, q: str) -> str:
        """L with L(x) iff some x' with NextSibling*(x', x) satisfies q."""

        def build() -> str:
            left = self.fresh("lsib")
            self.form1(left, q)
            self.form2(left, left, Axis.NEXT_SIBLING.value)
            return left

        return self._memoized(("lsib", q), build)

    def parent_has(self, q: str) -> str:
        """T with T(x) iff x has a parent and q(parent(x))."""

        def build() -> str:
            t = self.fresh("par")
            self.form2(t, q, Axis.FIRST_CHILD.value)
            self.form2(t, t, Axis.NEXT_SIBLING.value)
            return t

        return self._memoized(("par", q), build)

    def subtree_closure(self, q: str) -> str:
        """U with U(x) iff some descendant-or-self of x satisfies q."""

        def build() -> str:
            u = self.fresh("sub")
            self.form1(u, q)
            s = self.right_sibling_closure(u)
            self.form2(u, s, Axis.FIRST_CHILD.value + INVERSE_SUFFIX)
            return u

        return self._memoized(("sub", q), build)

    def ancestor_or_self_closure(self, q: str) -> tuple[str, str]:
        """(A, Apar): A(x) iff some ancestor-or-self of x satisfies q;
        Apar(x) iff some *proper* ancestor of x satisfies q."""

        def build() -> str:
            a = self.fresh("anc")
            self.form1(a, q)
            apar = self.parent_has(a)
            self.form1(a, apar)
            self._memo[("ancpar", q)] = apar
            return a

        a = self._memoized(("anc", q), build)
        return a, self._memo[("ancpar", q)]

    def broadcast(self, q: str) -> str:
        """D with D(x) for *every* x iff some node anywhere satisfies q."""

        def build() -> str:
            u = self.subtree_closure(q)
            at_root = self.fresh("exists")
            self.form3(at_root, u, "Root")
            down = self.fresh("bcast")
            self.form1(down, at_root)
            self.form2(down, down, Axis.FIRST_CHILD.value)
            self.form2(down, down, Axis.NEXT_SIBLING.value)
            return down

        return self._memoized(("bcast", q), build)

    def connect(self, q: str, axis: Axis) -> str:
        """c with c(y) iff ∃z: axis(y, z) and q(z) — the axis-elimination
        core.  Only τ⁺ binaries appear in the emitted rules."""
        key = ("connect", q, axis)

        def build() -> str:
            c = self.fresh(f"via_{axis.name.lower()}")
            if axis is Axis.SELF:
                self.form1(c, q)
            elif axis is Axis.FIRST_CHILD:
                self.form2(c, q, Axis.FIRST_CHILD.value + INVERSE_SUFFIX)
            elif axis is Axis.FIRST_CHILD_INV:
                self.form2(c, q, Axis.FIRST_CHILD.value)
            elif axis is Axis.NEXT_SIBLING:
                self.form2(c, q, Axis.NEXT_SIBLING.value + INVERSE_SUFFIX)
            elif axis is Axis.PREV_SIBLING:
                self.form2(c, q, Axis.NEXT_SIBLING.value)
            elif axis is Axis.CHILD:
                s = self.right_sibling_closure(q)
                self.form2(c, s, Axis.FIRST_CHILD.value + INVERSE_SUFFIX)
            elif axis is Axis.PARENT:
                t = self.parent_has(q)
                self.form1(c, t)
            elif axis is Axis.NEXT_SIBLING_PLUS:
                r = self.right_sibling_closure(q)
                self.form2(c, r, Axis.NEXT_SIBLING.value + INVERSE_SUFFIX)
            elif axis is Axis.PRECEDING_SIBLING:
                left = self.left_sibling_closure(q)
                self.form2(c, left, Axis.NEXT_SIBLING.value)
            elif axis is Axis.NEXT_SIBLING_STAR:
                r = self.right_sibling_closure(q)
                self.form1(c, r)
            elif axis is Axis.PREV_SIBLING_STAR:
                left = self.left_sibling_closure(q)
                self.form1(c, left)
            elif axis is Axis.CHILD_PLUS:
                u = self.subtree_closure(q)
                s = self.right_sibling_closure(u)
                self.form2(c, s, Axis.FIRST_CHILD.value + INVERSE_SUFFIX)
            elif axis is Axis.CHILD_STAR:
                u = self.subtree_closure(q)
                self.form1(c, u)
            elif axis is Axis.ANCESTOR:
                _a, apar = self.ancestor_or_self_closure(q)
                self.form1(c, apar)
            elif axis is Axis.ANCESTOR_OR_SELF:
                a, _apar = self.ancestor_or_self_closure(q)
                self.form1(c, a)
            elif axis is Axis.FOLLOWING:
                u = self.subtree_closure(q)
                ru = self.right_sibling_closure(u)
                w = self.fresh("folw")
                self.form2(w, ru, Axis.NEXT_SIBLING.value + INVERSE_SUFFIX)
                aw, _ = self.ancestor_or_self_closure(w)
                self.form1(c, aw)
            elif axis is Axis.PRECEDING:
                u = self.subtree_closure(q)
                lu = self.left_sibling_closure(u)
                w = self.fresh("prec")
                self.form2(w, lu, Axis.NEXT_SIBLING.value)
                aw, _ = self.ancestor_or_self_closure(w)
                self.form1(c, aw)
            else:  # pragma: no cover - exhaustive over Axis
                raise QueryError(f"cannot eliminate axis {axis}")
            return c

        return self._memoized(key, build)


def _eliminate_constants(rule: Rule) -> Rule:
    """Replace constant arguments in body atoms by fresh variables guarded
    with Const:c singleton predicates (ground fact heads are left alone)."""
    if all(is_variable(t) for atom in rule.body for t in atom.args):
        return rule
    counter = itertools.count()
    new_body: list[Atom] = []
    for atom in rule.body:
        args: list[str | int] = []
        for t in atom.args:
            if is_variable(t):
                args.append(t)
            else:
                fresh = f"_c{next(counter)}"
                new_body.append(Atom(const_pred(t), (fresh,)))
                args.append(fresh)
        new_body.append(Atom(atom.pred, tuple(args)))
    return Rule(rule.head, tuple(new_body))


def _translate_rule(rule: Rule, builder: _TmnfBuilder, out: Program) -> None:
    """Compile one monadic rule into TMNF rules appended to ``out``."""
    rule = _eliminate_constants(rule)
    head_var = rule.head.args[0]
    if not is_variable(head_var):
        if rule.body:
            raise QueryError(f"ground head with nonempty body unsupported: {rule}")
        out.rules.append(rule)  # ground fact, handled directly by grounding
        return

    # union-find over Self edges (R(x, y) with reflexive-only semantics)
    parent_of: dict[str, str] = {}

    def find(v: str) -> str:
        while parent_of.get(v, v) != v:
            parent_of[v] = parent_of.get(parent_of[v], parent_of[v])
            v = parent_of[v]
        return v

    def union(u: str, v: str) -> None:
        parent_of[find(u)] = find(v)

    unary_atoms: list[tuple[str, str]] = []  # (var, pred)
    edges: list[tuple[str, str, Axis]] = []  # (src, dst, axis) meaning axis(src, dst)
    for atom in rule.body:
        if atom.arity == 1:
            unary_atoms.append((atom.args[0], atom.pred))
            continue
        axis, _ = _split_axis(atom.pred)
        u_var, v_var = atom.args  # type: ignore[misc]
        if axis is Axis.SELF:
            union(u_var, v_var)
            continue
        if u_var == v_var:
            if axis in _REFLEXIVE_AXES:
                continue  # trivially true
            return  # irreflexive self-loop: rule can never fire
        edges.append((u_var, v_var, axis))

    # Apply Self-merging.
    unary_by_var: dict[str, list[str]] = {}
    for v_name, pred in unary_atoms:
        unary_by_var.setdefault(find(v_name), []).append(pred)
    merged_edges: list[tuple[str, str, Axis]] = []
    adjacency: dict[str, list[tuple[str, Axis, bool]]] = {}
    seen_pairs: set[frozenset[str]] = set()
    for u_var, v_var, axis in edges:
        u_var, v_var = find(u_var), find(v_var)
        if u_var == v_var:
            if axis in _REFLEXIVE_AXES:
                continue
            return
        pair = frozenset((u_var, v_var))
        if pair in seen_pairs:
            raise QueryError(
                f"rule body is not tree-shaped (parallel edges between "
                f"{u_var} and {v_var}): {rule}"
            )
        seen_pairs.add(pair)
        merged_edges.append((u_var, v_var, axis))
        adjacency.setdefault(u_var, []).append((v_var, axis, True))
        adjacency.setdefault(v_var, []).append((u_var, axis, False))
    head_root = find(head_var)
    all_vars = set(unary_by_var) | set(adjacency) | {head_root}

    # Check acyclicity: edges == vars - components.
    components: list[set[str]] = []
    unvisited = set(all_vars)
    while unvisited:
        start = next(iter(unvisited))
        component = {start}
        frontier = [start]
        while frontier:
            v_name = frontier.pop()
            for w_name, _axis, _fwd in adjacency.get(v_name, ()):
                if w_name not in component:
                    component.add(w_name)
                    frontier.append(w_name)
        unvisited -= component
        components.append(component)
    if len(merged_edges) != len(all_vars) - len(components):
        raise QueryError(f"rule body is cyclic; TMNF translation needs a forest: {rule}")

    def compile_rooted(root: str, component: set[str]) -> str:
        """Bottom-up marking: predicate q with q(v) iff v can be the image
        of ``root`` in a satisfying assignment of the component."""
        q_of: dict[str, str] = {}
        # iterative post-order over the component tree
        order: list[tuple[str, str | None]] = []
        stack: list[tuple[str, str | None]] = [(root, None)]
        while stack:
            v_name, parent_name = stack.pop()
            order.append((v_name, parent_name))
            for w_name, _axis, _fwd in adjacency.get(v_name, ()):
                if w_name != parent_name:
                    stack.append((w_name, v_name))
        for v_name, parent_name in reversed(order):
            parts = list(unary_by_var.get(v_name, []))
            for w_name, axis, forward in adjacency.get(v_name, ()):
                if w_name == parent_name:
                    continue
                # need c(v) iff exists w: axis'(v, w) and q_w(w),
                # where axis'(v, w) == axis(v, w) if the atom was
                # axis(v, w), else axis(w, v) i.e. inverse_axis(axis)(v, w)
                effective = axis if forward else inverse_axis(axis)
                parts.append(builder.connect(q_of[w_name], effective))
            q_of[v_name] = builder.conj(parts)
        return q_of[root]

    guards: list[str] = []
    for component in components:
        if head_root in component:
            q_head = compile_rooted(head_root, component)
        else:
            local_root = next(iter(component))
            q_local = compile_rooted(local_root, component)
            guards.append(builder.broadcast(q_local))
    final = builder.conj([q_head] + guards)
    out.rules.append(Rule(rule.head, (Atom(final, (head_var,)),)))


def to_tmnf(program: Program) -> Program:
    """Translate a monadic datalog program into an equivalent TMNF program
    over τ⁺ (Definition 3.4).  Output size is O(|P|); see module docs for
    the (paper-matching) tree-shaped-body restriction."""
    program = program.canonicalized().validate()
    out = Program(query_pred=program.query_pred)
    builder = _TmnfBuilder(out)
    idb = program.intensional_preds()
    for rule in program.rules:
        if rule.body and is_tmnf_rule(rule, idb):
            out.rules.append(rule)
        else:
            _translate_rule(rule, builder, out)
    # A predicate whose every rule was dropped (unsatisfiable bodies)
    # must stay defined: give it a vacuous self-rule (empty extension).
    out_idb = out.intensional_preds()
    for pred in idb - out_idb:
        out.rules.append(Rule(Atom(pred, ("x",)), (Atom(pred, ("x",)),)))
    return out
