"""Evaluation of monadic datalog programs over trees.

:func:`evaluate_program` is the paper's pipeline (Section 3):
TMNF-normalize, ground (Theorem 3.2), run Minoux (Figure 3); total time
O(|P| · |Dom|) for τ⁺ programs.  :func:`evaluate_naive` is a bottom-up
rule-matching fixpoint used as a correctness oracle and as the slow
baseline of experiments E4/E5 — its per-iteration cost depends on the
materialized axis relations and it may take O(|Dom|) iterations.
"""

from __future__ import annotations

from typing import Iterable

from repro.datalog.ground import binary_pairs, ground, holds_unary_extended
from repro.datalog.syntax import Program, Rule, is_variable
from repro.datalog.tmnf import to_tmnf
from repro.errors import QueryError
from repro.hornsat.minoux import minoux
from repro.trees.structure import TreeStructure
from repro.trees.tree import Tree

__all__ = ["evaluate", "evaluate_program", "evaluate_naive"]


def evaluate_program(
    program: Program, tree: Tree, normalize: bool = True
) -> dict[str, set[int]]:
    """Compute the extensions of *all* intensional predicates.

    With ``normalize`` (default), the program is first brought into TMNF
    so that arbitrary axes are allowed; pass ``normalize=False`` for a
    program that is already TMNF-shaped (any axis still accepted — the
    grounding cost is then the size of the used relations).
    """
    program = program.canonicalized().validate()
    if normalize:
        program = to_tmnf(program)
    structure = TreeStructure(tree)
    horn = ground(program, structure)
    model, _sat = minoux(horn)
    result: dict[str, set[int]] = {p: set() for p in program.intensional_preds()}
    for atom in model:
        pred, v = atom  # atoms are (pred, node) pairs by construction
        if pred in result:
            result[pred].add(v)
    return result


def evaluate(program: Program, tree: Tree, normalize: bool = True) -> set[int]:
    """Evaluate the program's distinguished query predicate over ``tree``."""
    if program.query_pred is None:
        raise QueryError("program has no query predicate")
    return evaluate_program(program, tree, normalize=normalize)[program.query_pred]


# -- naive baseline -----------------------------------------------------------


def _match_rule(
    rule: Rule,
    structure: TreeStructure,
    extensions: dict[str, set[int]],
) -> Iterable[int]:
    """All values of the head variable under satisfying assignments of
    ``rule``'s body — naive backtracking join, used only by the baseline."""
    head_var = rule.head.args[0]
    if not is_variable(head_var):
        if all(not atom.args for atom in rule.body):
            yield head_var
        return

    idb = set(extensions)
    atoms = list(rule.body)

    def lookup_unary(pred: str, v: int) -> bool:
        if pred in idb:
            return v in extensions[pred]
        return holds_unary_extended(structure, pred, v)

    def candidates_unary(pred: str) -> Iterable[int]:
        if pred in idb:
            return extensions[pred]
        return (
            v for v in structure.domain if holds_unary_extended(structure, pred, v)
        )

    results: set[int] = set()

    def extend(binding: dict[str, int], remaining: list) -> None:
        if not remaining:
            results.add(binding[head_var])
            return
        # pick the most-bound atom next (cheap heuristic)
        remaining = sorted(
            remaining,
            key=lambda a: -sum(
                1 for t in a.args if not is_variable(t) or t in binding
            ),
        )
        atom, rest = remaining[0], remaining[1:]

        def value_of(t):
            return binding.get(t, None) if is_variable(t) else t

        if atom.arity == 1:
            t = atom.args[0]
            v = value_of(t)
            if v is not None:
                if lookup_unary(atom.pred, v):
                    extend(binding, rest)
            else:
                for v in candidates_unary(atom.pred):
                    extend({**binding, t: v}, rest)
            return
        s, t = atom.args
        sv, tv = value_of(s), value_of(t)
        if sv is not None and tv is not None:
            base, inverted = _base_axis(atom.pred)
            u, v = (tv, sv) if inverted else (sv, tv)
            if structure.holds_binary(base, u, v):
                extend(binding, rest)
        elif sv is not None:
            for u, v in _pairs_from(structure, atom.pred, src=sv):
                extend({**binding, t: v}, rest)
        elif tv is not None:
            for u, v in _pairs_from(structure, atom.pred, dst=tv):
                extend({**binding, s: u}, rest)
        else:
            for u, v in binary_pairs(structure, atom.pred):
                extend({**binding, s: u, t: v}, rest)

    extend({}, atoms)
    yield from results


def _base_axis(pred: str) -> tuple[str, bool]:
    from repro.datalog.syntax import INVERSE_SUFFIX

    if pred.endswith(INVERSE_SUFFIX):
        return pred[: -len(INVERSE_SUFFIX)], True
    return pred, False


def _pairs_from(structure: TreeStructure, pred: str, src=None, dst=None):
    base, inverted = _base_axis(pred)
    if inverted:
        if src is not None:
            for u in structure.predecessors(base, src):
                yield src, u
        else:
            for v in structure.successors(base, dst):
                yield v, dst
    else:
        if src is not None:
            for v in structure.successors(base, src):
                yield src, v
        else:
            for u in structure.predecessors(base, dst):
                yield u, dst


def evaluate_naive(program: Program, tree: Tree) -> dict[str, set[int]]:
    """Bottom-up naive fixpoint over the original (non-normalized) rules."""
    program = program.canonicalized().validate()
    structure = TreeStructure(tree)
    extensions: dict[str, set[int]] = {p: set() for p in program.intensional_preds()}
    changed = True
    while changed:
        changed = False
        for rule in program.rules:
            target = extensions[rule.head.pred]
            for v in _match_rule(rule, structure, extensions):
                if v not in target:
                    target.add(v)
                    changed = True
    return extensions
