"""Grounding monadic datalog programs to propositional Horn programs.

Theorem 3.2: given a program P over τ⁺, an equivalent ground program can
be computed in time O(|P| · |Dom|), because every binary relation of τ⁺
has bidirectional functional dependencies (at most one FirstChild /
NextSibling partner per node).  Combined with Minoux' algorithm this
gives O(|P| · |Dom|) evaluation.

The grounder accepts any program whose rules are in the three TMNF
shapes (possibly with non-τ⁺ axes as the binary B, in which case the
cost of that rule is the size of the axis relation — the grounder is
shared with the arc-consistency encoder and the naive baselines).
Extensional unary predicates are evaluated during grounding rather than
being emitted as propositional facts, which keeps the ground program at
the O(|P| · |Dom|) size the theorem states.
"""

from __future__ import annotations

from repro.datalog.syntax import Atom, INVERSE_SUFFIX, Program, is_variable
from repro.errors import QueryError
from repro.hornsat.program import HornClause, HornProgram
from repro.trees.axes import inverse_axis, resolve_axis
from repro.trees.structure import TreeStructure

__all__ = ["ground", "binary_pairs", "holds_unary_extended"]


def binary_pairs(structure: TreeStructure, pred: str):
    """Enumerate the pairs of a binary predicate name, honouring an
    optional ``^-1`` suffix by flipping the underlying axis."""
    if pred.endswith(INVERSE_SUFFIX):
        axis = inverse_axis(resolve_axis(pred[: -len(INVERSE_SUFFIX)]))
    else:
        axis = resolve_axis(pred)
    return structure.pairs(axis.value)


def holds_unary_extended(structure: TreeStructure, pred: str, v: int) -> bool:
    """Unary-predicate membership including the grounder's Const:c
    singletons (compiled constants)."""
    if pred.startswith("Const:"):
        return v == int(pred.split(":", 1)[1])
    return structure.holds_unary(pred, v)


def ground(program: Program, structure: TreeStructure) -> HornProgram:
    """Ground a TMNF-shaped program over ``structure``.

    Propositional atoms are ``(pred, node)`` pairs for intensional
    predicates.  Facts for extensional predicates are folded in during
    grounding (an extensional conjunct either filters the clause out or
    vanishes), exactly as in Example 3.3 after "let us drop the rules
    d1..d5".
    """
    idb = program.intensional_preds()
    horn = HornProgram()
    clauses = horn.clauses
    domain = structure.domain

    def is_ext(pred: str) -> bool:
        return pred not in idb

    for rule in program.rules:
        head = rule.head
        if not rule.body:
            if is_variable(head.args[0]):
                raise QueryError(f"unsafe fact with variable head: {rule}")
            clauses.append(HornClause((head.pred, head.args[0])))
            continue
        unary = [a for a in rule.body if a.arity == 1]
        binary = [a for a in rule.body if a.arity == 2]
        x = head.args[0]
        if not binary:
            # forms (1) and (3): all body atoms on the head variable
            if any(a.args != (x,) for a in unary):
                raise QueryError(f"rule not in TMNF: {rule}")
            ext = [a.pred for a in unary if is_ext(a.pred)]
            intensional = [a.pred for a in unary if not is_ext(a.pred)]
            for v in domain:
                if all(holds_unary_extended(structure, p, v) for p in ext):
                    clauses.append(
                        HornClause((head.pred, v), tuple((p, v) for p in intensional))
                    )
        else:
            # form (2): p(x) <- p0(x0), B(x0, x)
            if len(binary) != 1 or len(unary) != 1:
                raise QueryError(f"rule not in TMNF: {rule}")
            b_atom, p0 = binary[0], unary[0]
            x0 = p0.args[0]
            if b_atom.args != (x0, x) or x0 == x:
                raise QueryError(f"rule not in TMNF: {rule}")
            if is_ext(p0.pred):
                for u, v in binary_pairs(structure, b_atom.pred):
                    if holds_unary_extended(structure, p0.pred, u):
                        clauses.append(HornClause((head.pred, v)))
            else:
                for u, v in binary_pairs(structure, b_atom.pred):
                    clauses.append(HornClause((head.pred, v), ((p0.pred, u),)))
    return horn
