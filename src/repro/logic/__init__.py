"""First-order logic over tree structures (Section 3's FO / FOᵏ layer).

Provides an FO formula AST (with ∃/∀/∧/∨/¬/= over unary and binary tree
relations), a naive model checker (data complexity O(nᵏ) for k nested
quantifiers — the PSpace-combined-complexity baseline of Figure 7), the
FOᵏ variable-width measure (FOᵏ⁺¹ conjunctive queries have tree-width
≤ k, [54]), and conversions from conjunctive queries.
"""

from repro.logic.fo import (
    FO,
    Exists,
    Forall,
    And,
    Or,
    Not,
    RelAtom,
    Eq,
    fo_eval,
    variable_width,
    is_positive,
    cq_to_fo,
)

__all__ = [
    "FO",
    "Exists",
    "Forall",
    "And",
    "Or",
    "Not",
    "RelAtom",
    "Eq",
    "fo_eval",
    "variable_width",
    "is_positive",
    "cq_to_fo",
]
