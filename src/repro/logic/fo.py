"""First-order formulas over tree signatures and naive model checking.

Formulas are built from relation atoms (unary predicates such as
``Lab:a``/``Root``/``Leaf`` and binary axis relations), equality, the
boolean connectives, and quantifiers.  :func:`fo_eval` is the textbook
recursive evaluator: data complexity O(n^q) for quantifier rank q —
the expensive general case that Sections 4–6 improve on for fragments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.cq.query import ConjunctiveQuery
from repro.datalog.syntax import is_variable
from repro.errors import EvaluationError
from repro.trees.structure import TreeStructure
from repro.trees.tree import Tree

__all__ = [
    "FO",
    "RelAtom",
    "Eq",
    "And",
    "Or",
    "Not",
    "Exists",
    "Forall",
    "fo_eval",
    "fo_query",
    "variable_width",
    "is_positive",
    "cq_to_fo",
]


@dataclass(frozen=True)
class RelAtom:
    """``pred(t1, ..., tk)`` over the tree signature (terms: variable
    names or node-id constants)."""

    pred: str
    args: tuple

    def __str__(self) -> str:
        return f"{self.pred}({', '.join(map(str, self.args))})"


@dataclass(frozen=True)
class Eq:
    left: "str | int"
    right: "str | int"

    def __str__(self) -> str:
        return f"{self.left} = {self.right}"


@dataclass(frozen=True)
class And:
    left: "FO"
    right: "FO"

    def __str__(self) -> str:
        return f"({self.left} ∧ {self.right})"


@dataclass(frozen=True)
class Or:
    left: "FO"
    right: "FO"

    def __str__(self) -> str:
        return f"({self.left} ∨ {self.right})"


@dataclass(frozen=True)
class Not:
    operand: "FO"

    def __str__(self) -> str:
        return f"¬{self.operand}"


@dataclass(frozen=True)
class Exists:
    var: str
    body: "FO"

    def __str__(self) -> str:
        return f"∃{self.var} {self.body}"


@dataclass(frozen=True)
class Forall:
    var: str
    body: "FO"

    def __str__(self) -> str:
        return f"∀{self.var} {self.body}"


FO = Union[RelAtom, Eq, And, Or, Not, Exists, Forall]


def fo_eval(
    formula: FO,
    tree: Tree,
    assignment: dict[str, int] | None = None,
    structure: TreeStructure | None = None,
) -> bool:
    """Naive model checking of an FO sentence (or formula under a given
    assignment of its free variables)."""
    structure = structure or TreeStructure(tree)
    assignment = dict(assignment or {})
    domain = range(tree.n)

    def value(t):
        if is_variable(t):
            if t not in assignment:
                raise EvaluationError(f"unbound variable {t}")
            return assignment[t]
        return t

    def rec(f: FO) -> bool:
        if isinstance(f, RelAtom):
            args = [value(t) for t in f.args]
            if len(args) == 1:
                return structure.holds_unary(f.pred, args[0])
            if len(args) == 2:
                return structure.holds_binary(f.pred, args[0], args[1])
            raise EvaluationError(f"bad arity in {f}")
        if isinstance(f, Eq):
            return value(f.left) == value(f.right)
        if isinstance(f, And):
            return rec(f.left) and rec(f.right)
        if isinstance(f, Or):
            return rec(f.left) or rec(f.right)
        if isinstance(f, Not):
            return not rec(f.operand)
        if isinstance(f, Exists):
            # save/restore: re-quantifying a bound name (FO² shadowing)
            # must not clobber the outer binding
            sentinel = object()
            saved = assignment.get(f.var, sentinel)
            result = False
            for v in domain:
                assignment[f.var] = v
                if rec(f.body):
                    result = True
                    break
            if saved is sentinel:
                assignment.pop(f.var, None)
            else:
                assignment[f.var] = saved
            return result
        if isinstance(f, Forall):
            sentinel = object()
            saved = assignment.get(f.var, sentinel)
            result = True
            for v in domain:
                assignment[f.var] = v
                if not rec(f.body):
                    result = False
                    break
            if saved is sentinel:
                assignment.pop(f.var, None)
            else:
                assignment[f.var] = saved
            return result
        raise TypeError(f"not an FO formula: {f!r}")

    return rec(formula)


def fo_query(formula: FO, tree: Tree, free_var: str) -> set[int]:
    """The unary FO query {v : A ⊨ φ[v]}."""
    return {
        v for v in tree.nodes() if fo_eval(formula, tree, {free_var: v})
    }


def variable_width(formula: FO) -> int:
    """The number of distinct variable *names* — the k of FOᵏ.

    [54]: conjunctive FOᵏ⁺¹ queries have tree-width ≤ k; Core XPath
    translates into FO² (hence Boolean Core XPath is O(||A||² · |Q|)).
    """
    names: set[str] = set()

    def rec(f: FO) -> None:
        if isinstance(f, RelAtom):
            names.update(t for t in f.args if is_variable(t))
        elif isinstance(f, Eq):
            names.update(t for t in (f.left, f.right) if is_variable(t))
        elif isinstance(f, (And, Or)):
            rec(f.left)
            rec(f.right)
        elif isinstance(f, Not):
            rec(f.operand)
        elif isinstance(f, (Exists, Forall)):
            names.add(f.var)
            rec(f.body)

    rec(formula)
    return len(names)


def is_positive(formula: FO) -> bool:
    """No negation and no universal quantification (the fragment of
    Theorem 5.1 / Corollary 5.2)."""
    if isinstance(formula, (RelAtom, Eq)):
        return True
    if isinstance(formula, (And, Or)):
        return is_positive(formula.left) and is_positive(formula.right)
    if isinstance(formula, Exists):
        return is_positive(formula.body)
    return False


def cq_to_fo(query: ConjunctiveQuery) -> FO:
    """The CQ as an FO formula: existentially quantify every non-head
    variable over the conjunction of atoms."""
    atoms = [RelAtom(a.pred, tuple(a.args)) for a in query.atoms]
    if not atoms:
        raise EvaluationError("empty query")
    body: FO = atoms[0]
    for atom in atoms[1:]:
        body = And(body, atom)
    bound = [v for v in query.variables() if v not in query.head]
    for v in reversed(bound):
        body = Exists(v, body)
    return body
