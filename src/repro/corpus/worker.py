"""The per-shard unit of work, runnable inline or in a child process.

:func:`evaluate_shard` is pure with respect to process state: it loads
each document fresh, evaluates the task's query, encodes every answer
canonically (:func:`repro.service.protocol.encode_answer`) and spills
the shard's results to its blob file atomically.  That makes a shard
attempt *idempotent* — retrying it on a fresh worker, or re-running it
after a crash, lands byte-identical spill bytes — which is the property
the supervisor's retry/quarantine logic and the resume path both lean
on.

:func:`worker_main` is the child-process entry: it wraps
``evaluate_shard`` in a tiny message protocol over a one-way pipe —
``heartbeat`` between documents, then exactly one ``done`` or ``fail``.
The parent-side supervisor (:mod:`repro.corpus.runner`) reads the pipe;
a SIGKILLed child shows up as EOF with no terminal message, a hung one
as heartbeat silence.  Workers are forked *after* the fault plan is
armed, so each fresh worker inherits the plan snapshot and replays the
same deterministic trip schedule — how the chaos sweep drives the
``corpus.worker``/``corpus.task`` sites through real child processes.
"""

from __future__ import annotations

import json
import time
import zlib
from dataclasses import dataclass
from typing import Any, Callable

from repro.engine.database import evaluate_document
from repro.errors import ReproError
from repro.faults import faultpoint, register_site
from repro.obs.context import Observation, observed
from repro.service.protocol import encode_answer
from repro.storage.diskstore import write_blob

__all__ = ["SPILL_SCHEMA", "ShardOutcome", "ShardTask", "evaluate_shard",
           "worker_main"]

SPILL_SCHEMA = "repro.corpus.spill/1"

register_site("corpus.worker", "worker startup for one shard attempt")
register_site("corpus.task", "per-document evaluation inside a shard")


@dataclass(frozen=True)
class ShardTask:
    """Everything one shard attempt needs; picklable for spawn starts."""

    shard_id: int
    attempt: int  # 1-based
    root: str
    docs: "tuple[str, ...]"
    kind: str
    query: str
    query_pred: "str | None"
    columns: "str | bool | None"
    spill_path: str
    trace_id: str


@dataclass(frozen=True)
class ShardOutcome:
    """What a successful shard attempt reports back."""

    shard_id: int
    attempt: int
    spill_crc: int
    elapsed_ms: float
    trace_id: str
    n_docs: int


def evaluate_shard(
    task: ShardTask,
    heartbeat: "Callable[[], None] | None" = None,
) -> ShardOutcome:
    """Evaluate every document in the shard and spill the answers.

    ``heartbeat`` (if given) is called before each document — the
    subprocess path wires it to a pipe send so the supervisor can tell
    "slow" from "hung".  Faultpoints: ``corpus.worker`` once at entry
    (worker startup), ``corpus.task`` once per document.  Answers are
    encoded canonically and keyed by relative path, so the spill bytes
    are a pure function of (documents, query) — independent of attempt
    number, worker identity, or wall clock.
    """
    started = time.perf_counter()
    faultpoint("corpus.worker", task.shard_id)
    results: "list[list[Any]]" = []
    with observed(Observation(trace_id=task.trace_id)):
        for rel in task.docs:
            if heartbeat is not None:
                heartbeat()
            faultpoint("corpus.task", rel)
            result = evaluate_document(
                f"{task.root}/{rel}",
                task.kind,
                task.query,
                query_pred=task.query_pred,
                columns=task.columns,
            )
            results.append([rel, encode_answer(result.answer)])
    payload = json.dumps(
        {"schema": SPILL_SCHEMA, "shard": task.shard_id, "results": results},
        sort_keys=True, separators=(",", ":"),
    ).encode("utf-8")
    write_blob(task.spill_path, payload)
    return ShardOutcome(
        shard_id=task.shard_id,
        attempt=task.attempt,
        spill_crc=zlib.crc32(payload) & 0xFFFFFFFF,
        elapsed_ms=(time.perf_counter() - started) * 1000.0,
        trace_id=task.trace_id,
        n_docs=len(task.docs),
    )


def worker_main(task: ShardTask, conn) -> None:
    """Child-process entry: run the shard, report over ``conn``.

    Messages (tuples, first element is the tag):

    - ``("heartbeat", shard_id, attempt)`` — before each document
    - ``("done", shard_id, attempt, outcome_dict)`` — terminal success
    - ``("fail", shard_id, attempt, error_type, message)`` — terminal
      failure, including injected faults and anything unexpected

    The connection is closed on the way out, so the supervisor sees EOF
    promptly even if process teardown is slow.  A worker that dies
    without a terminal message (SIGKILL, interpreter abort) is detected
    by the supervisor as EOF-without-done.
    """
    try:
        def heartbeat() -> None:
            conn.send(("heartbeat", task.shard_id, task.attempt))

        outcome = evaluate_shard(task, heartbeat=heartbeat)
        conn.send(("done", task.shard_id, task.attempt, {
            "spill_crc": outcome.spill_crc,
            "elapsed_ms": outcome.elapsed_ms,
            "trace_id": outcome.trace_id,
            "n_docs": outcome.n_docs,
        }))
    except ReproError as exc:
        conn.send(("fail", task.shard_id, task.attempt,
                   type(exc).__name__, str(exc)))
    except BaseException as exc:  # noqa: BLE001 - must not escape a worker
        try:
            conn.send(("fail", task.shard_id, task.attempt,
                       type(exc).__name__, str(exc)))
        except Exception:
            pass
    finally:
        try:
            conn.close()
        except Exception:
            pass
