"""The corpus run supervisor: fan out, watch, retry, checkpoint, merge.

One :func:`run_corpus` call is the whole pipeline::

    split --> [worker pool | inline] --> checkpoint --> merge --> out

**Supervision** (``workers >= 1``): each shard attempt runs in its own
child process with its own one-way pipe.  The supervisor multiplexes
all pipes with :func:`multiprocessing.connection.wait` and distinguishes
three failure shapes, none of which can corrupt the run:

- a worker that *reports* failure (``fail`` message — an evaluation
  error, an injected fault) exits cleanly;
- a worker that *dies* (SIGKILL, interpreter abort) shows up as pipe
  EOF with no terminal message — counted as ``corpus.worker_deaths``;
- a worker that *hangs* stops heartbeating; after ``task_timeout_s`` of
  silence the supervisor SIGKILLs it — counted as ``corpus.timeouts``.

Every failure consumes one attempt from the shard's budget
(``retries + 1`` attempts total, each on a **fresh** worker with a
fresh trace id).  A shard that exhausts its budget is **quarantined**:
recorded in the manifest and the output's ``quarantined`` list, and the
run completes ``partial`` — mirroring the engine supervisor's
``on_error="partial"`` contract of *degraded, never silently wrong*.

**Checkpointing**: each completed shard is journaled durably before the
supervisor moves on (:mod:`repro.corpus.checkpoint`), so ``--resume``
after a mid-run kill re-verifies the recorded spills and recomputes
only what is missing — and, because spill bytes are a pure function of
(documents, query), the resumed output is byte-identical to an
uninterrupted run.

**Determinism**: shards are merged in shard-id order and every answer
is canonically encoded, so ``workers=0``, ``workers=1`` and
``workers=8`` produce byte-identical output files.  The chaos harness
pins this with a kill-a-worker differential (docs/ROBUSTNESS.md).
"""

from __future__ import annotations

import json
import os
import time
import zlib
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.corpus.checkpoint import (
    MANIFEST_SCHEMA,
    CheckpointJournal,
    ManifestState,
    spill_path,
)
from repro.corpus.sharding import Shard, ShardPlan, split_corpus
from repro.corpus.worker import SPILL_SCHEMA, ShardTask, evaluate_shard, worker_main
from repro.errors import CorpusError, ReproError, StorageError, TransientError
from repro.faults import faultpoint, register_site
from repro.obs.metrics import METRICS
from repro.obs.sampling import new_trace_id
from repro.storage.diskstore import read_blob

__all__ = ["RESULT_SCHEMA", "CorpusReport", "ShardStatus", "run_corpus",
           "verify_output"]

RESULT_SCHEMA = "repro.corpus.result/1"

register_site("corpus.merge", "sorted merge of per-shard spills")


# ---------------------------------------------------------------------------
# report
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ShardStatus:
    """One shard's final disposition in a run."""

    shard_id: int
    status: str  # "done" | "resumed" | "quarantined"
    attempts: int
    n_docs: int
    elapsed_ms: float
    trace_id: str
    error: "str | None" = None


@dataclass
class CorpusReport:
    """What one :func:`run_corpus` call did, shard by shard."""

    status: str  # "complete" | "partial"
    out_path: str
    manifest_path: str
    fingerprint: str
    n_docs: int
    n_shards: int
    shards: "list[ShardStatus]" = field(default_factory=list)
    shards_done: int = 0
    shards_resumed: int = 0
    shards_quarantined: int = 0
    retries: int = 0
    worker_deaths: int = 0
    timeouts: int = 0
    elapsed_ms: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status == "complete"

    def scorecard(self) -> str:
        """A per-shard text table (the CLI's ``corpus run`` output)."""
        lines = [
            f"corpus {self.status}: {self.n_docs} docs in "
            f"{self.n_shards} shards — {self.shards_done} evaluated, "
            f"{self.shards_resumed} resumed, "
            f"{self.shards_quarantined} quarantined "
            f"({self.retries} retries, {self.worker_deaths} worker deaths, "
            f"{self.timeouts} timeouts) in {self.elapsed_ms:.0f} ms",
            f"{'shard':>5}  {'status':<12} {'att':>3}  {'docs':>4}  "
            f"{'ms':>8}  trace",
        ]
        for shard in sorted(self.shards, key=lambda s: s.shard_id):
            lines.append(
                f"{shard.shard_id:>5}  {shard.status:<12} "
                f"{shard.attempts:>3}  {shard.n_docs:>4}  "
                f"{shard.elapsed_ms:>8.1f}  {shard.trace_id}"
                + (f"  [{shard.error}]" if shard.error else "")
            )
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# small helpers
# ---------------------------------------------------------------------------


def _with_transient_retry(action: "Callable[[], Any]", retries: int):
    """Run ``action``, re-attempting :class:`TransientError` failures up
    to ``retries`` times (the same budget the shards get)."""
    attempt = 0
    while True:
        try:
            return action()
        except TransientError:
            attempt += 1
            if attempt > retries:
                raise
            METRICS.add("corpus.retries")


def _canonical_bytes(doc: "dict[str, Any]") -> bytes:
    return json.dumps(doc, sort_keys=True, separators=(",", ":")).encode("utf-8")


def _write_text_atomic(path: str, data: bytes) -> None:
    """Atomic tmp+fsync+replace for the plain-JSON output file."""
    tmp = path + ".tmp"
    try:
        with open(tmp, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except OSError as exc:
        raise StorageError(f"cannot write corpus output {path!r}: {exc}") from exc
    finally:
        if os.path.exists(tmp):
            try:
                os.unlink(tmp)
            except OSError:
                pass


def _header_for(plan: ShardPlan, kind: str, query: str,
                query_pred: "str | None", columns: "str | bool | None",
                shard_size: int) -> "dict[str, Any]":
    return {
        "fingerprint": plan.fingerprint,
        "kind": kind,
        "query": query,
        "query_pred": query_pred,
        "columns": columns,
        "shard_size": shard_size,
        "n_docs": plan.n_docs,
        "n_shards": plan.n_shards,
    }


def _check_resume_header(state: ManifestState, header: "dict[str, Any]",
                         manifest_path: str) -> None:
    for key in ("fingerprint", "kind", "query", "query_pred", "columns",
                "shard_size"):
        have, want = state.header.get(key), header.get(key)
        if have != want:
            raise CorpusError(
                f"cannot resume from {manifest_path!r}: manifest "
                f"{key}={have!r} does not match this run's {want!r} "
                "(different corpus or query — start a fresh run)"
            )


def _verify_spill(workdir: str, shard: Shard,
                  record: "dict[str, Any]") -> bool:
    """Whether a journaled shard's spill is present, intact, and matches
    both the journal record and the current plan's shard contents."""
    if list(record.get("docs", ())) != list(shard.docs):
        return False
    path = spill_path(workdir, shard.shard_id)
    try:
        payload = read_blob(path)
    except ReproError:
        return False
    if (zlib.crc32(payload) & 0xFFFFFFFF) != record.get("spill_crc"):
        return False
    return True


# ---------------------------------------------------------------------------
# the supervised pool
# ---------------------------------------------------------------------------


class _Attempt:
    """Parent-side state for one in-flight shard attempt."""

    __slots__ = ("shard", "task", "proc", "conn", "last_beat", "started")

    def __init__(self, shard, task, proc, conn, now):
        self.shard = shard
        self.task = task
        self.proc = proc
        self.conn = conn
        self.last_beat = now
        self.started = now


def _run_pool(
    shards: "list[Shard]",
    plan: ShardPlan,
    journal: CheckpointJournal,
    report: CorpusReport,
    *,
    kind: str,
    query: str,
    query_pred: "str | None",
    columns: "str | bool | None",
    workdir: str,
    workers: int,
    retries: int,
    task_timeout_s: float,
    on_worker_spawn: "Callable[[int, int], None] | None",
) -> None:
    """Supervise ``shards`` across a pool of ``workers`` child processes."""
    import multiprocessing as mp
    from multiprocessing import connection as mp_connection

    method = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
    ctx = mp.get_context(method)

    budget = {s.shard_id: retries + 1 for s in shards}
    pending = list(shards)  # consumed front-first in shard order
    active: "dict[Any, _Attempt]" = {}  # conn -> attempt

    def spawn(shard: Shard) -> None:
        used = (retries + 1) - budget[shard.shard_id]
        task = ShardTask(
            shard_id=shard.shard_id,
            attempt=used + 1,
            root=plan.root,
            docs=shard.docs,
            kind=kind,
            query=query,
            query_pred=query_pred,
            columns=columns,
            spill_path=spill_path(workdir, shard.shard_id),
            trace_id=new_trace_id(),
        )
        recv_conn, send_conn = ctx.Pipe(duplex=False)
        proc = ctx.Process(
            target=worker_main, args=(task, send_conn),
            name=f"repro-corpus-{shard.shard_id}-{task.attempt}",
            daemon=True,
        )
        proc.start()
        send_conn.close()  # parent's copy; child holds the real one
        active[recv_conn] = _Attempt(shard, task, proc, recv_conn,
                                     time.monotonic())
        if on_worker_spawn is not None:
            on_worker_spawn(shard.shard_id, proc.pid)

    def retire(attempt: "_Attempt") -> None:
        active.pop(attempt.conn, None)
        try:
            attempt.conn.close()
        except Exception:
            pass
        attempt.proc.join(timeout=10.0)

    def record_failure(attempt: "_Attempt", error: str) -> None:
        shard = attempt.shard
        budget[shard.shard_id] -= 1
        if budget[shard.shard_id] > 0:
            METRICS.add("corpus.retries")
            report.retries += 1
            pending.append(shard)  # fresh worker, fresh trace id
            return
        METRICS.add("corpus.quarantined")
        report.shards_quarantined += 1
        _with_transient_retry(
            lambda: journal.record_quarantine(
                shard.shard_id, shard.docs, error,
                attempts=attempt.task.attempt,
                trace_id=attempt.task.trace_id,
            ),
            retries,
        )
        report.shards.append(ShardStatus(
            shard_id=shard.shard_id, status="quarantined",
            attempts=attempt.task.attempt, n_docs=len(shard.docs),
            elapsed_ms=(time.monotonic() - attempt.started) * 1000.0,
            trace_id=attempt.task.trace_id, error=error,
        ))

    def record_done(attempt: "_Attempt", payload: "dict[str, Any]") -> None:
        shard = attempt.shard
        METRICS.add("corpus.shards_done")
        METRICS.add("corpus.docs", len(shard.docs))
        METRICS.observe_duration("corpus.shard",
                                 payload["elapsed_ms"] / 1000.0)
        report.shards_done += 1
        _with_transient_retry(
            lambda: journal.record_shard(
                shard.shard_id, shard.docs,
                spill_crc=payload["spill_crc"],
                elapsed_ms=payload["elapsed_ms"],
                trace_id=payload["trace_id"],
                attempts=attempt.task.attempt,
            ),
            retries,
        )
        report.shards.append(ShardStatus(
            shard_id=shard.shard_id, status="done",
            attempts=attempt.task.attempt, n_docs=len(shard.docs),
            elapsed_ms=payload["elapsed_ms"],
            trace_id=payload["trace_id"],
        ))

    try:
        while pending or active:
            while pending and len(active) < workers:
                spawn(pending.pop(0))
            conns = list(active)
            ready = mp_connection.wait(conns, timeout=0.05)
            now = time.monotonic()
            for conn in ready:
                attempt = active.get(conn)
                if attempt is None:
                    continue
                try:
                    message = conn.recv()
                except (EOFError, OSError):
                    # the pipe died with no terminal message: the worker
                    # was killed or crashed hard (SIGKILL shows up here)
                    retire(attempt)
                    code = attempt.proc.exitcode
                    METRICS.add("corpus.worker_deaths")
                    report.worker_deaths += 1
                    record_failure(
                        attempt, f"worker died (exitcode={code})"
                    )
                    continue
                tag = message[0]
                if tag == "heartbeat":
                    attempt.last_beat = now
                elif tag == "done":
                    retire(attempt)
                    record_done(attempt, message[3])
                elif tag == "fail":
                    retire(attempt)
                    record_failure(attempt,
                                   f"{message[3]}: {message[4]}")
            # hung-worker detection: heartbeat silence beyond the budget
            for attempt in list(active.values()):
                if now - attempt.last_beat <= task_timeout_s:
                    continue
                try:
                    attempt.proc.kill()
                except Exception:
                    pass
                retire(attempt)
                METRICS.add("corpus.timeouts")
                report.timeouts += 1
                record_failure(
                    attempt,
                    f"task timeout ({task_timeout_s:g}s without heartbeat)",
                )
    finally:
        # belt-and-braces: never leak children, even on an unexpected
        # supervisor error (e.g. a checkpoint append failure mid-run)
        for attempt in list(active.values()):
            try:
                attempt.proc.kill()
            except Exception:
                pass
            retire(attempt)


def _run_inline(
    shards: "list[Shard]",
    plan: ShardPlan,
    journal: CheckpointJournal,
    report: CorpusReport,
    *,
    kind: str,
    query: str,
    query_pred: "str | None",
    columns: "str | bool | None",
    workdir: str,
    retries: int,
) -> None:
    """``workers=0``: evaluate every shard in-process, same contract.

    This is the serial oracle the differential tests compare pools
    against; ``task_timeout_s`` does not apply (nothing to kill)."""
    for shard in shards:
        last_error: "str | None" = None
        outcome = None
        task = None
        for attempt_no in range(1, retries + 2):
            task = ShardTask(
                shard_id=shard.shard_id, attempt=attempt_no,
                root=plan.root, docs=shard.docs, kind=kind, query=query,
                query_pred=query_pred, columns=columns,
                spill_path=spill_path(workdir, shard.shard_id),
                trace_id=new_trace_id(),
            )
            try:
                outcome = evaluate_shard(task)
                break
            except ReproError as exc:
                last_error = f"{type(exc).__name__}: {exc}"
                if attempt_no <= retries:
                    METRICS.add("corpus.retries")
                    report.retries += 1
        if outcome is not None:
            METRICS.add("corpus.shards_done")
            METRICS.add("corpus.docs", len(shard.docs))
            METRICS.observe_duration("corpus.shard",
                                     outcome.elapsed_ms / 1000.0)
            report.shards_done += 1
            _with_transient_retry(
                lambda: journal.record_shard(
                    shard.shard_id, shard.docs,
                    spill_crc=outcome.spill_crc,
                    elapsed_ms=outcome.elapsed_ms,
                    trace_id=outcome.trace_id,
                    attempts=outcome.attempt,
                ),
                retries,
            )
            report.shards.append(ShardStatus(
                shard_id=shard.shard_id, status="done",
                attempts=outcome.attempt, n_docs=len(shard.docs),
                elapsed_ms=outcome.elapsed_ms, trace_id=outcome.trace_id,
            ))
        else:
            METRICS.add("corpus.quarantined")
            report.shards_quarantined += 1
            _with_transient_retry(
                lambda: journal.record_quarantine(
                    shard.shard_id, shard.docs, last_error or "unknown",
                    attempts=retries + 1, trace_id=task.trace_id,
                ),
                retries,
            )
            report.shards.append(ShardStatus(
                shard_id=shard.shard_id, status="quarantined",
                attempts=retries + 1, n_docs=len(shard.docs),
                elapsed_ms=0.0, trace_id=task.trace_id, error=last_error,
            ))


# ---------------------------------------------------------------------------
# merge + output
# ---------------------------------------------------------------------------


def _merge_and_write(
    plan: ShardPlan,
    report: CorpusReport,
    *,
    out: str,
    workdir: str,
    kind: str,
    query: str,
    query_pred: "str | None",
    columns: "str | bool | None",
    shard_size: int,
    retries: int,
) -> None:
    """Merge per-shard spills into the canonical output file.

    Spills are read in **shard-id order** and answers keyed by relative
    path; with canonical per-answer encoding and sorted-key JSON the
    output bytes are a pure function of (corpus, query, quarantine
    set) — independent of worker count, retry history, and wall clock.
    Timings and trace ids deliberately stay out of this file (they live
    in the manifest and the scorecard).
    """
    quarantined_ids = {
        s.shard_id for s in report.shards if s.status == "quarantined"
    }

    def merge() -> "dict[str, Any]":
        faultpoint("corpus.merge", None)
        results: "dict[str, Any]" = {}
        for shard in plan.shards:
            if shard.shard_id in quarantined_ids:
                continue
            payload = read_blob(spill_path(workdir, shard.shard_id))
            doc = json.loads(payload.decode("utf-8"))
            if doc.get("schema") != SPILL_SCHEMA or doc.get("shard") != shard.shard_id:
                raise CorpusError(
                    f"spill for shard {shard.shard_id} is not the "
                    f"expected one (schema={doc.get('schema')!r}, "
                    f"shard={doc.get('shard')!r})"
                )
            for rel, encoded in doc["results"]:
                results[rel] = encoded
        return results

    results = _with_transient_retry(merge, retries)
    status = "partial" if quarantined_ids else "complete"
    out_doc = {
        "schema": RESULT_SCHEMA,
        "kind": kind,
        "query": query,
        "query_pred": query_pred,
        "columns": columns,
        "fingerprint": plan.fingerprint,
        "n_docs": plan.n_docs,
        "shard_size": shard_size,
        "status": status,
        "quarantined": [
            {"shard": s.shard_id, "docs": sorted(
                d for sh in plan.shards if sh.shard_id == s.shard_id
                for d in sh.docs
            ), "error": s.error or ""}
            for s in sorted(report.shards, key=lambda s: s.shard_id)
            if s.status == "quarantined"
        ],
        "results": results,
    }
    out_doc["crc32"] = zlib.crc32(_canonical_bytes(out_doc)) & 0xFFFFFFFF
    _write_text_atomic(out, _canonical_bytes(out_doc) + b"\n")
    report.status = status


def verify_output(out: str) -> "dict[str, Any]":
    """Re-check an output file's embedded CRC; returns the decoded doc.

    Raises :class:`CorpusError` on schema or checksum mismatch and
    :class:`~repro.errors.StorageError` on I/O failure."""
    try:
        with open(out, "rb") as fh:
            data = fh.read()
    except OSError as exc:
        raise StorageError(f"cannot read corpus output {out!r}: {exc}") from exc
    try:
        doc = json.loads(data.decode("utf-8"))
    except ValueError as exc:
        raise CorpusError(f"corpus output {out!r} is not JSON: {exc}") from exc
    if not isinstance(doc, dict) or doc.get("schema") != RESULT_SCHEMA:
        raise CorpusError(
            f"corpus output {out!r} has schema "
            f"{doc.get('schema') if isinstance(doc, dict) else None!r}, "
            f"expected {RESULT_SCHEMA!r}"
        )
    recorded = doc.get("crc32")
    body = {k: v for k, v in doc.items() if k != "crc32"}
    computed = zlib.crc32(_canonical_bytes(body)) & 0xFFFFFFFF
    if recorded != computed:
        raise CorpusError(
            f"corpus output {out!r} fails its checksum "
            f"(recorded {recorded}, computed {computed})"
        )
    return doc


# ---------------------------------------------------------------------------
# the entry point
# ---------------------------------------------------------------------------


def run_corpus(
    root: str,
    kind: str,
    query: str,
    *,
    query_pred: "str | None" = None,
    out: str,
    workdir: "str | None" = None,
    workers: int = 2,
    shard_size: int = 4,
    retries: int = 1,
    task_timeout_s: float = 30.0,
    resume: bool = False,
    columns: "str | bool | None" = None,
    on_worker_spawn: "Callable[[int, int], None] | None" = None,
) -> CorpusReport:
    """Evaluate ``query`` over every document under ``root``.

    ``workers=0`` runs inline (the serial oracle); ``workers >= 1``
    supervises that many child processes.  ``resume=True`` loads the
    manifest in ``workdir``, re-verifies every journaled spill, and
    recomputes only missing/invalid/quarantined shards — producing
    byte-identical output to an uninterrupted run.  ``on_worker_spawn``
    is a test hook called as ``(shard_id, pid)`` after each worker
    start (chaos uses it to SIGKILL a worker mid-shard).

    Returns a :class:`CorpusReport`; ``report.status`` is ``complete``
    or (when shards were quarantined) ``partial``.  Setup, checkpoint
    and merge transients honour the same ``retries`` budget as shards.
    """
    if workers < 0:
        raise CorpusError(f"workers must be >= 0, got {workers}")
    if retries < 0:
        raise CorpusError(f"retries must be >= 0, got {retries}")
    if task_timeout_s <= 0:
        raise CorpusError(f"task_timeout_s must be > 0, got {task_timeout_s}")
    started = time.perf_counter()

    plan = _with_transient_retry(lambda: split_corpus(root, shard_size),
                                 retries)
    workdir = workdir or out + ".work"
    os.makedirs(workdir, exist_ok=True)
    manifest_path = os.path.join(workdir, "manifest.jsonl")
    header = _header_for(plan, kind, query, query_pred, columns, shard_size)

    report = CorpusReport(
        status="complete", out_path=out, manifest_path=manifest_path,
        fingerprint=plan.fingerprint, n_docs=plan.n_docs,
        n_shards=plan.n_shards,
    )

    completed: "dict[int, dict[str, Any]]" = {}
    if resume:
        if not os.path.exists(manifest_path):
            raise CorpusError(
                f"nothing to resume: no manifest at {manifest_path!r}"
            )
        state = CheckpointJournal.load(manifest_path)
        _check_resume_header(state, header, manifest_path)
        completed = state.completed
        journal = CheckpointJournal(manifest_path)
    else:
        journal = CheckpointJournal.create(manifest_path, header)

    todo: "list[Shard]" = []
    for shard in plan.shards:
        record = completed.get(shard.shard_id)
        if record is not None and _verify_spill(workdir, shard, record):
            METRICS.add("corpus.shards_skipped")
            report.shards_resumed += 1
            report.shards.append(ShardStatus(
                shard_id=shard.shard_id, status="resumed",
                attempts=int(record.get("attempts", 1)),
                n_docs=len(shard.docs),
                elapsed_ms=float(record.get("elapsed_ms", 0.0)),
                trace_id=str(record.get("trace_id", "")),
            ))
        else:
            todo.append(shard)

    try:
        if workers == 0:
            _run_inline(
                todo, plan, journal, report,
                kind=kind, query=query, query_pred=query_pred,
                columns=columns, workdir=workdir, retries=retries,
            )
        else:
            _run_pool(
                todo, plan, journal, report,
                kind=kind, query=query, query_pred=query_pred,
                columns=columns, workdir=workdir, workers=workers,
                retries=retries, task_timeout_s=task_timeout_s,
                on_worker_spawn=on_worker_spawn,
            )
    finally:
        journal.close()

    _merge_and_write(
        plan, report,
        out=out, workdir=workdir, kind=kind, query=query,
        query_pred=query_pred, columns=columns, shard_size=shard_size,
        retries=retries,
    )
    report.elapsed_ms = (time.perf_counter() - started) * 1000.0
    METRICS.observe_duration("corpus.run", report.elapsed_ms / 1000.0)
    return report
