"""The crash-safe, resumable checkpoint manifest of a corpus run.

The manifest is a JSONL journal (schema ``repro.corpus.manifest/1``):
one header record pinning the run's identity — corpus fingerprint,
query, shard geometry — then one record per *completed* shard and one
per *quarantined* shard, appended as each outcome lands.  Three
properties make it crash-safe:

- **Every line carries its own CRC32** (of the canonical JSON without
  the ``crc`` field), so a torn tail line — the process was SIGKILLed
  mid-append — or a flipped byte is detected and *skipped*, never
  trusted.  A skipped shard is simply recomputed on resume; corruption
  degrades to lost work, not to wrong answers.
- **Appends are flushed and fsynced** before the runner moves on, so a
  shard recorded as done survives any later crash.
- **The header is installed atomically** (the diskstore
  tmp+fsync+replace pattern), so a manifest either exists with a valid
  header or not at all.

Shard *answers* do not live in the manifest: each completed shard's
encoded answers are spilled to ``shard-NNNN.blob`` next to it, written
with :func:`repro.storage.write_blob` (same CRC-trailer + atomic
replace as ``.rtre`` stores) and re-verified on resume.  The manifest
line stores the spill's CRC so a resumed run proves the spill it is
about to trust is the one the journal recorded.

``repro corpus status`` and ``--resume`` both start from
:meth:`CheckpointJournal.load`; docs/ROBUSTNESS.md ("Corpus supervision
& resume") walks the full lifecycle.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from typing import Any

from repro.errors import CorpusError, StorageError
from repro.faults import faultpoint, register_site

__all__ = [
    "MANIFEST_SCHEMA",
    "CheckpointJournal",
    "ManifestState",
    "spill_path",
]

MANIFEST_SCHEMA = "repro.corpus.manifest/1"

register_site("corpus.checkpoint", "manifest journal append")


def _canonical(record: "dict[str, Any]") -> str:
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def _with_crc(record: "dict[str, Any]") -> str:
    body = {k: v for k, v in record.items() if k != "crc"}
    crc = zlib.crc32(_canonical(body).encode("utf-8")) & 0xFFFFFFFF
    body["crc"] = crc
    return _canonical(body)


def _check_crc(record: "dict[str, Any]") -> bool:
    if "crc" not in record:
        return False
    body = {k: v for k, v in record.items() if k != "crc"}
    crc = zlib.crc32(_canonical(body).encode("utf-8")) & 0xFFFFFFFF
    return crc == record["crc"]


def spill_path(workdir: str, shard_id: int) -> str:
    """Where shard ``shard_id``'s answers spill (attempt-independent:
    retries atomically replace the same file)."""
    return os.path.join(workdir, f"shard-{shard_id:04d}.blob")


@dataclass
class ManifestState:
    """Everything a loaded manifest says about a prior (partial) run."""

    header: "dict[str, Any]"
    #: shard_id -> the completed-shard record (last valid line wins)
    completed: "dict[int, dict[str, Any]]" = field(default_factory=dict)
    #: shard_id -> the quarantine record (superseded by later completion)
    quarantined: "dict[int, dict[str, Any]]" = field(default_factory=dict)
    #: lines whose CRC or JSON did not check out (torn tail, bit rot)
    skipped_lines: int = 0


class CheckpointJournal:
    """Appender/loader for one run's manifest file."""

    def __init__(self, path: str):
        self.path = path
        self._fh = None

    # -- writing -----------------------------------------------------------

    @classmethod
    def create(cls, path: str, header: "dict[str, Any]") -> "CheckpointJournal":
        """Start a fresh manifest whose first line is the header record.

        Installed atomically: a crash during creation leaves either no
        manifest or a complete, valid one-line manifest.
        """
        record = dict(header)
        record["type"] = "header"
        record["schema"] = MANIFEST_SCHEMA
        line = _with_crc(record) + "\n"
        tmp = path + ".tmp"
        try:
            with open(tmp, "w", encoding="utf-8") as fh:
                fh.write(line)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        except OSError as exc:
            raise StorageError(
                f"cannot create corpus manifest {path!r}: {exc}"
            ) from exc
        finally:
            if os.path.exists(tmp):
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
        return cls(path)

    def append(self, record: "dict[str, Any]") -> None:
        """Durably append one shard/quarantine record.

        The ``corpus.checkpoint`` faultpoint guards the append: injected
        errors surface *before* the write, so a tripped checkpoint never
        half-records an outcome.  The line is flushed and fsynced before
        returning — once this method returns, the record survives
        SIGKILL.
        """
        faultpoint("corpus.checkpoint", record)
        line = _with_crc(record) + "\n"
        try:
            if self._fh is None:
                self._fh = open(self.path, "a", encoding="utf-8")
            self._fh.write(line)
            self._fh.flush()
            os.fsync(self._fh.fileno())
        except OSError as exc:
            raise StorageError(
                f"cannot append to corpus manifest {self.path!r}: {exc}"
            ) from exc

    def record_shard(
        self,
        shard_id: int,
        docs: "tuple[str, ...]",
        spill_crc: int,
        elapsed_ms: float,
        trace_id: str,
        attempts: int,
    ) -> None:
        self.append({
            "type": "shard",
            "shard": shard_id,
            "docs": list(docs),
            "spill_crc": spill_crc,
            "elapsed_ms": round(elapsed_ms, 3),
            "trace_id": trace_id,
            "attempts": attempts,
        })

    def record_quarantine(
        self,
        shard_id: int,
        docs: "tuple[str, ...]",
        error: str,
        attempts: int,
        trace_id: str,
    ) -> None:
        self.append({
            "type": "quarantine",
            "shard": shard_id,
            "docs": list(docs),
            "error": error,
            "attempts": attempts,
            "trace_id": trace_id,
        })

    def close(self) -> None:
        fh, self._fh = self._fh, None
        if fh is not None:
            fh.close()

    def __enter__(self) -> "CheckpointJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- loading -----------------------------------------------------------

    @classmethod
    def load(cls, path: str) -> ManifestState:
        """Parse a manifest, tolerating a torn or corrupt tail.

        Invalid lines (bad JSON, failed CRC) are counted and skipped —
        the shards they would have recorded are simply recomputed.  A
        missing or invalid *header* is a :class:`CorpusError`: without
        the run identity nothing else in the file can be trusted.
        """
        try:
            with open(path, "r", encoding="utf-8") as fh:
                lines = fh.read().splitlines()
        except OSError as exc:
            raise StorageError(
                f"cannot read corpus manifest {path!r}: {exc}"
            ) from exc
        header: "dict[str, Any] | None" = None
        state: "ManifestState | None" = None
        skipped = 0
        for line in lines:
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except ValueError:
                skipped += 1
                continue
            if not isinstance(record, dict) or not _check_crc(record):
                skipped += 1
                continue
            kind = record.get("type")
            if kind == "header":
                if record.get("schema") != MANIFEST_SCHEMA:
                    raise CorpusError(
                        f"manifest {path!r} has schema "
                        f"{record.get('schema')!r}, expected {MANIFEST_SCHEMA!r}"
                    )
                header = record
                state = ManifestState(header=record)
            elif state is None:
                # shard record before any valid header: untrustworthy
                skipped += 1
            elif kind == "shard":
                shard_id = int(record["shard"])
                state.completed[shard_id] = record
                state.quarantined.pop(shard_id, None)
            elif kind == "quarantine":
                shard_id = int(record["shard"])
                if shard_id not in state.completed:
                    state.quarantined[shard_id] = record
            else:
                skipped += 1
        if header is None or state is None:
            raise CorpusError(
                f"manifest {path!r} has no valid header record"
            )
        state.skipped_lines = skipped
        return state
