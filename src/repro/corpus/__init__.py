"""Sharded corpus evaluation: split → supervised fan-out → merge.

One query over a *directory* of documents, evaluated per document (the
unit of parallelism the Gottlob–Koch–Schulz complexity maps justify:
answers over disjoint trees are independent) across a supervised
``multiprocessing`` worker pool, with crash-safe resumable checkpoints
and a deterministic merge — parallel degree never changes the output
bytes.  See docs/ROBUSTNESS.md ("Corpus supervision & resume") and
``repro corpus run/status/verify`` on the CLI.
"""

from repro.corpus.checkpoint import (
    MANIFEST_SCHEMA,
    CheckpointJournal,
    ManifestState,
    spill_path,
)
from repro.corpus.runner import (
    RESULT_SCHEMA,
    CorpusReport,
    ShardStatus,
    run_corpus,
    verify_output,
)
from repro.corpus.sharding import (
    CORPUS_SUFFIXES,
    Shard,
    ShardPlan,
    corpus_fingerprint,
    discover_corpus,
    split_corpus,
)
from repro.corpus.worker import (
    SPILL_SCHEMA,
    ShardOutcome,
    ShardTask,
    evaluate_shard,
)

__all__ = [
    "CORPUS_SUFFIXES",
    "MANIFEST_SCHEMA",
    "RESULT_SCHEMA",
    "SPILL_SCHEMA",
    "CheckpointJournal",
    "CorpusReport",
    "ManifestState",
    "Shard",
    "ShardOutcome",
    "ShardPlan",
    "ShardStatus",
    "ShardTask",
    "corpus_fingerprint",
    "discover_corpus",
    "evaluate_shard",
    "run_corpus",
    "spill_path",
    "split_corpus",
    "verify_output",
]
