"""Corpus discovery and deterministic sharding.

A *corpus* is a directory of documents — ``.xml`` text or ``.rtre``
binary stores — evaluated independently (answers over disjoint trees
are independent, which is what makes per-document fan-out sound; see
the Gottlob–Koch–Schulz complexity maps in PAPERS.md).  This module
turns the directory into a :class:`ShardPlan`: a **sorted** list of
relative document paths chopped into fixed-size shards, plus a content
fingerprint that pins a resumed run to the corpus it started on.

Everything here is a pure function of the directory listing, so the
same corpus always yields the same plan — shard ids, document order and
fingerprint are identical across runs and across worker counts.  That
stability is the first leg of the deterministic-merge contract
(docs/ROBUSTNESS.md, "Corpus supervision & resume").
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass

from repro.errors import CorpusError, StorageError
from repro.faults import faultpoint, register_site

__all__ = [
    "CORPUS_SUFFIXES",
    "Shard",
    "ShardPlan",
    "corpus_fingerprint",
    "discover_corpus",
    "split_corpus",
]

#: document suffixes the corpus layer evaluates
CORPUS_SUFFIXES = (".xml", ".rtre")

register_site("corpus.split", "corpus discovery and shard planning")


@dataclass(frozen=True)
class Shard:
    """One unit of worker work: a contiguous slice of the sorted corpus."""

    shard_id: int
    docs: "tuple[str, ...]"  # relative paths, sorted


@dataclass(frozen=True)
class ShardPlan:
    """The full, deterministic decomposition of one corpus."""

    root: str
    docs: "tuple[str, ...]"
    shards: "tuple[Shard, ...]"
    fingerprint: str

    @property
    def n_docs(self) -> int:
        return len(self.docs)

    @property
    def n_shards(self) -> int:
        return len(self.shards)


def discover_corpus(root: str) -> "list[str]":
    """Sorted relative paths of every corpus document under ``root``.

    Recurses; hidden files and non-corpus suffixes are skipped.  Raises
    :class:`~repro.errors.StorageError` if the directory is unreadable
    and :class:`~repro.errors.CorpusError` if no documents are found.
    """
    if not os.path.isdir(root):
        raise StorageError(f"corpus root {root!r} is not a directory")
    found: "list[str]" = []
    try:
        for dirpath, dirnames, filenames in os.walk(root):
            dirnames[:] = sorted(d for d in dirnames if not d.startswith("."))
            for name in filenames:
                if name.startswith("."):
                    continue
                if not name.endswith(CORPUS_SUFFIXES):
                    continue
                rel = os.path.relpath(os.path.join(dirpath, name), root)
                found.append(rel.replace(os.sep, "/"))
    except OSError as exc:
        raise StorageError(f"cannot scan corpus {root!r}: {exc}") from exc
    if not found:
        raise CorpusError(
            f"corpus {root!r} contains no documents "
            f"(looked for {', '.join(CORPUS_SUFFIXES)})"
        )
    return sorted(found)


def corpus_fingerprint(root: str, docs: "list[str] | tuple[str, ...]") -> str:
    """A content identity for the corpus: sha256 over sorted
    ``relpath NUL size`` entries.

    Sizes (not mtimes) so that copying a corpus elsewhere resumes
    cleanly, while adding, removing or rewriting a document invalidates
    old manifests.
    """
    digest = hashlib.sha256()
    for rel in sorted(docs):
        try:
            size = os.path.getsize(os.path.join(root, rel))
        except OSError as exc:
            raise StorageError(
                f"cannot stat corpus document {rel!r}: {exc}"
            ) from exc
        digest.update(rel.encode("utf-8"))
        digest.update(b"\0")
        digest.update(str(size).encode("ascii"))
        digest.update(b"\n")
    return digest.hexdigest()


def split_corpus(root: str, shard_size: int = 4) -> ShardPlan:
    """Discover ``root`` and chop it into shards of ``shard_size`` docs.

    The ``corpus.split`` faultpoint sits after discovery: an injected
    error here fails the whole run *before* any work starts (the
    supervisor retries transient ones), and there is deliberately no
    corrupt mutator — a plan that silently dropped documents would be a
    wrong answer, exactly what the chaos sweep forbids.
    """
    if shard_size < 1:
        raise CorpusError(f"shard_size must be >= 1, got {shard_size}")
    docs = tuple(discover_corpus(root))
    faultpoint("corpus.split", docs)
    fingerprint = corpus_fingerprint(root, docs)
    shards = tuple(
        Shard(shard_id=i // shard_size, docs=docs[i:i + shard_size])
        for i in range(0, len(docs), shard_size)
    )
    return ShardPlan(root=root, docs=docs, shards=shards,
                     fingerprint=fingerprint)
