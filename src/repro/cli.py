"""Command-line interface.

::

    python -m repro stats    doc.xml
    python -m repro xpath    "Child*[lab() = a]/Child[lab() = b]" doc.xml
    python -m repro cq       "ans(x) :- Child+(y, x), Lab:a(y)" doc.xml
    python -m repro twig     "//a[b]//c" doc.xml
    python -m repro datalog  program.dl doc.xml
    python -m repro convert  doc.xml doc.rtre        (and back: .rtre -> .xml)
    python -m repro classify Child+ Following        (Theorem 6.8 verdict)
    python -m repro bench    run | compare | export  (benchmark telemetry)
    python -m repro serve    --port 8008 --store name=doc.xml   (HTTP service)
    python -m repro load     --fast --write          (load-test scorecard)
    python -m repro store    verify doc.rtre         (checksum verification)

Every query command goes through :class:`repro.engine.Database`:
``--engine auto`` (the default) lets the planner pick a strategy,
``--engine <name>`` forces one of the registered strategies, and
``--engine all`` cross-checks every applicable strategy and fails with
exit code 1 if any pair disagrees.  ``--stats`` prints the per-call
:class:`~repro.engine.stats.ExecutionStats` summary to stderr.

Observability (see docs/OBSERVABILITY.md): ``--trace`` pretty-prints
the span tree to stderr, ``--trace=FILE`` writes it as JSON instead;
``--deadline-ms N`` and ``--max-visited N`` set a resource budget —
exceeding it is a clean exit-3 error (the planner falls back to the
next applicable strategy first when the engine is ``auto``).

Robustness (see docs/ROBUSTNESS.md): ``--retries N`` re-attempts
transient failures, ``--on-error {raise,fallback,partial}`` picks the
degradation policy, and ``--fault SITE:KIND[:ARG][@TRIGGER]``
(repeatable, with ``--fault-seed``) arms a deterministic fault plan
around the query — injected failures that defeat the supervisor are a
clean exit-4 error.  ``repro chaos`` runs the seeded differential
sweep over every registered injection site and fails (exit 1) on any
wrong answer or foreign exception.

Benchmark telemetry (the "Benchmark telemetry" section of
docs/OBSERVABILITY.md): ``repro bench run`` sweeps ``benchmarks/`` and
writes the next ``BENCH_<n>.json``; ``repro bench compare`` diffs two
runs (growth-class changes always fail; timing-band breaches fail
unless ``--timing-warn-only``); ``repro bench export`` renders a run as
OpenMetrics text.
"""

from __future__ import annotations

import argparse
import os
import sys
from collections import Counter
from contextlib import nullcontext

_NULL_PLAN = nullcontext()

from repro.engine import Database, strategy_names
from repro.errors import (
    AllStrategiesFailedError,
    InjectedFault,
    QueryError,
    ResourceBudgetExceeded,
    TransientError,
)
from repro.faults import FaultPlan
from repro.trees import Tree, to_xml

__all__ = ["main", "build_parser"]


def _load_database(args) -> Database:
    return Database.from_file(
        args.document,
        getattr(args, "attr_labels", False),
        columns=getattr(args, "columns", None),
        plan_cache=getattr(args, "plan_cache", None),
    )


def _print_nodes(tree: Tree, nodes, show_paths: bool) -> None:
    for v in sorted(nodes):
        if show_paths:
            chain = [v, *tree.ancestors(v)]
            path = "/".join(tree.label[u] for u in reversed(chain))
            print(f"{v}\t{path}")
        else:
            print(v)


def cmd_stats(args) -> int:
    tree = _load_database(args).tree
    print(f"nodes   : {tree.n}")
    print(f"height  : {tree.height()}")
    print(f"leaves  : {sum(1 for _ in tree.leaves())}")
    histogram = Counter(tree.label)
    print("labels  :")
    for label, count in histogram.most_common(args.top):
        print(f"  {label:20s} {count}")
    return 0


def _budget_kwargs(args) -> dict:
    """Translate the observability/supervision flags into Database kwargs."""
    deadline_ms = getattr(args, "deadline_ms", None)
    return {
        "trace": getattr(args, "trace", None) is not None,
        "deadline": deadline_ms / 1000.0 if deadline_ms is not None else None,
        "max_visited": getattr(args, "max_visited", None),
        "retries": getattr(args, "retries", 0),
        "on_error": getattr(args, "on_error", "raise"),
    }


def _fault_plan(args) -> "FaultPlan | None":
    """An armed FaultPlan from --fault/--fault-seed, or None."""
    specs = getattr(args, "fault", None)
    if not specs:
        return None
    return FaultPlan(specs, seed=getattr(args, "fault_seed", 0))


def _emit_trace(args, name: str, result) -> None:
    """Write the captured span tree where --trace pointed it."""
    from repro.obs import render_pretty, write_trace

    span = result.stats.trace
    if span is None:
        return
    if args.trace == "-":
        print(f"# trace [{name}]:", file=sys.stderr)
        print(render_pretty(span), file=sys.stderr)
    else:
        write_trace(span, args.trace)
        print(f"# trace written to {args.trace}", file=sys.stderr)


def _run_query(args, db: Database, kind: str, query) -> int:
    """Plan/dispatch one query; shared by xpath, cq, twig and datalog."""
    chosen = args.engine
    names = strategy_names(kind)
    if chosen not in ("all", "auto") and chosen not in names:
        print(
            f"engine {chosen!r} unknown for {kind}; options: "
            f"{', '.join(names)}, auto or all",
            file=sys.stderr,
        )
        return 2
    obs = _budget_kwargs(args)
    plan = _fault_plan(args)
    try:
        with plan if plan is not None else _NULL_PLAN:
            if chosen == "all":
                results = db.cross_check(kind, query, **obs)
            else:
                result = db.run(kind, query, chosen, **obs)
                results = {result.stats.strategy: result}
    except QueryError as exc:
        print(f"engine {chosen!r} not applicable: {exc}", file=sys.stderr)
        return 2
    except ResourceBudgetExceeded as exc:
        print(f"budget exceeded: {exc}", file=sys.stderr)
        return 3
    except (AllStrategiesFailedError, InjectedFault, TransientError) as exc:
        print(f"supervision exhausted: {exc}", file=sys.stderr)
        return 4
    if plan is not None:
        print(
            f"# fault plan: {len(plan.trips)} trips at "
            f"{plan.tripped_sites() or 'no sites'}",
            file=sys.stderr,
        )

    for name, result in results.items():
        print(f"# {name}: {result.stats.elapsed_ms:.1f} ms", file=sys.stderr)
        if args.stats:
            print(f"# {result.stats.summary()} — {result.stats.reason}",
                  file=sys.stderr)
        if obs["trace"]:
            _emit_trace(args, name, result)

    answers = list(results.values())
    if len(answers) > 1 and any(
        set(r.answer) != set(answers[0].answer) for r in answers[1:]
    ):
        print("ENGINE DISAGREEMENT — this is a bug", file=sys.stderr)
        return 1

    answer = answers[0].answer
    if kind in ("twig", "cq"):
        for row in sorted(answer):
            print("\t".join(map(str, row)))
        print(f"# {len(answer)} tuples", file=sys.stderr)
    else:
        _print_nodes(db.tree, answer, args.paths)
        print(f"# {len(answer)} nodes", file=sys.stderr)
    return 0


def cmd_xpath(args) -> int:
    db = _load_database(args)
    return _run_query(args, db, "xpath", args.query)


def cmd_cq(args) -> int:
    db = _load_database(args)
    return _run_query(args, db, "cq", args.query)


def cmd_twig(args) -> int:
    db = _load_database(args)
    return _run_query(args, db, "twig", args.query)


def cmd_datalog(args) -> int:
    from repro.datalog import parse_program

    db = _load_database(args)
    with open(args.program, "r", encoding="utf-8") as fh:
        program = parse_program(fh.read(), query_pred=args.query_pred)
    return _run_query(args, db, "datalog", program)


def cmd_convert(args) -> int:
    from repro.storage.diskstore import dump_tree

    tree = Database.from_file(args.source, args.attr_labels).tree
    if args.target.endswith(".rtre"):
        size = dump_tree(tree, args.target)
        print(f"wrote {args.target}: {tree.n} nodes, {size} bytes", file=sys.stderr)
    else:
        with open(args.target, "w", encoding="utf-8") as fh:
            fh.write(to_xml(tree, indent=2))
        print(f"wrote {args.target}: {tree.n} nodes", file=sys.stderr)
    return 0


def cmd_bench_run(args) -> int:
    from repro.perf import run_benchmarks

    outcome = run_benchmarks(
        benchmarks_dir=args.benchmarks,
        out_dir=args.out,
        select=args.select,
        fast=True if args.fast else None,
    )
    if outcome.path is None:
        print("bench run: no telemetry captured (pytest failed to start?)",
              file=sys.stderr)
        return outcome.pytest_exit or 1
    print(f"bench run: {outcome.modules} modules, {outcome.series} series "
          f"-> {outcome.path}", file=sys.stderr)
    if outcome.pytest_exit:
        print(f"bench run: pytest exited {outcome.pytest_exit} "
              "(failures recorded in the run file)", file=sys.stderr)
    return outcome.pytest_exit


def cmd_bench_compare(args) -> int:
    from repro.perf import compare_runs, latest_runs, load_run

    if args.old and args.new:
        old_path, new_path = args.old, args.new
    elif args.old or args.new:
        print("bench compare: give two run files or none (= latest two)",
              file=sys.stderr)
        return 2
    else:
        runs = latest_runs(args.dir, 2)
        if len(runs) < 2:
            print(f"bench compare: need two BENCH_*.json under {args.dir!r}, "
                  f"found {len(runs)} — run `repro bench run` first",
                  file=sys.stderr)
            return 2
        old_path, new_path = runs
    report = compare_runs(
        load_run(old_path),
        load_run(new_path),
        band=args.band,
        timing_fail=not args.timing_warn_only,
    )
    print(f"# baseline {old_path} vs {new_path}", file=sys.stderr)
    print(report.render())
    return report.exit_code


def cmd_bench_export(args) -> int:
    from repro.perf import latest_runs, load_run, render_bench_openmetrics

    path = args.run
    if path is None:
        runs = latest_runs(args.dir, 1)
        if not runs:
            print(f"bench export: no BENCH_*.json under {args.dir!r}",
                  file=sys.stderr)
            return 2
        path = runs[0]
    print(render_bench_openmetrics(load_run(path)), end="")
    return 0


def cmd_chaos(args) -> int:
    from repro.chaos import chaos_sweep

    report = chaos_sweep(
        seed=args.seed,
        sites=args.sites,
        fast=args.fast,
        max_scenarios=args.scenarios,
    )
    print(report.summary())
    return 0 if report.ok else 1


def cmd_store_verify(args) -> int:
    """Checksum-verify .rtre store files (docs/ROBUSTNESS.md).

    A directory argument expands to every ``.rtre`` file under it
    (recursively, sorted), so a whole corpus can be checked before a
    ``repro corpus run``; a directory with none is itself a FAIL."""
    from repro.errors import ParseError, StorageError
    from repro.storage import verify_store

    failures = 0
    targets: "list[str]" = []
    for path in args.paths:
        if os.path.isdir(path):
            found = sorted(
                os.path.join(dirpath, name)
                for dirpath, _dirnames, filenames in os.walk(path)
                for name in filenames
                if name.endswith(".rtre")
            )
            if not found:
                print(f"FAIL {path}: directory contains no .rtre files")
                failures += 1
                continue
            targets.extend(found)
        else:
            targets.append(path)
    for path in targets:
        try:
            info = verify_store(path)
        except (StorageError, ParseError, OSError) as exc:
            print(f"FAIL {path}: {exc}")
            failures += 1
            continue
        print(
            f"OK   {path}: {info['nodes']} nodes, {info['bytes']} bytes, "
            f"checksum {info['checksum']}"
        )
    return 1 if failures else 0


def cmd_corpus_run(args) -> int:
    """Fan one query out over a corpus directory (docs/ROBUSTNESS.md)."""
    from repro.corpus import run_corpus
    from repro.errors import CorpusError

    plan = _fault_plan(args)
    try:
        with plan if plan is not None else _NULL_PLAN:
            report = run_corpus(
                args.corpus,
                args.kind,
                args.query,
                query_pred=args.query_pred,
                out=args.out,
                workdir=args.workdir,
                workers=args.workers,
                shard_size=args.shard_size,
                retries=args.retries,
                task_timeout_s=args.task_timeout_s,
                resume=args.resume,
                columns=args.columns,
            )
    except CorpusError as exc:
        print(f"corpus: {exc}", file=sys.stderr)
        return 2
    print(report.scorecard())
    print(f"# output: {report.out_path}  manifest: {report.manifest_path}")
    return 0 if report.ok else 1


def cmd_corpus_status(args) -> int:
    """Summarize a run's checkpoint manifest (resumable or complete?)."""
    from repro.corpus import CheckpointJournal

    manifest = args.manifest
    if os.path.isdir(manifest):
        manifest = os.path.join(manifest, "manifest.jsonl")
    state = CheckpointJournal.load(manifest)
    header = state.header
    n_shards = int(header.get("n_shards", 0))
    print(f"manifest {manifest}")
    print(f"  corpus: {header.get('n_docs')} docs in {n_shards} shards, "
          f"fingerprint {str(header.get('fingerprint'))[:16]}…")
    print(f"  query: {header.get('kind')} {header.get('query')!r}")
    print(f"  completed {len(state.completed)}/{n_shards} shards, "
          f"{len(state.quarantined)} quarantined, "
          f"{state.skipped_lines} invalid journal lines")
    for shard_id in sorted(state.quarantined):
        record = state.quarantined[shard_id]
        print(f"  shard {shard_id}: QUARANTINED after "
              f"{record.get('attempts')} attempts — {record.get('error')}")
    done = len(state.completed) == n_shards and not state.quarantined
    print("  status: complete" if done else "  status: resumable (partial)")
    return 0 if done else 1


def cmd_corpus_verify(args) -> int:
    """Integrity-check a corpus output file (and optionally its workdir)."""
    from repro.corpus import CheckpointJournal, spill_path, verify_output
    from repro.errors import ReproError
    from repro.storage import read_blob
    import zlib

    failures = 0
    try:
        doc = verify_output(args.out)
        print(f"OK   {args.out}: {doc['status']}, "
              f"{len(doc['results'])} documents, crc32 {doc['crc32']}")
    except ReproError as exc:
        print(f"FAIL {args.out}: {exc}")
        failures += 1
    workdir = args.workdir
    if workdir is None and os.path.isdir(args.out + ".work"):
        workdir = args.out + ".work"
    if workdir is not None:
        manifest = os.path.join(workdir, "manifest.jsonl")
        try:
            state = CheckpointJournal.load(manifest)
        except ReproError as exc:
            print(f"FAIL {manifest}: {exc}")
            return 1
        if state.skipped_lines:
            print(f"FAIL {manifest}: {state.skipped_lines} invalid "
                  "journal lines")
            failures += 1
        else:
            print(f"OK   {manifest}: {len(state.completed)} shard records")
        for shard_id in sorted(state.completed):
            record = state.completed[shard_id]
            path = spill_path(workdir, shard_id)
            try:
                payload = read_blob(path)
            except ReproError as exc:
                print(f"FAIL {path}: {exc}")
                failures += 1
                continue
            if (zlib.crc32(payload) & 0xFFFFFFFF) != record.get("spill_crc"):
                print(f"FAIL {path}: spill does not match manifest crc")
                failures += 1
            else:
                print(f"OK   {path}: {len(payload)} bytes")
    return 1 if failures else 0


def cmd_serve(args) -> int:
    """Boot the threaded HTTP query service (docs/SERVICE.md)."""
    from repro.obs import EventLogWriter, TraceSampler
    from repro.service import QueryService, serve

    if not 0 <= args.port <= 65535:
        print(f"serve: port {args.port} out of range 0-65535", file=sys.stderr)
        return 2
    if args.max_concurrency is not None and args.max_concurrency < 1:
        print(
            f"serve: --max-concurrency must be >= 1, got {args.max_concurrency}",
            file=sys.stderr,
        )
        return 2
    if args.queue_limit < 0:
        print(f"serve: --queue-limit must be >= 0, got {args.queue_limit}",
              file=sys.stderr)
        return 2
    if args.drain_s < 0:
        print(f"serve: --drain-s must be >= 0, got {args.drain_s}",
              file=sys.stderr)
        return 2
    if not 0.0 <= args.trace_sample <= 1.0:
        print(f"serve: --trace-sample must be in [0, 1], got {args.trace_sample}",
              file=sys.stderr)
        return 2
    if args.slow_ms is not None and args.slow_ms < 0:
        print(f"serve: --slow-ms must be >= 0, got {args.slow_ms}",
              file=sys.stderr)
        return 2
    if args.event_log_max_bytes < 1024:
        print(
            f"serve: --event-log-max-bytes must be >= 1024, got "
            f"{args.event_log_max_bytes}",
            file=sys.stderr,
        )
        return 2
    if args.trace_buffer < 1:
        print(f"serve: --trace-buffer must be >= 1, got {args.trace_buffer}",
              file=sys.stderr)
        return 2
    sampler = TraceSampler(
        head_rate=args.trace_sample,
        slow_ms=args.slow_ms,  # a slow-log threshold is also a tail policy
        keep_errors=True,
    )
    event_log = (
        EventLogWriter(args.event_log, max_bytes=args.event_log_max_bytes)
        if args.event_log is not None
        else None
    )
    service = QueryService(
        columns=args.columns,
        plan_cache=args.plan_cache,
        max_concurrency=args.max_concurrency,
        queue_limit=args.queue_limit,
        sampler=sampler,
        event_log=event_log,
        slow_ms=args.slow_ms,
        trace_capacity=args.trace_buffer,
    )
    for spec in args.store or ():
        name, sep, path = spec.partition("=")
        if not sep or not name or not path:
            print(f"serve: --store wants NAME=PATH, got {spec!r}", file=sys.stderr)
            return 2
        db = Database.from_file(
            path, columns=args.columns, plan_cache=args.plan_cache
        )
        db.index  # pay indexing at startup, not on the first request
        service.stores.put(name, db, source=path)
        print(f"# store {name!r}: {db.tree.n} nodes from {path}", file=sys.stderr)
    print(f"# serving on http://{args.host}:{args.port}", file=sys.stderr)
    try:
        serve(
            service,
            host=args.host,
            port=args.port,
            verbose=not args.quiet,
            drain_s=args.drain_s,
        )
    finally:
        if event_log is not None:
            event_log.close()
    return 0


def cmd_load(args) -> int:
    """Run the load harness and print/record the scorecard."""
    from repro.service import (
        SCENARIOS,
        compare_report,
        format_scorecard,
        load_report,
        run_load,
        write_report,
    )

    unknown = [n for n in (args.scenario or ()) if n not in SCENARIOS]
    if unknown:
        print(
            f"load: unknown scenario(s) {', '.join(unknown)}; "
            f"options: {', '.join(sorted(SCENARIOS))}",
            file=sys.stderr,
        )
        return 2
    if args.requests <= 0:
        print(f"load: --requests must be positive, got {args.requests}",
              file=sys.stderr)
        return 2
    if args.concurrency <= 0:
        print(f"load: --concurrency must be positive, got {args.concurrency}",
              file=sys.stderr)
        return 2
    if args.max_concurrency is not None and args.max_concurrency < 1:
        print(
            f"load: --max-concurrency must be >= 1, got {args.max_concurrency}",
            file=sys.stderr,
        )
        return 2
    if args.queue_limit < 0:
        print(f"load: --queue-limit must be >= 0, got {args.queue_limit}",
              file=sys.stderr)
        return 2
    if args.deadline_ms is not None and args.deadline_ms < 0:
        print(f"load: --deadline-ms must be >= 0, got {args.deadline_ms}",
              file=sys.stderr)
        return 2
    if not 0.0 <= args.shed_tolerance <= 1.0:
        print(
            f"load: --shed-tolerance must be in [0, 1], got "
            f"{args.shed_tolerance}",
            file=sys.stderr,
        )
        return 2
    baseline = None
    if args.baseline is not None:
        try:
            baseline = load_report(args.baseline)
        except (OSError, ValueError) as exc:
            print(f"load: cannot read baseline: {exc}", file=sys.stderr)
            return 2
    report = run_load(
        scenarios=args.scenario or None,
        fast=args.fast,
        requests=args.requests,
        concurrency=args.concurrency,
        columns=args.columns,
        max_concurrency=args.max_concurrency,
        queue_limit=args.queue_limit,
        deadline_ms=args.deadline_ms,
    )
    print(format_scorecard(report))
    if args.write:
        path = write_report(report, root=args.out)
        print(f"# wrote {path}", file=sys.stderr)
    if baseline is not None:
        failures, warnings = compare_report(
            baseline, report, shed_tolerance=args.shed_tolerance
        )
        for line in warnings:
            print(f"WARN {line}", file=sys.stderr)
        for line in failures:
            print(f"FAIL {line}", file=sys.stderr)
        if failures:
            return 1
    elif any(card["errors"] for card in report["scenarios"].values()):
        print("FAIL load run had failed requests", file=sys.stderr)
        return 1
    return 0


def _iter_event_records(path: str):
    """Records from a JSONL event log, oldest first.

    Reads the rotated generation (``<path>.1``) before the live file,
    so ``last record wins`` semantics hold across a rotation.  Corrupt
    lines (a crash mid-write) are skipped, not fatal — the log is
    telemetry, not a ledger.
    """
    import json as _json
    import os as _os

    found = False
    for candidate in (path + ".1", path):
        if not _os.path.exists(candidate):
            continue
        found = True
        with open(candidate, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = _json.loads(line)
                except ValueError:
                    continue
                if isinstance(record, dict):
                    yield record
    if not found:
        raise FileNotFoundError(f"no event log at {path!r} (or {path!r}.1)")


def _trace_summary_line(record: dict) -> str:
    tid = record.get("trace_id", "?")
    extras = " ".join(
        f"{key}={record[key]}"
        for key in ("store", "kind", "strategy", "attempts", "retained_by",
                    "error_code")
        if key in record
    )
    return (
        f"{tid:<34} {record.get('route', '?'):<14} "
        f"{record.get('outcome', '?'):<8} "
        f"{record.get('duration_ms', 0):>10.3f} ms"
        + (f"  {extras}" if extras else "")
    )


def cmd_trace_list(args) -> int:
    """Newest-last listing of event-log records."""
    if args.limit < 1:
        print(f"trace list: --limit must be >= 1, got {args.limit}",
              file=sys.stderr)
        return 2
    try:
        records = list(_iter_event_records(args.log))
    except FileNotFoundError as exc:
        print(f"trace list: {exc}", file=sys.stderr)
        return 2
    for record in records[-args.limit:]:
        print(_trace_summary_line(record))
    print(f"# {len(records)} record(s) in {args.log}", file=sys.stderr)
    return 0


def cmd_trace_show(args) -> int:
    """One trace: the summary line plus its span-tree waterfall."""
    from repro.obs import render_pretty, span_from_dict

    try:
        records = list(_iter_event_records(args.log))
    except FileNotFoundError as exc:
        print(f"trace show: {exc}", file=sys.stderr)
        return 2
    matches = [r for r in records if r.get("trace_id") == args.id]
    if not matches:
        print(f"trace show: no record with trace id {args.id!r} in {args.log}",
              file=sys.stderr)
        return 1
    record = matches[-1]  # a client-reused id: latest occurrence wins
    print(_trace_summary_line(record))
    spans = record.get("spans")
    if spans:
        print(render_pretty(span_from_dict(spans)))
    else:
        print("# no span tree retained for this trace (not sampled)",
              file=sys.stderr)
    return 0


def cmd_trace_top(args) -> int:
    """The N slowest requests in the event log, slowest first."""
    if args.slowest < 1:
        print(f"trace top: --slowest must be >= 1, got {args.slowest}",
              file=sys.stderr)
        return 2
    try:
        records = list(_iter_event_records(args.log))
    except FileNotFoundError as exc:
        print(f"trace top: {exc}", file=sys.stderr)
        return 2
    ranked = sorted(
        records, key=lambda r: r.get("duration_ms", 0.0), reverse=True
    )
    for record in ranked[: args.slowest]:
        print(_trace_summary_line(record))
    return 0


def cmd_classify(args) -> int:
    from repro.consistency import classify_signature

    verdict, order = classify_signature(args.axes)
    if verdict == "P":
        print(f"P  (X-property w.r.t. <{order})")
    else:
        print("NP-complete (Theorem 6.8)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="query processing on tree-structured data (Koch, PODS 2006)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p, kind=None):
        p.add_argument("document", help="XML file or .rtre store")
        p.add_argument(
            "--attr-labels",
            action="store_true",
            help="expose attributes as @name / @name=value labels",
        )
        p.add_argument(
            "--paths", action="store_true", help="print label paths, not just ids"
        )
        if kind:
            p.add_argument(
                "--engine",
                default="auto",
                help=(
                    f"strategy ({', '.join(strategy_names(kind))}), "
                    "'auto' (planner picks) or 'all' (cross-check)"
                ),
            )
            p.add_argument(
                "--stats",
                action="store_true",
                help="print execution stats (strategy, index usage) to stderr",
            )
            p.add_argument(
                "--trace",
                nargs="?",
                const="-",
                default=None,
                metavar="FILE",
                help=(
                    "capture a span trace; bare --trace pretty-prints to "
                    "stderr, --trace FILE writes JSON"
                ),
            )
            p.add_argument(
                "--deadline-ms",
                type=float,
                default=None,
                metavar="N",
                help="abort (exit 3) if evaluation exceeds N milliseconds",
            )
            p.add_argument(
                "--max-visited",
                type=int,
                default=None,
                metavar="N",
                help="abort (exit 3) after visiting more than N nodes",
            )
            p.add_argument(
                "--retries",
                type=int,
                default=0,
                metavar="N",
                help="re-attempt transient failures up to N times",
            )
            p.add_argument(
                "--on-error",
                choices=("raise", "fallback", "partial"),
                default="raise",
                help=(
                    "degradation policy: raise (default), fallback "
                    "(blacklist the failed strategy, try the next), or "
                    "partial (never fail: degrade to an empty answer)"
                ),
            )
            p.add_argument(
                "--fault",
                action="append",
                default=None,
                metavar="SPEC",
                help=(
                    "arm a deterministic fault rule "
                    "(SITE:KIND[:ARG][@TRIGGER], repeatable; "
                    "see docs/ROBUSTNESS.md)"
                ),
            )
            p.add_argument(
                "--fault-seed",
                type=int,
                default=0,
                metavar="N",
                help="RNG seed for probabilistic fault triggers",
            )
            p.add_argument(
                "--columns",
                choices=("off", "on", "numpy"),
                default=None,
                help=(
                    "columnar index backend: flat int columns for the "
                    "structural join / twig / automaton hot paths "
                    "(default: the REPRO_COLUMNS environment variable)"
                ),
            )
            p.add_argument(
                "--plan-cache",
                type=int,
                default=None,
                metavar="N",
                help="compiled-plan cache capacity (0 disables; default 128)",
            )

    p = sub.add_parser("stats", help="document statistics")
    p.add_argument("document")
    p.add_argument("--attr-labels", action="store_true")
    p.add_argument("--top", type=int, default=10)
    p.set_defaults(func=cmd_stats)

    p = sub.add_parser("xpath", help="evaluate a Core XPath query")
    p.add_argument("query")
    common(p, kind="xpath")
    p.set_defaults(func=cmd_xpath)

    p = sub.add_parser("cq", help="evaluate a conjunctive query")
    p.add_argument("query")
    common(p, kind="cq")
    p.set_defaults(func=cmd_cq)

    p = sub.add_parser("twig", help="evaluate a twig pattern")
    p.add_argument("query")
    common(p, kind="twig")
    p.set_defaults(func=cmd_twig)

    p = sub.add_parser("datalog", help="evaluate a monadic datalog program")
    p.add_argument("program", help="datalog program file")
    common(p, kind="datalog")
    p.add_argument("--query-pred", default=None)
    p.set_defaults(func=cmd_datalog)

    p = sub.add_parser("convert", help="convert between XML and .rtre store")
    p.add_argument("source")
    p.add_argument("target")
    p.add_argument("--attr-labels", action="store_true")
    p.set_defaults(func=cmd_convert)

    p = sub.add_parser(
        "chaos",
        help="seeded fault-injection sweep: clean answer or typed error",
    )
    p.add_argument("--seed", type=int, default=0,
                   help="sweep seed (default 0); same seed, same trips")
    p.add_argument("--fast", action="store_true",
                   help="trimmed matrix (CI smoke); still touches every site")
    p.add_argument("--scenarios", type=int, default=None, metavar="N",
                   help="cap the number of scenarios run")
    p.add_argument("--sites", nargs="+", default=None, metavar="SITE",
                   help="restrict the sweep to these injection sites "
                        "(exact name, glob, or dotted prefix: 'corpus' "
                        "selects every corpus.* site)")
    p.set_defaults(func=cmd_chaos)

    p = sub.add_parser(
        "serve", help="serve document stores over HTTP (docs/SERVICE.md)"
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8008)
    p.add_argument("--store", action="append", default=None, metavar="NAME=PATH",
                   help="preload a document store (repeatable)")
    p.add_argument("--columns", choices=("off", "on", "numpy"), default=None,
                   help="columnar backend for ingested stores")
    p.add_argument("--plan-cache", type=int, default=None, metavar="N",
                   help="compiled-plan cache capacity per store")
    p.add_argument("--quiet", action="store_true",
                   help="suppress per-request access logging")
    p.add_argument("--max-concurrency", type=int, default=None, metavar="N",
                   help="admit at most N concurrent query/ingest requests; "
                        "overflow queues, then sheds as 429 (default: unbounded)")
    p.add_argument("--queue-limit", type=int, default=16, metavar="N",
                   help="admission queue depth before shedding (default 16)")
    p.add_argument("--drain-s", type=float, default=5.0, metavar="S",
                   help="SIGTERM graceful-drain window in seconds (default 5)")
    p.add_argument("--trace-sample", type=float, default=1.0, metavar="F",
                   help="head-sample this fraction of request traces "
                        "(default 1.0; errors are always kept)")
    p.add_argument("--slow-ms", type=float, default=None, metavar="N",
                   help="log (and always retain the trace of) requests "
                        "at least this slow")
    p.add_argument("--event-log", default=None, metavar="FILE",
                   help="append one JSONL record per request to FILE "
                        "(size-rotated; see repro trace)")
    p.add_argument("--event-log-max-bytes", type=int,
                   default=16 * 1024 * 1024, metavar="N",
                   help="rotate the event log past this size (default 16 MiB)")
    p.add_argument("--trace-buffer", type=int, default=256, metavar="N",
                   help="in-memory retained-trace ring capacity behind "
                        "/debug/traces (default 256)")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "trace",
        help="inspect request traces from an event-log JSONL file",
    )
    trace_sub = p.add_subparsers(dest="trace_command", required=True)
    t = trace_sub.add_parser("list", help="list event-log records, newest last")
    t.add_argument("--log", required=True, metavar="FILE",
                   help="event-log JSONL file (the serve --event-log path)")
    t.add_argument("--limit", type=int, default=50, metavar="N",
                   help="show at most the newest N records (default 50)")
    t.set_defaults(func=cmd_trace_list)
    t = trace_sub.add_parser(
        "show", help="one trace: summary plus its span-tree waterfall"
    )
    t.add_argument("id", metavar="TRACE_ID")
    t.add_argument("--log", required=True, metavar="FILE",
                   help="event-log JSONL file to search")
    t.set_defaults(func=cmd_trace_show)
    t = trace_sub.add_parser("top", help="the slowest requests on record")
    t.add_argument("--log", required=True, metavar="FILE",
                   help="event-log JSONL file to rank")
    t.add_argument("--slowest", type=int, default=10, metavar="N",
                   help="how many to show (default 10)")
    t.set_defaults(func=cmd_trace_top)

    p = sub.add_parser(
        "load", help="replay the load scenarios; print an RPS/P50/P95/P99 scorecard"
    )
    p.add_argument("--scenario", action="append", default=None,
                   metavar="NAME", help="run only this scenario (repeatable)")
    p.add_argument("--fast", action="store_true",
                   help="FAST fixtures (~25x smaller; the CI smoke size)")
    p.add_argument("--requests", type=int, default=200, metavar="N",
                   help="requests per scenario (default 200)")
    p.add_argument("--concurrency", type=int, default=8, metavar="N",
                   help="closed-loop client threads (default 8)")
    p.add_argument("--columns", choices=("off", "on", "numpy"), default=None,
                   help="columnar backend for the fixture stores")
    p.add_argument("--write", action="store_true",
                   help="write the next LOADTEST_<n>.json run file")
    p.add_argument("--out", default=".",
                   help="directory for --write (default: .)")
    p.add_argument("--baseline", default=None, metavar="FILE",
                   help="compare against this LOADTEST_*.json (exit 1 on failure)")
    p.add_argument("--max-concurrency", type=int, default=None, metavar="N",
                   help="serve with this admission limit (overload testing)")
    p.add_argument("--queue-limit", type=int, default=16, metavar="N",
                   help="admission queue depth for the test server (default 16)")
    p.add_argument("--deadline-ms", type=float, default=None, metavar="N",
                   help="send X-Repro-Deadline-Ms: N on every load request")
    p.add_argument("--shed-tolerance", type=float, default=0.0, metavar="F",
                   help="allowed shed fraction per scenario in --baseline "
                        "comparison (default 0.0)")
    p.set_defaults(func=cmd_load)

    p = sub.add_parser(
        "store", help="operate on .rtre store files (docs/ROBUSTNESS.md)"
    )
    store_sub = p.add_subparsers(dest="store_command", required=True)
    s = store_sub.add_parser(
        "verify",
        help="checksum-verify store files; exit 1 if any fails",
    )
    s.add_argument("paths", nargs="+", metavar="PATH",
                   help=".rtre store file(s) or directories to verify")
    s.set_defaults(func=cmd_store_verify)

    p = sub.add_parser(
        "corpus",
        help="sharded corpus evaluation with supervision and resume "
             "(docs/ROBUSTNESS.md)",
    )
    corpus_sub = p.add_subparsers(dest="corpus_command", required=True)
    c = corpus_sub.add_parser(
        "run", help="fan one query out over a directory of documents"
    )
    c.add_argument("corpus", metavar="DIR",
                   help="directory of .xml/.rtre documents")
    c.add_argument("--kind", choices=("xpath", "twig", "cq", "datalog"),
                   default="xpath", help="query language (default xpath)")
    c.add_argument("--query", required=True, metavar="Q",
                   help="the query, evaluated against every document")
    c.add_argument("--query-pred", default=None, metavar="PRED",
                   help="datalog query predicate")
    c.add_argument("--out", required=True, metavar="FILE",
                   help="merged canonical JSON output file")
    c.add_argument("--workdir", default=None, metavar="DIR",
                   help="checkpoint manifest + shard spills (default: OUT.work)")
    c.add_argument("--workers", type=int, default=2, metavar="N",
                   help="worker processes; 0 = inline serial (default 2)")
    c.add_argument("--shard-size", type=int, default=4, metavar="N",
                   help="documents per shard (default 4)")
    c.add_argument("--retries", type=int, default=1, metavar="N",
                   help="re-attempts per failed shard, fresh worker each "
                        "(default 1)")
    c.add_argument("--task-timeout-s", type=float, default=30.0, metavar="S",
                   help="SIGKILL a worker after S seconds without a "
                        "heartbeat (default 30)")
    c.add_argument("--resume", action="store_true",
                   help="skip shards already journaled in the workdir")
    c.add_argument("--columns", choices=("off", "on", "numpy"), default=None,
                   help="columnar backend for per-document evaluation")
    c.add_argument("--fault", action="append", default=None, metavar="SPEC",
                   help="arm a deterministic fault rule "
                        "(SITE:KIND[:ARG][@TRIGGER], repeatable)")
    c.add_argument("--fault-seed", type=int, default=0, metavar="N",
                   help="RNG seed for probabilistic fault triggers")
    c.set_defaults(func=cmd_corpus_run)
    c = corpus_sub.add_parser(
        "status", help="summarize a run's checkpoint manifest"
    )
    c.add_argument("manifest", metavar="PATH",
                   help="manifest.jsonl (or the workdir containing it)")
    c.set_defaults(func=cmd_corpus_status)
    c = corpus_sub.add_parser(
        "verify", help="integrity-check an output file and its workdir"
    )
    c.add_argument("out", metavar="FILE", help="corpus output file")
    c.add_argument("--workdir", default=None, metavar="DIR",
                   help="also verify this workdir's manifest and spills "
                        "(default: OUT.work if it exists)")
    c.set_defaults(func=cmd_corpus_verify)

    p = sub.add_parser("classify", help="Theorem 6.8 verdict for an axis set")
    p.add_argument("axes", nargs="+")
    p.set_defaults(func=cmd_classify)

    p = sub.add_parser(
        "bench", help="benchmark telemetry: run the sweep, compare runs, export"
    )
    bench_sub = p.add_subparsers(dest="bench_command", required=True)

    b = bench_sub.add_parser("run", help="sweep benchmarks/ into BENCH_<n>.json")
    b.add_argument("--benchmarks", default="benchmarks",
                   help="benchmark suite directory (default: benchmarks)")
    b.add_argument("--out", default=".",
                   help="directory the BENCH_<n>.json is written to (default: .)")
    b.add_argument("--select", default=None, metavar="EXPR",
                   help="only run bench modules matching this pytest -k expression")
    b.add_argument("--fast", action="store_true",
                   help="force REPRO_BENCH_FAST=1 (smoke-size sweeps)")
    b.set_defaults(func=cmd_bench_run)

    b = bench_sub.add_parser(
        "compare", help="diff a run against a baseline (nonzero exit on regression)"
    )
    b.add_argument("old", nargs="?", default=None, help="baseline run file")
    b.add_argument("new", nargs="?", default=None, help="candidate run file")
    b.add_argument("--dir", default=".",
                   help="where to look for BENCH_*.json (default: .)")
    b.add_argument("--band", type=float, default=1.6, metavar="X",
                   help="allowed median ratio before noise widening (default 1.6)")
    b.add_argument("--timing-warn-only", action="store_true",
                   help="downgrade timing-band breaches to warnings (shared "
                        "runners); growth-class changes and count drifts still fail")
    b.set_defaults(func=cmd_bench_compare)

    b = bench_sub.add_parser("export", help="render a run as OpenMetrics text")
    b.add_argument("run", nargs="?", default=None, help="run file (default: latest)")
    b.add_argument("--dir", default=".",
                   help="where to look for BENCH_*.json (default: .)")
    b.set_defaults(func=cmd_bench_export)

    return parser


def main(argv: "list[str] | None" = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except Exception as exc:  # surfaced as a clean CLI error
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
