"""Command-line interface.

::

    python -m repro stats    doc.xml
    python -m repro xpath    "Child*[lab() = a]/Child[lab() = b]" doc.xml
    python -m repro cq       "ans(x) :- Child+(y, x), Lab:a(y)" doc.xml
    python -m repro twig     "//a[b]//c" doc.xml
    python -m repro datalog  program.dl doc.xml
    python -m repro convert  doc.xml doc.rtre        (and back: .rtre -> .xml)
    python -m repro classify Child+ Following        (Theorem 6.8 verdict)

Each query command accepts ``--engine`` to pick among the
implementations the paper surveys (and cross-checks them with
``--engine all``).
"""

from __future__ import annotations

import argparse
import sys
import time
from collections import Counter

from repro.trees import Tree, parse_xml, to_xml
from repro.trees.tree import Tree as _Tree

__all__ = ["main", "build_parser"]


def _load_document(path: str, attributes_as_labels: bool = False) -> Tree:
    if path.endswith(".rtre"):
        from repro.storage.diskstore import load_tree

        return load_tree(path)
    with open(path, "r", encoding="utf-8") as fh:
        return parse_xml(fh.read(), attributes_as_labels=attributes_as_labels)


def _print_nodes(tree: Tree, nodes, show_paths: bool) -> None:
    for v in sorted(nodes):
        if show_paths:
            chain = [v, *tree.ancestors(v)]
            path = "/".join(tree.label[u] for u in reversed(chain))
            print(f"{v}\t{path}")
        else:
            print(v)


def cmd_stats(args) -> int:
    tree = _load_document(args.document, args.attr_labels)
    print(f"nodes   : {tree.n}")
    print(f"height  : {tree.height()}")
    print(f"leaves  : {sum(1 for _ in tree.leaves())}")
    histogram = Counter(tree.label)
    print("labels  :")
    for label, count in histogram.most_common(args.top):
        print(f"  {label:20s} {count}")
    return 0


def cmd_xpath(args) -> int:
    from repro.xpath import (
        evaluate_query,
        evaluate_query_linear,
        parse_xpath,
        xpath_to_datalog,
    )
    from repro.xpath.translate import evaluate_datalog_translation

    tree = _load_document(args.document, args.attr_labels)
    expr = parse_xpath(args.query)
    engines = {
        "linear": lambda: evaluate_query_linear(expr, tree),
        "denotational": lambda: evaluate_query(expr, tree),
        "datalog": lambda: evaluate_datalog_translation(
            xpath_to_datalog(expr), tree
        ),
    }
    return _run_engines(args, engines, tree)


def cmd_cq(args) -> int:
    from repro.cq import (
        evaluate_backtracking,
        evaluate_bounded_treewidth,
        is_acyclic,
        parse_cq,
        yannakakis,
    )
    from repro.rewrite import evaluate_via_rewriting

    tree = _load_document(args.document, args.attr_labels)
    query = parse_cq(args.query)
    engines = {
        "backtracking": lambda: evaluate_backtracking(query, tree),
        "rewrite": lambda: evaluate_via_rewriting(query, tree),
        "treewidth": lambda: evaluate_bounded_treewidth(query, tree),
    }
    if is_acyclic(query):
        engines["yannakakis"] = lambda: yannakakis(query, tree)
    return _run_engines(args, engines, tree, tuples=True)


def cmd_twig(args) -> int:
    from repro.twigjoin import (
        binary_join_plan,
        holistic_via_arc_consistency,
        parse_twig,
        twig_stack,
    )

    tree = _load_document(args.document, args.attr_labels)
    pattern = parse_twig(args.query)
    engines = {
        "twigstack": lambda: twig_stack(pattern, tree),
        "ac": lambda: holistic_via_arc_consistency(pattern, tree),
        "binary": lambda: binary_join_plan(pattern, tree),
    }
    return _run_engines(args, engines, tree, tuples=True)


def cmd_datalog(args) -> int:
    from repro.datalog import evaluate, parse_program

    tree = _load_document(args.document, args.attr_labels)
    with open(args.program, "r", encoding="utf-8") as fh:
        program = parse_program(fh.read(), query_pred=args.query_pred)
    start = time.perf_counter()
    result = evaluate(program, tree)
    elapsed = time.perf_counter() - start
    _print_nodes(tree, result, args.paths)
    print(f"# {len(result)} nodes in {elapsed * 1e3:.1f} ms", file=sys.stderr)
    return 0


def cmd_convert(args) -> int:
    from repro.storage.diskstore import dump_tree

    tree = _load_document(args.source, args.attr_labels)
    if args.target.endswith(".rtre"):
        size = dump_tree(tree, args.target)
        print(f"wrote {args.target}: {tree.n} nodes, {size} bytes", file=sys.stderr)
    else:
        with open(args.target, "w", encoding="utf-8") as fh:
            fh.write(to_xml(tree, indent=2))
        print(f"wrote {args.target}: {tree.n} nodes", file=sys.stderr)
    return 0


def cmd_classify(args) -> int:
    from repro.consistency import classify_signature

    verdict, order = classify_signature(args.axes)
    if verdict == "P":
        print(f"P  (X-property w.r.t. <{order})")
    else:
        print("NP-complete (Theorem 6.8)")
    return 0


def _run_engines(args, engines: dict, tree: Tree, tuples: bool = False) -> int:
    chosen = args.engine
    if chosen != "all" and chosen not in engines:
        print(
            f"engine {chosen!r} not applicable; options: "
            f"{', '.join(engines)} or all",
            file=sys.stderr,
        )
        return 2
    results = {}
    for name, fn in engines.items():
        if chosen not in ("all", name):
            continue
        start = time.perf_counter()
        results[name] = fn()
        elapsed = time.perf_counter() - start
        print(f"# {name}: {elapsed * 1e3:.1f} ms", file=sys.stderr)
    values = list(results.values())
    if len(values) > 1 and any(v != values[0] for v in values[1:]):
        print("ENGINE DISAGREEMENT — this is a bug", file=sys.stderr)
        return 1
    answer = values[0]
    if tuples:
        for row in sorted(answer):
            print("\t".join(map(str, row)))
        print(f"# {len(answer)} tuples", file=sys.stderr)
    else:
        _print_nodes(tree, answer, args.paths)
        print(f"# {len(answer)} nodes", file=sys.stderr)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="query processing on tree-structured data (Koch, PODS 2006)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p, with_engine=None):
        p.add_argument("document", help="XML file or .rtre store")
        p.add_argument(
            "--attr-labels",
            action="store_true",
            help="expose attributes as @name / @name=value labels",
        )
        p.add_argument(
            "--paths", action="store_true", help="print label paths, not just ids"
        )
        if with_engine:
            p.add_argument(
                "--engine", default=with_engine, help="engine name or 'all'"
            )

    p = sub.add_parser("stats", help="document statistics")
    p.add_argument("document")
    p.add_argument("--attr-labels", action="store_true")
    p.add_argument("--top", type=int, default=10)
    p.set_defaults(func=cmd_stats)

    p = sub.add_parser("xpath", help="evaluate a Core XPath query")
    p.add_argument("query")
    common(p, with_engine="linear")
    p.set_defaults(func=cmd_xpath)

    p = sub.add_parser("cq", help="evaluate a conjunctive query")
    p.add_argument("query")
    common(p, with_engine="backtracking")
    p.set_defaults(func=cmd_cq)

    p = sub.add_parser("twig", help="evaluate a twig pattern")
    p.add_argument("query")
    common(p, with_engine="twigstack")
    p.set_defaults(func=cmd_twig)

    p = sub.add_parser("datalog", help="evaluate a monadic datalog program")
    p.add_argument("program", help="datalog program file")
    common(p)
    p.add_argument("--query-pred", default=None)
    p.set_defaults(func=cmd_datalog)

    p = sub.add_parser("convert", help="convert between XML and .rtre store")
    p.add_argument("source")
    p.add_argument("target")
    p.add_argument("--attr-labels", action="store_true")
    p.set_defaults(func=cmd_convert)

    p = sub.add_parser("classify", help="Theorem 6.8 verdict for an axis set")
    p.add_argument("axes", nargs="+")
    p.set_defaults(func=cmd_classify)

    return parser


def main(argv: "list[str] | None" = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except Exception as exc:  # surfaced as a clean CLI error
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
