"""The relational-structure view of a tree (signatures of Sections 2–3).

Logic-based evaluators (conjunctive queries, datalog, arc-consistency) do
not want a pointer tree; they want a finite structure: a domain plus named
unary and binary relations.  :class:`TreeStructure` provides exactly that
over a :class:`~repro.trees.tree.Tree`:

- unary relations: ``Root``, ``Leaf``, ``FirstSibling``, ``LastSibling``,
  ``Dom`` and one label predicate ``Lab:a`` per label ``a``
  (use :func:`lab` to build those names), and
- binary relations: every axis of :mod:`repro.trees.axes`.

Binary relations are *virtual*: membership, successor, and predecessor
queries are answered from the tree's index arrays without materializing
pairs.  ``pairs(name)`` enumerates them on demand (the expensive
operation the structural-join technique avoids).  ``relation_size``
returns pair counts analytically where possible, so that ``size()``
reports the paper's ||A|| without enumeration.

The τ⁺ signature of Section 3 (monadic datalog) is the restriction to
``Root/Leaf/LastSibling/Lab:a`` plus ``FirstChild`` and ``NextSibling``;
:meth:`TreeStructure.tau_plus` builds it.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.errors import QueryError
from repro.trees.axes import (
    Axis,
    axis_holds,
    axis_pairs,
    axis_sources,
    axis_targets,
    resolve_axis,
)
from repro.trees.tree import Tree

__all__ = ["TreeStructure", "lab", "TAU_PLUS_BINARY", "TAU_PLUS_UNARY"]

_LABEL_PREFIX = "Lab:"


def lab(a: str) -> str:
    """The name of the label predicate for label ``a`` (``Lab:a``)."""
    return _LABEL_PREFIX + a


#: Binary relation names of the τ⁺ signature (Section 3).
TAU_PLUS_BINARY: tuple[str, ...] = (Axis.FIRST_CHILD.value, Axis.NEXT_SIBLING.value)

#: Non-label unary relation names of the τ⁺ signature.
TAU_PLUS_UNARY: tuple[str, ...] = ("Root", "Leaf", "FirstSibling", "LastSibling")


class TreeStructure:
    """A tree viewed as a finite relational structure.

    Parameters
    ----------
    tree:
        The underlying tree.
    binary_names:
        Which binary relations (axis names) the signature exposes.  By
        default all axes are available.  Restricting the signature matters
        for the dichotomy results of Section 6.
    """

    def __init__(self, tree: Tree, binary_names: Iterable[str] | None = None):
        self.tree = tree
        if binary_names is None:
            self._axes: dict[str, Axis] = {axis.value: axis for axis in Axis}
        else:
            self._axes = {}
            for name in binary_names:
                axis = resolve_axis(name)
                self._axes[axis.value] = axis

    @classmethod
    def tau_plus(cls, tree: Tree) -> "TreeStructure":
        """The τ⁺ structure of Section 3 over ``tree``."""
        return cls(tree, binary_names=TAU_PLUS_BINARY)

    # -- signature ----------------------------------------------------------

    @property
    def domain(self) -> range:
        """The domain: node ids in document order."""
        return self.tree.nodes()

    def binary_names(self) -> list[str]:
        return list(self._axes)

    def unary_names(self) -> list[str]:
        """All non-label unary relation names, plus one per occurring label."""
        names = list(TAU_PLUS_UNARY) + ["Dom"]
        names.extend(lab(a) for a in sorted(self.tree.alphabet()))
        return names

    def has_binary(self, name: str) -> bool:
        try:
            return resolve_axis(name).value in self._axes
        except QueryError:
            return False

    def _axis(self, name: str) -> Axis:
        axis = resolve_axis(name)
        if axis.value not in self._axes:
            raise QueryError(f"relation {name!r} is not in this structure's signature")
        return axis

    # -- unary relations ------------------------------------------------------

    def holds_unary(self, name: str, v: int) -> bool:
        tree = self.tree
        if name.startswith(_LABEL_PREFIX):
            return tree.has_label(v, name[len(_LABEL_PREFIX):])
        if name == "Dom":
            return 0 <= v < tree.n
        if name == "Root":
            return v == tree.root
        if name == "Leaf":
            return tree.is_leaf(v)
        if name == "FirstSibling":
            return tree.prev_sibling[v] == -1
        if name == "LastSibling":
            return tree.next_sibling[v] == -1
        raise QueryError(f"unknown unary relation {name!r}")

    def unary_members(self, name: str) -> Iterator[int]:
        """All ``v`` with ``name(v)``, in document order."""
        tree = self.tree
        if name.startswith(_LABEL_PREFIX):
            yield from tree.nodes_with_label(name[len(_LABEL_PREFIX):])
            return
        for v in tree.nodes():
            if self.holds_unary(name, v):
                yield v

    # -- binary relations -------------------------------------------------------

    def holds_binary(self, name: str, u: int, v: int) -> bool:
        return axis_holds(self.tree, self._axis(name), u, v)

    def successors(self, name: str, u: int) -> Iterator[int]:
        """All ``v`` with ``R(u, v)``."""
        return axis_targets(self.tree, self._axis(name), u)

    def predecessors(self, name: str, v: int) -> Iterator[int]:
        """All ``u`` with ``R(u, v)``."""
        return axis_sources(self.tree, self._axis(name), v)

    def pairs(self, name: str) -> Iterator[tuple[int, int]]:
        """Enumerate ``{(u, v) : R(u, v)}`` (quadratic for transitive axes)."""
        return axis_pairs(self.tree, self._axis(name))

    def relation_size(self, name: str) -> int:
        """|R| — computed analytically (no enumeration) where possible."""
        tree = self.tree
        axis = self._axis(name)
        n = tree.n
        if axis is Axis.SELF:
            return n
        if axis in (Axis.CHILD, Axis.PARENT):
            return n - 1
        if axis in (Axis.FIRST_CHILD, Axis.FIRST_CHILD_INV):
            return sum(1 for v in range(n) if tree.children[v])
        if axis in (Axis.CHILD_PLUS, Axis.ANCESTOR):
            return sum(tree.depth)
        if axis in (Axis.CHILD_STAR, Axis.ANCESTOR_OR_SELF):
            return sum(tree.depth) + n
        if axis in (Axis.NEXT_SIBLING, Axis.PREV_SIBLING):
            return sum(1 for v in range(n) if tree.next_sibling[v] >= 0)
        if axis in (Axis.NEXT_SIBLING_PLUS, Axis.PRECEDING_SIBLING):
            return sum(
                len(kids) * (len(kids) - 1) // 2 for kids in tree.children if kids
            )
        if axis is Axis.NEXT_SIBLING_STAR or axis is Axis.PREV_SIBLING_STAR:
            return (
                sum(len(kids) * (len(kids) - 1) // 2 for kids in tree.children) + n
            )
        if axis in (Axis.FOLLOWING, Axis.PRECEDING):
            return n * (n - 1) // 2 - sum(tree.depth)
        raise QueryError(f"no size formula for {axis}")  # pragma: no cover

    def size(self) -> int:
        """||A|| — domain size plus the sizes of all signature relations
        and the number of label facts."""
        total = self.tree.n
        total += sum(len(labs) for labs in self.tree.labels)
        for name in self._axes:
            total += self.relation_size(name)
        return total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TreeStructure(n={self.tree.n}, "
            f"binary={sorted(self._axes)})"
        )
