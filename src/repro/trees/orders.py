"""The three total node orders of Section 2: <pre, <post, <bflr.

The paper defines them via the axes::

    x <pre  y  :<=>  Child+(x, y) or Following(x, y)
    x <post y  :<=>  Child+(y, x) or Following(x, y)

and shows the converse definability::

    Child+(x, y)    :<=>  x <pre y  and  y <post x
    Following(x, y) :<=>  x <pre y  and  x <post y

Both directions are verified by the test suite and by experiment E1.
<bflr is the breadth-first left-to-right visiting order.
"""

from __future__ import annotations

from repro.trees.tree import Tree

__all__ = [
    "pre_order",
    "post_order",
    "bflr_order",
    "pre_lt",
    "post_lt",
    "bflr_lt",
    "pre_lt_from_axes",
    "post_lt_from_axes",
    "descendant_from_orders",
    "following_from_orders",
]


def pre_order(tree: Tree) -> list[int]:
    """Node ids sorted by <pre (this is just 0..n-1 by construction)."""
    return list(range(tree.n))


def post_order(tree: Tree) -> list[int]:
    """Node ids sorted by <post."""
    order = [0] * tree.n
    for v in range(tree.n):
        order[tree.post[v]] = v
    return order


def bflr_order(tree: Tree) -> list[int]:
    """Node ids sorted by <bflr."""
    order = [0] * tree.n
    for v in range(tree.n):
        order[tree.bflr[v]] = v
    return order


def pre_lt(tree: Tree, u: int, v: int) -> bool:
    """u <pre v (document order)."""
    return u < v


def post_lt(tree: Tree, u: int, v: int) -> bool:
    """u <post v."""
    return tree.post[u] < tree.post[v]


def bflr_lt(tree: Tree, u: int, v: int) -> bool:
    """u <bflr v."""
    return tree.bflr[u] < tree.bflr[v]


# -- the interdefinability equations of Section 2, as executable code ----


def pre_lt_from_axes(tree: Tree, u: int, v: int) -> bool:
    """x <pre y  :<=>  Child+(x, y) or Following(x, y)  (Section 2)."""
    return tree.is_descendant(u, v) or tree.is_following(u, v)


def post_lt_from_axes(tree: Tree, u: int, v: int) -> bool:
    """x <post y  :<=>  Child+(y, x) or Following(x, y)  (Section 2)."""
    return tree.is_descendant(v, u) or tree.is_following(u, v)


def descendant_from_orders(tree: Tree, u: int, v: int) -> bool:
    """Child+(x, y)  :<=>  x <pre y and y <post x  (Section 2)."""
    return u < v and tree.post[v] < tree.post[u]


def following_from_orders(tree: Tree, u: int, v: int) -> bool:
    """Following(x, y)  :<=>  x <pre y and x <post y  (Section 2)."""
    return u < v and tree.post[u] < tree.post[v]
