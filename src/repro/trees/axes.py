"""XPath axis relations over :class:`~repro.trees.tree.Tree`.

The paper (Section 2) works with the binary *navigational relations*
(axes): Child, Child+ (Descendant), Child* (Descendant-or-self),
NextSibling, NextSibling+ (Following-Sibling), NextSibling*, Following,
Self, and their inverses (Parent, Ancestor, ...).

Every axis supports three operations:

- ``axis_holds(tree, axis, u, v)`` — O(1) membership test via the
  pre/post interval arithmetic of Section 2,
- ``axis_targets(tree, axis, u)`` — iterate all ``v`` with ``R(u, v)``,
- ``axis_pairs(tree, axis)`` — iterate the full relation (used by
  materializing algorithms; transitive axes are quadratic to enumerate,
  which is exactly the cost the labeling schemes of Section 2 avoid).

Axis names follow the paper: ``"Child+"`` is Descendant, ``"Child*"`` is
Descendant-or-self, ``"NextSibling+"`` is Following-Sibling.
"""

from __future__ import annotations

from enum import Enum
from typing import Iterator

from repro.errors import UnsupportedAxisError
from repro.trees.tree import Tree

__all__ = [
    "Axis",
    "AXES",
    "FORWARD_AXES",
    "REVERSE_AXES",
    "axis_holds",
    "axis_targets",
    "axis_pairs",
    "axis_sources",
    "inverse_axis",
    "resolve_axis",
]


class Axis(str, Enum):
    """Canonical axis names.

    The string values are the names used throughout the paper; XPath
    surface names (``descendant``, ``following-sibling``, ...) are accepted
    as aliases by :func:`resolve_axis`.
    """

    SELF = "Self"
    CHILD = "Child"
    CHILD_PLUS = "Child+"          # Descendant
    CHILD_STAR = "Child*"          # Descendant-or-self
    NEXT_SIBLING = "NextSibling"
    NEXT_SIBLING_PLUS = "NextSibling+"  # Following-Sibling
    NEXT_SIBLING_STAR = "NextSibling*"
    FOLLOWING = "Following"
    FIRST_CHILD = "FirstChild"
    # inverse axes
    PARENT = "Parent"
    ANCESTOR = "Ancestor"                # (Child+)^-1
    ANCESTOR_OR_SELF = "Ancestor-or-self"  # (Child*)^-1
    PREV_SIBLING = "PrevSibling"
    PRECEDING_SIBLING = "PrecedingSibling"  # (NextSibling+)^-1
    PREV_SIBLING_STAR = "PrevSibling*"
    PRECEDING = "Preceding"              # Following^-1
    FIRST_CHILD_INV = "FirstChild^-1"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


_ALIASES: dict[str, Axis] = {
    "self": Axis.SELF,
    "child": Axis.CHILD,
    "descendant": Axis.CHILD_PLUS,
    "child+": Axis.CHILD_PLUS,
    "descendant-or-self": Axis.CHILD_STAR,
    "child*": Axis.CHILD_STAR,
    "nextsibling": Axis.NEXT_SIBLING,
    "next-sibling": Axis.NEXT_SIBLING,
    "following-sibling": Axis.NEXT_SIBLING_PLUS,
    "nextsibling+": Axis.NEXT_SIBLING_PLUS,
    "nextsibling*": Axis.NEXT_SIBLING_STAR,
    "following": Axis.FOLLOWING,
    "firstchild": Axis.FIRST_CHILD,
    "first-child": Axis.FIRST_CHILD,
    "parent": Axis.PARENT,
    "ancestor": Axis.ANCESTOR,
    "ancestor-or-self": Axis.ANCESTOR_OR_SELF,
    "prevsibling": Axis.PREV_SIBLING,
    "previous-sibling": Axis.PREV_SIBLING,
    "preceding-sibling": Axis.PRECEDING_SIBLING,
    "prevsibling*": Axis.PREV_SIBLING_STAR,
    "preceding": Axis.PRECEDING,
    "firstchild^-1": Axis.FIRST_CHILD_INV,
}
for _axis in Axis:
    _ALIASES[_axis.value.lower()] = _axis


def resolve_axis(name: "str | Axis") -> Axis:
    """Turn a user-supplied axis name (paper name or XPath alias) into an
    :class:`Axis`, raising :class:`UnsupportedAxisError` otherwise."""
    if isinstance(name, Axis):
        return name
    axis = _ALIASES.get(name.lower())
    if axis is None:
        raise UnsupportedAxisError(f"unknown axis {name!r}")
    return axis


_INVERSES: dict[Axis, Axis] = {
    Axis.SELF: Axis.SELF,
    Axis.CHILD: Axis.PARENT,
    Axis.CHILD_PLUS: Axis.ANCESTOR,
    Axis.CHILD_STAR: Axis.ANCESTOR_OR_SELF,
    Axis.NEXT_SIBLING: Axis.PREV_SIBLING,
    Axis.NEXT_SIBLING_PLUS: Axis.PRECEDING_SIBLING,
    Axis.NEXT_SIBLING_STAR: Axis.PREV_SIBLING_STAR,
    Axis.FOLLOWING: Axis.PRECEDING,
    Axis.FIRST_CHILD: Axis.FIRST_CHILD_INV,
}
_INVERSES.update({v: k for k, v in _INVERSES.items()})


def inverse_axis(axis: "str | Axis") -> Axis:
    """The inverse relation of an axis (Parent for Child, ...)."""
    return _INVERSES[resolve_axis(axis)]


#: Axes that only relate a node to nodes at larger pre-order positions
#: or itself — the "forward" axes of Section 5.
FORWARD_AXES: frozenset[Axis] = frozenset(
    {
        Axis.SELF,
        Axis.CHILD,
        Axis.FIRST_CHILD,
        Axis.CHILD_PLUS,
        Axis.CHILD_STAR,
        Axis.NEXT_SIBLING,
        Axis.NEXT_SIBLING_PLUS,
        Axis.NEXT_SIBLING_STAR,
        Axis.FOLLOWING,
    }
)

#: The inverses of the forward axes.
REVERSE_AXES: frozenset[Axis] = frozenset(_INVERSES[a] for a in FORWARD_AXES) - {
    Axis.SELF
}

#: All supported axes.
AXES: tuple[Axis, ...] = tuple(Axis)


def axis_holds(tree: Tree, axis: "str | Axis", u: int, v: int) -> bool:
    """Decide ``R(u, v)`` for axis ``R`` in O(1) using order arithmetic."""
    axis = resolve_axis(axis)
    if axis is Axis.SELF:
        return u == v
    if axis is Axis.CHILD:
        return tree.parent[v] == u
    if axis is Axis.FIRST_CHILD:
        return tree.parent[v] == u and tree.sibling_index[v] == 0
    if axis is Axis.CHILD_PLUS:
        return tree.is_descendant(u, v)
    if axis is Axis.CHILD_STAR:
        return u == v or tree.is_descendant(u, v)
    if axis is Axis.NEXT_SIBLING:
        return tree.next_sibling[u] == v
    if axis is Axis.NEXT_SIBLING_PLUS:
        return (
            u != v
            and tree.parent[u] == tree.parent[v]
            and tree.parent[u] != -1
            and tree.sibling_index[u] < tree.sibling_index[v]
        )
    if axis is Axis.NEXT_SIBLING_STAR:
        return u == v or axis_holds(tree, Axis.NEXT_SIBLING_PLUS, u, v)
    if axis is Axis.FOLLOWING:
        return tree.is_following(u, v)
    # Inverse axes: flip the arguments.
    return axis_holds(tree, _INVERSES[axis], v, u)


def axis_targets(tree: Tree, axis: "str | Axis", u: int) -> Iterator[int]:
    """Iterate all ``v`` with ``R(u, v)``, in document order where natural."""
    axis = resolve_axis(axis)
    if axis is Axis.SELF:
        yield u
    elif axis is Axis.CHILD:
        yield from tree.children[u]
    elif axis is Axis.FIRST_CHILD:
        if tree.children[u]:
            yield tree.children[u][0]
    elif axis is Axis.CHILD_PLUS:
        yield from tree.descendants(u)
    elif axis is Axis.CHILD_STAR:
        yield from range(u, tree.subtree_end[u])
    elif axis is Axis.NEXT_SIBLING:
        if tree.next_sibling[u] >= 0:
            yield tree.next_sibling[u]
    elif axis is Axis.NEXT_SIBLING_PLUS:
        v = tree.next_sibling[u]
        while v >= 0:
            yield v
            v = tree.next_sibling[v]
    elif axis is Axis.NEXT_SIBLING_STAR:
        yield u
        yield from axis_targets(tree, Axis.NEXT_SIBLING_PLUS, u)
    elif axis is Axis.FOLLOWING:
        # Everything after u in pre-order that is not a descendant of u.
        post_u = tree.post[u]
        for v in range(tree.subtree_end[u], tree.n):
            if tree.post[v] > post_u:
                yield v
    elif axis is Axis.PARENT:
        if tree.parent[u] >= 0:
            yield tree.parent[u]
    elif axis is Axis.FIRST_CHILD_INV:
        p = tree.parent[u]
        if p >= 0 and tree.sibling_index[u] == 0:
            yield p
    elif axis is Axis.ANCESTOR:
        yield from tree.ancestors(u)
    elif axis is Axis.ANCESTOR_OR_SELF:
        yield u
        yield from tree.ancestors(u)
    elif axis is Axis.PREV_SIBLING:
        if tree.prev_sibling[u] >= 0:
            yield tree.prev_sibling[u]
    elif axis is Axis.PRECEDING_SIBLING:
        v = tree.prev_sibling[u]
        while v >= 0:
            yield v
            v = tree.prev_sibling[v]
    elif axis is Axis.PREV_SIBLING_STAR:
        yield u
        yield from axis_targets(tree, Axis.PRECEDING_SIBLING, u)
    elif axis is Axis.PRECEDING:
        post_u = tree.post[u]
        for v in range(u):
            if tree.post[v] < post_u:
                yield v
    else:  # pragma: no cover - exhaustive over Axis
        raise UnsupportedAxisError(f"axis {axis} has no target iterator")


def axis_sources(tree: Tree, axis: "str | Axis", v: int) -> Iterator[int]:
    """Iterate all ``u`` with ``R(u, v)`` (targets of the inverse axis)."""
    return axis_targets(tree, inverse_axis(axis), v)


def axis_pairs(tree: Tree, axis: "str | Axis") -> Iterator[tuple[int, int]]:
    """Enumerate the full relation ``{(u, v) : R(u, v)}``.

    Non-transitive axes are linear-size; transitive ones can be
    quadratic.  Materializing a transitive axis is exactly what the
    structural-join technique of Section 2 is designed to avoid — this
    enumerator exists to serve as that baseline.
    """
    axis = resolve_axis(axis)
    for u in range(tree.n):
        for v in axis_targets(tree, axis, u):
            yield u, v
