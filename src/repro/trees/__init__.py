"""Unranked ordered labeled trees — the data model of the paper (Section 2).

This package provides:

- :class:`~repro.trees.node.Node` / :class:`~repro.trees.tree.Tree` — the
  in-memory tree representation with precomputed pre/post/bflr orders,
- :mod:`~repro.trees.axes` — the XPath axis relations (Child, Child+,
  Child*, NextSibling, NextSibling+, NextSibling*, Following, Self and all
  their inverses) with O(1) membership tests via order arithmetic,
- :mod:`~repro.trees.orders` — the three total orders <pre, <post, <bflr,
- :mod:`~repro.trees.xmlio` — a parser/serializer for the XML subset the
  paper's data model captures (element structure only),
- :mod:`~repro.trees.generate` — deterministic random tree generators,
- :class:`~repro.trees.structure.TreeStructure` — the relational-structure
  view (signature of unary label predicates and binary axis relations) that
  logic-based evaluators consume.
"""

from repro.trees.node import Node
from repro.trees.tree import Tree
from repro.trees.axes import (
    AXES,
    FORWARD_AXES,
    REVERSE_AXES,
    Axis,
    axis_holds,
    axis_pairs,
    axis_targets,
    inverse_axis,
)
from repro.trees.orders import bflr_order, post_order, pre_order
from repro.trees.xmlio import parse_xml, to_xml
from repro.trees.generate import (
    balanced_tree,
    flat_tree,
    path_tree,
    random_tree,
    caterpillar_tree,
)
from repro.trees.structure import TreeStructure
from repro.trees.edit import (
    delete_subtree,
    insert_leaf,
    insert_subtree,
    relabel,
    splice,
)

__all__ = [
    "Node",
    "Tree",
    "Axis",
    "AXES",
    "FORWARD_AXES",
    "REVERSE_AXES",
    "axis_holds",
    "axis_targets",
    "axis_pairs",
    "inverse_axis",
    "pre_order",
    "post_order",
    "bflr_order",
    "parse_xml",
    "to_xml",
    "random_tree",
    "path_tree",
    "flat_tree",
    "balanced_tree",
    "caterpillar_tree",
    "TreeStructure",
    "insert_leaf",
    "insert_subtree",
    "delete_subtree",
    "relabel",
    "splice",
]
