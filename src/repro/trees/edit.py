"""Tree editing.

The paper's Section 2 motivates *insert-friendly* labeling schemes
([63] ORDPATH, [23] Dietz–Sleator) by the cost of updates under plain
pre/post numbering: an insertion shifts Θ(n) indexes.  This module
provides the update operations themselves — :class:`Tree` is immutable,
so each edit returns a new tree (an O(n) renumbering, exactly the cost
the labeling schemes avoid; the test suite pairs these edits with
:class:`~repro.storage.labeling.OrdpathLabeling.between` to show the
contrast).
"""

from __future__ import annotations

from repro.trees.tree import Tree

__all__ = [
    "insert_leaf",
    "insert_subtree",
    "delete_subtree",
    "relabel",
    "splice",
]


def _to_arrays(tree: Tree):
    labels = [set(s) for s in tree.labels]
    primary = list(tree.label)
    children = [list(c) for c in tree.children]
    return primary, labels, children


def _rebuild(primary, labels, children, root=0) -> Tree:
    """Renumber an edited (label, children) forest into a fresh Tree."""
    new_primary: list[str] = []
    new_labels: list[frozenset[str]] = []
    new_parent: list[int] = []
    new_children: list[list[int]] = []
    stack = [(root, -1)]
    while stack:
        old, parent_new = stack.pop()
        my_id = len(new_primary)
        new_primary.append(primary[old])
        new_labels.append(frozenset(labels[old]))
        new_parent.append(parent_new)
        new_children.append([])
        if parent_new >= 0:
            new_children[parent_new].append(my_id)
        for child in reversed(children[old]):
            stack.append((child, my_id))
    return Tree(new_primary, new_labels, new_parent, new_children)


def insert_leaf(tree: Tree, parent: int, position: int, label: str) -> Tree:
    """A new tree with a ``label`` leaf as the ``position``-th child of
    ``parent`` (position may equal the current child count: append)."""
    primary, labels, children = _to_arrays(tree)
    if not 0 <= position <= len(children[parent]):
        raise IndexError(
            f"position {position} out of range for node with "
            f"{len(children[parent])} children"
        )
    new_id = len(primary)
    primary.append(label)
    labels.append({label})
    children.append([])
    children[parent].insert(position, new_id)
    return _rebuild(primary, labels, children)


def insert_subtree(tree: Tree, parent: int, position: int, sub: Tree) -> Tree:
    """Graft a whole tree as the ``position``-th child of ``parent``."""
    primary, labels, children = _to_arrays(tree)
    if not 0 <= position <= len(children[parent]):
        raise IndexError("insert position out of range")
    offset = len(primary)
    for v in sub.nodes():
        primary.append(sub.label[v])
        labels.append(set(sub.labels[v]))
        children.append([c + offset for c in sub.children[v]])
    children[parent].insert(position, offset + sub.root)
    return _rebuild(primary, labels, children)


def delete_subtree(tree: Tree, node: int) -> Tree:
    """A new tree without ``node`` and its descendants (not the root)."""
    if node == tree.root:
        raise ValueError("cannot delete the root")
    primary, labels, children = _to_arrays(tree)
    children[tree.parent[node]].remove(node)
    return _rebuild(primary, labels, children)


def relabel(tree: Tree, node: int, label: str, keep_extra: bool = True) -> Tree:
    """A new tree with ``node``'s primary label replaced."""
    primary, labels, children = _to_arrays(tree)
    old_primary = primary[node]
    primary[node] = label
    if keep_extra:
        labels[node] = (labels[node] - {old_primary}) | {label}
    else:
        labels[node] = {label}
    return _rebuild(primary, labels, children)


def splice(tree: Tree, node: int) -> Tree:
    """Remove ``node`` but keep its children, promoted into its place
    (the XSLT-ish "unwrap"); not applicable to the root."""
    if node == tree.root:
        raise ValueError("cannot splice out the root")
    primary, labels, children = _to_arrays(tree)
    parent = tree.parent[node]
    slot = children[parent].index(node)
    children[parent][slot:slot + 1] = children[node]
    children[node] = []
    return _rebuild(primary, labels, children)
