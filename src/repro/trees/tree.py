"""The frozen :class:`Tree` structure.

A :class:`Tree` assigns every node an integer identifier equal to its
position in the pre-order traversal (so ``pre(v) == v``) and precomputes
the index arrays that make all axis checks O(1):

- ``parent[v]`` — parent id, ``-1`` for the root,
- ``children[v]`` — list of child ids in sibling order,
- ``post[v]`` — position in post-order,
- ``bflr[v]`` — position in the breadth-first left-to-right order,
- ``depth[v]`` — root depth 0,
- ``sibling_index[v]`` — position among the parent's children,
- ``next_sibling[v]`` / ``prev_sibling[v]`` — sibling links (-1 if none),
- ``subtree_end[v]`` — one past the largest pre-index in v's subtree, so
  the descendants of ``v`` are exactly ``range(v + 1, subtree_end[v])``.

This is precisely the (<pre, <post, label) triple representation of
Section 2 of the paper, augmented with the sibling structure needed for
the NextSibling axes and <bflr.
"""

from __future__ import annotations

from collections import deque
from typing import Iterator, Sequence

from repro.trees.node import Node

__all__ = ["Tree"]


class Tree:
    """An immutable unranked ordered labeled tree over node ids 0..n-1.

    Construct with :meth:`Tree.build` from a root :class:`Node`, or with
    :meth:`Tree.from_tuple` / :func:`repro.trees.xmlio.parse_xml`.
    """

    __slots__ = (
        "n",
        "label",
        "labels",
        "parent",
        "children",
        "post",
        "bflr",
        "depth",
        "sibling_index",
        "next_sibling",
        "prev_sibling",
        "subtree_end",
        "_label_index",
    )

    def __init__(
        self,
        label: Sequence[str],
        labels: Sequence[frozenset[str]],
        parent: Sequence[int],
        children: Sequence[list[int]],
    ):
        self.n = len(label)
        if self.n == 0:
            raise ValueError("a tree must have at least one node (the root)")
        self.label = list(label)
        self.labels = list(labels)
        self.parent = list(parent)
        self.children = [list(c) for c in children]
        self._derive_indexes()
        self._label_index: dict[str, list[int]] | None = None

    # -- construction ---------------------------------------------------

    @classmethod
    def build(cls, root: Node) -> "Tree":
        """Freeze a :class:`Node` tree into a :class:`Tree` (pre-order ids)."""
        label: list[str] = []
        labels: list[frozenset[str]] = []
        parent: list[int] = []
        children: list[list[int]] = []
        # Iterative pre-order numbering.
        stack: list[tuple[Node, int]] = [(root, -1)]
        while stack:
            node, parent_id = stack.pop()
            my_id = len(label)
            label.append(node.label)
            labels.append(node.labels)
            parent.append(parent_id)
            children.append([])
            if parent_id >= 0:
                children[parent_id].append(my_id)
            for child in reversed(node.children):
                stack.append((child, my_id))
        return cls(label, labels, parent, children)

    @classmethod
    def from_tuple(cls, spec: tuple | str) -> "Tree":
        """Build directly from a nested ``(label, [children...])`` spec."""
        return cls.build(Node.from_tuple(spec))

    def _derive_indexes(self) -> None:
        n = self.n
        parent = self.parent
        children = self.children
        # post-order and subtree extents via an iterative DFS.
        self.post = [0] * n
        self.depth = [0] * n
        self.subtree_end = [0] * n
        post_counter = 0
        pre_counter = 1  # the root (id 0) is pre-visited implicitly
        # state: (node, child cursor)
        stack: list[int] = [0]
        cursor = [0] * n
        while stack:
            v = stack[-1]
            if cursor[v] < len(children[v]):
                child = children[v][cursor[v]]
                cursor[v] += 1
                if child != pre_counter:
                    raise ValueError(
                        "node ids must equal pre-order positions "
                        f"(node {child} visited at pre-position {pre_counter})"
                    )
                pre_counter += 1
                self.depth[child] = self.depth[v] + 1
                stack.append(child)
            else:
                stack.pop()
                self.post[v] = post_counter
                post_counter += 1
                end = v + 1
                if children[v]:
                    end = self.subtree_end[children[v][-1]]
                self.subtree_end[v] = end
        # sibling structure
        self.sibling_index = [0] * n
        self.next_sibling = [-1] * n
        self.prev_sibling = [-1] * n
        for v in range(n):
            kids = children[v]
            for i, c in enumerate(kids):
                self.sibling_index[c] = i
                if i + 1 < len(kids):
                    self.next_sibling[c] = kids[i + 1]
                if i > 0:
                    self.prev_sibling[c] = kids[i - 1]
        # breadth-first left-to-right order
        self.bflr = [0] * n
        order = 0
        queue: deque[int] = deque([0])
        while queue:
            v = queue.popleft()
            self.bflr[v] = order
            order += 1
            queue.extend(children[v])

    # -- basic accessors -------------------------------------------------

    @property
    def root(self) -> int:
        """The root node id (always 0: the root is first in pre-order)."""
        return 0

    def pre(self, v: int) -> int:
        """The <pre index of ``v`` (equals the node id by construction)."""
        return v

    def height(self) -> int:
        """Maximum depth over all nodes (a single-node tree has height 0)."""
        return max(self.depth)

    def nodes(self) -> range:
        """All node ids in pre-order (document order)."""
        return range(self.n)

    def is_leaf(self, v: int) -> bool:
        return not self.children[v]

    def leaves(self) -> Iterator[int]:
        return (v for v in range(self.n) if not self.children[v])

    def first_child(self, v: int) -> int:
        """The first child of ``v``, or -1 if ``v`` is a leaf."""
        kids = self.children[v]
        return kids[0] if kids else -1

    def last_child(self, v: int) -> int:
        kids = self.children[v]
        return kids[-1] if kids else -1

    def has_label(self, v: int, a: str) -> bool:
        """Lab_a(v): does node ``v`` carry label ``a``?"""
        return a in self.labels[v]

    def nodes_with_label(self, a: str) -> list[int]:
        """All node ids carrying label ``a``, in document order (cached)."""
        if self._label_index is None:
            index: dict[str, list[int]] = {}
            for v in range(self.n):
                for lab in self.labels[v]:
                    index.setdefault(lab, []).append(v)
            self._label_index = index
        return self._label_index.get(a, [])

    def alphabet(self) -> frozenset[str]:
        """The set of labels occurring in this tree."""
        result: set[str] = set()
        for labs in self.labels:
            result.update(labs)
        return frozenset(result)

    # -- structural predicates (O(1) each) --------------------------------

    def is_descendant(self, u: int, v: int) -> bool:
        """Child+(u, v): is ``v`` a proper descendant of ``u``?

        Uses the interval characterization from Section 2 of the paper:
        ``u <pre v  and  v <post u``.
        """
        return u < v < self.subtree_end[u]

    def is_following(self, u: int, v: int) -> bool:
        """Following(u, v): ``u <pre v and u <post v`` (Section 2)."""
        return u < v and self.post[u] < self.post[v]

    def lca(self, u: int, v: int) -> int:
        """Lowest common ancestor of ``u`` and ``v`` (by depth walking)."""
        while u != v:
            if self.depth[u] >= self.depth[v]:
                u = self.parent[u]
            else:
                v = self.parent[v]
        return u

    # -- relation enumeration ---------------------------------------------

    def child_pairs(self) -> Iterator[tuple[int, int]]:
        """All (u, v) with Child(u, v)."""
        for v in range(1, self.n):
            yield self.parent[v], v

    def next_sibling_pairs(self) -> Iterator[tuple[int, int]]:
        """All (u, v) with NextSibling(u, v)."""
        for u in range(self.n):
            v = self.next_sibling[u]
            if v >= 0:
                yield u, v

    # -- misc --------------------------------------------------------------

    def subtree_size(self, v: int) -> int:
        return self.subtree_end[v] - v

    def descendants(self, v: int) -> range:
        """Proper descendants of ``v`` — a contiguous pre-order range."""
        return range(v + 1, self.subtree_end[v])

    def ancestors(self, v: int) -> Iterator[int]:
        """Proper ancestors of ``v``, nearest first."""
        v = self.parent[v]
        while v >= 0:
            yield v
            v = self.parent[v]

    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Tree(n={self.n}, height={self.height()})"

    def __eq__(self, other: object) -> bool:
        """Structural equality: same shape and same label sets."""
        if not isinstance(other, Tree):
            return NotImplemented
        return (
            self.n == other.n
            and self.parent == other.parent
            and self.labels == other.labels
        )

    def __hash__(self) -> int:
        return hash((self.n, tuple(self.parent), tuple(self.labels)))
