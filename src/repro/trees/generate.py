"""Deterministic tree generators used by tests, examples, and benchmarks.

All generators take an explicit ``seed`` (or none at all) and build the
:class:`~repro.trees.tree.Tree` directly from parent arrays, so even
million-node instances are cheap and reproducible.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.trees.tree import Tree

__all__ = [
    "random_tree",
    "path_tree",
    "flat_tree",
    "balanced_tree",
    "caterpillar_tree",
    "random_labels",
    "tree_from_parents",
]

DEFAULT_ALPHABET: tuple[str, ...] = ("a", "b", "c", "d")


def tree_from_parents(parents: Sequence[int], labels: Sequence[str]) -> Tree:
    """Build a tree from a parent array.

    ``parents[v]`` must be -1 for exactly one root and otherwise a node id
    *smaller than* ``v`` (so ids are a topological/pre-compatible order;
    children keep their relative id order as sibling order).
    """
    n = len(parents)
    children: list[list[int]] = [[] for _ in range(n)]
    root = -1
    for v, p in enumerate(parents):
        if p < 0:
            if root >= 0:
                raise ValueError("multiple roots in parent array")
            root = v
        else:
            if p >= v:
                raise ValueError("parents must precede children in the id order")
            children[p].append(v)
    if root != 0:
        raise ValueError("node 0 must be the root")
    # Renumber to pre-order: Tree requires node id == pre-order position.
    new_id = [-1] * n
    order: list[int] = []
    stack = [0]
    while stack:
        v = stack.pop()
        new_id[v] = len(order)
        order.append(v)
        stack.extend(reversed(children[v]))
    new_labels = [labels[v] for v in order]
    new_parents = [-1 if parents[v] < 0 else new_id[parents[v]] for v in order]
    new_children = [[new_id[c] for c in children[v]] for v in order]
    label_sets = [frozenset((lab,)) for lab in new_labels]
    return Tree(new_labels, label_sets, new_parents, new_children)


def random_labels(
    n: int, alphabet: Sequence[str] = DEFAULT_ALPHABET, seed: int = 0
) -> list[str]:
    """A reproducible random label sequence over ``alphabet``."""
    rng = random.Random(seed)
    return [rng.choice(alphabet) for _ in range(n)]


def random_tree(
    n: int,
    seed: int = 0,
    alphabet: Sequence[str] = DEFAULT_ALPHABET,
    attachment: str = "uniform",
) -> Tree:
    """A random recursive tree on ``n`` nodes.

    ``attachment`` controls the shape distribution:

    - ``"uniform"`` — each new node picks a uniformly random earlier node
      as parent (expected height Θ(log n), fanout skewed),
    - ``"preferential"`` — parents are picked proportionally to their
      current degree + 1 (produces high-fanout hubs),
    - ``"binaryish"`` — parents are picked among nodes with < 2 children
      (produces deeper, slimmer trees).
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    rng = random.Random(seed)
    parents = [-1]
    degree = [0]
    eligible = [0]  # for "binaryish": nodes with < 2 children
    for v in range(1, n):
        if attachment == "uniform":
            p = rng.randrange(v)
        elif attachment == "preferential":
            # weight each node by degree + 1
            total = v + sum(degree)
            pick = rng.randrange(total)
            acc = 0
            p = v - 1
            for u in range(v):
                acc += degree[u] + 1
                if pick < acc:
                    p = u
                    break
        elif attachment == "binaryish":
            idx = rng.randrange(len(eligible))
            p = eligible[idx]
            if degree[p] + 1 >= 2:
                eligible[idx] = eligible[-1]
                eligible.pop()
        else:
            raise ValueError(f"unknown attachment policy {attachment!r}")
        parents.append(p)
        degree[p] += 1
        degree.append(0)
        if attachment == "binaryish":
            eligible.append(v)
    return tree_from_parents(parents, random_labels(n, alphabet, seed=seed + 1))


def path_tree(n: int, alphabet: Sequence[str] = DEFAULT_ALPHABET, seed: int = 0) -> Tree:
    """A path (each node has one child): the maximally deep tree."""
    parents = [-1] + list(range(n - 1))
    return tree_from_parents(parents, random_labels(n, alphabet, seed=seed))


def flat_tree(n: int, alphabet: Sequence[str] = DEFAULT_ALPHABET, seed: int = 0) -> Tree:
    """A root with n-1 children: the maximally wide tree."""
    parents = [-1] + [0] * (n - 1)
    return tree_from_parents(parents, random_labels(n, alphabet, seed=seed))


def balanced_tree(
    fanout: int, height: int, alphabet: Sequence[str] = DEFAULT_ALPHABET, seed: int = 0
) -> Tree:
    """The complete ``fanout``-ary tree of the given height."""
    if fanout < 1 or height < 0:
        raise ValueError("fanout must be >= 1 and height >= 0")
    parents = [-1]
    frontier = [0]
    for _level in range(height):
        next_frontier = []
        for node in frontier:
            for _ in range(fanout):
                child = len(parents)
                parents.append(node)
                next_frontier.append(child)
        frontier = next_frontier
    return tree_from_parents(parents, random_labels(len(parents), alphabet, seed=seed))


def caterpillar_tree(
    spine: int, legs: int, alphabet: Sequence[str] = DEFAULT_ALPHABET, seed: int = 0
) -> Tree:
    """A spine path of length ``spine`` where every spine node additionally
    has ``legs`` leaf children.  Interpolates between path and flat trees;
    used to control depth independently of size in experiment E15."""
    parents = [-1]
    prev_spine = 0
    for _ in range(spine - 1):
        for _ in range(legs):
            parents.append(prev_spine)
        node = len(parents)
        parents.append(prev_spine)
        prev_spine = node
    for _ in range(legs):
        parents.append(prev_spine)
    return tree_from_parents(parents, random_labels(len(parents), alphabet, seed=seed))
